package rme_test

// One benchmark per experiment in EXPERIMENTS.md. The simulated benchmarks
// (E1–E11) report the paper's metric — RMRs per passage in the CC/DSM cost
// model — via b.ReportMetric; wall-clock ns/op for them measures only the
// simulator. E12 measures real wall-clock throughput of the runtime lock.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/core"
	"github.com/rmelib/rme/internal/experiments"
	"github.com/rmelib/rme/internal/ghrepro"
	"github.com/rmelib/rme/internal/mcs"
	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/rlock"
	"github.com/rmelib/rme/internal/rtbench"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/sigobj"
	"github.com/rmelib/rme/internal/tree"
	"github.com/rmelib/rme/internal/wait"
	"github.com/rmelib/rme/internal/xrand"
)

// BenchmarkE1Signal measures one set()/wait() handshake of the Signal
// object (Theorem 1) per iteration.
func BenchmarkE1Signal(b *testing.B) {
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		b.Run(model.String(), func(b *testing.B) {
			mem := memsim.New(memsim.Config{Model: model, Procs: 2})
			before := mem.TotalRMRs()
			for i := 0; i < b.N; i++ {
				sig := sigobj.Alloc(mem, 0)
				w := sigobj.NewWaiter(mem, 1)
				w.Begin(sig)
				for j := 0; j < 20; j++ {
					w.Step()
				}
				s := sigobj.NewSetter(mem, 0)
				s.Begin(sig)
				for !s.Step() {
				}
				for !w.Step() {
				}
			}
			b.ReportMetric(float64(mem.TotalRMRs()-before)/float64(b.N), "RMRs/op")
		})
	}
}

// simPassages drives the given clients for b.N passages in steady state
// (after a warm-up that lets every process complete two passages, so the
// cost of half-finished acquisitions does not pollute the average) and
// reports RMRs per passage.
func simPassages(b *testing.B, mem *memsim.Memory, procs []sched.Proc) {
	b.Helper()
	rng := xrand.New(12345)
	warm := &sched.Runner{
		Procs:    procs,
		Sched:    sched.Random{Src: rng},
		StopWhen: sched.AllPassagesAtLeast(procs, 2),
		MaxSteps: 1 << 62,
	}
	if err := warm.Run(); err != nil {
		b.Fatal(err)
	}
	startRMRs := mem.TotalRMRs()
	var startPassages uint64
	for _, p := range procs {
		startPassages += p.Passages()
	}
	r := &sched.Runner{
		Procs:    procs,
		Sched:    sched.Random{Src: rng},
		StopWhen: sched.TotalPassagesAtLeast(procs, startPassages+uint64(b.N)),
		MaxSteps: 1 << 62,
	}
	if err := r.Run(); err != nil {
		b.Fatal(err)
	}
	var passages uint64
	for _, p := range procs {
		passages += p.Passages()
	}
	b.ReportMetric(float64(mem.TotalRMRs()-startRMRs)/float64(passages-startPassages), "RMRs/passage")
}

// BenchmarkE2FlatPassage: crash-free passages of the flat k-ported
// algorithm (Theorem 2's O(1) per passage).
func BenchmarkE2FlatPassage(b *testing.B) {
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		for _, k := range []int{2, 8, 64} {
			b.Run(fmt.Sprintf("%s/k%d", model, k), func(b *testing.B) {
				mem := memsim.New(memsim.Config{Model: model, Procs: k})
				sh := core.NewShared(mem, core.Config{Ports: k})
				procs := make([]sched.Proc, k)
				for i := 0; i < k; i++ {
					procs[i] = core.NewProc(sh, i, i, 1)
				}
				simPassages(b, mem, procs)
			})
		}
	}
}

// BenchmarkE3CrashRecovery: one full crash-and-repair cycle per iteration
// (crash at line 14, recover through RLock and queue repair, enter the CS,
// exit). Theorem 2's O(f·k) term, measured per recovery.
func BenchmarkE3CrashRecovery(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: k})
			sh := core.NewShared(mem, core.Config{Ports: k})
			procs := make([]sched.Proc, k)
			for i := 0; i < k; i++ {
				procs[i] = core.NewProc(sh, i, i, 0)
			}
			d := sched.NewDriver(procs...)
			before := mem.Stats(0).RMRs
			for i := 0; i < b.N; i++ {
				if !d.StepUntilPC(0, core.PCL14) {
					b.Fatal("no line 14")
				}
				d.Crash(0)
				if !d.FinishPassage(0) {
					b.Fatal("recovery did not complete")
				}
			}
			b.ReportMetric(float64(mem.Stats(0).RMRs-before)/float64(b.N), "RMRs/recovery")
		})
	}
}

// BenchmarkE4TreePassage: crash-free passages over the arbitration tree
// (Theorem 3's O(log n / log log n) per passage).
func BenchmarkE4TreePassage(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: n})
			tr := tree.New(mem, tree.Config{Procs: n})
			procs := make([]sched.Proc, n)
			for i := 0; i < n; i++ {
				procs[i] = tree.NewProc(mem, tr, i, 1)
			}
			simPassages(b, mem, procs)
		})
	}
}

// BenchmarkE5Comparison: the head-to-head table, one sub-benchmark per
// algorithm at n=16 on DSM.
func BenchmarkE5Comparison(b *testing.B) {
	const n = 16
	b.Run("mcs", func(b *testing.B) {
		mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: n})
		lk := mcs.New(mem, n)
		procs := make([]sched.Proc, n)
		for i := 0; i < n; i++ {
			procs[i] = mcs.NewProc(mem, lk, i, 1)
		}
		simPassages(b, mem, procs)
	})
	b.Run("gr-tournament", func(b *testing.B) {
		mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: n})
		lk := rlock.New(mem, n)
		procs := make([]sched.Proc, n)
		for i := 0; i < n; i++ {
			procs[i] = rlock.NewProc(mem, lk, i, i, 1)
		}
		simPassages(b, mem, procs)
	})
	b.Run("flat", func(b *testing.B) {
		mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: n})
		sh := core.NewShared(mem, core.Config{Ports: n})
		procs := make([]sched.Proc, n)
		for i := 0; i < n; i++ {
			procs[i] = core.NewProc(sh, i, i, 1)
		}
		simPassages(b, mem, procs)
	})
	b.Run("tree", func(b *testing.B) {
		mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: n})
		tr := tree.New(mem, tree.Config{Procs: n})
		procs := make([]sched.Proc, n)
		for i := 0; i < n; i++ {
			procs[i] = tree.NewProc(mem, tr, i, 1)
		}
		simPassages(b, mem, procs)
	})
}

// BenchmarkE6Figure5 replays the whole Figure 5 walkthrough per iteration.
func BenchmarkE6Figure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5States(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Scenario1 replays the Appendix A.1 deadlock reproduction
// (with a reduced hang budget) per iteration.
func BenchmarkE7Scenario1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := ghrepro.RunScenario1(20_000)
		if err != nil || !out.Deadlocked {
			b.Fatalf("scenario 1 did not reproduce: %v", err)
		}
	}
}

// BenchmarkE8Scenario2 replays the Appendix A.2 starvation reproduction
// per iteration.
func BenchmarkE8Scenario2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := ghrepro.RunScenario2(100_000)
		if err != nil || !out.DuplicatePredecessor || !out.P6Starved {
			b.Fatalf("scenario 2 did not reproduce: %v", err)
		}
	}
}

// BenchmarkE9Ablation: one full fragment-everything-and-repair-all cycle
// per iteration, shallow vs deep exploration (§1.5 bullet 3).
func BenchmarkE9Ablation(b *testing.B) {
	const k = 16
	for _, deep := range []bool{false, true} {
		name := "shallow"
		if deep {
			name = "deep"
		}
		b.Run(name, func(b *testing.B) {
			var rmrs, locals uint64
			for i := 0; i < b.N; i++ {
				mem := memsim.New(memsim.Config{Model: memsim.CC, Procs: k, CacheCapacity: 4})
				sh := core.NewShared(mem, core.Config{Ports: k, DeepExploration: deep})
				procs := make([]sched.Proc, k)
				for j := 0; j < k; j++ {
					procs[j] = core.NewProc(sh, j, j, 0)
				}
				d := sched.NewDriver(procs...)
				for p := 0; p < k; p++ {
					if !d.StepUntilPC(p, core.PCL14) {
						b.Fatal("no line 14")
					}
					d.Crash(p)
				}
				for p := 0; p < k; p++ {
					if !d.StepUntilPC(p, core.PCL24) {
						b.Fatal("no line 24")
					}
				}
				for p := 0; p < k; p++ {
					if !d.StepUntilPC(p, core.PCL25) {
						b.Fatal("repair did not finish")
					}
				}
				for p := 0; p < k; p++ {
					rmrs += mem.Stats(p).RMRs
					locals += mem.Stats(p).LocalSteps
				}
			}
			b.ReportMetric(float64(rmrs)/float64(b.N*k), "RMRs/repair")
			b.ReportMetric(float64(locals)/float64(b.N*k), "localsteps/repair")
		})
	}
}

// BenchmarkE10Exit: one wait-free Exit per iteration (Lemma 6), with
// rivals parked mid-Try. A fresh world per iteration keeps the adversarial
// pile-up identical every time.
func BenchmarkE10Exit(b *testing.B) {
	const k = 8
	maxSteps := 0
	for i := 0; i < b.N; i++ {
		mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: k})
		sh := core.NewShared(mem, core.Config{Ports: k})
		procs := make([]sched.Proc, k)
		for j := 0; j < k; j++ {
			procs[j] = core.NewProc(sh, j, j, 0)
		}
		d := sched.NewDriver(procs...)
		if !d.StepUntilSection(0, sched.CS) {
			b.Fatal("no CS")
		}
		for p := 1; p < k; p++ {
			d.Step(p, 11) // rivals stall mid-Try
		}
		if !d.StepUntilSection(0, sched.Exit) {
			b.Fatal("no Exit")
		}
		steps := 0
		for procs[0].Section() == sched.Exit {
			d.Step(0, 1)
			steps++
		}
		if steps > maxSteps {
			maxSteps = steps
		}
	}
	b.ReportMetric(float64(maxSteps), "max-exit-steps")
}

// BenchmarkE11InvariantCheck measures the Appendix C checker itself (the
// verification overhead of the reproduction, not a paper claim).
func BenchmarkE11InvariantCheck(b *testing.B) {
	const k = 8
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: k})
	sh := core.NewShared(mem, core.Config{Ports: k})
	procs := make([]*core.Proc, k)
	sp := make([]sched.Proc, k)
	for i := 0; i < k; i++ {
		procs[i] = core.NewProc(sh, i, i, 1)
		sp[i] = procs[i]
	}
	r := &sched.Runner{Procs: sp, StopWhen: sched.TotalPassagesAtLeast(sp, 20)}
	if err := r.Run(); err != nil {
		b.Fatal(err)
	}
	ck := core.NewChecker(sh, procs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ck.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12RuntimeThroughput measures the runtime lock: real goroutines,
// wall-clock, across worker counts, wait strategies (allStrategies, the
// same axis cmd/rmebench -json measures), node pooling, and with injected
// crashes. The strategy-matrix cells yield inside and after the critical
// section, like internal/rtbench's workload: a ~100ns CS that never
// crosses a scheduler boundary is always already unlocked when the next
// worker runs, and the cell would silently measure sequential fast paths
// instead of the strategy's handoff machinery.
func BenchmarkE12RuntimeThroughput(b *testing.B) {
	for _, s := range allStrategies() {
		for _, pool := range []bool{false, true} {
			b.Run(fmt.Sprintf("g4/%s/pool=%v", s.name, pool), func(b *testing.B) {
				const g = 4
				m := rme.New(g, rme.WithWaitStrategy(s.st), rme.WithNodePool(pool))
				b.ReportAllocs()
				var wg sync.WaitGroup
				per := b.N / g
				for w := 0; w < g; w++ {
					wg.Add(1)
					go func(port int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							m.Lock(port)
							runtime.Gosched() // critical-section work
							m.Unlock(port)
							runtime.Gosched() // non-critical-section work
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
			m := rme.New(g)
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / g
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(port int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						m.Lock(port)
						next.Add(1)
						m.Unlock(port)
					}
				}(w)
			}
			wg.Wait()
		})
	}
	b.Run("g4-with-crashes", func(b *testing.B) {
		m := rme.New(4)
		var calls atomic.Uint64
		m.SetCrashFunc(func(port int, point string) bool {
			return xrand.Mix64(calls.Add(1))%4096 == 0
		})
		lock := func(port int) {
			for {
				ok := func() (ok bool) {
					defer func() {
						if r := recover(); r != nil {
							if _, isCrash := rme.AsCrash(r); !isCrash {
								panic(r)
							}
						}
					}()
					m.Lock(port)
					return true
				}()
				if ok {
					return
				}
			}
		}
		unlock := func(port int) {
			for {
				ok := func() (ok bool) {
					defer func() {
						if r := recover(); r != nil {
							if _, isCrash := rme.AsCrash(r); !isCrash {
								panic(r)
							}
						}
					}()
					m.Unlock(port)
					return true
				}()
				if ok {
					return
				}
				lock(port)
			}
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N / 4
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(port int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					lock(port)
					unlock(port)
				}
			}(w)
		}
		wg.Wait()
	})
}

// BenchmarkE13FastPath measures the crash-free uncontended passage — the
// paper's O(1)-RMR fast path — with and without node pooling. With pooling
// the passage must not allocate: the queue node is recycled once its
// successor consumed it, and an already-set cs signal short-circuits
// before publishing a spin word.
func BenchmarkE13FastPath(b *testing.B) {
	for _, pool := range []bool{false, true} {
		b.Run(fmt.Sprintf("pool=%v", pool), func(b *testing.B) {
			m := rme.New(1, rme.WithNodePool(pool))
			for i := 0; i < 8; i++ { // warm the free list past its consume lag
				m.Lock(0)
				m.Unlock(0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Lock(0)
				m.Unlock(0)
			}
		})
	}
}

// BenchmarkE15TreeHandoff measures the arbitration tree under contention —
// the runtime-port counterpart of E4's simulated O(log n / log log n)
// bound — with per-level wake counters reported as the RMR proxy for the
// tree hand-off cost.
func BenchmarkE15TreeHandoff(b *testing.B) {
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			m := rme.NewTree(n, rme.WithNodePool(true), rme.WithTreeInstrumentation(true))
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N/n + 1
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func(proc int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						m.Lock(proc)
						runtime.Gosched() // CS work, as in internal/rtbench
						m.Unlock(proc)
						runtime.Gosched()
					}
				}(w)
			}
			wg.Wait()
			var wakes uint64
			for _, ls := range m.LevelStats() {
				wakes += ls.Wakes.Load()
			}
			b.ReportMetric(float64(wakes)/float64(per*n), "wakes/passage")
		})
	}
}

// BenchmarkE18MCSHandoff measures the recoverable MCS queue lock under
// contention — the O(1)-RMR backend of the three-way shard showdown —
// with the wait engine's wake counter reported per passage. Read the
// wakes/passage column against E15's: the MCS release wakes exactly the
// queue successor (≤1 per passage at any port count), where the tree
// climbs O(log n / log log n) levels and the committed baselines show
// ~4x that.
func BenchmarkE18MCSHandoff(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var stats rme.WaitStats
			m := rme.NewMCS(n, rme.WithWaitStrategy(
				wait.Instrumented(rme.YieldWaitStrategy(), &stats)))
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N/n + 1
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func(port int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						m.Lock(port)
						runtime.Gosched() // CS work, as in internal/rtbench
						m.Unlock(port)
						runtime.Gosched()
					}
				}(w)
			}
			wg.Wait()
			b.ReportMetric(float64(stats.Wakes.Load())/float64(per*n), "wakes/passage")
		})
	}
}

// BenchmarkE14Oversubscribed runs ports = 32·GOMAXPROCS worker goroutines
// through the lock — the workload that makes pure spinning pathological
// and that the spin-then-park strategy exists for. The pure-spin strategy
// is deliberately excluded (it would measure scheduler-quantum burn, not
// the lock).
func BenchmarkE14Oversubscribed(b *testing.B) {
	ports := 32 * runtime.GOMAXPROCS(0)
	for _, s := range allStrategies() {
		if s.name == "spin" {
			continue
		}
		b.Run(s.name, func(b *testing.B) {
			m := rme.New(ports, rme.WithWaitStrategy(s.st), rme.WithNodePool(true))
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N/ports + 1
			for w := 0; w < ports; w++ {
				wg.Add(1)
				go func(port int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						m.Lock(port)
						runtime.Gosched() // CS work, as in internal/rtbench
						m.Unlock(port)
						runtime.Gosched()
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkE16KeyedTable measures the keyed lock service: 16 worker
// goroutines locking uniform or zipf-distributed keys striped over a
// 32×4 arena — the many-resources workload class the flat benchmarks
// cannot express. It drives rtbench's exported keyed workload driver, so
// it measures the exact passage shape the BENCH_keyed.json gate records.
// Crash-free with the node pool on, a keyed passage (lease acquisition,
// hashing, recoverable lock, release) allocates nothing.
func BenchmarkE16KeyedTable(b *testing.B) {
	const workers = 16
	for _, zipf := range []bool{false, true} {
		name := "uniform"
		if zipf {
			name = "zipf"
		}
		b.Run(name, func(b *testing.B) {
			tbl := rme.NewLockTable(32, 4, rme.WithNodePool(true), rme.WithTableSeed(1))
			b.ReportAllocs()
			b.ResetTimer()
			rtbench.RunKeyedPassages(tbl, workers, b.N, zipf, 1<<20, false)
		})
	}
}

// BenchmarkE17AsyncBatch measures the keyed table's asynchronous
// pipeline (LockAsync → receive → Grant.Unlock under zipf traffic) and
// the hot-stripe batch amortization pair: sequential-8 locks one
// stripe's keys one at a time, batch-8 covers the same group with one
// DoBatch — per-key ns between those two is the amortization factor the
// BENCH_keyed_async.json gate pins at ≥2x. All three drive rtbench's
// exported runners, so they measure the exact shapes the gate records.
func BenchmarkE17AsyncBatch(b *testing.B) {
	const workers = 8
	b.Run("async_zipf", func(b *testing.B) {
		tbl := rme.NewLockTable(32, 4, rme.WithNodePool(true), rme.WithTableSeed(1))
		defer tbl.Close()
		b.ReportAllocs()
		b.ResetTimer()
		rtbench.RunAsyncKeyedPassages(tbl, 2*workers, b.N, true, 1<<20)
	})
	for _, batch := range []bool{false, true} {
		name := "hot_sequential8"
		if batch {
			name = "hot_batch8"
		}
		b.Run(name, func(b *testing.B) {
			tbl := rme.NewLockTable(32, 4, rme.WithNodePool(true), rme.WithTableSeed(1))
			defer tbl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			rtbench.RunHotKeyedPassages(tbl, workers, b.N, 8, batch, 64)
		})
	}
}
