package rme

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// This file is the system-wide crash tier: Checkpoint serializes a
// LockTable's NVRAM-modeled state to bytes, RestoreTable builds a fresh
// table from those bytes in a new incarnation of the process.
//
// The crash model follows the successor line of the source paper
// ("Constant RMR Recoverable Mutex under System-wide Crashes",
// Jayanti–Jayanti–Joshi 2023): every process dies at once and the system
// restarts, so — unlike the independent-death model the rest of the crash
// machinery exercises — no surviving lessee can run its own fix-up, and
// recovery must be driven entirely from the persistent image. What
// persists is exactly the state the RME model places in NVRAM: the arena
// shape (stripes, per-stripe lock shape, port counts and active bounds),
// every port's epoch-stamped lease word, the key each live tenancy was
// locking, and whether that tenancy held its stripe's critical section.
// Volatile state dies with the process by design: parked waiters, async
// inbox entries, and undelivered grants are all in the dead incarnation's
// memory, so a queued-but-ungranted request is simply lost (its caller
// died too), while a tenancy that had reached a lease — granted or still
// queued on the lock — surfaces as an orphan in the restored table.
//
// Restore advances every port's fencing epoch strictly past the
// checkpointed one, so any lease value that somehow survived the crash
// (a stale PortLease in application state, a fencing token handed to an
// external system) fails its CAS loudly instead of aliasing a new
// tenancy — the same epoch-fencing invariant Resize preserves, extended
// across incarnations. Every non-free tenancy is restored as an orphan
// and healed by the normal two-phase reclaim (claim all, then recover
// concurrently): a tenancy that died holding its critical section is
// re-adopted onto the fresh backend first, so the recovery Lock re-enters
// the CS wait-free and the release wakes whatever queues behind it,
// exactly as for an independent in-CS death. Adoption is
// backend-independent: the restored stripe's lock is fresh and
// uncontended, so a plain Lock(port) during the single-threaded restore
// re-establishes CS ownership on flat, tree, and MCS shapes alike through
// the same portLock surface the rest of the table uses.

// ckptMagic opens every checkpoint; the trailing byte is the format
// generation (bump together with ckptVersion on incompatible changes).
var ckptMagic = []byte("RMECKPT1")

const (
	ckptVersion = 1

	// ckptHeaderLen is magic + version(4) + seed(8) + shards(4) +
	// ports(4) + table backend(1).
	ckptHeaderLen = 8 + 4 + 8 + 4 + 4 + 1
	// ckptStripeHeaderLen is per-stripe backend(1) + active bound(4).
	ckptStripeHeaderLen = 1 + 4
	// ckptPortLen is per-port lease word(8) + key(8) + flags(1).
	ckptPortLen = 8 + 8 + 1

	// ckptFlagInCS marks a port whose tenancy held its stripe's critical
	// section at checkpoint time (portLock.Held); restore re-adopts the CS
	// before orphaning the lease, so reclaim re-enters it wait-free.
	ckptFlagInCS byte = 1 << 0
)

// ErrCheckpointCorrupt is wrapped by every RestoreTable failure caused by
// the bytes themselves — truncation, trailing garbage, a checksum
// mismatch, or structurally impossible values. Option conflicts (a
// WithShardBackend or WithTableSeed contradicting the image) return
// ordinary errors instead: the bytes are fine, the request is not.
var ErrCheckpointCorrupt = errors.New("rme: corrupt checkpoint")

// Checkpoint serializes the table's persistent state — arena shape,
// per-stripe lock shapes and active-port bounds, every port's
// epoch-stamped lease word, tenancy key, and critical-section ownership —
// into a self-describing, versioned, checksummed byte image for
// RestoreTable. The volatile tiers (parked waiters, async inboxes, the
// executor's run queue and workers, undelivered grants) are deliberately
// absent: they model process memory, which a system-wide crash erases.
//
// The image is a crash-consistent snapshot, not a stop-the-world one:
// each port's word is read atomically, but ports are read at slightly
// different times, so an image taken while traffic is still running
// records some interleaving of it. Every such interleaving restores
// soundly (an in-flight tenancy becomes an orphan and is healed), but the
// intended uses are post-mortem — the supervisor of a crashed system
// checkpoints the arena its dead workers left behind — or quiescent
// (periodic snapshots between traffic waves), where the image is exact.
//
// "Quiescent" must be judged by Quiesced(), whose answer covers the
// whole async pipeline: a request is pending from submission until its
// delivery holds a lease, so stripes waiting on the shared executor's
// run queue — and batches a pool worker has swapped but not yet
// delivered — keep the table non-quiescent. A gate that only checked the
// per-stripe inboxes (or the lease words alone) would let a snapshot
// race a scheduled-but-undelivered request: the image would record the
// stripe as free while a grant was still owed, and the post-restore
// table would serve the same key twice. Quiesced()'s pending-then-InUse
// read order is what makes the no-work-in-flight answer exact once
// submitters have stopped — the discipline the snapshot tests lean on.
func (t *LockTable) Checkpoint() ([]byte, error) {
	shards, ports := len(t.shards), t.ports
	buf := make([]byte, 0, ckptHeaderLen+shards*(ckptStripeHeaderLen+ports*ckptPortLen)+4)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, t.seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shards))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ports))
	buf = append(buf, byte(t.backend))
	for i := range t.shards {
		sh := &t.shards[i]
		m := sh.m()
		buf = append(buf, byte(sh.backend.Load()))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(sh.pool.Active()))
		for p := 0; p < ports; p++ {
			w := sh.pool.words[p].Load()
			var flags byte
			if w&leaseStateMask != leaseFree && m.Held(p) {
				flags |= ckptFlagInCS
			}
			buf = binary.LittleEndian.AppendUint64(buf, w)
			buf = binary.LittleEndian.AppendUint64(buf, sh.key[p].Load())
			buf = append(buf, flags)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// ckptStripe is one decoded stripe image.
type ckptStripe struct {
	backend ShardBackend
	active  int
	words   []uint64
	keys    []uint64
	inCS    int // port index holding the CS, or -1
}

// corrupt builds a RestoreTable decode error; every path through it wraps
// ErrCheckpointCorrupt so callers can classify without string-matching.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCheckpointCorrupt, fmt.Sprintf(format, args...))
}

// RestoreTable builds a fresh LockTable from a Checkpoint image — the new
// incarnation after a system-wide crash. The restored table reproduces the
// checkpointed arena exactly (stripe count, port count, table seed, and
// each stripe's lock shape, including shapes the supervisor had migrated
// stripes to), with every fencing epoch strictly advanced and every
// non-free tenancy of the dead incarnation surfaced as an orphan. A
// tenancy that died inside its critical section is re-adopted onto the
// fresh stripe lock, so the stripe stays exclusively held until reclaim
// releases it — no waiter restored or arriving can slip into the CS a dead
// holder still owns.
//
// Run the orphan sweep before serving: either call Reclaim (manually or
// concurrently with the first arrivals — new acquisitions queue behind the
// adopted holders and are granted as recovery releases them), or pass
// WithSupervisor, which a restored table starts with an immediate eager
// sweep instead of waiting out its first interval. Until some sweep runs,
// every stripe that carried an orphan is stalled — that is the system-wide
// model's defining property: no surviving process exists to fix anything
// up, so recovery is the restored incarnation's first job.
//
// Options mean what they mean on NewLockTable, with two restore-specific
// rules: WithTableSeed and WithShardBackend, if given, must agree with the
// image (the seed fixes the key-to-stripe map the checkpointed keys were
// placed under, and the backend is an assertion, not a migration request —
// both mismatches error). Corrupted or truncated bytes return an error
// wrapping ErrCheckpointCorrupt, never panic.
func RestoreTable(data []byte, opts ...Option) (*LockTable, error) {
	if len(data) < ckptHeaderLen+4 {
		return nil, corrupt("image truncated (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, corrupt("checksum mismatch (computed %#x, recorded %#x)", got, want)
	}
	if string(body[:8]) != string(ckptMagic) {
		return nil, corrupt("bad magic %q", body[:8])
	}
	off := 8
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v
	}
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v
	}
	if v := u32(); v != ckptVersion {
		return nil, corrupt("unsupported version %d (have %d)", v, ckptVersion)
	}
	seed := u64()
	shards := int(u32())
	ports := int(u32())
	tableBackend := ShardBackend(body[off])
	off++
	if shards <= 0 || ports <= 0 {
		return nil, corrupt("impossible arena %d shards × %d ports", shards, ports)
	}
	// The exact-length check both rejects truncated/padded images and
	// bounds the allocations below: a forged shard count cannot make us
	// allocate more than the image's own length justifies.
	want := uint64(ckptHeaderLen) + uint64(shards)*(ckptStripeHeaderLen+uint64(ports)*ckptPortLen) + 4
	if uint64(len(data)) != want {
		return nil, corrupt("length %d does not match declared %d×%d arena (want %d)", len(data), shards, ports, want)
	}
	if !validConcreteBackend(tableBackend) {
		return nil, corrupt("invalid table backend %d", int(tableBackend))
	}

	stripes := make([]ckptStripe, shards)
	stripeBackends := make([]ShardBackend, shards)
	orphans := 0
	for i := range stripes {
		st := &stripes[i]
		st.backend = ShardBackend(body[off])
		off++
		if !validConcreteBackend(st.backend) {
			return nil, corrupt("stripe %d: invalid backend %d", i, int(st.backend))
		}
		stripeBackends[i] = st.backend
		st.active = int(u32())
		if st.active < 1 || st.active > ports {
			return nil, corrupt("stripe %d: active bound %d outside [1,%d]", i, st.active, ports)
		}
		st.words = make([]uint64, ports)
		st.keys = make([]uint64, ports)
		st.inCS = -1
		for p := 0; p < ports; p++ {
			st.words[p] = u64()
			st.keys[p] = u64()
			flags := body[off]
			off++
			if flags&^ckptFlagInCS != 0 {
				return nil, corrupt("stripe %d port %d: unknown flags %#x", i, p, flags)
			}
			if st.words[p]&leaseStateMask != leaseFree {
				orphans++
			}
			if flags&ckptFlagInCS != 0 {
				if st.words[p]&leaseStateMask == leaseFree {
					return nil, corrupt("stripe %d port %d: critical section on a free lease", i, p)
				}
				if st.inCS >= 0 {
					// Two CS owners on one stripe cannot be a consistent
					// image (mutual exclusion), and adopting both would
					// deadlock the restore; refuse rather than guess.
					return nil, corrupt("stripe %d: critical section on ports %d and %d", i, st.inCS, p)
				}
				st.inCS = p
			}
		}
	}

	cfg := buildConfig(opts)
	if cfg.seedSet && cfg.seed != seed {
		return nil, fmt.Errorf("rme: RestoreTable: WithTableSeed(%#x) contradicts the checkpointed seed %#x (the seed fixes the key-to-stripe map; omit the option to inherit it)", cfg.seed, seed)
	}
	if cfg.backendSet && cfg.backend.resolve(ports) != tableBackend {
		return nil, fmt.Errorf("rme: RestoreTable: WithShardBackend(%v) contradicts the checkpointed backend %v (restore reproduces the image's shapes; omit the option to inherit them)", cfg.backend.resolve(ports), tableBackend)
	}

	t := newTableArena(shards, ports, seed, tableBackend, cfg, opts, stripeBackends)
	slack := 0
	for i := range stripes {
		st := &stripes[i]
		sh := &t.shards[i]
		if st.active != ports {
			sh.pool.active.Store(int64(st.active))
		}
		slack += ports - st.active
		if st.inCS >= 0 {
			// Adopt the dead holder's critical section before publishing
			// its lease word: the fresh lock is uncontended and the restore
			// is single-threaded, so Lock re-establishes ownership
			// immediately on any backend, and everything that queues later
			// correctly queues behind the orphan.
			sh.m().Lock(st.inCS)
		}
		for p := 0; p < ports; p++ {
			epoch := (st.words[p] >> leaseEpochShift) + 1
			state := leaseFree
			if st.words[p]&leaseStateMask != leaseFree {
				state = leaseOrphaned
				sh.key[p].Store(st.keys[p])
			}
			sh.pool.words[p].Store(epoch<<leaseEpochShift | state)
		}
	}
	// Bank the shrunk stripes' headroom as slack, as the shrink passes
	// that created it did; without the adaptive policy it just sits unused.
	t.slack.Store(int64(slack))
	t.finishInit(cfg, orphans > 0)
	return t, nil
}

// validConcreteBackend reports whether b is a shape a checkpoint may
// record: a concrete backend, never Auto (tables resolve Auto at
// construction, so an image carrying it is corrupt).
func validConcreteBackend(b ShardBackend) bool {
	return b == FlatBackend || b == TreeBackend || b == MCSBackend
}
