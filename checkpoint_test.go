package rme_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
)

// This file pins the Checkpoint/RestoreTable contract in-process: exact
// round-trip of the arena shape and key-to-stripe map, strict epoch
// advancement across the restore, orphan surfacing and healing, the
// mid-migration-quiesce snapshot, option-mismatch rejection, and the
// never-panic decode of corrupted or truncated bytes. The real
// process-boundary proof lives in syscrash_test.go.

// distinctStripeKeys returns n keys mapping to n distinct stripes of tbl,
// so debris tests can place one tenancy per stripe without aliasing.
func distinctStripeKeys(tb testing.TB, tbl *rme.LockTable, n int) []uint64 {
	tb.Helper()
	if n > tbl.Shards() {
		tb.Fatalf("want %d distinct stripes from a %d-stripe table", n, tbl.Shards())
	}
	seen := make(map[int]bool)
	var out []uint64
	for k := uint64(1); len(out) < n; k++ {
		if si := tbl.ShardIndex(k); !seen[si] {
			seen[si] = true
			out = append(out, k)
		}
	}
	return out
}

// mustCheckpoint is Checkpoint with the error folded into the test.
func mustCheckpoint(tb testing.TB, tbl *rme.LockTable) []byte {
	tb.Helper()
	data, err := tbl.Checkpoint()
	if err != nil {
		tb.Fatalf("Checkpoint: %v", err)
	}
	return data
}

// TestCheckpointRoundTripEmpty pins the degenerate image: a table with no
// tenancies restores to an identical arena — same dimensions, same
// backend, same key-to-stripe map — with no orphans, every fencing epoch
// strictly advanced, and a working first passage.
func TestCheckpointRoundTripEmpty(t *testing.T) {
	tbl := rme.NewLockTable(8, 4, rme.WithTableSeed(0xfeed))
	defer tbl.Close()
	data := mustCheckpoint(t, tbl)

	nt, err := rme.RestoreTable(data)
	if err != nil {
		t.Fatalf("RestoreTable: %v", err)
	}
	defer nt.Close()
	if nt.Shards() != tbl.Shards() || nt.Ports() != tbl.Ports() || nt.Backend() != tbl.Backend() {
		t.Fatalf("restored arena %d×%d/%v, want %d×%d/%v",
			nt.Shards(), nt.Ports(), nt.Backend(), tbl.Shards(), tbl.Ports(), tbl.Backend())
	}
	for k := uint64(0); k < 1000; k++ {
		if nt.ShardIndex(k) != tbl.ShardIndex(k) {
			t.Fatalf("key %d moved stripe %d -> %d across restore", k, tbl.ShardIndex(k), nt.ShardIndex(k))
		}
	}
	if n := nt.Orphans(); n != 0 {
		t.Fatalf("empty image restored with %d orphans", n)
	}
	for s := 0; s < nt.Shards(); s++ {
		for p := 0; p < nt.Ports(); p++ {
			if got, old := nt.PortEpoch(s, p), tbl.PortEpoch(s, p); got != old+1 {
				t.Fatalf("stripe %d port %d: epoch %d after restore, want strictly advanced from %d", s, p, got, old)
			}
		}
	}
	nt.Lock(7)
	nt.Unlock(7)
	if !nt.Quiesced() {
		t.Fatal("restored table not quiesced after a clean passage")
	}
}

// TestCheckpointRestoreHealsOrphans builds the three debris shapes a
// system-wide crash strands — a holder dead inside its critical section, a
// worker dead mid-acquisition, and a delivered-but-never-settled async
// grant — checkpoints the wreckage, restores, and proves the normal
// two-phase reclaim heals all of it: correct orphan count, Held preserved
// across the restore, Orphans()==0 after the sweep, epochs advanced, and
// mutual exclusion intact under a post-heal storm. All three backends.
func TestCheckpointRestoreHealsOrphans(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		tbl := rme.NewLockTable(8, 4, rme.WithTableSeed(99), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		keys := distinctStripeKeys(t, tbl, 3)
		keyCS, keyMid, keyGrant := keys[0], keys[1], keys[2]

		var killAll atomic.Bool
		tbl.SetCrashFunc(func(port int, point string) bool { return killAll.Load() })

		// Debris 1: a delivered grant whose requester dies before settling
		// it (no crash needed — the tenancy is simply never released).
		<-tbl.LockAsync(keyGrant)

		// Debris 2: a holder that dies inside Unlock, mid-release.
		tbl.Lock(keyCS)
		killAll.Store(true)
		if absorbCrash(func() { tbl.Unlock(keyCS) }) {
			t.Fatal("Unlock survived CrashAll")
		}

		// Debris 3: a worker that dies at its first acquisition step.
		if absorbCrash(func() { tbl.Lock(keyMid) }) {
			t.Fatal("Lock survived CrashAll")
		}

		heldCS, heldGrant := tbl.Held(keyCS), tbl.Held(keyGrant)
		if !heldGrant {
			t.Fatal("delivered grant's key not Held before checkpoint")
		}
		data := mustCheckpoint(t, tbl)
		oldEpoch := func(k uint64) uint64 {
			si := tbl.ShardIndex(k)
			var max uint64
			for p := 0; p < tbl.Ports(); p++ {
				if e := tbl.PortEpoch(si, p); e > max {
					max = e
				}
			}
			return max
		}
		epCS := oldEpoch(keyCS)
		tbl.Close() // the dead incarnation

		nt, err := rme.RestoreTable(data)
		if err != nil {
			t.Fatalf("RestoreTable: %v", err)
		}
		defer nt.Close()
		if got := nt.Orphans(); got != 3 {
			t.Fatalf("restored with %d orphans, want 3", got)
		}
		if nt.Held(keyCS) != heldCS || nt.Held(keyGrant) != heldGrant {
			t.Fatalf("Held not preserved: keyCS %v->%v, keyGrant %v->%v",
				heldCS, nt.Held(keyCS), heldGrant, nt.Held(keyGrant))
		}
		// Every fencing epoch on the dead holder's stripe is strictly past
		// the checkpointed image's.
		siCS := nt.ShardIndex(keyCS)
		for p := 0; p < nt.Ports(); p++ {
			if e := nt.PortEpoch(siCS, p); e <= epCS && nt.PortLeaseState(siCS, p) != rme.LeaseFree {
				t.Fatalf("stripe %d port %d: epoch %d not advanced past checkpointed max %d", siCS, p, e, epCS)
			}
		}

		// The restored incarnation's first job: sweep. Reclaim reports all
		// three, then the arena is fully clean.
		if n := nt.Reclaim(); n != 3 {
			t.Fatalf("Reclaim healed %d orphans, want 3", n)
		}
		if n := nt.Orphans(); n != 0 {
			t.Fatalf("%d orphans after reclaim", n)
		}
		if !nt.Quiesced() {
			t.Fatal("restored table not quiesced after reclaim")
		}

		// Mutual-exclusion referee over the healed arena, hitting the
		// previously-stranded keys hardest: no double grant, no lost grant.
		const workers = 8
		const iters = 200
		inside := make(map[uint64]*atomic.Int32)
		for _, k := range keys {
			inside[k] = &atomic.Int32{}
		}
		var done atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					k := keys[(w+i)%len(keys)]
					nt.Lock(k)
					if inside[k].Add(1) != 1 {
						t.Errorf("two holders of key %d after restore", k)
					}
					inside[k].Add(-1)
					nt.Unlock(k)
					done.Add(1)
				}
			}(w)
		}
		wg.Wait()
		if got := done.Load(); got != workers*iters {
			t.Fatalf("%d of %d passages completed after restore", got, workers*iters)
		}
	})
}

// TestCheckpointMidMigrationQuiesce snapshots a table while a stripe's
// migration barrier is closed and draining — the gate half-way state PR 8
// introduced — and proves the image restores to a sane arena: the stripe
// keeps its pre-swap shape (the migration never happened in the image),
// the gate is open, and the held tenancy that was blocking the drain
// surfaces as a reclaimable orphan.
func TestCheckpointMidMigrationQuiesce(t *testing.T) {
	tbl := rme.NewLockTable(4, 4, rme.WithTableSeed(41), rme.WithShardBackend(rme.FlatBackend))
	defer tbl.Close()
	key := distinctStripeKeys(t, tbl, 1)[0]
	si := tbl.ShardIndex(key)

	// A live holder keeps the stripe from draining, so the migration's
	// quiesce barrier stays closed until we let go.
	tbl.Lock(key)
	migDone := make(chan bool, 1)
	go func() { migDone <- tbl.ForceMigrate(si, rme.TreeBackend, 5*time.Second) }()
	deadline := time.Now().Add(2 * time.Second)
	for !tbl.GateClosed(si) {
		if time.Now().After(deadline) {
			t.Fatal("migration barrier never closed")
		}
		time.Sleep(100 * time.Microsecond)
	}

	data := mustCheckpoint(t, tbl)
	tbl.Unlock(key)
	<-migDone // let the migration finish (or time out) before Close

	nt, err := rme.RestoreTable(data)
	if err != nil {
		t.Fatalf("RestoreTable of mid-quiesce image: %v", err)
	}
	defer nt.Close()
	if got := nt.ShardBackendOf(si); got != rme.FlatBackend {
		t.Fatalf("mid-quiesce image restored stripe as %v; the swap had not happened, want flat", got)
	}
	if nt.GateClosed(si) {
		t.Fatal("restored stripe's migration gate is closed; gates are volatile state")
	}
	if got := nt.Orphans(); got != 1 {
		t.Fatalf("restored with %d orphans, want the one draining holder", got)
	}
	if !nt.Held(key) {
		t.Fatal("the holder blocking the drain was in its CS; restored image lost it")
	}
	if n := nt.Reclaim(); n != 1 {
		t.Fatalf("Reclaim healed %d, want 1", n)
	}
	nt.Lock(key)
	nt.Unlock(key)
	if !nt.Quiesced() {
		t.Fatal("restored table not quiesced")
	}
}

// TestCheckpointRestoreOptionMismatch pins the two restore-specific option
// rules: an explicit WithShardBackend or WithTableSeed that contradicts
// the image errors (and a matching or Auto-resolving one does not). The
// bytes are valid in every case, so none of these wrap
// ErrCheckpointCorrupt.
func TestCheckpointRestoreOptionMismatch(t *testing.T) {
	tbl := rme.NewLockTable(4, 4, rme.WithTableSeed(7), rme.WithShardBackend(rme.FlatBackend))
	defer tbl.Close()
	data := mustCheckpoint(t, tbl)

	if _, err := rme.RestoreTable(data, rme.WithShardBackend(rme.TreeBackend)); err == nil {
		t.Fatal("restore with a contradicting WithShardBackend succeeded")
	} else if errors.Is(err, rme.ErrCheckpointCorrupt) {
		t.Fatalf("option mismatch misclassified as corruption: %v", err)
	}
	if _, err := rme.RestoreTable(data, rme.WithTableSeed(8)); err == nil {
		t.Fatal("restore with a contradicting WithTableSeed succeeded")
	} else if errors.Is(err, rme.ErrCheckpointCorrupt) {
		t.Fatalf("option mismatch misclassified as corruption: %v", err)
	}
	for _, ok := range []struct {
		name string
		opts []rme.Option
	}{
		{"matching backend", []rme.Option{rme.WithShardBackend(rme.FlatBackend)}},
		{"auto resolving to the image's shape", []rme.Option{rme.WithShardBackend(rme.AutoBackend)}},
		{"matching seed", []rme.Option{rme.WithTableSeed(7)}},
	} {
		nt, err := rme.RestoreTable(data, ok.opts...)
		if err != nil {
			t.Fatalf("%s: %v", ok.name, err)
		}
		nt.Close()
	}
}

// TestCheckpointCorruptBytes feeds RestoreTable every way bytes go bad —
// nil, empty, truncated at every prefix length, padded with trailing
// garbage, and each byte flipped in turn — and requires an error wrapping
// ErrCheckpointCorrupt every time, never a panic (the test harness turns
// any panic into a failure).
func TestCheckpointCorruptBytes(t *testing.T) {
	tbl := rme.NewLockTable(2, 2, rme.WithTableSeed(3))
	defer tbl.Close()
	tbl.Lock(1) // some non-trivial state in the image
	data := mustCheckpoint(t, tbl)
	tbl.Unlock(1)

	mustReject := func(name string, b []byte) {
		t.Helper()
		nt, err := rme.RestoreTable(b)
		if err == nil {
			nt.Close()
			t.Fatalf("%s: restore succeeded", name)
		}
		if !errors.Is(err, rme.ErrCheckpointCorrupt) {
			t.Fatalf("%s: error does not wrap ErrCheckpointCorrupt: %v", name, err)
		}
	}
	mustReject("nil", nil)
	mustReject("empty", []byte{})
	for n := 0; n < len(data); n++ {
		mustReject("truncated", data[:n:n])
	}
	mustReject("trailing garbage", append(append([]byte{}, data...), 0))
	for i := 0; i < len(data); i++ {
		mut := append([]byte{}, data...)
		mut[i] ^= 0xff
		mustReject("byte flipped", mut)
	}
}

// TestCheckpointRestoreSupervisorEagerSweep proves the restore-triggered
// sweep: a supervised restore of an image carrying orphans heals them
// immediately, even with the supervisor's interval set far beyond the test
// deadline — only the eager first tick can have done it.
func TestCheckpointRestoreSupervisorEagerSweep(t *testing.T) {
	tbl := rme.NewLockTable(4, 4, rme.WithTableSeed(13))
	key := distinctStripeKeys(t, tbl, 1)[0]
	var killAll atomic.Bool
	tbl.SetCrashFunc(func(port int, point string) bool { return killAll.Load() })
	tbl.Lock(key)
	killAll.Store(true)
	if absorbCrash(func() { tbl.Unlock(key) }) {
		t.Fatal("Unlock survived CrashAll")
	}
	data := mustCheckpoint(t, tbl)
	tbl.Close()

	nt, err := rme.RestoreTable(data, rme.WithSupervisor(rme.SupervisorConfig{Interval: time.Hour}))
	if err != nil {
		t.Fatalf("RestoreTable: %v", err)
	}
	defer nt.Close()
	waitQuiesced(t, nt, 5*time.Second)
	// The healed stripe serves immediately.
	nt.Lock(key)
	nt.Unlock(key)
}
