// Command rmebench regenerates the paper-reproduction experiment tables
// recorded in EXPERIMENTS.md, and benchmarks the runtime lock stack across
// the wait-strategy × node-pool matrix. Experiment runs (E1–E11) are
// deterministic; the runtime benchmarks (-json, -compare) are wall-clock
// and hardware-dependent.
//
// Usage:
//
//	rmebench                          # run every experiment
//	rmebench -exp E5                  # run one experiment (E1..E11)
//	rmebench -list                    # list experiments
//	rmebench -md                      # emit EXPERIMENTS.md to stdout
//	rmebench -json                    # benchmark the runtime lock, write BENCH_<scenario>.json
//	rmebench -json -stats             # also dump each keyed cell's TableStats to STATS_<scenario>.json
//	rmebench -compare BENCH_x.json    # re-run x's scenarios, fail on regression vs the file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/experiments"
	"github.com/rmelib/rme/internal/rtbench"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (E1..E11); empty = all")
		list     = flag.Bool("list", false, "list experiments and exit")
		md       = flag.Bool("md", false, "emit EXPERIMENTS.md markdown to stdout")
		jsonOut  = flag.Bool("json", false, "benchmark the runtime lock per wait strategy and write BENCH_<scenario>.json files")
		outDir   = flag.String("outdir", ".", "directory for the BENCH_<scenario>.json files")
		scenario = flag.String("scenario", "", "with -json: run only these comma-separated scenarios (uncontended, contended8, oversubscribed, tree, tree_oversubscribed, keyed_uniform, keyed_zipf, keyed_crash, keyed_abort, keyed_abort_tree, keyed_abort_mcs, keyed_async, keyed_manyshards, keyed_adaptive, keyed_hot8, keyed_batch, keyed_hiport, keyed_tree, keyed_mcs, keyed_syscrash, keyed_syscrash_1m); scenarios sharing a BENCH file should be regenerated together")
		backend  = flag.String("backend", "", "with -json: force every keyed scenario onto this shard backend (flat, tree, mcs, auto; case-insensitive) instead of each scenario's own — for ad-hoc backend comparisons; leave unset when regenerating committed baselines")
		stats    = flag.Bool("stats", false, "with -json: capture each keyed cell's post-run TableStats snapshot (per-stripe counters, backends, active ports, supervisor activity) and write STATS_<file>.json alongside the BENCH files; the snapshots are stripped from the BENCH files themselves, which record only gate-comparable samples")
		compare  = flag.String("compare", "", "comma-separated baseline BENCH_<scenario>.json files: re-run their scenarios and exit non-zero on regression")
		tol      = flag.Float64("tol", 0.20, "with -compare: allowed fractional ns/op increase before it counts as a regression")
	)
	flag.Parse()

	if *compare != "" {
		if err := runCompare(strings.Split(*compare, ","), *tol); err != nil {
			fmt.Fprintf(os.Stderr, "rmebench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		if err := runRuntimeBench(*outDir, *scenario, *backend, *stats); err != nil {
			fmt.Fprintf(os.Stderr, "rmebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *backend != "" {
		fmt.Fprintln(os.Stderr, "rmebench: -backend is only meaningful with -json")
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "rmebench: -stats is only meaningful with -json")
		os.Exit(1)
	}

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	if *md {
		if failed := emitMarkdown(all); failed > 0 {
			fmt.Fprintf(os.Stderr, "rmebench: %d experiment(s) failed\n", failed)
			os.Exit(1)
		}
		return
	}

	failed := 0
	ran := 0
	for _, r := range all {
		if *exp != "" && !strings.EqualFold(*exp, r.ID) {
			continue
		}
		ran++
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		res := r.Run()
		for _, tb := range res.Tables {
			fmt.Println(tb)
		}
		for _, n := range res.Notes {
			fmt.Printf("  %s\n", n)
		}
		if res.Err != nil {
			fmt.Printf("  FAILED: %v\n", res.Err)
			failed++
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rmebench: no experiment matches -exp %q (try -list)\n", *exp)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "rmebench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func printSample(s rtbench.Sample) {
	fmt.Fprintf(os.Stderr, "  %-9s pool=%-5v %12.1f ns/op %7.3f allocs/op %8.2f wakes/op",
		s.Strategy, s.Pool, s.NsPerOp, s.AllocsPerOp, s.WakesPerOp)
	if len(s.LevelWakesPerOp) > 0 {
		fmt.Fprintf(os.Stderr, "  levels[")
		for i, w := range s.LevelWakesPerOp {
			if i > 0 {
				fmt.Fprintf(os.Stderr, " ")
			}
			fmt.Fprintf(os.Stderr, "%.2f", w)
		}
		fmt.Fprintf(os.Stderr, "]")
	}
	fmt.Fprintln(os.Stderr)
}

// runRuntimeBench measures the strategy × pool matrix and writes one
// BENCH_<file>.json per scenario file group (the two tree scenarios share
// BENCH_tree.json, the keyed backend pair BENCH_keyed_tree.json). A
// non-empty backendName overrides every keyed scenario's shard backend —
// the ad-hoc comparison mode; committed baselines are regenerated with
// each scenario's own backend. With collectStats the keyed cells'
// post-run TableStats snapshots are split into STATS_<file>.json files
// and stripped from the BENCH samples, so the committed baselines stay
// free of point-in-time diagnostic state.
func runRuntimeBench(outDir, only, backendName string, collectStats bool) error {
	// Fail on an unwritable destination before burning benchmark time.
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	// Validate the whole request before burning benchmark time: every
	// scenario name must exist (a typo in a comma-separated list would
	// otherwise silently regenerate a shared BENCH file with only half
	// its scenario group), and the backend override must parse.
	known := make(map[string]bool)
	var names []string
	for _, sc := range rtbench.Scenarios() {
		known[strings.ToLower(sc.Name)] = true
		names = append(names, sc.Name)
	}
	want := make(map[string]bool)
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			name = strings.ToLower(strings.TrimSpace(name))
			if !known[name] {
				return fmt.Errorf("no scenario matches -scenario %q (have: %s)", name, strings.Join(names, ", "))
			}
			want[name] = true
		}
	}
	backend := rme.AutoBackend
	if backendName != "" {
		var err error
		if backend, err = rtbench.ParseBackend(backendName); err != nil {
			return err
		}
	}
	rtbench.CollectStats = collectStats
	var fileOrder []string
	byFile := make(map[string][]rtbench.Sample)
	statsByFile := make(map[string][]statsEntry)
	for _, sc := range rtbench.Scenarios() {
		if only != "" && !want[strings.ToLower(sc.Name)] {
			continue
		}
		if backendName != "" && sc.Keyed {
			sc.Backend = backend
		}
		fmt.Fprintf(os.Stderr, "benchmarking %s (%d ports)...\n", sc.Name, sc.Ports())
		samples := rtbench.RunScenario(sc)
		for _, s := range samples {
			printSample(s)
		}
		f := sc.FileName()
		if _, ok := byFile[f]; !ok {
			fileOrder = append(fileOrder, f)
		}
		for i := range samples {
			// Split the diagnostic snapshot out of the gate baseline: the
			// BENCH file records only the comparable numbers, STATS_<f>
			// the per-stripe state the cell ended in.
			if samples[i].TableStats != nil {
				statsByFile[f] = append(statsByFile[f], statsEntry{
					Scenario: samples[i].Scenario,
					Strategy: samples[i].Strategy,
					Pool:     samples[i].Pool,
					Stats:    samples[i].TableStats,
				})
				samples[i].TableStats = nil
			}
		}
		byFile[f] = append(byFile[f], samples...)
	}
	for _, f := range fileOrder {
		buf, err := json.MarshalIndent(byFile[f], "", "  ")
		if err != nil {
			return err
		}
		path := fmt.Sprintf("%s/BENCH_%s.json", outDir, f)
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		if entries := statsByFile[f]; len(entries) > 0 {
			buf, err := json.MarshalIndent(entries, "", "  ")
			if err != nil {
				return err
			}
			path := fmt.Sprintf("%s/STATS_%s.json", outDir, f)
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	return nil
}

// statsEntry is one keyed cell's post-run TableStats snapshot in a
// STATS_<file>.json dump, keyed the same way compare keys cells.
type statsEntry struct {
	Scenario string          `json:"scenario"`
	Strategy string          `json:"strategy"`
	Pool     bool            `json:"pool"`
	Stats    *rme.TableStats `json:"table_stats"`
}

// cellKey identifies one matrix cell across baseline and fresh runs.
type cellKey struct {
	Scenario string
	Strategy string
	Pool     bool
}

// compareCell judges one fresh sample against its baseline: "ok", or the
// regression verdict. Allocations gate machine-independently; ns/op only
// against a baseline recorded at the same GOMAXPROCS. A baseline cell
// flagged AllocExempt (the syscrash rounds, whose allocations are arena
// construction by design) is gated on ns/op only.
func compareCell(b, s rtbench.Sample, tol float64) string {
	const allocEps = 0.01
	if !b.AllocExempt && s.AllocsPerOp > b.AllocsPerOp+allocEps {
		return "ALLOCS REGRESSION"
	}
	if s.GOMAXPROCS == b.GOMAXPROCS && s.NsPerOp > b.NsPerOp*(1+tol) {
		return "NS/OP REGRESSION"
	}
	return "ok"
}

// runCompare re-runs every scenario recorded in the given baseline files
// and fails (non-nil error) on a performance regression against them:
//
//   - allocs/op may not increase (beyond a 0.01 rounding epsilon) — this
//     is the machine-independent zero-allocation gate; cells whose baseline
//     carries the AllocExempt flag skip it (their allocations are by-design
//     construction work, not leaks) and gate on ns/op alone;
//   - ns/op may not increase by more than tol, compared only when the
//     baseline was recorded at the same GOMAXPROCS (wall-clock numbers
//     from a different core count are not comparable).
//
// A scenario with cells over budget is re-run (up to two retries), and a
// cell passes if any attempt passes: yield-heavy contended cells on a
// busy host jitter past any reasonable tolerance in single runs, and a
// transient scheduler hiccup must not fail the gate — while a real
// regression fails every attempt and still trips it.
//
// Cells present on only one side (e.g. the pure-spin strategy, which is
// auto-skipped when ports exceed GOMAXPROCS) are reported and skipped.
func runCompare(files []string, tol float64) error {
	baseline := make(map[cellKey]rtbench.Sample)
	wantScenario := make(map[string]bool)
	for _, f := range files {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		buf, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var samples []rtbench.Sample
		if err := json.Unmarshal(buf, &samples); err != nil {
			return fmt.Errorf("%s: %v", f, err)
		}
		for _, s := range samples {
			baseline[cellKey{s.Scenario, s.Strategy, s.Pool}] = s
			wantScenario[s.Scenario] = true
		}
	}
	if len(baseline) == 0 {
		return fmt.Errorf("no baseline samples in %s", strings.Join(files, ","))
	}

	const maxAttempts = 3
	regressions := 0
	compared := make(map[cellKey]bool)
	for _, sc := range rtbench.Scenarios() {
		if !wantScenario[sc.Name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "comparing %s (%d ports)...\n", sc.Name, sc.Ports())
		// failed holds the cells that have not passed in any attempt yet;
		// retries re-measure exactly those cells, not the whole scenario.
		var failed map[cellKey]string
		for attempt := 1; attempt <= maxAttempts; attempt++ {
			var samples []rtbench.Sample
			if attempt == 1 {
				samples = rtbench.RunScenario(sc)
			} else {
				for key := range failed {
					samples = append(samples, rtbench.Run(sc, key.Strategy, key.Pool))
				}
			}
			failed = make(map[cellKey]string)
			for _, s := range samples {
				key := cellKey{s.Scenario, s.Strategy, s.Pool}
				b, ok := baseline[key]
				if !ok {
					if attempt == 1 {
						fmt.Fprintf(os.Stderr, "  %-9s pool=%-5v no baseline cell; skipped\n", s.Strategy, s.Pool)
					}
					continue
				}
				compared[key] = true
				verdict := compareCell(b, s, tol)
				nsNote := "ns not compared (GOMAXPROCS differs)"
				if s.GOMAXPROCS == b.GOMAXPROCS {
					nsNote = fmt.Sprintf("ns %+.1f%%", 100*(s.NsPerOp-b.NsPerOp)/b.NsPerOp)
				}
				fmt.Fprintf(os.Stderr, "  %-9s pool=%-5v allocs %.3f -> %.3f, %s: %s\n",
					s.Strategy, s.Pool, b.AllocsPerOp, s.AllocsPerOp, nsNote, verdict)
				if verdict != "ok" {
					failed[key] = verdict
				}
			}
			if len(failed) == 0 {
				break
			}
			if attempt < maxAttempts {
				fmt.Fprintf(os.Stderr, "  %d cell(s) over budget; re-running %s (attempt %d/%d)\n",
					len(failed), sc.Name, attempt+1, maxAttempts)
			}
		}
		regressions += len(failed)
	}
	for key := range baseline {
		if !compared[key] {
			fmt.Fprintf(os.Stderr, "  baseline cell %s/%s/pool=%v not produced by this host; skipped\n",
				key.Scenario, key.Strategy, key.Pool)
		}
	}
	if len(compared) == 0 {
		// A gate that compares nothing must not pass: this catches renamed
		// scenarios (or stale baselines) silently disabling the check.
		return fmt.Errorf("no baseline cell was re-run (scenario names stale?)")
	}
	if regressions > 0 {
		return fmt.Errorf("%d cell(s) regressed vs baseline", regressions)
	}
	fmt.Fprintln(os.Stderr, "no regressions")
	return nil
}

// emitMarkdown prints the full EXPERIMENTS.md document: every experiment's
// tables and notes, fenced, with a trailer describing the runtime
// benchmark JSON files. It returns the number of failed experiments so a
// regression cannot silently land inside a regenerated document.
func emitMarkdown(all []experiments.Runner) (failed int) {
	fmt.Println("# EXPERIMENTS — paper-reproduction artifact tables")
	fmt.Println()
	fmt.Println("Generated by `go run ./cmd/rmebench -md > EXPERIMENTS.md`. Every")
	fmt.Println("experiment is deterministic (fixed seeds, fixed schedules), so this")
	fmt.Println("file is reproducible bit-for-bit; regenerate it whenever the")
	fmt.Println("simulator or the algorithms under it change. The RMR counts come")
	fmt.Println("from the internal/memsim cost model (CC and DSM), which is the")
	fmt.Println("paper's own metric — wall-clock performance of the runtime lock is")
	fmt.Println("benchmarked separately (see the trailer).")
	fmt.Println()
	for _, r := range all {
		res := r.Run()
		fmt.Printf("## %s: %s\n\n", res.ID, res.Title)
		fmt.Println("```")
		for _, tb := range res.Tables {
			fmt.Println(tb)
		}
		for _, n := range res.Notes {
			fmt.Printf("  %s\n", n)
		}
		if res.Err != nil {
			fmt.Printf("  FAILED: %v\n", res.Err)
			failed++
		}
		fmt.Println("```")
		fmt.Println()
	}
	fmt.Println("## E12+: runtime lock benchmarks")
	fmt.Println()
	fmt.Println("The runtime port's wall-clock numbers (ns/op, allocs/op, and the")
	fmt.Println("wait engine's RMR-proxy counters) are not reproduced here because")
	fmt.Println("they depend on the host. Generate them with:")
	fmt.Println()
	fmt.Println("    go run ./cmd/rmebench -json")
	fmt.Println()
	fmt.Println("which writes `BENCH_<scenario>.json` per workload shape")
	fmt.Println("(uncontended, contended8, oversubscribed for the flat lock;")
	fmt.Println("BENCH_tree.json for the arbitration tree, contended and")
	fmt.Println("oversubscribed, with per-level wake counters; BENCH_keyed.json")
	fmt.Println("for the keyed LockTable under uniform and zipf key traffic;")
	fmt.Println("BENCH_keyed_async.json for the table's asynchronous pipeline —")
	fmt.Println("keyed_async is the LockAsync completion passage;")
	fmt.Println("BENCH_keyed_pooled.json for the shared dispatcher runtime at")
	fmt.Println("many-stripe scale — keyed_manyshards runs the same async")
	fmt.Println("pipeline over a 512-stripe × 16-port arena with the executor")
	fmt.Println("pool pinned to 8 workers (WithDispatcherPool), and each cell's")
	fmt.Println("`goroutines` field records the live goroutine count after the")
	fmt.Println("measured pass: a pool-sized figure on a 512-stripe table, which")
	fmt.Println("is the bounded-footprint claim committed as a number (the old")
	fmt.Println("per-stripe dispatcher design would have parked 512 goroutines")
	fmt.Println("before the first request moved); the cell is alloc-exempt")
	fmt.Println("because an arena that large fills its 8192 per-port wait-node")
	fmt.Println("pools lazily across the whole run — run-queue scheduling")
	fmt.Println("itself allocates nothing, which the keyed_async gate pins at")
	fmt.Println("0.000 — so the gate pins its ns/op; and the")
	fmt.Println("keyed_hot8 / keyed_batch pair prices one stripe's keys locked")
	fmt.Println("one-by-one against the same groups under DoBatch, per-key ns/op")
	fmt.Println("in both so the batch amortization factor reads directly off the")
	fmt.Println("file (≥2x on the committed baselines);")
	fmt.Println("BENCH_keyed_tree.json and BENCH_keyed_mcs.json for the")
	fmt.Println("three-way shard-backend showdown — keyed_hiport, keyed_tree,")
	fmt.Println("and keyed_mcs run one identical 64-port-per-stripe workload on")
	fmt.Println("flat, arbitration-tree, and recoverable-MCS shards, so the")
	fmt.Println("tree's per-level handoff cost and the MCS queue's single-wake")
	fmt.Println("O(1) handoff at big k are committed numbers (on the committed")
	fmt.Println("run the tree pays ~4x flat's wakes per passage while MCS stays")
	fmt.Println("at ~1 wake per passage, below flat's broadcast); plus")
	fmt.Println("BENCH_keyed_crash.json for the table under a deterministic")
	fmt.Println("crash mix, kept out of the allocation gate because recovery")
	fmt.Println("allocations are schedule-dependent;")
	fmt.Println("and BENCH_syscrash.json for the system-wide crash tier —")
	fmt.Println("keyed_syscrash and keyed_syscrash_1m each measure whole")
	fmt.Println("crash/checkpoint/restore rounds at 1e5- and 1e6-key scale, with")
	fmt.Println("ns/op defined as time-to-first-grant after the crash and the")
	fmt.Println("full-heal time and checkpoint size recorded alongside; the cells")
	fmt.Println("are alloc-exempt, so the gate pins recovery latency, not the")
	fmt.Println("restore's by-design arena construction) across the wait-strategy ×")
	fmt.Println("node-pool matrix. With the generation-stamped wait engine and the")
	fmt.Println("node pool on, every crash-free passage — flat, tree, or keyed,")
	fmt.Println("sync, async, or batched, contended or not, under any strategy —")
	fmt.Println("is allocation-free, and")
	fmt.Println()
	fmt.Println("    go run ./cmd/rmebench -compare BENCH_<scenario>.json")
	fmt.Println()
	fmt.Println("re-runs the recorded scenarios and exits non-zero if allocs/op")
	fmt.Println("rose at all or ns/op rose past the -tol threshold on a comparable")
	fmt.Println("host (CI runs this as a smoke gate). `go test -bench . -benchmem`")
	fmt.Println("runs the same workloads as standard Go benchmarks (E12–E18).")
	fmt.Println()
	fmt.Println("The syscrash cells are worth reading against the successor paper's")
	fmt.Println("claim (constant-RMR recoverable mutual exclusion under system-wide")
	fmt.Println("crashes in O(1) persistent space per process): what Checkpoint")
	fmt.Println("persists is exactly the arena — one lease word, key, and CS bit per")
	fmt.Println("port — and nothing per process, waiter, or request, so the committed")
	fmt.Println("image grows only with shards×ports and not with the keyspace (the")
	fmt.Println("1e6-key cell's image is bigger than the 1e5-key cell's only because")
	fmt.Println("its arena is 8x larger; another decade of keys at the same arena")
	fmt.Println("would cost zero additional bytes). Recovery time after the crash")
	fmt.Println("tracks the number of dead tenancies, not the keyspace either:")
	fmt.Println("time-to-first-grant and full-heal land within a few percent of each")
	fmt.Println("other on the committed run because the two-phase sweep recovers the")
	fmt.Println("dead stripes concurrently, which is the library-level analogue of")
	fmt.Println("the paper's per-process O(1) recovery work.")
	return failed
}
