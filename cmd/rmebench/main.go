// Command rmebench regenerates the paper-reproduction experiment tables
// recorded in EXPERIMENTS.md. Every run is deterministic.
//
// Usage:
//
//	rmebench            # run every experiment
//	rmebench -exp E5    # run one experiment (E1..E11)
//	rmebench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/rmelib/rme/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment id to run (E1..E11); empty = all")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	failed := 0
	for _, r := range all {
		if *exp != "" && !strings.EqualFold(*exp, r.ID) {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		res := r.Run()
		for _, tb := range res.Tables {
			fmt.Println(tb)
		}
		for _, n := range res.Notes {
			fmt.Printf("  %s\n", n)
		}
		if res.Err != nil {
			fmt.Printf("  FAILED: %v\n", res.Err)
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "rmebench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
