// Command rmecheck machine-checks the algorithm's correctness properties:
// randomized crash-heavy schedules with the Appendix C invariant subset
// evaluated after every step, over a grid of port counts and seeds.
//
// Usage:
//
//	rmecheck                      # default grid
//	rmecheck -k 8 -seeds 50       # one port count, more seeds
//	rmecheck -crashes 100 -v      # heavier crash storms, verbose
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rmelib/rme/internal/core"
	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/xrand"
)

func main() {
	var (
		kFlag    = flag.Int("k", 0, "port count to check (0 = grid {2,3,4,8,16})")
		seeds    = flag.Int("seeds", 20, "random schedules per configuration")
		crashes  = flag.Int("crashes", 40, "crash budget per run")
		passages = flag.Uint64("passages", 8, "passages each process must complete")
		verbose  = flag.Bool("v", false, "print per-run statistics")
	)
	flag.Parse()

	grid := []int{2, 3, 4, 8, 16}
	if *kFlag > 0 {
		grid = []int{*kFlag}
	}

	totalRuns, totalSteps, totalCrashes, violations := 0, uint64(0), uint64(0), 0
	for _, k := range grid {
		for seed := 0; seed < *seeds; seed++ {
			mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: k})
			sh := core.NewShared(mem, core.Config{Ports: k})
			procs := make([]*core.Proc, k)
			sp := make([]sched.Proc, k)
			for i := range procs {
				procs[i] = core.NewProc(sh, i, i, 1)
				sp[i] = procs[i]
			}
			ck := core.NewChecker(sh, procs)
			rng := xrand.New(uint64(seed)*6151 + uint64(k))
			var fail error
			r := &sched.Runner{
				Procs: sp,
				Sched: sched.Random{Src: rng},
				Crash: &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 40, Budget: *crashes},
				OnStep: func(sched.StepEvent) {
					if fail == nil {
						fail = ck.Check()
					}
				},
				StopWhen: sched.AllPassagesAtLeast(sp, *passages),
				MaxSteps: 1 << 26,
			}
			if err := r.Run(); err != nil {
				fmt.Fprintf(os.Stderr, "rmecheck: k=%d seed=%d wedged: %v\n", k, seed, err)
				violations++
				continue
			}
			totalRuns++
			totalSteps += r.Steps()
			totalCrashes += r.TotalCrashes()
			if fail != nil {
				violations++
				fmt.Fprintf(os.Stderr, "rmecheck: k=%d seed=%d INVARIANT VIOLATION: %v\n", k, seed, fail)
			} else if *verbose {
				fmt.Printf("k=%d seed=%d: ok (%d steps, %d crashes)\n", k, seed, r.Steps(), r.TotalCrashes())
			}
		}
	}
	fmt.Printf("rmecheck: %d runs, %d steps checked, %d crashes injected, %d violations\n",
		totalRuns, totalSteps, totalCrashes, violations)
	if violations > 0 {
		os.Exit(1)
	}
}
