// Command rmetrace prints the paper's discrete artifacts as step-by-step
// traces:
//
//	rmetrace -figure5      # the Figure 5 queue-repair walkthrough
//	rmetrace -scenario1    # Appendix A.1: Golab–Hendler Recover deadlock
//	rmetrace -scenario2    # Appendix A.2: Golab–Hendler starvation
//
// With no flags it prints all three.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rmelib/rme/internal/experiments"
	"github.com/rmelib/rme/internal/ghrepro"
)

func main() {
	var (
		fig5 = flag.Bool("figure5", false, "print the Figure 5 walkthrough")
		sc1  = flag.Bool("scenario1", false, "print Appendix A Scenario 1")
		sc2  = flag.Bool("scenario2", false, "print Appendix A Scenario 2")
	)
	flag.Parse()
	all := !*fig5 && !*sc1 && !*sc2

	exit := 0
	if *fig5 || all {
		fmt.Println("Figure 5: queue repair after crashes (π1,π3,π5 at line 14; π7,π8 at line 13)")
		states, err := experiments.Figure5States()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure5: %v\n", err)
			exit = 1
		}
		for _, s := range states {
			fmt.Println("  " + s)
		}
		fmt.Println()
	}
	if *sc1 || all {
		fmt.Println("Appendix A, Scenario 1 (Golab–Hendler deadlock in Recover):")
		out, err := ghrepro.RunScenario1(200_000)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario1: %v\n", err)
			exit = 1
		} else {
			fmt.Printf("  P2 and P4 both crashed between FAS and prev-write, recovered, and entered IsLinkedTo.\n")
			fmt.Printf("  P2 waits on lnodes[%d].prev; P4 waits on lnodes[%d].prev.\n", out.P2Waits, out.P4Waits)
			fmt.Printf("  deadlocked (no progress in %d steps): %v\n", out.Steps, out.Deadlocked)
		}
		fmt.Println()
	}
	if *sc2 || all {
		fmt.Println("Appendix A, Scenario 2 (Golab–Hendler starvation):")
		out, err := ghrepro.RunScenario2(400_000)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario2: %v\n", err)
			exit = 1
		} else {
			fmt.Printf("  stale repair gave P2 and P6 the same predecessor (P5): %v\n", out.DuplicatePredecessor)
			fmt.Printf("  queue drained through P0..P5: %v\n", out.Drained)
			fmt.Printf("  P6 starved forever: %v\n", out.P6Starved)
		}
		fmt.Println()
	}
	os.Exit(exit)
}
