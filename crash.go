package rme

import "fmt"

// CrashFunc decides whether the calling goroutine should "crash" (abandon
// the protocol, losing its local state) at a labeled algorithm step. It is
// called with the port and the step label (the paper's line numbers, e.g.
// "L13" for the FAS on Tail). Returning true makes the protocol panic with
// a crash value; see AsCrash.
//
// CrashFunc implementations must be safe for concurrent use.
type CrashFunc func(port int, point string) bool

// Crash is the panic value raised by an injected crash.
type Crash struct {
	// Port is the port whose operation was abandoned.
	Port int
	// Point is the step label at which the crash fired.
	Point string
}

// Error renders the crash like an error for convenient logging.
func (c Crash) Error() string {
	return fmt.Sprintf("rme: injected crash at %s (port %d)", c.Point, c.Port)
}

// AsCrash reports whether a recovered panic value is an injected crash.
// Typical recovery harness:
//
//	defer func() {
//		if c, ok := rme.AsCrash(recover()); ok {
//			go restartWorker(c.Port) // re-run Lock(port) to recover
//			return
//		}
//	}()
func AsCrash(r any) (Crash, bool) {
	c, ok := r.(Crash)
	return c, ok
}

// cp is the crash point check, inlined throughout the protocol.
func (m *Mutex) cp(port int, point string) {
	if fn := m.crashFn.Load(); fn != nil {
		if (*fn)(port, point) {
			panic(Crash{Port: port, Point: point})
		}
	}
}

// CrashPoint lets applications add their own labeled crash-injection
// points, wired to the same hook as the protocol's built-in points: if the
// installed CrashFunc returns true for (port, point), CrashPoint panics
// with a Crash value. With no hook installed it is a no-op. Use it to test
// application-level recovery logic (journals, redo records) under the same
// fault model as the lock itself.
func (m *Mutex) CrashPoint(port int, point string) {
	m.cp(port, point)
}

// SetCrashFunc installs (or, with nil, removes) the crash-injection hook.
// Intended for tests and fault-injection harnesses.
func (m *Mutex) SetCrashFunc(fn CrashFunc) {
	if fn == nil {
		m.crashFn.Store(nil)
		return
	}
	m.crashFn.Store(&fn)
}
