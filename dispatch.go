package rme

import (
	"sync/atomic"

	"github.com/rmelib/rme/internal/wait"
)

// This file is the shared dispatcher runtime: a bounded executor that
// multiplexes every stripe's async delivery work onto WithDispatcherPool(n)
// worker goroutines, replacing the one-parked-goroutine-per-stripe model.
// A stripe that has work is a *runnable* — its inbox is non-empty and no
// worker is engaged with it — and runnables flow through a lock-free FIFO
// run queue that any idle worker can pull from. The engagement protocol
// guarantees at most one worker per stripe at a time, so everything the
// per-stripe dispatcher promised (batch swap under deliverMu, FIFO grant
// order, Grant ownership, crash absorption) carries over verbatim; only
// the goroutine that runs it is now drawn from a shared pool.
//
// # The stripe run-state word
//
// Each stripe owns one atomic word (dispatcher.runState) that makes
// "enqueue the stripe at most once" a CAS protocol rather than a
// convention:
//
//	stripeIdle        no pending work, not queued, no worker engaged
//	stripeQueued      in the run queue (or being handed to a worker)
//	stripeActive      a worker is delivering the stripe's batches
//	stripeActiveDirty a worker is delivering AND new work arrived since
//
// A submitter that pushed onto the inbox CASes idle→queued (and enqueues
// the stripe + kicks the pool) or active→activeDirty (the engaged worker
// owes a re-check); in the queued and activeDirty states someone else
// already owes the stripe a visit, so the submitter does nothing. The
// engaged worker leaves via CAS active→idle, which fails — and turns into
// a re-enqueue — exactly when work arrived during delivery. The invariant
// "a stripe is in the run queue at most once" is what lets the queue be a
// fixed ring of Shards() slots that can never overflow.
//
// # The run queue
//
// A bounded MPMC ring (Vyukov sequence-numbered slots): producers are
// submitters and releasing workers, consumers are workers. FIFO order is
// what makes the pool starvation-free — a hot stripe re-enqueues at the
// tail, behind every stripe that was already waiting. Workers hold one
// locality exception: a stripe that re-queues itself goes to the worker's
// runnext slot (the same trick as the Go scheduler's runnext) and is
// served next without a queue round-trip, except that every
// runnextSpillEvery-th dequeue spills it behind the global queue instead,
// bounding how long a hot stripe can shadow the cold ones. Workers whose
// queue is empty steal a busy peer's runnext before parking — that's the
// Steals counter in DispatcherStats.
//
// # Parking and the pool bound
//
// Workers are spawned lazily, up to the bound, by submissions that find
// no idle worker; an idle worker parks on one shared wait.Chain with a
// spin-then-park strategy (WithDispatcherSpin sizes the spin window, as
// it did for per-stripe dispatchers). The steady-state footprint of the
// async tier is therefore min(bound, high-water concurrency) goroutines,
// regardless of how many stripes have ever seen traffic — the property
// TestDispatchGoroutineBound pins.
//
// # Close
//
// Close stops intake and broadcasts the idle chain; each worker exits
// when it finds the run queue empty and the table closed, after running
// one final drainClosed pass over every stripe. Workers never join
// in-flight deliveries (a delivery blocks until the stripe's holder
// settles, and the holder may be waiting on Close's caller — see
// LockTable.Close), so Close remains non-blocking with respect to
// outstanding grants, exactly as before.

// Run-state values for dispatcher.runState; see the file comment.
const (
	stripeIdle int32 = iota
	stripeQueued
	stripeActive
	stripeActiveDirty
)

// runnextSpillEvery bounds the runnext locality exception: every this
// many dequeues a worker spills its runnext stripe behind the global
// queue instead of running it again, so a continuously hot stripe cannot
// starve the queued cold ones even on a one-worker pool.
const runnextSpillEvery = 4

// runSlot is one ring slot: a sequence-stamped stripe pointer.
type runSlot struct {
	seq atomic.Uint64
	sh  *lockShard
}

// runQueue is the bounded MPMC runnable-stripe ring. Capacity is the
// next power of two at or above the stripe count; since the run-state
// protocol admits each stripe at most once, the ring can never fill.
type runQueue struct {
	mask  uint64
	slots []runSlot
	head  atomic.Uint64 // consumer cursor
	tail  atomic.Uint64 // producer cursor
}

func (q *runQueue) init(stripes int) {
	size := uint64(2)
	for size < uint64(stripes) {
		size <<= 1
	}
	q.mask = size - 1
	q.slots = make([]runSlot, size)
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
}

// enqueue publishes sh at the tail. Never blocks: the at-most-once
// invariant keeps occupancy at or below the stripe count ≤ capacity.
func (q *runQueue) enqueue(sh *lockShard) {
	for {
		pos := q.tail.Load()
		slot := &q.slots[pos&q.mask]
		seq := slot.seq.Load()
		if seq == pos {
			if q.tail.CompareAndSwap(pos, pos+1) {
				slot.sh = sh
				slot.seq.Store(pos + 1)
				return
			}
		} else if seq < pos {
			// A full ring means a stripe was enqueued twice — a run-state
			// protocol violation, never load. Fail loudly.
			panic("rme: dispatcher run queue overflow")
		}
		// seq > pos: another producer moved tail between loads; retry.
	}
}

// dequeue pops the oldest runnable stripe, or returns nil if the queue
// is (momentarily) empty.
func (q *runQueue) dequeue() *lockShard {
	for {
		pos := q.head.Load()
		slot := &q.slots[pos&q.mask]
		seq := slot.seq.Load()
		if seq == pos+1 {
			if q.head.CompareAndSwap(pos, pos+1) {
				sh := slot.sh
				slot.sh = nil
				slot.seq.Store(pos + q.mask + 1)
				return sh
			}
		} else if seq <= pos {
			return nil
		}
		// seq > pos+1: a consumer lapped us between loads; retry.
	}
}

// depth reports the racy occupancy — the RunQueueDepth gauge.
func (q *runQueue) depth() int {
	d := int64(q.tail.Load()) - int64(q.head.Load())
	if d < 0 {
		d = 0
	}
	return int(d)
}

// dispWorker is one pool slot's private state, padded so neighboring
// workers' runnext words do not false-share.
type dispWorker struct {
	// runnext holds a stripe this worker re-queued for itself (the
	// locality exception). Written by the owner (CAS from nil), consumed
	// by the owner or — when the global queue runs dry — stolen by a peer
	// via Swap.
	runnext atomic.Pointer[lockShard]
	// tick counts the owner's dequeues, driving the periodic spill.
	tick uint64
	_    [cacheLineSize - 16]byte
}

// executor is the table's shared dispatcher runtime. Zero value is not
// usable; init is called from newTableArena.
type executor struct {
	t     *LockTable
	bound int32 // pool size: the maximum number of workers
	runq  runQueue
	// idle is where surplus workers park; idleCond is bound once so idle
	// episodes do not allocate, and parkStrat is spin-then-park with the
	// WithDispatcherSpin budget — an idle pool must cost parked
	// goroutines, never a yield loop, whatever the table's worker-side
	// wait strategy is.
	idle      wait.Chain
	idleCond  func() bool
	parkStrat wait.Strategy

	workers []dispWorker
	spawned atomic.Int32 // workers ever started, ≤ bound
	live    atomic.Int32 // workers started and not yet exited
	engaged atomic.Int32 // workers currently delivering a stripe's batch
	batches atomic.Uint64
	steals  atomic.Uint64
}

func (e *executor) init(t *LockTable, bound, spin int) {
	e.t = t
	e.bound = int32(bound)
	e.runq.init(len(t.shards))
	e.workers = make([]dispWorker, bound)
	e.parkStrat = wait.SpinThenPark(spin)
	e.idleCond = func() bool { return e.runq.depth() > 0 || t.closed.Load() }
}

// schedule marks sh runnable after an inbox push: idle stripes are
// enqueued (and the pool kicked), engaged stripes are flagged dirty so
// their worker re-checks the inbox before disengaging, and queued or
// already-dirty stripes need nothing — a visit is owed either way.
func (e *executor) schedule(sh *lockShard) {
	d := &sh.disp
	for {
		switch d.runState.Load() {
		case stripeIdle:
			if d.runState.CompareAndSwap(stripeIdle, stripeQueued) {
				e.runq.enqueue(sh)
				e.kick()
				return
			}
		case stripeActive:
			if d.runState.CompareAndSwap(stripeActive, stripeActiveDirty) {
				return
			}
		default: // stripeQueued, stripeActiveDirty
			return
		}
	}
}

// kick makes sure a worker will observe the freshly enqueued stripe:
// wake a parked worker if there is one, else spawn a new worker while
// the pool is under its bound. When every worker is spawned and busy the
// trailing Wake is still issued — it is one atomic load when nobody is
// parked, and it covers the race with a worker that is between its empty
// dequeue and its park (the chain's no-lost-wake contract does the rest:
// the worker re-checks the queue after registering).
func (e *executor) kick() {
	for e.idle.Waiters() == 0 {
		n := e.spawned.Load()
		if n >= e.bound {
			break
		}
		if e.spawned.CompareAndSwap(n, n+1) {
			e.live.Add(1)
			go e.worker(int(n))
			return
		}
	}
	e.idle.Wake()
}

// spawnAll starts the full pool eagerly — WithAsyncPrewarm's executor
// half, so even a table's very first submission finds the pool warm and
// the submit path never pays a goroutine spawn.
func (e *executor) spawnAll() {
	for {
		n := e.spawned.Load()
		if n >= e.bound {
			return
		}
		if e.spawned.CompareAndSwap(n, n+1) {
			e.live.Add(1)
			go e.worker(int(n))
		}
	}
}

// worker is one pool goroutine: pull runnable stripes and deliver their
// batches until the table closes and the queue drains, parking on the
// idle chain when there is globally nothing to run.
func (e *executor) worker(id int) {
	defer e.live.Add(-1)
	w := &e.workers[id]
	t := e.t
	for {
		sh := e.next(w)
		if sh == nil {
			if t.closed.Load() {
				// Final drain before exiting (the pooled form of the old
				// dispatcher's last pass): a submission that passed its
				// closed check concurrently with Close may have pushed
				// after this worker's last look at its stripe, and no
				// worker may come back for it once the pool winds down.
				// Pushes that land after this pass are covered the other
				// way — their submitters' post-push re-check observes
				// closed and spawns a transient drainer (see submit).
				e.finalDrain()
				return
			}
			e.idle.Wait(e.parkStrat, e.idleCond)
			continue
		}
		e.runStripe(w, sh)
	}
}

// next picks this worker's next stripe: its runnext slot (with the
// periodic fairness spill), then the global queue, then a steal from a
// busy peer's runnext. A nil return means the pool is globally idle.
func (e *executor) next(w *dispWorker) *lockShard {
	w.tick++
	if rn := w.runnext.Swap(nil); rn != nil {
		if w.tick%runnextSpillEvery == 0 {
			// Fairness tick: push the hot stripe behind the queued cold
			// ones, and serve the queue's head instead if it has one.
			if sh := e.runq.dequeue(); sh != nil {
				e.runq.enqueue(rn)
				e.kick()
				return sh
			}
		}
		return rn
	}
	if sh := e.runq.dequeue(); sh != nil {
		return sh
	}
	for i := range e.workers {
		if p := &e.workers[i]; p != w {
			if sh := p.runnext.Swap(nil); sh != nil {
				e.steals.Add(1)
				return sh
			}
		}
	}
	return nil
}

// runStripe engages sh — this worker becomes the stripe's dispatcher for
// one batch — and then releases it: back to idle if the inbox stayed
// empty, re-queued if work arrived while engaged. Delivering one batch
// per engagement (rather than looping until the inbox stays empty) is
// the cross-stripe fairness choice: a stripe with a continuous push
// stream goes back through runnext/the queue between batches instead of
// holding its worker forever.
func (e *executor) runStripe(w *dispWorker, sh *lockShard) {
	d := &sh.disp
	// Sole-owner store: only the worker that dequeued the stripe leaves
	// stripeQueued, and submitters CAS only from idle or active.
	d.runState.Store(stripeActive)
	e.engaged.Add(1)
	e.t.deliverBatch(sh)
	e.batches.Add(1)
	e.engaged.Add(-1)
	for {
		if d.inbox.Load() != nil || d.runState.Load() == stripeActiveDirty {
			// Work arrived while engaged (or is mid-push: the dirty flag
			// may lag the inbox CAS, so check both). Hand the stripe back
			// through the queue; the overwrite of a racing dirty-CAS is
			// benign — we are about to requeue, which is what dirty asks.
			d.runState.Store(stripeQueued)
			e.requeue(w, sh)
			return
		}
		if d.runState.CompareAndSwap(stripeActive, stripeIdle) {
			return
		}
		// CAS failed: a submitter flipped active→activeDirty between our
		// inbox check and the CAS; loop and requeue.
	}
}

// requeue hands a still-runnable stripe back: into this worker's runnext
// slot for locality, or the global queue (plus a kick, another worker
// may be parked) when runnext is taken.
func (e *executor) requeue(w *dispWorker, sh *lockShard) {
	if w.runnext.CompareAndSwap(nil, sh) {
		return
	}
	e.runq.enqueue(sh)
	e.kick()
}

// finalDrain is an exiting worker's last duty: one drainClosed pass over
// every stripe, so requests that were pushed concurrently with Close are
// delivered even if their stripe never made it back through the queue.
// Concurrent finalDrains (and transient submit-side drainers) are safe:
// the inbox Swap hands each request to exactly one of them.
func (e *executor) finalDrain() {
	t := e.t
	for i := range t.shards {
		t.drainClosed(&t.shards[i])
	}
}

// stats snapshots the executor's observability block.
func (e *executor) stats() DispatcherStats {
	return DispatcherStats{
		PoolSize:      int(e.bound),
		Workers:       int(e.live.Load()),
		Engaged:       int(e.engaged.Load()),
		RunQueueDepth: e.runq.depth(),
		Batches:       e.batches.Load(),
		Steals:        e.steals.Load(),
	}
}

// DispatcherStats is the shared dispatcher runtime's observability
// snapshot, reported in TableStats.Dispatcher.
type DispatcherStats struct {
	// PoolSize is the configured worker bound (WithDispatcherPool).
	PoolSize int
	// Workers is how many pool goroutines are currently live — spawned
	// (lazily, by traffic) and not yet wound down by Close. Never exceeds
	// PoolSize; this is the async tier's whole goroutine footprint,
	// regardless of the stripe count.
	Workers int
	// Engaged is how many workers are delivering a stripe's batch right
	// now (the rest are parked or between stripes).
	Engaged int
	// RunQueueDepth is how many runnable stripes are waiting in the
	// global run queue — the pool's backlog signal: persistently nonzero
	// means the bound is below the workload's stripe-level parallelism.
	RunQueueDepth int
	// Batches counts delivered inbox batches, lifetime.
	Batches uint64
	// Steals counts runnext steals — a worker finding the global queue
	// empty and taking a busy peer's locality slot instead, lifetime.
	Steals uint64
}
