package rme_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
)

// Tests for the shared dispatcher runtime (dispatch.go): the bounded
// executor the async tier multiplexes every stripe's delivery work onto.
// The names all start with TestDispatch so the CI race matrix's keyed
// regex picks the whole file up.

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDispatchQuiescedPendingDelivery is the quiesce-reasoning regression
// test (the same class of bug as the PR 8 inbox-depth fix, one window
// later): an async request that has been swapped out of its stripe's
// inbox but whose delivery has not yet acquired a lease holds nothing the
// old Quiesced() could see — InUse() was 0 and the inbox depth had
// already been decremented at swap time — so the table reported quiescent
// with a grant still owed. The fix keeps each request in its stripe's
// pending count until its delivery holds the lease (or sheds), closing
// the window: at every instant a submitted-but-unsettled request is
// visible through InboxDepth or InUse.
//
// The window is pinned deterministically by force-closing the stripe's
// migration gate: the delivery parks at the barrier after the swap,
// holding no lease, and stays there until the test reopens it.
func TestDispatchQuiescedPendingDelivery(t *testing.T) {
	tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(1))
	defer tbl.Close()

	tbl.SetGateClosed(0, true)
	ch := tbl.LockAsync(7)

	// The delivery has reached the gate: batch swapped, no lease taken.
	waitFor(t, 5*time.Second, "delivery parked at the migration gate", func() bool {
		return tbl.GateWaiters(0) > 0
	})
	if n := tbl.InUse(); n != 0 {
		t.Fatalf("InUse() = %d with the delivery parked at the gate, want 0", n)
	}
	if tbl.Quiesced() {
		t.Fatal("Quiesced() = true with an async request pending delivery")
	}
	if d := tbl.Stats().Shards[0].InboxDepth; d != 1 {
		t.Fatalf("InboxDepth = %d with one undelivered request, want 1", d)
	}

	tbl.SetGateClosed(0, false)
	g := <-ch
	if tbl.Quiesced() {
		t.Fatal("Quiesced() = true with an unsettled grant outstanding")
	}
	g.Unlock()
	waitFor(t, 5*time.Second, "table to quiesce after settle", tbl.Quiesced)
}

// TestDispatchGoroutineBound pins the tentpole's footprint claim: an idle
// table with S stripes and WithDispatcherPool(n) holds at most n
// dispatcher goroutines, not S. Every stripe is driven through an async
// passage (under the per-stripe model that would have left 64 parked
// dispatchers behind), then the goroutine delta over the table's lifetime
// is measured once the storm settles.
func TestDispatchGoroutineBound(t *testing.T) {
	const shards, pool = 64, 3
	base := runtime.NumGoroutine()

	tbl := rme.NewLockTable(shards, 2, rme.WithTableSeed(1), rme.WithDispatcherPool(pool))
	var wg sync.WaitGroup
	for k := uint64(0); k < shards*4; k++ {
		wg.Add(1)
		tbl.LockAsyncFunc(k, func(g rme.Grant) {
			g.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	waitFor(t, 5*time.Second, "table to quiesce", tbl.Quiesced)

	// Transient goroutines (abort fix-ups, test runtime bookkeeping) die
	// down quickly; poll the delta instead of asserting a single racy read.
	waitFor(t, 5*time.Second, "goroutine count to settle within the pool bound", func() bool {
		return runtime.NumGoroutine()-base <= pool
	})

	tbl.Close()
	waitFor(t, 5*time.Second, "workers to wind down after Close", func() bool {
		return runtime.NumGoroutine() <= base
	})
}

// TestDispatchPoolOneStorm drives a 64-stripe async storm through a
// single shared worker: no stripe may starve (every request is granted)
// and the per-submitter FIFO grant order must survive on every stripe —
// the run queue's fairness spill is what makes both hold when one worker
// serves a hot stripe alongside 63 others.
func TestDispatchPoolOneStorm(t *testing.T) {
	const shards, perStripe = 64, 50
	tbl := rme.NewLockTable(shards, 2, rme.WithTableSeed(1), rme.WithDispatcherPool(1))
	defer tbl.Close()

	// One submitter per stripe, each submitting an ordered sequence of
	// callbacks; callbacks run in delivery order, so the recorded sequence
	// per stripe must be exactly 0..perStripe-1.
	order := make([][]int, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		keys := keysOnStripe(tbl, s, 1)
		wg.Add(1)
		go func(s int, key uint64) {
			defer wg.Done()
			var inner sync.WaitGroup
			for i := 0; i < perStripe; i++ {
				i := i
				inner.Add(1)
				tbl.LockAsyncFunc(key, func(g rme.Grant) {
					order[s] = append(order[s], i)
					g.Unlock()
					inner.Done()
				})
			}
			inner.Wait()
		}(s, keys[0])
	}
	wg.Wait()

	for s := 0; s < shards; s++ {
		if len(order[s]) != perStripe {
			t.Fatalf("stripe %d completed %d grants, want %d", s, len(order[s]), perStripe)
		}
		for i, got := range order[s] {
			if got != i {
				t.Fatalf("stripe %d grant order broken at %d: got request %d", s, i, got)
			}
		}
	}
	waitFor(t, 5*time.Second, "table to quiesce", tbl.Quiesced)
}

// TestDispatchPoolWiderThanStripes runs a pool wider than the stripe
// count: the surplus workers must simply park (never spin, never crash),
// traffic still completes, and the pool never spawns beyond its bound.
func TestDispatchPoolWiderThanStripes(t *testing.T) {
	const shards, pool = 2, 8
	base := runtime.NumGoroutine()
	tbl := rme.NewLockTable(shards, 2, rme.WithTableSeed(1), rme.WithDispatcherPool(pool))

	var wg sync.WaitGroup
	for k := uint64(0); k < 200; k++ {
		wg.Add(1)
		tbl.LockAsyncFunc(k, func(g rme.Grant) {
			g.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	waitFor(t, 5*time.Second, "table to quiesce", tbl.Quiesced)

	if n := tbl.Stats().Dispatcher.Workers; n > pool {
		t.Fatalf("pool spawned %d workers, bound is %d", n, pool)
	}
	waitFor(t, 5*time.Second, "goroutine count to settle within the pool bound", func() bool {
		return runtime.NumGoroutine()-base <= pool
	})
	tbl.Close()
	waitFor(t, 5*time.Second, "workers to wind down after Close", func() bool {
		return runtime.NumGoroutine() <= base
	})
}

// TestDispatchSubmitCloseRace is the stranding-race storm ported to the
// pooled executor: submissions race Close() while a deliberately tiny
// pool is kept busy, so the rescue path (a submitter whose post-push
// re-check observes closed spawns a transient drainer) runs with every
// worker engaged elsewhere — the configuration where a lost request
// would otherwise park forever. Every submission must either panic (the
// submitter observed the closed table and holds nothing) or be granted.
func TestDispatchSubmitCloseRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const rounds = 100
	for round := 0; round < rounds; round++ {
		// A few stripes over a pool of 2: the close-time drain has to
		// cover stripes no worker is engaged with.
		tbl := rme.NewLockTable(4, 2, rme.WithTableSeed(uint64(round)), rme.WithDispatcherPool(2))

		var granted atomic.Int64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := uint64(0); ; k++ {
					if settleOneAsync(tbl, uint64(w)<<32|k) {
						granted.Add(1)
					} else {
						return // closed-table panic: the legal exit
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}(w)
		}
		// Let the storm get going, then slam the door mid-flight.
		for granted.Load() < 16 {
			runtime.Gosched()
		}
		tbl.Close()
		close(stop)

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: a submission was stranded by Close (no grant, no panic)", round)
		}
		if !tbl.Quiesced() {
			t.Fatalf("round %d: table not quiesced after all submitters settled", round)
		}
	}
}

// settleOneAsync submits one async request and settles its grant,
// reporting false if the submission panicked on a closed table.
func settleOneAsync(tbl *rme.LockTable, key uint64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	g := <-tbl.LockAsync(key)
	g.Unlock()
	return true
}

// TestDispatchStatsSnapshot sanity-checks the DispatcherStats block: the
// configured bound is reported, workers never exceed it, and the batch
// counter moves when traffic flows.
func TestDispatchStatsSnapshot(t *testing.T) {
	tbl := rme.NewLockTable(8, 2, rme.WithTableSeed(1), rme.WithDispatcherPool(3))
	defer tbl.Close()

	var wg sync.WaitGroup
	for k := uint64(0); k < 64; k++ {
		wg.Add(1)
		tbl.LockAsyncFunc(k, func(g rme.Grant) {
			g.Unlock()
			wg.Done()
		})
	}
	wg.Wait()

	ds := tbl.Stats().Dispatcher
	if ds.PoolSize != 3 {
		t.Fatalf("PoolSize = %d, want 3", ds.PoolSize)
	}
	if ds.Workers < 1 || ds.Workers > 3 {
		t.Fatalf("Workers = %d, want 1..3", ds.Workers)
	}
	if ds.Batches == 0 {
		t.Fatal("Batches = 0 after 64 delivered grants")
	}
	if ds.Engaged < 0 || ds.Engaged > ds.Workers {
		t.Fatalf("Engaged = %d with %d workers", ds.Engaged, ds.Workers)
	}
	if ds.RunQueueDepth < 0 {
		t.Fatalf("RunQueueDepth = %d, want >= 0", ds.RunQueueDepth)
	}
}
