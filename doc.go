// Package rme is a recoverable mutual-exclusion (RME) library for Go,
// implementing the algorithm of Jayanti, Jayanti and Joshi, "A Recoverable
// Mutex Algorithm with Sub-logarithmic RMR on Both CC and DSM" (PODC 2019).
//
// # What "recoverable" means
//
// A recoverable mutex keeps working when a participant dies mid-operation.
// All lock state lives in stable storage (in this library: ordinary heap
// memory owned by the Mutex, standing in for non-volatile main memory),
// while the participant's own variables are lost with it. A replacement
// participant that calls Lock with the same port recovers exactly where the
// dead one left off:
//
//   - died inside the critical section → Lock returns immediately, still
//     holding the CS, before anyone else can enter (wait-free critical
//     section re-entry);
//   - died while waiting → Lock resumes waiting at the right queue
//     position, repairing the lock's queue first if the death broke it;
//   - died during Unlock → the next Lock finishes the interrupted release
//     and then starts a fresh acquisition.
//
// The algorithm is an MCS-style FIFO queue lock made crash-tolerant: it
// spins only on locally-cached (or partition-local) words, uses only the
// atomic swap primitive, and has a wait-free Unlock.
//
// # Ports
//
// Capacity is expressed in "ports" (the paper's model): a Mutex created
// with New(k) serves k concurrent super-passages. Each acquisition attempt
// — including all its crash/recovery retries — must use one port
// exclusively; two live goroutines must never share a port. Ports are how a
// successor process proves it is the continuation of a dead one.
//
// Three lock shapes are provided: Mutex is the paper's flat k-ported
// algorithm (O(1) RMRs per crash-free passage); TreeMutex is the
// Section 3.3 arbitration tree for n processes (O((1+f)·log n/log log n)
// per super-passage, the paper's headline bound); and MCSMutex is a
// recoverable MCS queue lock that keeps the O(1)-RMR passage while
// bounding crash repair to the dead port's own queue neighborhood. All
// three serve as shard backends for the keyed LockTable (see "Choosing a
// shard backend" below).
//
// # Tuning
//
// Every busy-wait in the lock stack — the Signal object's wait, the
// repair lock's tournament entry — runs on the internal/wait engine and
// is tunable at construction:
//
//   - WithWaitStrategy selects how waiters pass the time: yielding to the
//     Go scheduler between probes (the default), pure spinning with
//     procyield-style backoff (lowest handoff latency when every waiter
//     owns a core), or spin-then-park on a channel for oversubscribed
//     workloads where ports greatly exceed GOMAXPROCS.
//   - WithNodePool recycles queue nodes through a per-port free list once
//     their successor is done with them, making the crash-free
//     Lock/Unlock fast path allocation-free; reuse that cannot be proven
//     safe (a queue repair in flight) falls back to allocation.
//   - WithTreeInstrumentation attaches per-level RMR-proxy counters to a
//     TreeMutex (see TreeMutex.LevelStats), exposing the arbitration
//     tree's hand-off cost profile.
//
// The wait engine's spin words are generation-stamped and reusable (see
// internal/wait): a stale wake aimed at a crashed waiter's abandoned
// episode dies on a generation check instead of landing on a garbage
// allocation. With the node pool on, every crash-free passage — contended
// or uncontended, under any strategy — therefore allocates nothing.
//
// # Keyed locking at scale
//
// The port model serves a fixed cast of identities; real services lock
// millions of named resources from whatever goroutine happens to carry the
// request. Two layers bridge the gap:
//
//   - PortLeaser lets arbitrary workers borrow port identities per
//     passage. Each port has an epoch-stamped ownership word: acquisition
//     CASes it free→held with a fresh epoch, so a stale lease cannot
//     revoke a later lessee's port, and a worker that dies mid-protocol
//     leaves the word orphaned (the OrphanOnCrash guard marks it as the
//     Crash panic unwinds). ReclaimOrphans recovers orphaned ports —
//     running the recovery Lock on each, concurrently, since orphans can
//     be queued behind each other's dead nodes — and returns them to the
//     pool.
//   - LockTable is the keyed lock service built from both: string or
//     uint64 keys hash onto shards, each shard one k-ported recoverable
//     lock (flat, tree, or MCS — see "Choosing a shard backend") plus a
//     lease pool, so an unbounded keyspace shares O(shards·ports) of
//     permanent lock state. Mutual exclusion is per key via striping
//     (same-stripe keys contend, which is coarser but never unsound);
//     Lock/Unlock/Held take the key, Reclaim sweeps crashed tenancies
//     (ReclaimWith reports each dead tenancy's key and whether it held
//     the critical section, the hook for application-level redo/undo).
//     Crash-free keyed passages allocate nothing once the node pools are
//     warm.
//
// An orphaned tenancy still owns its protocol state — it can hold its
// stripe's critical section or stall the queue behind it — so it must be
// swept promptly, exactly as RME's progress guarantees assume crashed
// processes restart. A table built with WithSupervisor sweeps itself (see
// "Self-managing tables" below, and examples/locktable for the pattern
// under a crash storm); a table without one must call Reclaim from its
// own supervision loop after observing a death. Callers with a latency
// budget rather than a liveness obligation should use the abortable tier
// — TryLock and LockContext — described under "Deadlines, TryLock, and
// aborts" below.
//
// # Choosing a shard backend
//
// Each shard's lock is the flat k-ported Mutex, a k-process arbitration
// TreeMutex, or the recoverable MCS queue lock MCSMutex, selected by
// WithShardBackend; every keyed contract (striping, recovery,
// zero-allocation warm passages, async and batch) holds identically on
// all three, so the choice is purely a performance trade:
//
//   - The flat lock's crash-free passage is O(1) RMR — one queue entry,
//     one handoff — and nothing beats it while recovery stays rare and
//     ports stay modest. Its costs grow with the port count k: a queue
//     repair scans all k ports and runs under a repair lock whose
//     tournament is sized k, and every repair of the stripe serializes
//     through that one lock.
//   - The MCS queue lock keeps the O(1)-RMR passage — one CAS on the
//     tail, one local spin, one single-word wake to exactly the
//     successor (0.89 wakes per passage at k=64 on the committed
//     BENCH_keyed_mcs.json, the lowest of the three backends) — and
//     adds O(1) crash repair: recovery inspects only the crashed port's
//     own node and its queue neighborhood, never a k-sized scan. Its
//     cost is the enqueue/empty-release descriptor, a tiny serializing
//     lock whose dead holder stalls every new arrival on the stripe
//     until Reclaim runs, so a crash's blast radius is the whole stripe
//     (see MCSMutex for the full argument).
//   - The tree pays O(log k / log log k) levels per passage (visible as
//     ~4x wakes per passage at k=64 in the committed
//     BENCH_keyed_tree.json), but bounds every repair to one node of
//     Θ(log k / log log k) ports and repairs different nodes in
//     parallel — the paper's Section 3.3 trade, applied per stripe. On
//     the committed high-port baselines its throughput is within a few
//     percent of flat shards under saturation, because a deep queue
//     hides handoff latency; under spin-then-park with heavy
//     oversubscription each extra level's wake is a park/unpark round
//     trip, and the flat lock is clearly better.
//   - AutoBackend (the default) draws two lines: flat up to 32 ports
//     per shard (no descriptor tax, and a Θ(k) repair is cheap at small
//     k), MCS from 33 to 256 (O(1) passage and O(1) repair carry the
//     middle), tree past 256 (it confines a crash to one arity-sized
//     node, where a dead MCS descriptor holder stalls all k ports'
//     arrivals). Tables that know their recovery profile can override
//     either line; Backend() reports what was built.
//
// Arenas can also be heterogeneous in wait strategy: WithShardStrategy
// overrides the waiting discipline per shard (hot shards on
// SpinWaitStrategy for handoff latency, the cold tail on
// SpinParkWaitStrategy so idle stripes cost parked goroutines), without
// affecting any correctness property.
//
// # Asynchronous and batched acquisition
//
// Blocking Lock parks one goroutine per waiting key. At service scale the
// LockTable offers two ways out:
//
//   - LockAsync(key) enqueues and returns a channel; LockAsyncFunc takes
//     a callback. A shared dispatcher runtime — a bounded pool of
//     WithDispatcherPool(n) workers pulling runnable stripes off a
//     lock-free run queue, parked on the wait engine when the queue is
//     empty — works through each stripe's requests in FIFO order (at
//     most one worker engages a stripe at a time) and completes each
//     with a Grant, so ten thousand in-flight requests cost ten thousand
//     queue nodes, not ten thousand goroutine stacks, and ten thousand
//     stripes cost n dispatcher goroutines, not ten thousand
//     (TableStats.Dispatcher reports the pool's gauges). The
//     grant-ownership rule: exactly one party owns a Grant at a time
//     (the engaged worker, then channel or callback, then receiver), and
//     the owner must settle it exactly once, with Grant.Unlock or
//     Grant.Abandon. A requester that dies before receiving leaves the
//     grant parked in its channel, still holding the stripe — its
//     supervisor drains the channel and abandons the grant, which routes
//     the tenancy into the ordinary orphan/reclaim machinery. A callback
//     that dies with a Crash panic is orphaned in place and the pool
//     survives it; callbacks must settle their grant before returning
//     (only the channel variant may move a grant between goroutines — a
//     hand-off out of a callback would let a later crash in the callback
//     orphan the recipient's live tenancy).
//   - LockBatch / DoBatch acquire many keys at once: keys are sorted by
//     ShardIndex (so concurrent batches cannot ABBA-deadlock) and each
//     same-stripe run is covered by a single tenancy — one lease scan,
//     one queue entry, one handoff wake per stripe instead of per key,
//     which under hot-key traffic amortizes nearly the whole acquisition
//     overhead away. A worker that dies mid-batch orphans exactly the
//     stripes it held; DoBatch packages the sweep-and-retry supervisor
//     around that, running fn exactly once per key.
//
// The self-deadlock rules carry over unchanged, because they are
// properties of striping, not of any entry point: never wait for a grant
// (or call LockBatch) while holding a key of the same table outside the
// documented ascending-ShardIndex discipline, and never block a grant
// callback on another grant of its own stripe — the goroutine it would
// wait for is one of the pool's n, and with a small pool any blocking
// inside a callback eats delivery capacity table-wide (see the
// pool-liveness note in locktable_async.go). Crash-free async and batch
// passages allocate nothing once pools are warm (amortized over the
// batch for DoBatch); WithDispatcherPool bounds the worker pool,
// WithDispatcherSpin sizes each worker's idle spin window, and
// WithAsyncPrewarm warms the request free lists and spawns the pool
// eagerly for first-request allocation budgets.
//
// # Deadlines, TryLock, and aborts
//
// Every blocking keyed entry point has a deadline-aware twin: TryLock
// returns immediately with a boolean, LockContext / LockBatchContext /
// LockAsyncContext observe a context's cancellation or deadline. The
// design rule that makes abort safe in a recoverable lock is
// abort-as-cooperative-crash: a cancelled waiter leaves its protocol
// state exactly as if it had crashed at its current step, then runs the
// recovery pass itself (a background Lock/Unlock on the abandoned port)
// instead of waiting for a supervisor's Reclaim. The caller gets its
// error immediately; the stripe heals cooperatively; no sweep is needed
// and nothing is stranded. Two invariants hold on every backend:
//
//   - No lost wakes. A waiter that cancels races the wake handout; if a
//     wake lands on the departing waiter it is absorbed and forwarded to
//     the next waiter, never dropped, so cancellation can never park an
//     innocent neighbor forever.
//   - Exactly-once settlement. A context that fires after the lock was
//     already won is still honored: LockContext returns nil (the caller
//     owns the key and must Unlock), and a LockAsyncContext grant that
//     loses the delivery race to cancellation is auto-abandoned into the
//     ordinary orphan/reclaim machinery, where the table's supervisor
//     (or a manual Reclaim) frees it like any other dead tenancy.
//
// TryLock is allocation-free and conservative: it may return false under
// momentary contention (it refuses to queue), but true always means the
// key is held. LockBatchContext is all-or-nothing — a deadline mid-batch
// releases every stripe already acquired, in ShardIndex order, before
// returning the error. Sheds are counted per stripe in ShardStats
// (Timeouts for context.DeadlineExceeded, Aborts for everything else);
// TryLock misses are not sheds and are not counted. The committed
// BENCH_keyed_abort.json baseline pins the tier's costs: both the
// crash-free grant path and the deterministic pre-expired shed stay
// inside the zero-allocation gate on all three backends.
//
// # Self-managing tables
//
// Everything above leaves a deployment two standing chores: running a
// reclaim loop so crashed tenancies are swept, and choosing the arena's
// port counts and shard backend up front for a workload it has not seen
// yet. WithSupervisor moves both into the table. A supervised table runs
// one background goroutine that ticks on a jittered interval and, each
// tick:
//
//   - Sweeps orphans under a liveness budget. Up to MaxHealsPerTick
//     stripes are healed per tick, a round-robin cursor guaranteeing
//     every stripe is reached within a few ticks even mid-storm. Each
//     heal claims every orphan on its stripe before recovering any of
//     them — the same two-phase discipline Reclaim uses, so batched
//     recovery cannot hold-and-wait on dead tenancies queued behind one
//     another — and abandoned async grants drain through the same
//     machinery. A supervised table therefore needs no manual Reclaim
//     calls, for crashes, cancellations, or abandoned grants alike.
//   - Resizes port pools (AdaptivePorts). Stripes observed idle shrink
//     toward MinPorts, banking the freed quota in a table-wide slack
//     pool; stripes with queued lease waiters grow out of it; and an
//     acquirer that finds its stripe's pool exhausted under skew steals
//     a port of slack directly rather than waiting for the next tick.
//     Resizing moves only the pool's admission bound — lease words are
//     epoch-stamped and never recycled across a resize — so the fencing
//     and orphan-detection invariants are exactly those of the fixed-
//     size pool (see PortLeaser.Resize for the full argument).
//   - Migrates stripe shapes (Migrate). A stripe whose measured wakes-
//     per-acquisition stays above HotWakesPerOp at a large active pool
//     is rebuilt live as an arbitration tree; one idling at or below
//     ColdWakesPerOp at small k becomes the flat lock; the middle
//     ground runs the MCS queue lock. HysteresisTicks of consecutive
//     agreement are required before any flip (and after one, before the
//     next), so the policy cannot flap. The swap itself closes the
//     stripe's admission gate — new entrants park and re-route, no
//     tenancy ever straddles a swap — drains in-flight tenancies,
//     verifies the outgoing backend is idle, and installs the new shape
//     with the crash-injection hook carried over; a stripe that cannot
//     quiesce within QuiesceTimeout keeps its old shape and the gate
//     reopens harmlessly.
//
// Close stops the supervisor and joins every recovery it started.
// SupervisorStats (in TableStats, JSON-ready like the rest of the
// observability surface) reports sweeps, stripes and ports healed,
// migrations by target shape, and the pool economy's grows, shrinks,
// and steals. The committed BENCH_keyed_adaptive.json baseline pins the
// feature's cost claim: a supervised table at steady state — supervisor
// ticking, pools adapted, hot stripes migrated — still runs crash-free
// passages allocation-free.
//
// # System-wide crashes and snapshots
//
// Everything above assumes the paper's independent-failure model: one
// participant dies, its port is orphaned, and some surviving party — a
// supervisor goroutine, a replacement worker, the abort path — runs
// recovery in the same process. A system-wide crash (the model of the
// 2023 successor work on recoverable mutexes under full-system failures)
// breaks that assumption: the whole process dies at once, every lessee
// with it, and nothing survives to call Reclaim. What persists is only
// what lives in stable storage; recovery must be driven by the next
// incarnation, from that image alone.
//
// Checkpoint and RestoreTable are that tier. Checkpoint serializes the
// durable half of a LockTable — the arena shape (stripes, per-stripe
// backend and active-port bound, seed) and every port's lease word, key,
// and critical-section ownership — into a self-describing, versioned,
// checksummed byte image; in the NVRAM reading, these are the words the
// paper's model keeps in non-volatile memory, while parked waiters,
// async inboxes, and undelivered grants are volatile process state and
// are deliberately not captured (an undelivered Grant's tenancy IS
// captured, as a held lease). The snapshot is crash-consistent
// (per-word atomic) at any moment and exact when the table is quiesced
// or post-mortem. RestoreTable builds a fresh table that adopts the
// image: every fencing epoch is advanced past the old incarnation's (a
// straggler holding pre-crash state can never CAS successfully), every
// non-free lease — orphaned, mid-reclaim, or still Held by a lessee who
// no longer exists — surfaces as an orphan, and a dead holder's
// critical-section ownership is re-established on the fresh backend so
// recovery observes exactly what the crash left. Options passed to
// RestoreTable act as assertions where they would change the arena
// (seed, shard backend): a mismatch with the image is an error, never a
// silent reshape.
//
// The restored table is immediately safe but not immediately available:
// adopted dead holders still own their stripes' critical sections, so
// acquisitions on those stripes queue until the orphan sweep releases
// them. Run Reclaim (or ReclaimWith, to learn which keys were stranded
// and redo/undo application state) before serving traffic, or restore
// with WithSupervisor — a restored supervised table whose image carried
// orphans sweeps eagerly on its first tick instead of sleeping a full
// interval. The committed BENCH_syscrash.json baselines price this
// path: time-to-first-grant after a full-table crash at 1e5 and 1e6
// keys, with the full-heal time alongside. The crash models and the
// recovery lifecycle are diagrammed in ARCHITECTURE.md; the
// process-boundary proof (an exec'd child restoring from bytes alone)
// is TestSyscrashProcessBoundary.
//
// # Crash injection
//
// Real deployments get crashes from the outside world; tests need them on
// demand. SetCrashFunc installs a hook consulted at every labeled step of
// the algorithm; when it returns true the calling goroutine panics with a
// value recognized by AsCrash, modeling a process that died at exactly that
// instruction. The lock's shared state remains valid; recovery is a new
// Lock call on the same port.
//
// # Verification
//
// This package is a direct port of the step-machine implementation in
// internal/core, which is validated against the paper's own Appendix C
// invariant on randomized and adversarial schedules, reproduces the
// Figure 5 repair walkthrough exactly, and is exercised by the experiment
// suite in EXPERIMENTS.md. The runtime port adds race-detector stress tests
// and crash-injection sweeps of its own.
package rme
