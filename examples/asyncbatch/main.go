// asyncbatch: the keyed lock service's completion-based and batched
// pipelines, on a workload shaped like a hot-partition metering service.
//
// A fleet of producer goroutines meters usage events against a handful of
// hot accounts. Instead of blocking one goroutine per contended key, each
// producer submits its acquisition with LockAsync and keeps generating
// while the stripe's dispatcher queues the request; the critical section
// runs when the Grant arrives. A settlement pass then folds every
// account's meter into its invoice with DoBatch — the accounts share a
// few stripes, so the whole pass costs a handful of lease scans and
// handoff wakes rather than one per account.
//
// The demo also exercises the two async death patterns the API defines:
// a producer that dies before receiving its grant (the supervisor drains
// the channel and abandons the grant, surfacing the tenancy through
// Orphans for a normal reclaim sweep), and a grant callback that dies
// holding its grant (the dispatcher orphans it in place and keeps
// serving).
//
//	go run ./examples/asyncbatch
package main

import (
	"fmt"
	"sync"

	rme "github.com/rmelib/rme"
)

const (
	producers = 6
	accounts  = 8
	events    = 300 // per producer
)

func main() {
	// A deliberately small arena: 4 stripes of 2 ports for 8 hot
	// accounts, so the async and batch machinery actually contends.
	tbl := rme.NewLockTable(4, 2, rme.WithNodePool(true), rme.WithTableSeed(42),
		rme.WithAsyncPrewarm(producers))
	defer tbl.Close()

	// The "non-volatile" application state, guarded by the keyed lock:
	// per-account usage meters and settled invoices.
	meter := make([]int, accounts)
	invoice := make([]int, accounts)

	// Producers meter events through the async pipeline: LockAsyncFunc
	// runs each increment on the stripe dispatcher once the key's stripe
	// hands over, so producers never block on a hot key. Submission is
	// not completion — the WaitGroup counts grants settled, and the
	// settlement pass below must not start before it drains.
	var inflight sync.WaitGroup
	inflight.Add(producers * events)
	for p := 0; p < producers; p++ {
		go func(p int) {
			for e := 0; e < events; e++ {
				acct := uint64((p + e) % accounts)
				tbl.LockAsyncFunc(acct, func(g rme.Grant) {
					meter[g.Key()]++ // guarded by the granted stripe
					g.Unlock()
					inflight.Done()
				})
			}
		}(p)
	}
	inflight.Wait()

	// A producer that dies between submitting and receiving: the grant is
	// delivered regardless and parks in the channel, still holding the
	// stripe. The supervisor's move is to drain and abandon it — the
	// tenancy becomes an ordinary orphan, swept like any other death.
	ch := tbl.LockAsync(0)
	// ... the requester crashes here, before <-ch ...
	g := <-ch // supervisor drains the dead requester's channel
	g.Abandon()
	fmt.Printf("abandoned grant surfaces as %d orphan; reclaimed %d\n",
		tbl.Orphans(), tbl.Reclaim())

	// Settlement: fold every meter into its invoice under one batch. The
	// 8 accounts share 4 stripes, so this is 4 tenancies, not 8 — and
	// DoBatch retries acquisition around any injected deaths, running fn
	// exactly once per key.
	keys := make([]uint64, accounts)
	for a := range keys {
		keys[a] = uint64(a)
	}
	tbl.DoBatch(keys, func(k uint64) {
		invoice[k] += meter[k]
		meter[k] = 0
	})

	total := 0
	for a := range invoice {
		total += invoice[a]
	}
	fmt.Printf("settled %d events across %d accounts (want %d): invoices %v\n",
		total, accounts, producers*events, invoice)
	if total != producers*events || !tbl.Quiesced() {
		panic("asyncbatch: lost or duplicated events")
	}
}
