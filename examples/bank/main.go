// bank: concurrent transfers between accounts under the recoverable mutex,
// with injected crashes. The conserved quantity — the sum over all accounts
// — must be intact at the end, and it is, because a worker that dies inside
// the critical section is resumed by its successor *before anyone else can
// observe the half-done transfer* (critical-section re-entry, the paper's
// CSR property).
//
// For contrast, run with -unsafe to replace crash recovery by "just start
// over with a fresh lock-free retry", which loses CSR and corrupts the
// balance sheet.
//
//	go run ./examples/bank
//	go run ./examples/bank -unsafe
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

const (
	accounts   = 16
	ports      = 4
	transfers  = 800
	initalBal  = 1000
	totalMoney = accounts * initalBal
)

// ledger is the NVM state: balances plus a per-port transfer journal.
type ledger struct {
	m       *rme.Mutex
	balance [accounts]int
	// journal[port] records the in-flight transfer and how far it got, so
	// a successor can finish it (redo logging, one slot per port).
	journal [ports]journalEntry
}

type journalEntry struct {
	from, to  int
	amount    int
	debited   bool
	credited  bool
	completed bool
}

func withRecovery(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isCrash := rme.AsCrash(r); !isCrash {
				panic(r)
			}
			ok = false
		}
	}()
	fn()
	return true
}

func (l *ledger) lockRetry(port int) {
	for !withRecovery(func() { l.m.Lock(port) }) {
	}
}

func (l *ledger) unlockRetry(port int) {
	for {
		if withRecovery(func() { l.m.Unlock(port) }) {
			return
		}
		l.lockRetry(port)
	}
}

// transfer moves money with full crash recovery: the journal is written
// before the mutation, each mutation step is recorded, and a successor
// resumes exactly where the dead worker stopped — including a death right
// between the debit and the credit (the explicit CrashPoint below). CSR
// guarantees no other worker sees the half-done state in between.
func (l *ledger) transfer(port, from, to, amount int) {
	j := &l.journal[port]
	*j = journalEntry{from: from, to: to, amount: amount}
	for {
		ok := withRecovery(func() {
			l.m.Lock(port) // recovers whatever a dead predecessor left
			if !j.debited {
				l.balance[j.from] -= j.amount
				j.debited = true
			}
			l.m.CrashPoint(port, "app.mid-transfer")
			if !j.credited {
				l.balance[j.to] += j.amount
				j.credited = true
			}
			j.completed = true
			l.m.Unlock(port)
		})
		if ok {
			break
		}
	}
	*j = journalEntry{}
}

// transferUnsafe demonstrates the failure mode the recoverable mutex
// prevents: on a crash it abandons the passage and retries the whole
// transfer from scratch with no journal, so a death between the debit and
// the credit destroys money.
func (l *ledger) transferUnsafe(port, from, to, amount int) {
	for {
		done := withRecovery(func() {
			l.m.Lock(port)
			l.balance[from] -= amount
			// An application-level crash point between debit and credit.
			l.m.CrashPoint(port, "app.mid-transfer")
			l.balance[to] += amount
			l.m.Unlock(port)
		})
		if done {
			return
		}
		// "Recovery": release whatever we still hold, then blind retry.
		if l.m.Held(port) {
			l.unlockRetry(port)
		}
	}
}

func main() {
	unsafe := flag.Bool("unsafe", false, "use the non-recoverable retry strategy (loses money)")
	flag.Parse()

	l := &ledger{m: rme.New(ports)}
	for i := range l.balance {
		l.balance[i] = initalBal
	}

	var calls, crashCount atomic.Uint64
	l.m.SetCrashFunc(func(port int, point string) bool {
		if xrand.Mix64(calls.Add(1))%601 == 0 {
			crashCount.Add(1)
			return true
		}
		return false
	})

	var wg sync.WaitGroup
	for p := 0; p < ports; p++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			rng := uint64(port + 1)
			for i := 0; i < transfers; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := int(rng>>33) % accounts
				to := (from + 1 + int(rng>>13)%(accounts-1)) % accounts
				if *unsafe {
					l.transferUnsafe(port, from, to, 1+int(rng)%10)
				} else {
					l.transfer(port, from, to, 1+int(rng)%10)
				}
			}
		}(p)
	}
	wg.Wait()

	total := 0
	for _, b := range l.balance {
		total += b
	}
	fmt.Printf("crashes survived: %d\n", crashCount.Load())
	fmt.Printf("total money:      %d (want %d)\n", total, totalMoney)
	switch {
	case total == totalMoney:
		fmt.Println("OK: conservation held through the crash storm")
	case *unsafe:
		fmt.Println("EXPECTED FAILURE: without journaled recovery, crashes destroy money")
	default:
		fmt.Println("BUG: money not conserved")
	}
}
