// figure5: replay the paper's Figure 5 queue-repair walkthrough on the
// simulated machine and print the queue after each of the five repairs —
// the same five panels as the figure.
//
//	go run ./examples/figure5
package main

import (
	"fmt"
	"os"

	"github.com/rmelib/rme/internal/experiments"
)

func main() {
	fmt.Println("Figure 5 (paper, Appendix B): repair of a queue broken by five crashes.")
	fmt.Println("π1, π3, π5 crashed at line 14; π7, π8 at line 13; repairs run π1, π7, π5, π8, π3.")
	fmt.Println()
	states, err := experiments.Figure5States()
	if err != nil {
		fmt.Fprintf(os.Stderr, "figure5: %v\n", err)
		os.Exit(1)
	}
	for _, s := range states {
		fmt.Println("  " + s)
	}
	fmt.Println()
	fmt.Println("Every intermediate state was checked against the figure; the final chain")
	fmt.Println("π4→π3→π8→π6→π5→π7→π2→π1 hands the CS over in exactly that order.")
}
