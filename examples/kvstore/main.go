// kvstore: a crash-consistent key-value store guarded by the recoverable
// mutex. Workers apply read-modify-write transactions; injected crashes
// kill them at arbitrary protocol steps (including while holding the lock
// or half-way through releasing it); the same worker loop recovers by
// re-calling Lock on its port, exactly as a restarted process would.
//
// The store and the per-port intent records live in "non-volatile" memory
// (heap owned by the store, surviving worker deaths), mirroring how the
// lock itself survives. The invariant checked at the end: every transaction
// applied exactly once, despite hundreds of injected crashes.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

// intent is a redo record, written before the store mutation so a
// successor can tell whether a dead worker's transaction still needs
// applying. One slot per port: a port runs one transaction at a time.
type intent struct {
	key     string
	delta   int
	applied bool // set inside the CS, once the mutation hit the store
}

// store is the NVM side: the map, the per-port intent slots, and the lock.
type store struct {
	m       *rme.Mutex
	data    map[string]int
	intents []intent
}

func newStore(ports int) *store {
	return &store{
		m:       rme.New(ports),
		data:    make(map[string]int),
		intents: make([]intent, ports),
	}
}

// crashes counts injected deaths, for the report.
var crashes atomic.Int64

// withRecovery runs fn, converting an injected crash into a false return
// (any other panic propagates).
func withRecovery(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isCrash := rme.AsCrash(r); !isCrash {
				panic(r)
			}
			crashes.Add(1)
			ok = false
		}
	}()
	fn()
	return true
}

// lockRetry is the recovery protocol: a worker that died during Lock is
// replaced by re-calling Lock on the same port.
func (s *store) lockRetry(port int) {
	for !withRecovery(func() { s.m.Lock(port) }) {
	}
}

// unlockRetry releases the CS; a death during Unlock is recovered by
// re-acquiring (the algorithm completes the interrupted release first) and
// trying again. The intent's applied flag prevents double-applying.
func (s *store) unlockRetry(port int) {
	for {
		if withRecovery(func() { s.m.Unlock(port) }) {
			return
		}
		s.lockRetry(port)
	}
}

// apply commits one transaction through port, surviving any number of
// injected crashes.
func (s *store) apply(port int, key string, delta int) {
	in := &s.intents[port]
	*in = intent{key: key, delta: delta}
	s.lockRetry(port)
	if !in.applied { // skip if a predecessor instance already applied it
		s.data[in.key] += in.delta
		in.applied = true
	}
	s.unlockRetry(port)
	in.applied = false
}

func main() {
	const ports, perWorker = 6, 500
	s := newStore(ports)

	// Random crash injection across every protocol step.
	var calls atomic.Uint64
	s.m.SetCrashFunc(func(port int, point string) bool {
		return xrand.Mix64(calls.Add(1))%701 == 0
	})

	var wg sync.WaitGroup
	for p := 0; p < ports; p++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.apply(port, fmt.Sprintf("key-%d", i%8), 1)
			}
		}(p)
	}
	wg.Wait()

	total := 0
	for _, v := range s.data {
		total += v
	}
	fmt.Printf("transactions applied: %d\n", total)
	fmt.Printf("crashes survived:     %d\n", crashes.Load())
	if total == ports*perWorker {
		fmt.Println("OK: every transaction applied exactly once despite the crash storm")
	} else {
		fmt.Printf("MISMATCH: want %d\n", ports*perWorker)
	}
}
