// locktable: the keyed lock service under fire. A pool of worker
// goroutines increments per-account balances in a "non-volatile" ledger,
// locking each account by name through a LockTable — millions of possible
// account keys striped over a small arena of recoverable mutexes, with
// port identities leased per passage instead of pinned per goroutine.
//
// Injected crashes kill workers at arbitrary protocol steps, including
// inside the critical section and half-way through a release. A dying
// worker's lease is orphaned in its last breath (the library's
// OrphanOnCrash guard runs as the Crash panic unwinds); the supervisor
// that observes the death runs a reclaim sweep, which recovers the
// orphaned port — re-entering the critical section if the dead worker
// held it, repairing the queue if it died waiting — hands the stripe back,
// and reports the key so the application can redo or undo.
//
// Alongside the storm, an auditor reports running totals on a latency
// budget: each account is read under LockContext with 1ms to spare, and a
// stripe that cannot be won in time — busy, or stalled behind a dead
// tenancy awaiting reclaim — sheds with context.DeadlineExceeded and the
// auditor degrades to the account's last published balance instead of
// queueing behind recovery.
//
// The invariant checked at the end: every increment applied exactly once
// and no port left orphaned, despite the crash storm.
//
//	go run ./examples/locktable
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

const (
	workers  = 8
	accounts = 6
	deposits = 400 // per worker
)

var crashes, reclaimed, inCSDeaths atomic.Int64

// ledger is the NVM side: balances and the keyed lock protecting them.
// Balances are plain ints on purpose — only the table's mutual exclusion
// keeps the read-modify-write sound.
type ledger struct {
	tbl      *rme.LockTable
	balances [accounts]int

	// published mirrors each balance, stored under the account's lock on
	// every deposit — the stale-but-consistent value the auditor's
	// degraded path serves when its lock budget expires.
	published [accounts]atomic.Int64
}

func accountName(i int) string { return fmt.Sprintf("acct/%03d", i) }

// withRecovery runs fn, converting an injected crash into a false return
// and sweeping the orphan the death left behind (any other panic
// propagates). The sweep is what keeps the stripe live: an unreclaimed
// orphan stalls every key hashing to it. This hand-built loop exists to
// showcase ReclaimWith's application hook; when no redo/undo bookkeeping
// is needed, LockTable.Do packages the same pattern.
func (l *ledger) withRecovery(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isCrash := rme.AsCrash(r); !isCrash {
				panic(r)
			}
			crashes.Add(1)
			reclaimed.Add(int64(l.tbl.ReclaimWith(func(key uint64, inCS bool) {
				if inCS {
					inCSDeaths.Add(1)
				}
			})))
			ok = false
		}
	}()
	fn()
	return true
}

// deposit adds amount to the named account, surviving any number of
// injected deaths: a crashed Lock is retried (the reclaim in withRecovery
// freed the dead tenancy first), and a crashed Unlock is finished by the
// sweep itself, so the deposit — applied before the release began — counts
// exactly once either way.
func (l *ledger) deposit(acct string, amount int) {
	for !l.withRecovery(func() { l.tbl.LockString(acct) }) {
	}
	idx := 0
	fmt.Sscanf(acct, "acct/%d", &idx)
	l.balances[idx] += amount
	l.published[idx].Store(int64(l.balances[idx]))
	l.withRecovery(func() { l.tbl.UnlockString(acct) })
}

// auditTotal sums every account on a 1ms-per-key latency budget. An
// account whose stripe is won in time is read exactly; one that sheds on
// the deadline (or whose auditor passage is killed by the crash storm)
// degrades to its last published balance. The return reports how many
// accounts took the degraded path, so a caller can tell a clean audit
// from a best-effort one.
func (l *ledger) auditTotal() (total int, degraded int) {
	for i := 0; i < accounts; i++ {
		acct := accountName(i)
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		var err error
		ok := l.withRecovery(func() { err = l.tbl.LockContextString(ctx, acct) })
		cancel()
		if !ok || err != nil {
			total += int(l.published[i].Load())
			degraded++
			continue
		}
		total += l.balances[i]
		l.withRecovery(func() { l.tbl.UnlockString(acct) })
	}
	return total, degraded
}

func main() {
	l := &ledger{tbl: rme.NewLockTable(4, 2, rme.WithNodePool(true))}

	// Kill a worker roughly every two thousand protocol steps.
	var calls atomic.Uint64
	l.tbl.SetCrashFunc(func(port int, point string) bool {
		return xrand.Mix64(calls.Add(1))%2048 == 0
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < deposits; i++ {
				l.deposit(accountName(rng.Intn(accounts)), 1)
			}
		}(w)
	}

	// Deadline-shedding reporter: audit the ledger throughout the storm on
	// a 1ms budget per account, degrading rather than queueing when a
	// stripe cannot be won in time.
	stormDone := make(chan struct{})
	var audits, degradedReads atomic.Int64
	var auditor sync.WaitGroup
	auditor.Add(1)
	go func() {
		defer auditor.Done()
		for {
			select {
			case <-stormDone:
				return
			default:
			}
			_, degraded := l.auditTotal()
			audits.Add(1)
			degradedReads.Add(int64(degraded))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stormDone)
	auditor.Wait()
	l.tbl.SetCrashFunc(nil)
	reclaimed.Add(int64(l.tbl.Reclaim())) // final sweep

	total := 0
	for i := range l.balances {
		fmt.Printf("%s balance %d\n", accountName(i), l.balances[i])
		total += l.balances[i]
	}
	fmt.Printf("\n%d deposits by %d workers, %d injected deaths (%d inside the CS), %d leases reclaimed\n",
		total, workers, crashes.Load(), inCSDeaths.Load(), reclaimed.Load())
	st := l.tbl.Stats().Total()
	fmt.Printf("%d budget audits during the storm: %d degraded reads, %d deadline sheds counted by the table\n",
		audits.Load(), degradedReads.Load(), st.Timeouts)
	if final, degraded := l.auditTotal(); degraded != 0 || final != total {
		panic(fmt.Sprintf("post-storm audit degraded=%d total=%d, want clean total %d", degraded, final, total))
	}
	if want := workers * deposits; total != want {
		panic(fmt.Sprintf("LOST OR DOUBLED DEPOSITS: total %d, want %d", total, want))
	}

	// One deliberate shed: hold an account and audit again. The held
	// stripe (plus any account striped with it) blows the 1ms budget and
	// degrades to its published balance; every other account still reads
	// exactly, and the total is unchanged because the degraded copies are
	// current.
	l.tbl.LockString(accountName(0))
	shedTotal, degraded := l.auditTotal()
	l.tbl.UnlockString(accountName(0))
	fmt.Printf("audit with %s held: %d degraded read(s), total still %d\n",
		accountName(0), degraded, shedTotal)
	if degraded == 0 || shedTotal != total {
		panic(fmt.Sprintf("held stripe: degraded=%d total=%d, want >=1 degraded and total %d",
			degraded, shedTotal, total))
	}

	// The shed's cooperative fix-up (a background recovery pass on the
	// abandoned port) finishes on its own — no Reclaim needed — so the
	// table quiesces within moments of the release.
	for deadline := time.Now().Add(5 * time.Second); !l.tbl.Quiesced(); {
		if time.Now().After(deadline) {
			panic("table not quiesced after the storm")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("every deposit applied exactly once; table quiesced")
}
