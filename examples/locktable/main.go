// locktable: the keyed lock service under fire. A pool of worker
// goroutines increments per-account balances in a "non-volatile" ledger,
// locking each account by name through a LockTable — millions of possible
// account keys striped over a small arena of recoverable mutexes, with
// port identities leased per passage instead of pinned per goroutine.
//
// Injected crashes kill workers at arbitrary protocol steps, including
// inside the critical section and half-way through a release. A dying
// worker's lease is orphaned in its last breath (the library's
// OrphanOnCrash guard runs as the Crash panic unwinds); the supervisor
// that observes the death runs a reclaim sweep, which recovers the
// orphaned port — re-entering the critical section if the dead worker
// held it, repairing the queue if it died waiting — hands the stripe back,
// and reports the key so the application can redo or undo.
//
// The invariant checked at the end: every increment applied exactly once
// and no port left orphaned, despite the crash storm.
//
//	go run ./examples/locktable
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

const (
	workers  = 8
	accounts = 6
	deposits = 400 // per worker
)

var crashes, reclaimed, inCSDeaths atomic.Int64

// ledger is the NVM side: balances and the keyed lock protecting them.
// Balances are plain ints on purpose — only the table's mutual exclusion
// keeps the read-modify-write sound.
type ledger struct {
	tbl      *rme.LockTable
	balances [accounts]int
}

func accountName(i int) string { return fmt.Sprintf("acct/%03d", i) }

// withRecovery runs fn, converting an injected crash into a false return
// and sweeping the orphan the death left behind (any other panic
// propagates). The sweep is what keeps the stripe live: an unreclaimed
// orphan stalls every key hashing to it. This hand-built loop exists to
// showcase ReclaimWith's application hook; when no redo/undo bookkeeping
// is needed, LockTable.Do packages the same pattern.
func (l *ledger) withRecovery(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isCrash := rme.AsCrash(r); !isCrash {
				panic(r)
			}
			crashes.Add(1)
			reclaimed.Add(int64(l.tbl.ReclaimWith(func(key uint64, inCS bool) {
				if inCS {
					inCSDeaths.Add(1)
				}
			})))
			ok = false
		}
	}()
	fn()
	return true
}

// deposit adds amount to the named account, surviving any number of
// injected deaths: a crashed Lock is retried (the reclaim in withRecovery
// freed the dead tenancy first), and a crashed Unlock is finished by the
// sweep itself, so the deposit — applied before the release began — counts
// exactly once either way.
func (l *ledger) deposit(acct string, amount int) {
	for !l.withRecovery(func() { l.tbl.LockString(acct) }) {
	}
	idx := 0
	fmt.Sscanf(acct, "acct/%d", &idx)
	l.balances[idx] += amount
	l.withRecovery(func() { l.tbl.UnlockString(acct) })
}

func main() {
	l := &ledger{tbl: rme.NewLockTable(4, 2, rme.WithNodePool(true))}

	// Kill a worker roughly every two thousand protocol steps.
	var calls atomic.Uint64
	l.tbl.SetCrashFunc(func(port int, point string) bool {
		return xrand.Mix64(calls.Add(1))%2048 == 0
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < deposits; i++ {
				l.deposit(accountName(rng.Intn(accounts)), 1)
			}
		}(w)
	}
	wg.Wait()
	l.tbl.SetCrashFunc(nil)
	reclaimed.Add(int64(l.tbl.Reclaim())) // final sweep

	total := 0
	for i := range l.balances {
		fmt.Printf("%s balance %d\n", accountName(i), l.balances[i])
		total += l.balances[i]
	}
	fmt.Printf("\n%d deposits by %d workers, %d injected deaths (%d inside the CS), %d leases reclaimed\n",
		total, workers, crashes.Load(), inCSDeaths.Load(), reclaimed.Load())
	if want := workers * deposits; total != want {
		panic(fmt.Sprintf("LOST OR DOUBLED DEPOSITS: total %d, want %d", total, want))
	}
	if !l.tbl.Quiesced() {
		panic("table not quiesced after the storm")
	}
	fmt.Println("every deposit applied exactly once; table quiesced")
}
