// locktable: the self-managing keyed lock service under fire. A pool of
// worker goroutines increments per-account balances in a "non-volatile"
// ledger, locking each account by name through a LockTable — many
// possible account keys striped over a small arena of recoverable
// mutexes, with port identities leased per passage instead of pinned per
// goroutine.
//
// Injected crashes kill workers at arbitrary protocol steps, including
// inside the critical section and half-way through a release. A dying
// worker's lease is orphaned in its last breath (the library's
// OrphanOnCrash guard runs as the Crash panic unwinds) — and then nobody
// in this program cleans it up, because the table was built with
// WithSupervisor: its background supervisor claims the orphan on the
// next tick, re-enters the critical section if the dead worker held it,
// repairs the queue if it died waiting, and hands the port back. The
// crashed worker just retries. Earlier revisions of this example ran a
// hand-rolled reclaim sweep in every worker's recovery path; the
// supervised table makes that whole pattern disappear.
//
// The account traffic is deliberately skewed (a zipf draw puts most
// deposits on one hot account), so the supervisor's adaptive policies
// have something to notice: cold stripes shrink their port pools toward
// the floor while the hot stripe keeps its full complement, and the hot
// stripe's wakes-per-acquisition profile drives a live migration from
// the flat lock shape it started with to a shape built for hand-off
// traffic — while deposits keep flowing.
//
// Alongside the storm, an auditor reports running totals on a latency
// budget: each account is read under LockContext with 1ms to spare, and
// a stripe that cannot be won in time — busy, or stalled behind a dead
// tenancy the supervisor has not reached yet — sheds with
// context.DeadlineExceeded and the auditor degrades to the account's
// last published balance instead of queueing behind recovery.
//
// The invariant checked at the end: every increment applied exactly
// once and no port left orphaned, despite the crash storm and the
// stripe shapes changing underfoot — with SupervisorStats showing who
// did the housekeeping.
//
//	go run ./examples/locktable
package main

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

const (
	workers  = 8
	accounts = 6
	deposits = 2500 // per worker
)

var crashes atomic.Int64

// ledger is the NVM side: balances and the keyed lock protecting them.
// Balances are plain ints on purpose — only the table's mutual exclusion
// keeps the read-modify-write sound.
type ledger struct {
	tbl      *rme.LockTable
	balances [accounts]int

	// published mirrors each balance, stored under the account's lock on
	// every deposit — the stale-but-consistent value the auditor's
	// degraded path serves when its lock budget expires.
	published [accounts]atomic.Int64
}

func accountName(i int) string { return fmt.Sprintf("acct/%03d", i) }

// withRecovery runs fn, converting an injected crash into a false return
// (any other panic propagates). Note what is missing compared to a
// hand-rolled supervisor: no Reclaim call. The orphan the death left
// behind is the table's own problem now — its supervisor claims and
// recovers it within a tick — so recovery here is just "count it and
// retry".
func withRecovery(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isCrash := rme.AsCrash(r); !isCrash {
				panic(r)
			}
			crashes.Add(1)
			ok = false
		}
	}()
	fn()
	return true
}

// deposit adds amount to the named account, surviving any number of
// injected deaths: a crashed Lock is simply retried (the retry parks
// until the supervisor has healed the dead tenancy in its way, if any),
// and a crashed Unlock is finished by the supervisor itself, so the
// deposit — applied before the release began — counts exactly once
// either way. The scheduler yield inside the critical section models
// real CS work crossing a scheduler boundary; it is also what makes the
// hot account genuinely contended on any GOMAXPROCS, giving the
// supervisor's shape policy a hand-off profile worth migrating for.
func (l *ledger) deposit(acct string, amount int) {
	for !withRecovery(func() { l.tbl.LockString(acct) }) {
	}
	idx := 0
	fmt.Sscanf(acct, "acct/%d", &idx)
	l.balances[idx] += amount
	runtime.Gosched() // critical-section work
	l.published[idx].Store(int64(l.balances[idx]))
	withRecovery(func() { l.tbl.UnlockString(acct) })
}

// auditTotal sums every account on a 1ms-per-key latency budget. An
// account whose stripe is won in time is read exactly; one that sheds on
// the deadline (or whose auditor passage is killed by the crash storm)
// degrades to its last published balance. The return reports how many
// accounts took the degraded path, so a caller can tell a clean audit
// from a best-effort one.
func (l *ledger) auditTotal() (total int, degraded int) {
	for i := 0; i < accounts; i++ {
		acct := accountName(i)
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		var err error
		ok := withRecovery(func() { err = l.tbl.LockContextString(ctx, acct) })
		cancel()
		if !ok || err != nil {
			total += int(l.published[i].Load())
			degraded++
			continue
		}
		total += l.balances[i]
		withRecovery(func() { l.tbl.UnlockString(acct) })
	}
	return total, degraded
}

func main() {
	// A 4-stripe × 48-port arena, deliberately built on flat shards — the
	// wrong shape for a 48-port stripe under hand-off-heavy traffic — and
	// handed to a supervisor aggressive enough to fix that during the
	// storm: millisecond ticks, adaptive pools with a floor of 4 ports,
	// and shape migration at a low wakes-per-acquisition threshold.
	l := &ledger{tbl: rme.NewLockTable(4, 48,
		rme.WithNodePool(true),
		rme.WithShardBackend(rme.FlatBackend),
		rme.WithSupervisor(rme.SupervisorConfig{
			Interval:        time.Millisecond,
			AdaptivePorts:   true,
			MinPorts:        4,
			Migrate:         true,
			HotWakesPerOp:   0.05,
			ColdWakesPerOp:  0.005,
			HysteresisTicks: 2,
		}))}
	defer l.tbl.Close() // joins the supervisor and every heal it started

	// Kill a worker roughly every two thousand protocol steps.
	var calls atomic.Uint64
	l.tbl.SetCrashFunc(func(port int, point string) bool {
		return xrand.Mix64(calls.Add(1))%2048 == 0
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Zipf-skewed account choice: most deposits land on the hot
			// account, the tail spreads over the rest.
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < deposits; i++ {
				acct := 0
				if rng.Uint64()%3 == 0 { // ~1/3 of traffic off the hot key
					acct = 1 + rng.Intn(accounts-1)
				}
				l.deposit(accountName(acct), 1)
			}
		}(w)
	}

	// Deadline-shedding reporter: audit the ledger throughout the storm on
	// a 1ms budget per account, degrading rather than queueing when a
	// stripe cannot be won in time.
	stormDone := make(chan struct{})
	var audits, degradedReads atomic.Int64
	var auditor sync.WaitGroup
	auditor.Add(1)
	go func() {
		defer auditor.Done()
		for {
			select {
			case <-stormDone:
				return
			default:
			}
			_, degraded := l.auditTotal()
			audits.Add(1)
			degradedReads.Add(int64(degraded))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stormDone)
	auditor.Wait()
	l.tbl.SetCrashFunc(nil)

	// No final sweep: the supervisor drains the storm's leftovers on its
	// own, and the table reports quiescent — no orphans, no queued async
	// work — within a few ticks of the last death.
	for deadline := time.Now().Add(5 * time.Second); !l.tbl.Quiesced(); {
		if time.Now().After(deadline) {
			panic("table not quiesced after the storm")
		}
		time.Sleep(time.Millisecond)
	}

	total := 0
	for i := range l.balances {
		fmt.Printf("%s balance %d\n", accountName(i), l.balances[i])
		total += l.balances[i]
	}
	fmt.Printf("\n%d deposits by %d workers, %d injected deaths, zero Reclaim calls in this program\n",
		total, workers, crashes.Load())

	st := l.tbl.Stats()
	sup := st.Supervisor
	fmt.Printf("supervisor: %d sweeps, %d orphaned ports healed across %d stripe heals\n",
		sup.Sweeps, sup.PortsHealed, sup.StripesHealed)
	fmt.Printf("pool policy: %d shrinks, %d grows, %d steals; shape policy: %d migrations (%d→tree, %d→mcs, %d→flat)\n",
		sup.Shrinks, sup.Grows, sup.Steals,
		sup.Migrations(), sup.MigrationsToTree, sup.MigrationsToMCS, sup.MigrationsToFlat)
	for i, sh := range st.Shards {
		fmt.Printf("  stripe %d: backend=%s active_ports=%d acquires=%d wakes/op=%.2f\n",
			i, sh.Backend, sh.ActivePorts, sh.Acquires, sh.WakesPerOp())
	}
	fmt.Printf("%d budget audits during the storm: %d degraded reads, %d deadline sheds counted by the table\n",
		audits.Load(), degradedReads.Load(), st.Total().Timeouts)

	if final, degraded := l.auditTotal(); degraded != 0 || final != total {
		panic(fmt.Sprintf("post-storm audit degraded=%d total=%d, want clean total %d", degraded, final, total))
	}
	if want := workers * deposits; total != want {
		panic(fmt.Sprintf("LOST OR DOUBLED DEPOSITS: total %d, want %d", total, want))
	}
	if crashes.Load() > 0 && sup.PortsHealed == 0 {
		panic("workers crashed but the supervisor healed nothing — who cleaned up?")
	}

	// One deliberate shed: hold an account and audit again. The held
	// stripe (plus any account striped with it) blows the 1ms budget and
	// degrades to its published balance; every other account still reads
	// exactly, and the total is unchanged because the degraded copies are
	// current.
	l.tbl.LockString(accountName(0))
	shedTotal, degraded := l.auditTotal()
	l.tbl.UnlockString(accountName(0))
	fmt.Printf("audit with %s held: %d degraded read(s), total still %d\n",
		accountName(0), degraded, shedTotal)
	if degraded == 0 || shedTotal != total {
		panic(fmt.Sprintf("held stripe: degraded=%d total=%d, want >=1 degraded and total %d",
			degraded, shedTotal, total))
	}
	fmt.Println("every deposit applied exactly once; table quiesced; nobody called Reclaim")
}
