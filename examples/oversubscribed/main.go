// Oversubscribed: many more ports than processors, tuned with the
// wait-strategy and node-pool options. 32·GOMAXPROCS workers hammer one
// lock under the spin-then-park strategy — the workload where spinning
// waiters would otherwise starve the one goroutine able to make progress
// — with queue nodes recycled so steady-state passages allocate nothing.
//
//	go run ./examples/oversubscribed
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	rme "github.com/rmelib/rme"
)

func main() {
	procs := runtime.GOMAXPROCS(0)
	ports := 32 * procs
	const iters = 200

	m := rme.New(ports,
		rme.WithWaitStrategy(rme.SpinParkWaitStrategy(32)),
		rme.WithNodePool(true))

	counter := 0 // protected by m
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < ports; w++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock(port)
				counter++
				m.Unlock(port)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("%d ports on %d procs (%d× oversubscribed)\n", ports, procs, ports/procs)
	fmt.Printf("counter = %d (want %d)\n", counter, ports*iters)
	fmt.Printf("%d passages in %v (%.0f ns/passage)\n",
		ports*iters, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/float64(ports*iters))
}
