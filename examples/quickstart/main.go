// Quickstart: a recoverable mutex protecting a shared counter, with one
// worker dying mid-protocol and a replacement recovering its passage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	rme "github.com/rmelib/rme"
)

func main() {
	const workers, iters = 4, 1000

	// One port per worker. A port is a recovery identity: a replacement
	// worker that presents the same port continues the dead worker's
	// super-passage.
	m := rme.New(workers)

	counter := 0 // protected by m; deliberately not atomic

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock(port)
				counter++
				m.Unlock(port)
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("plain run:      counter = %d (want %d)\n", counter, workers*iters)

	// Now a crash: worker 0 dies while holding the lock. We inject the
	// crash with the test hook; in production the "crash" is a process or
	// machine failure with the lock state in non-volatile memory.
	var arm atomic.Bool
	m.SetCrashFunc(func(port int, point string) bool {
		return port == 0 && point == "L27" && arm.Swap(false)
	})
	arm.Store(true)

	func() {
		defer func() {
			if c, ok := rme.AsCrash(recover()); ok {
				fmt.Printf("worker crashed: %v\n", c)
			}
		}()
		m.Lock(0)
		counter++ // did its work, died on the way out
		m.Unlock(0)
	}()

	fmt.Printf("holder died in the critical section: Held(0) = %v\n", m.Held(0))

	// A replacement worker recovers: Lock on the same port returns
	// immediately (wait-free critical-section re-entry), and nobody else
	// got in between.
	m.Lock(0)
	fmt.Println("replacement recovered the critical section")
	m.Unlock(0)

	// Everyone else is still fine.
	m.SetCrashFunc(nil)
	m.Lock(1)
	counter++
	m.Unlock(1)
	fmt.Printf("after recovery: counter = %d (want %d)\n", counter, workers*iters+2)
}
