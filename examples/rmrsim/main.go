// rmrsim: run the head-to-head RMR comparison (experiment E5) on the
// simulated CC and DSM machines and print the table the paper's complexity
// claims predict: MCS and the paper's flat algorithm stay O(1) per passage,
// the read/write tournament grows like log n, the paper's arbitration tree
// sits in between at O(log n / log log n) — and of the four, only the
// paper's two are recoverable.
//
//	go run ./examples/rmrsim
package main

import (
	"fmt"
	"os"

	"github.com/rmelib/rme/internal/experiments"
)

func main() {
	res := experiments.E5Comparison()
	for _, tb := range res.Tables {
		fmt.Println(tb)
	}
	for _, n := range res.Notes {
		fmt.Println("  " + n)
	}
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "rmrsim: %v\n", res.Err)
		os.Exit(1)
	}
}
