package rme

import "time"

// Test-only bridge for the external (rme_test) suite.

// SetNoAbortFixup toggles the hazard hook that disables the cooperative
// abort fix-up, so the regression tests can reproduce both failure modes it
// prevents: the stranded stripe (a cancelled waiter parked as an orphan mid
// -queue) and the leaked grant (a cancelled-but-granted async request whose
// tenancy is dropped held). Production code never flips this.
func (t *LockTable) SetNoAbortFixup(on bool) { t.noAbortFixup.Store(on) }

// ForceMigrate drives one stripe's shape migration directly — the referee
// tests' handle on migrateShard, bypassing the supervisor's policy loop so
// a test can flip shapes on demand while traffic runs. Reports whether the
// swap happened within timeout.
func (t *LockTable) ForceMigrate(shard int, target ShardBackend, timeout time.Duration) bool {
	return t.migrateShard(shard, target, timeout)
}

// ShardBackendOf reports the lock shape currently behind one stripe.
func (t *LockTable) ShardBackendOf(shard int) ShardBackend {
	return ShardBackend(t.shards[shard].backend.Load())
}

// PoolActive reports one stripe's current active-port bound.
func (t *LockTable) PoolActive(shard int) int { return t.shards[shard].pool.Active() }

// SlackPorts reports the table's banked slack quota.
func (t *LockTable) SlackPorts() int { return int(t.slack.Load()) }

// PoolResize moves one stripe's active-port bound directly (the
// PortLeaser.Resize primitive), so steal/grow behavior is testable
// without waiting for a supervisor's shrink pass.
func (t *LockTable) PoolResize(shard, n int) int { return t.shards[shard].pool.Resize(n) }

// SetAdaptive flips the acquire path's work-stealing fallback and seeds
// the slack pool directly, so steal behavior is testable without running
// a supervisor's shrink pass first.
func (t *LockTable) SetAdaptive(on bool, slack int) {
	t.adaptive = on
	t.slack.Store(int64(slack))
}

// GateClosed reports whether one stripe's migration barrier is currently
// closed (mid-quiesce) — how the checkpoint tests pin "snapshot taken
// while a migration drain is in flight" without sleeping and hoping.
func (t *LockTable) GateClosed(shard int) bool { return t.shards[shard].gateClosed.Load() }

// SetGateClosed force-closes (or reopens) one stripe's migration barrier
// without running a migration — how the quiesce regression tests pin "a
// delivery is blocked at the gate, holding no lease yet" as a stable
// state instead of a microsecond window inside migrateShard. Reopening
// broadcasts both parked populations, exactly as reopenGate does.
func (t *LockTable) SetGateClosed(shard int, closed bool) {
	sh := &t.shards[shard]
	sh.gateClosed.Store(closed)
	if !closed {
		sh.gate.Broadcast()
		sh.pool.chain.Broadcast()
	}
}

// GateWaiters reports how many entrants are parked on one stripe's
// migration gate — the deterministic "the delivery has reached the
// barrier" probe the quiesce regression test polls.
func (t *LockTable) GateWaiters(shard int) int { return t.shards[shard].gate.Waiters() }

// PortEpoch reports one port's current lease-word fencing epoch, so the
// restore tests can assert every epoch advanced strictly across the
// process boundary.
func (t *LockTable) PortEpoch(shard, port int) uint64 { return t.shards[shard].pool.epochOf(port) }

// PortLeaseState reports one port's lease state.
func (t *LockTable) PortLeaseState(shard, port int) LeaseState {
	return t.shards[shard].pool.State(port)
}
