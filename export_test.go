package rme

// Test-only bridge for the external (rme_test) suite.

// SetNoAbortFixup toggles the hazard hook that disables the cooperative
// abort fix-up, so the regression tests can reproduce both failure modes it
// prevents: the stranded stripe (a cancelled waiter parked as an orphan mid
// -queue) and the leaked grant (a cancelled-but-granted async request whose
// tenancy is dropped held). Production code never flips this.
func (t *LockTable) SetNoAbortFixup(on bool) { t.noAbortFixup.Store(on) }
