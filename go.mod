module github.com/rmelib/rme

go 1.22
