// Package core implements the paper's primary contribution: the k-ported
// recoverable mutual-exclusion algorithm of Figures 3–4 (Jayanti, Jayanti,
// Joshi, PODC 2019), line-accurate, as a step machine over the simulated
// NVRAM of internal/memsim.
//
// The algorithm is an MCS-style queue lock made recoverable:
//
//   - each passage uses a QNode holding a Pred pointer and two Signal
//     objects (internal/sigobj): CS_Signal, by which the predecessor hands
//     the critical section over, and NonNil_Signal, by which repairing
//     processes wait for the node's Pred to become non-NIL;
//   - a port table Node[0..k-1] binds in-flight QNodes to ports so a
//     crashed process can find the node of its interrupted passage;
//   - a process that crashed around its FAS on Tail (lines 13–14) repairs
//     the queue inside the CS of an auxiliary recoverable lock, RLock
//     (internal/rlock): it scans the Node table, builds the fragment graph,
//     computes its maximal paths, and re-attaches its own fragment either
//     by a fresh FAS on Tail (line 47) or by pointing at the head fragment
//     or the SpecialNode (line 48). Exploration is *shallow* — each scanned
//     node contributes one edge — which is what gives O(k) local steps and
//     an O(1)-word cache footprint (§1.5); the deep-exploration variant of
//     Golab–Hendler is available behind Config.DeepExploration for the
//     ablation experiment E9.
//
// Program counters follow the paper's line numbers (value = 10×line, with
// sub-steps for Signal calls), and each machine maintains the hidden
// variable P̂C from the annotated Figures 6–7, which the invariant checker
// (invariant.go) uses to verify the Appendix C conditions at every step.
//
// Complexity (Theorem 2, measured by experiments E2/E3): O(1) RMRs per
// crash-free passage and O(f·k) for a super-passage with f crashes, on both
// CC and DSM.
package core

import (
	"fmt"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/rlock"
	"github.com/rmelib/rme/internal/sigobj"
)

// QNode field offsets. A QNode occupies NodeWords consecutive words:
// Pred, then the two embedded Signal instances.
const (
	OffPred   = 0
	OffNonNil = 1 // NonNil_Signal (sigobj.Words wide)
	OffCS     = 3 // CS_Signal (sigobj.Words wide)
	NodeWords = 5
)

// Config parameterizes one lock instance.
type Config struct {
	// Ports is k, the number of ports (Figure 3). Every in-flight
	// super-passage owns one port exclusively.
	Ports int
	// DeepExploration switches the repair scan to Golab–Hendler-style deep
	// chasing of predecessor chains (experiment E9's ablation). The default
	// (false) is the paper's shallow exploration.
	DeepExploration bool
}

// Shared is the NVRAM layout of one lock instance: the sentinel QNodes, the
// SpecialNode, the Tail pointer, the Node port table and the embedded
// RLock. Shared is immutable after construction (all mutable state lives in
// simulated memory) and is used by up to k Handles concurrently.
type Shared struct {
	mem *memsim.Memory
	cfg Config

	// Sentinel QNodes (Figure 3): Crash.Pred = &Crash, InCS.Pred = &InCS,
	// Exit.Pred = &Exit.
	CrashNode memsim.Addr
	InCSNode  memsim.Addr
	ExitNode  memsim.Addr
	// SpecialNode.Pred = &Exit with both signals pre-set.
	SpecialNode memsim.Addr

	// Tail points at the most recent queue node (initially &SpecialNode).
	Tail memsim.Addr
	// NodeTab is the base of the Node[0..k-1] array (initially all NIL).
	NodeTab memsim.Addr

	// RLock is the repair lock: a k-ported starvation-free RME lock with
	// O(k) RMRs per passage (Figure 3's requirement).
	RLock *rlock.Lock

	// allNodes mirrors the paper's hidden set N (every QNode created at
	// line 11) for the invariant checker; the algorithm never reads it.
	allNodes []memsim.Addr
}

// NewShared allocates a lock instance in mem. Sentinels, Tail and the Node
// table live in the shared home region: on DSM every access to them is
// remote, matching the paper's accounting (the per-passage count of such
// accesses is O(1)).
func NewShared(mem *memsim.Memory, cfg Config) *Shared {
	if cfg.Ports <= 0 {
		panic("core: Ports must be positive")
	}
	s := &Shared{mem: mem, cfg: cfg}

	alloc := func() memsim.Addr { return mem.Alloc(memsim.HomeShared, NodeWords) }
	s.CrashNode = alloc()
	s.InCSNode = alloc()
	s.ExitNode = alloc()
	s.SpecialNode = alloc()
	mem.Poke(s.CrashNode+OffPred, memsim.Word(s.CrashNode))
	mem.Poke(s.InCSNode+OffPred, memsim.Word(s.InCSNode))
	mem.Poke(s.ExitNode+OffPred, memsim.Word(s.ExitNode))
	mem.Poke(s.SpecialNode+OffPred, memsim.Word(s.ExitNode))
	sigobj.ForceSet(mem, s.SpecialNode+OffNonNil)
	sigobj.ForceSet(mem, s.SpecialNode+OffCS)

	s.Tail = mem.Alloc(memsim.HomeShared, 1)
	mem.Poke(s.Tail, memsim.Word(s.SpecialNode))

	s.NodeTab = mem.Alloc(memsim.HomeShared, cfg.Ports)
	s.RLock = rlock.New(mem, cfg.Ports)
	return s
}

// Ports returns k.
func (s *Shared) Ports() int { return s.cfg.Ports }

// Mem returns the backing memory (used by checkers and renderers).
func (s *Shared) Mem() *memsim.Memory { return s.mem }

// nodeCell returns the address of Node[p].
func (s *Shared) nodeCell(p int) memsim.Addr {
	if p < 0 || p >= s.cfg.Ports {
		panic(fmt.Sprintf("core: port %d out of range [0,%d)", p, s.cfg.Ports))
	}
	return s.NodeTab + memsim.Addr(p)
}

// IsSentinel reports whether a is one of &Crash, &InCS, &Exit.
func (s *Shared) IsSentinel(a memsim.Addr) bool {
	return a == s.CrashNode || a == s.InCSNode || a == s.ExitNode
}

// SentinelName renders sentinel addresses for traces and test output.
func (s *Shared) SentinelName(a memsim.Addr) string {
	switch a {
	case s.CrashNode:
		return "&Crash"
	case s.InCSNode:
		return "&InCS"
	case s.ExitNode:
		return "&Exit"
	case s.SpecialNode:
		return "&Special"
	case memsim.NilAddr:
		return "NIL"
	default:
		return fmt.Sprintf("node@%d", a)
	}
}

// PeekPred reads a node's Pred without accounting (checkers only).
func (s *Shared) PeekPred(node memsim.Addr) memsim.Addr {
	return memsim.Addr(s.mem.Peek(node + OffPred))
}

// PeekNodeCell reads Node[p] without accounting (checkers only).
func (s *Shared) PeekNodeCell(p int) memsim.Addr {
	return memsim.Addr(s.mem.Peek(s.nodeCell(p)))
}

// PeekTail reads Tail without accounting (checkers only).
func (s *Shared) PeekTail() memsim.Addr {
	return memsim.Addr(s.mem.Peek(s.Tail))
}
