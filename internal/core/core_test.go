package core

import (
	"fmt"
	"testing"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/xrand"
)

func newWorld(t testing.TB, model memsim.Model, ports, dwell int) (*memsim.Memory, *Shared, []*Proc) {
	t.Helper()
	mem := memsim.New(memsim.Config{Model: model, Procs: ports})
	sh := NewShared(mem, Config{Ports: ports})
	procs := make([]*Proc, ports)
	for i := 0; i < ports; i++ {
		procs[i] = NewProc(sh, i, i, 1)
		_ = dwell
		procs[i].dwell = dwell
	}
	return mem, sh, procs
}

func asSched(ps []*Proc) []sched.Proc {
	out := make([]sched.Proc, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

func countCS(ps []*Proc) int {
	n := 0
	for _, p := range ps {
		if p.Section() == sched.CS {
			n++
		}
	}
	return n
}

func TestSingleProcessPassages(t *testing.T) {
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		t.Run(model.String(), func(t *testing.T) {
			_, sh, procs := newWorld(t, model, 1, 2)
			ck := NewChecker(sh, procs)
			r := &sched.Runner{
				Procs: asSched(procs),
				OnStep: func(sched.StepEvent) {
					if err := ck.Check(); err != nil {
						t.Fatalf("invariant: %v", err)
					}
				},
				StopWhen: sched.AllPassagesAtLeast(asSched(procs), 5),
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMutualExclusionAndInvariantNoCrashes(t *testing.T) {
	for _, ports := range []int{2, 3, 4, 8} {
		for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
			t.Run(fmt.Sprintf("k%d_%s", ports, model), func(t *testing.T) {
				_, sh, procs := newWorld(t, model, ports, 1)
				ck := NewChecker(sh, procs)
				var fail error
				r := &sched.Runner{
					Procs: asSched(procs),
					Sched: sched.Random{Src: xrand.New(uint64(ports)*31 + uint64(model))},
					OnStep: func(sched.StepEvent) {
						if fail == nil {
							fail = ck.Check()
						}
						if fail == nil && countCS(procs) > 1 {
							fail = fmt.Errorf("two clients in CS")
						}
					},
					StopWhen: sched.AllPassagesAtLeast(asSched(procs), 15),
				}
				if err := r.Run(); err != nil {
					t.Fatal(err)
				}
				if fail != nil {
					t.Fatal(fail)
				}
			})
		}
	}
}

func TestMutualExclusionAndInvariantWithCrashes(t *testing.T) {
	for _, ports := range []int{2, 4, 8} {
		for seed := uint64(0); seed < 10; seed++ {
			t.Run(fmt.Sprintf("k%d_seed%d", ports, seed), func(t *testing.T) {
				_, sh, procs := newWorld(t, memsim.DSM, ports, 1)
				ck := NewChecker(sh, procs)
				rng := xrand.New(seed*1009 + uint64(ports))
				var fail error
				r := &sched.Runner{
					Procs: asSched(procs),
					Sched: sched.Random{Src: rng},
					Crash: &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 60, Budget: 30},
					OnStep: func(sched.StepEvent) {
						if fail == nil {
							fail = ck.Check()
						}
					},
					StopWhen: sched.AllPassagesAtLeast(asSched(procs), 8),
				}
				if err := r.Run(); err != nil {
					t.Fatalf("run wedged: %v (crashes=%d)", err, r.TotalCrashes())
				}
				if fail != nil {
					t.Fatal(fail)
				}
			})
		}
	}
}

func TestPassageRMRConstantCrashFree(t *testing.T) {
	// Theorem 2's crash-free half (experiment E2): RMRs per passage must
	// not grow with k. Assert a fixed envelope that holds for k=2 and must
	// still hold at k=64.
	const envelope = 40.0
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		for _, ports := range []int{2, 4, 8, 16, 32, 64} {
			t.Run(fmt.Sprintf("%s_k%d", model, ports), func(t *testing.T) {
				mem, _, procs := newWorld(t, model, ports, 0)
				r := &sched.Runner{
					Procs:    asSched(procs),
					Sched:    sched.Random{Src: xrand.New(uint64(ports))},
					StopWhen: sched.AllPassagesAtLeast(asSched(procs), 12),
					MaxSteps: 1 << 24,
				}
				if err := r.Run(); err != nil {
					t.Fatal(err)
				}
				for i, p := range procs {
					per := float64(mem.Stats(i).RMRs) / float64(p.Passages())
					if per > envelope {
						t.Errorf("k=%d proc %d: %.1f RMRs/passage > %.0f (should be O(1))",
							ports, i, per, envelope)
					}
				}
			})
		}
	}
}

func TestWaitingIsLocalOnDSM(t *testing.T) {
	_, _, procs := newWorld(t, memsim.DSM, 2, 0)
	mem := procs[0].mem
	d := sched.NewDriver(asSched(procs)...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	d.Step(1, 40) // proc 1 reaches its CS-signal wait and spins
	before := mem.Stats(1).RMRs
	d.Step(1, 5000)
	if after := mem.Stats(1).RMRs; after != before {
		t.Fatalf("spinning cost %d RMRs on DSM; want 0", after-before)
	}
}

func TestWaitFreeExit(t *testing.T) {
	// Lemma 6: the Exit section (lines 27–29) completes in a bounded number
	// of the exiting process's own steps, regardless of contention.
	_, _, procs := newWorld(t, memsim.DSM, 8, 0)
	d := sched.NewDriver(asSched(procs)...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	for id := 1; id < 8; id++ {
		d.Step(id, 25) // rivals pile up mid-Try
	}
	if !d.StepUntilSection(0, sched.Exit) {
		t.Fatal("no Exit")
	}
	const bound = 8 // line 27 + set() (3) + line 29 + client bookkeeping
	steps := 0
	for procs[0].Section() == sched.Exit {
		d.Step(0, 1)
		steps++
		if steps > bound {
			t.Fatalf("exit took more than %d steps", bound)
		}
	}
}

func TestWaitFreeCSR(t *testing.T) {
	// Lemma 7: a process that crashes in the CS re-enters it within a
	// bounded number of its own steps, and (Lemma 8 / CSR) nobody else
	// enters the CS in between.
	_, _, procs := newWorld(t, memsim.DSM, 4, 2)
	d := sched.NewDriver(asSched(procs)...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	for id := 1; id < 4; id++ {
		d.Step(id, 30)
	}
	d.Crash(0)

	for i := 0; i < 400; i++ {
		for id := 1; id < 4; id++ {
			d.Step(id, 1)
			if countCS(procs) > 0 {
				t.Fatal("CSR violated: another process entered the CS")
			}
		}
	}
	steps := 0
	for procs[0].Section() != sched.CS {
		d.Step(0, 1)
		steps++
		if steps > 10 {
			t.Fatalf("crashed holder took %d steps to re-enter the CS", steps)
		}
	}
}

func TestCrashAtEveryLineRecovers(t *testing.T) {
	// The sweep the proof does by hand: crash a process at every program
	// counter once, then require the whole system to keep making progress
	// with the invariant intact.
	pcs := []int{PCL10, PCL11, PCL12, PCL13, PCL14, PCL15, PCL17, PCL18r,
		PCL18w, PCL19, PCL23, PCL24, PCL30, PCL31, PCL33, PCL35, PCL36,
		PCL39, PCL43, PCL44, PCL46, PCL47, PCL48, PCL49, PCRUnl, PCL25,
		PCL26, PCL27, PCL28, PCL29}
	for _, pc := range pcs {
		t.Run(fmt.Sprintf("pc%d", pc), func(t *testing.T) {
			_, sh, procs := newWorld(t, memsim.DSM, 4, 1)
			ck := NewChecker(sh, procs)
			var fail error
			rng := xrand.New(uint64(pc) * 13)
			r := &sched.Runner{
				Procs: asSched(procs),
				Sched: sched.Random{Src: rng},
				Crash: &sched.CrashAtPC{Proc: 0, PC: pc, Times: 2},
				OnStep: func(sched.StepEvent) {
					if fail == nil {
						fail = ck.Check()
					}
				},
				StopWhen: sched.AllPassagesAtLeast(asSched(procs), 6),
			}
			if err := r.Run(); err != nil {
				t.Fatalf("wedged after crash at pc %d: %v", pc, err)
			}
			if fail != nil {
				t.Fatal(fail)
			}
		})
	}
}

func TestStarvationFreedomSkewedScheduling(t *testing.T) {
	_, _, procs := newWorld(t, memsim.DSM, 3, 0)
	r := &sched.Runner{
		Procs:    asSched(procs),
		Sched:    sched.NewWeightedRandom(xrand.New(3), []int{40, 40, 1}),
		StopWhen: func() bool { return procs[2].Passages() >= 4 },
	}
	if err := r.Run(); err != nil {
		t.Fatalf("starved process never completed: %v", err)
	}
}

func TestCrashStormThenQuiescence(t *testing.T) {
	_, sh, procs := newWorld(t, memsim.DSM, 6, 1)
	rng := xrand.New(77)
	r := &sched.Runner{
		Procs: asSched(procs),
		Sched: sched.Random{Src: rng},
		Crash: &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 15, Budget: 120},
	}
	r.StopWhen = func() bool { return r.TotalCrashes() >= 120 }
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	ck := NewChecker(sh, procs)
	var fail error
	base := procs[0].Passages()
	r2 := &sched.Runner{
		Procs: asSched(procs),
		Sched: sched.Random{Src: rng.Fork()},
		OnStep: func(sched.StepEvent) {
			if fail == nil {
				fail = ck.Check()
			}
		},
		StopWhen: sched.AllPassagesAtLeast(asSched(procs), base+8),
	}
	if err := r2.Run(); err != nil {
		t.Fatalf("no progress after storm: %v", err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
}

// repeatRepairCrash crashes proc 0 once at line 14 (breaking the queue) and
// then f-1 more times at line 49 (the end of each repair attempt), forcing
// f full recoveries within one super-passage.
type repeatRepairCrash struct {
	total int
	done  int
}

func (c *repeatRepairCrash) ShouldCrash(_ uint64, p sched.Proc) bool {
	if c.done >= c.total || p.ID() != 0 {
		return false
	}
	pc := p.(sched.PCer).PC()
	want := PCL49
	if c.done == 0 {
		want = PCL14
	}
	if pc != want {
		return false
	}
	c.done++
	return true
}

func TestSuperPassageRMRLinearInCrashes(t *testing.T) {
	// Theorem 2's crash half (experiment E3): with f crashes in a
	// super-passage the total RMR cost is O(f·k): linear in f. We measure
	// proc 0's RMRs across runs with f forced repair cycles and check rough
	// linearity (cost(f=8) under ~12x cost(f=1) for fixed k).
	costs := map[int]uint64{}
	for _, f := range []int{1, 8} {
		mem, _, procs := newWorld(t, memsim.DSM, 8, 0)
		rng := xrand.New(42)
		policy := &repeatRepairCrash{total: f}
		r := &sched.Runner{
			Procs:    asSched(procs),
			Sched:    sched.Random{Src: rng},
			Crash:    policy,
			StopWhen: func() bool { return procs[0].Passages() >= 1 },
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if policy.done != f {
			t.Fatalf("delivered %d crashes, want %d", policy.done, f)
		}
		costs[f] = mem.Stats(0).RMRs
	}
	if costs[8] > costs[1]*12 {
		t.Fatalf("super-passage cost grew superlinearly in f: f=1 -> %d, f=8 -> %d",
			costs[1], costs[8])
	}
	if costs[8] <= costs[1] {
		t.Fatalf("crash recovery appears free (f=1 -> %d, f=8 -> %d): measurement broken",
			costs[1], costs[8])
	}
}
