package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/xrand"
)

// Tests beyond the paper's stated claims: behaviours the algorithm
// additionally provides, documented here as extensions.

// TestSystemWideCrash exercises the system-wide failure model of Golab and
// Hendler's PODC'18 follow-up (§1.6 of the reproduced paper): *all*
// processes crash simultaneously. The individual-crash algorithm handles
// it as a special case — every process recovers independently — so the
// invariant and progress must survive repeated full-system failures.
func TestSystemWideCrash(t *testing.T) {
	for _, ports := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("k%d", ports), func(t *testing.T) {
			_, sh, procs := newWorld(t, memsim.DSM, ports, 1)
			ck := NewChecker(sh, procs)
			rng := xrand.New(uint64(ports) * 271)

			for round := 0; round < 6; round++ {
				// Run a random schedule for a while...
				r := &sched.Runner{
					Procs:    asSched(procs),
					Sched:    sched.Random{Src: rng.Fork()},
					MaxSteps: 200 + uint64(rng.Intn(400)),
				}
				if err := r.Run(); err != nil {
					t.Fatal(err)
				}
				// ...then the whole system fails at once.
				for _, p := range procs {
					p.Crash()
				}
				if err := ck.Check(); err != nil {
					t.Fatalf("round %d, after system-wide crash: %v", round, err)
				}
			}
			// Quiescence: everyone recovers and completes more passages.
			var fail error
			r := &sched.Runner{
				Procs: asSched(procs),
				Sched: sched.Random{Src: rng.Fork()},
				OnStep: func(sched.StepEvent) {
					if fail == nil {
						fail = ck.Check()
					}
				},
				StopWhen: sched.AllPassagesAtLeast(asSched(procs), 5),
			}
			if err := r.Run(); err != nil {
				t.Fatalf("no recovery after system-wide crashes: %v", err)
			}
			if fail != nil {
				t.Fatal(fail)
			}
		})
	}
}

// TestFCFSOrderCrashFree verifies the first-come-first-served behaviour the
// MCS queue structure gives in crash-free runs: processes enter the CS in
// the order of their FAS on Tail (the doorway step, line 13).
func TestFCFSOrderCrashFree(t *testing.T) {
	const k = 6
	_, _, procs := newWorld(t, memsim.DSM, k, 0)
	d := sched.NewDriver(asSched(procs)...)

	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	// Enqueue 1..k-1 in a scrambled but known doorway order.
	order := []int{3, 1, 5, 2, 4}
	for _, id := range order {
		if !d.StepUntilPC(id, PCL14) { // FAS done
			t.Fatalf("proc %d never performed its FAS", id)
		}
	}
	// Everyone runs; record CS entries.
	var served []int
	seen := map[int]bool{0: true}
	all := []int{0, 1, 2, 3, 4, 5}
	ok := d.RunConcurrently(all, func() bool {
		for _, id := range all {
			if procs[id].Section() == sched.CS && !seen[id] {
				seen[id] = true
				served = append(served, id)
			}
		}
		return len(served) == len(order)
	})
	if !ok {
		t.Fatalf("queue did not drain; served %v", served)
	}
	for i := range order {
		if served[i] != order[i] {
			t.Fatalf("service order %v, want FAS order %v", served, order)
		}
	}
}

// TestBoundedExitAfterCrashDuringExit: a process that crashes mid-Exit and
// recovers completes the leftover exit within the wait-free bound before
// its fresh acquisition begins (line 22's bounded completion).
func TestBoundedExitAfterCrashDuringExit(t *testing.T) {
	_, sh, procs := newWorld(t, memsim.DSM, 2, 0)
	d := sched.NewDriver(asSched(procs)...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	if !d.StepUntilPC(0, PCL28) { // Pred = &Exit written, CS signal not yet
		t.Fatal("no exit start")
	}
	d.Crash(0)
	// The leftover exit (lines 28–29 via line 22) must complete within a
	// constant number of proc 0's own steps.
	steps := 0
	for sh.PeekNodeCell(0) != memsim.NilAddr {
		d.Step(0, 1)
		steps++
		if steps > 12 {
			t.Fatalf("leftover exit took > 12 steps")
		}
	}
}

// TestQuickRandomSchedulesKeepInvariant is the testing/quick form of the
// randomized sweep: arbitrary seeds must never produce a violation.
func TestQuickRandomSchedulesKeepInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		ports := 2 + int(seed%5)
		mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: ports})
		sh := NewShared(mem, Config{Ports: ports})
		procs := make([]*Proc, ports)
		for i := range procs {
			procs[i] = NewProc(sh, i, i, int(seed)%3)
		}
		ck := NewChecker(sh, procs)
		rng := xrand.New(seed)
		var fail error
		r := &sched.Runner{
			Procs: asSched(procs),
			Sched: sched.Random{Src: rng},
			Crash: &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 70, Budget: 12},
			OnStep: func(sched.StepEvent) {
				if fail == nil {
					fail = ck.Check()
				}
			},
			StopWhen: sched.AllPassagesAtLeast(asSched(procs), 3),
			MaxSteps: 1 << 22,
		}
		if err := r.Run(); err != nil {
			return false
		}
		return fail == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRepairersSerialized: many simultaneous crash victims repair
// one at a time under RLock, and the queue ends well-formed.
func TestConcurrentRepairersSerialized(t *testing.T) {
	const k = 8
	_, sh, procs := newWorld(t, memsim.DSM, k, 0)
	ck := NewChecker(sh, procs)
	d := sched.NewDriver(asSched(procs)...)

	// Everyone crashes at line 14 simultaneously-ish.
	for p := 0; p < k; p++ {
		if !d.StepUntilPC(p, PCL14) {
			t.Fatalf("proc %d never reached line 14", p)
		}
		d.Crash(p)
	}
	// All recover concurrently (interleaved), contending for RLock.
	all := make([]int, k)
	for i := range all {
		all[i] = i
	}
	var fail error
	ok := d.RunConcurrently(all, func() bool {
		if fail == nil {
			fail = ck.Check()
		}
		for _, p := range procs {
			if p.Passages() < 1 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("not all repairers completed")
	}
	if fail != nil {
		t.Fatal(fail)
	}
}

// TestDwellVariationsProperty: the CS dwell must not affect safety.
func TestDwellVariationsProperty(t *testing.T) {
	check := func(dwellSeed uint8) bool {
		dwell := int(dwellSeed % 7)
		_, sh, procs := newWorld(t, memsim.CC, 3, dwell)
		ck := NewChecker(sh, procs)
		var fail error
		r := &sched.Runner{
			Procs: asSched(procs),
			Sched: sched.Random{Src: xrand.New(uint64(dwellSeed))},
			OnStep: func(sched.StepEvent) {
				if fail == nil {
					fail = ck.Check()
				}
			},
			StopWhen: sched.AllPassagesAtLeast(asSched(procs), 4),
		}
		return r.Run() == nil && fail == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
