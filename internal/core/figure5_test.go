package core

import (
	"testing"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
)

// TestFigure5Walkthrough reproduces, move for move, the repair illustration
// of the paper's Figure 5 (Appendix B) and the §3.1 "High level view of
// repairing the queue after a crash" narrative:
//
//   - π1, π3, π5 crash at line 14 (FAS done, Pred not yet written);
//   - π2, π4, π6 wait at line 25 behind π1, π3, π5 respectively;
//   - π7, π8 crash at line 13 (node registered, FAS never executed);
//   - repairs run in the order π1, π7, π5, π8, π3 and must produce exactly
//     the queue states drawn in the figure:
//     π1 → SpecialNode and into the CS,
//     π7 → π2's node,
//     π5 → π7's node,
//     π8 FASes itself in behind π6,
//     π3 FASes π4 in and points at π8's node;
//   - afterwards the processes enter the CS in queue order
//     π1, π2, π7, π5, π6, π8, π3, π4.
//
// π_i is port/process i-1 (πs are 1-based in the paper).
func TestFigure5Walkthrough(t *testing.T) {
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 8})
	sh := NewShared(mem, Config{Ports: 8})
	procs := make([]*Proc, 8)
	for i := range procs {
		procs[i] = NewProc(sh, i, i, 1)
	}
	ck := NewChecker(sh, procs)
	d := sched.NewDriver(asSched(procs)...)

	const (
		pi1 = 0
		pi2 = 1
		pi3 = 2
		pi4 = 3
		pi5 = 4
		pi6 = 5
		pi7 = 6
		pi8 = 7
	)
	node := func(pi int) memsim.Addr { return sh.PeekNodeCell(pi) }
	pred := func(pi int) memsim.Addr { return sh.PeekPred(node(pi)) }
	mustCheck := func(phase string) {
		t.Helper()
		if err := ck.Check(); err != nil {
			t.Fatalf("%s: invariant: %v", phase, err)
		}
	}

	// --- Phase A: manufacture the initial state of Figure 5.
	for _, pi := range []int{pi1, pi2, pi3, pi4, pi5, pi6} {
		if pi%2 == 0 { // π1, π3, π5: run to line 14, then crash
			if !d.StepUntilPC(pi, PCL14) {
				t.Fatalf("π%d never reached line 14", pi+1)
			}
			d.Crash(pi)
		} else { // π2, π4, π6: run to the line-25 wait
			if !d.StepUntilPC(pi, PCL25) {
				t.Fatalf("π%d never reached line 25", pi+1)
			}
			d.Step(pi, 8) // enter the spin loop proper
		}
	}
	for _, pi := range []int{pi7, pi8} { // crash at line 13: before the FAS
		if !d.StepUntilPC(pi, PCL13) {
			t.Fatalf("π%d never reached line 13", pi+1)
		}
		d.Crash(pi)
	}
	mustCheck("setup")

	// Initial state of the figure: three two-node fragments plus two
	// orphans; successors point at their predecessors; crashed nodes have
	// Pred = NIL (the explosion glyph in the figure).
	for _, pi := range []int{pi1, pi3, pi5, pi7, pi8} {
		if got := pred(pi); got != memsim.NilAddr {
			t.Fatalf("π%d.Pred = %s, want NIL after crash", pi+1, sh.SentinelName(got))
		}
	}
	if pred(pi2) != node(pi1) || pred(pi4) != node(pi3) || pred(pi6) != node(pi5) {
		t.Fatal("waiter predecessors do not match the figure's initial state")
	}
	if sh.PeekTail() != node(pi6) {
		t.Fatalf("Tail = %s, want π6's node", sh.SentinelName(sh.PeekTail()))
	}

	// --- Phase B: all five crashed processes restart and park at line 24,
	// poised to acquire RLock (their Pred is now &Crash, NonNil is set).
	for _, pi := range []int{pi1, pi7, pi5, pi8, pi3} {
		if !d.StepUntilPC(pi, PCL24) {
			t.Fatalf("π%d never reached line 24 after restart", pi+1)
		}
		if got := pred(pi); got != sh.CrashNode {
			t.Fatalf("π%d.Pred = %s, want &Crash", pi+1, sh.SentinelName(got))
		}
	}
	mustCheck("restart")

	// --- Phase C: π1 repairs. No fragment leads to the CS, so π1 adopts
	// the SpecialNode as predecessor and sails into the CS.
	if !d.StepUntilSection(pi1, sched.CS) {
		t.Fatal("π1 did not reach the CS")
	}
	if got := pred(pi1); got != sh.InCSNode {
		t.Fatalf("π1.Pred = %s, want &InCS", sh.SentinelName(got))
	}
	mustCheck("π1 repaired")

	// --- Phase D: π7 repairs. The unique head path is (π2 → π1), so π7
	// attaches to π2's node — without ever performing a FAS.
	if !d.StepUntilPC(pi7, PCL25) {
		t.Fatal("π7 did not finish its repair")
	}
	if got := pred(pi7); got != node(pi2) {
		t.Fatalf("π7.Pred = %s, want π2's node", sh.SentinelName(got))
	}
	mustCheck("π7 repaired")

	// --- Phase E: π5 repairs and attaches to π7's node.
	if !d.StepUntilPC(pi5, PCL25) {
		t.Fatal("π5 did not finish its repair")
	}
	if got := pred(pi5); got != node(pi7) {
		t.Fatalf("π5.Pred = %s, want π7's node", sh.SentinelName(got))
	}
	mustCheck("π5 repaired")

	// --- Phase F: π8 repairs. The tail fragment now reaches the CS, so π8
	// FASes itself in behind π6 (the old tail).
	if !d.StepUntilPC(pi8, PCL25) {
		t.Fatal("π8 did not finish its repair")
	}
	if got := pred(pi8); got != node(pi6) {
		t.Fatalf("π8.Pred = %s, want π6's node", sh.SentinelName(got))
	}
	if sh.PeekTail() != node(pi8) {
		t.Fatalf("Tail = %s, want π8's node", sh.SentinelName(sh.PeekTail()))
	}
	mustCheck("π8 repaired")

	// --- Phase G: π3 repairs: FASes its fragment's last node (π4) onto the
	// tail and adopts the previous tail (π8's node) as predecessor.
	if !d.StepUntilPC(pi3, PCL25) {
		t.Fatal("π3 did not finish its repair")
	}
	if got := pred(pi3); got != node(pi8) {
		t.Fatalf("π3.Pred = %s, want π8's node", sh.SentinelName(got))
	}
	if sh.PeekTail() != node(pi4) {
		t.Fatalf("Tail = %s, want π4's node", sh.SentinelName(sh.PeekTail()))
	}
	mustCheck("π3 repaired")

	// The fully repaired queue: one fragment, tail to head
	// π4 → π3 → π8 → π6 → π5 → π7 → π2 → π1 (→ &InCS).
	wantChain := []int{pi4, pi3, pi8, pi6, pi5, pi7, pi2, pi1}
	cur := sh.PeekTail()
	for i, pi := range wantChain {
		if cur != node(pi) {
			t.Fatalf("chain position %d: got %s, want π%d's node", i, sh.SentinelName(cur), pi+1)
		}
		cur = sh.PeekPred(cur)
	}
	if cur != sh.InCSNode {
		t.Fatalf("chain head's Pred = %s, want &InCS", sh.SentinelName(cur))
	}

	// --- Phase H: everyone runs; CS entries must follow queue order.
	var order []int
	inCS := make(map[int]bool)
	all := []int{pi1, pi2, pi3, pi4, pi5, pi6, pi7, pi8}
	order = append(order, pi1) // π1 is in the CS already
	inCS[pi1] = true
	done := func() bool {
		for _, p := range procs {
			if p.Passages() < 1 {
				return false
			}
		}
		return true
	}
	ok := d.RunConcurrently(all, func() bool {
		for _, pi := range all {
			if procs[pi].Section() == sched.CS && !inCS[pi] {
				inCS[pi] = true
				order = append(order, pi)
			}
		}
		if err := ck.Check(); err != nil {
			t.Fatalf("final phase: invariant: %v", err)
		}
		return done()
	})
	if !ok {
		t.Fatal("not all processes completed a passage")
	}
	wantOrder := []int{pi1, pi2, pi7, pi5, pi6, pi8, pi3, pi4}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("CS order = %v, want %v (as π-indices+1: got π%d at slot %d, want π%d)",
				order, wantOrder, order[i]+1, i, wantOrder[i]+1)
		}
	}
}
