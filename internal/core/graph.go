package core

import (
	"sort"

	"github.com/rmelib/rme/internal/memsim"
)

// graph is the repairing process's local model of the broken queue
// (lines 37–38): vertices are QNode addresses, and a directed edge
// (u → v) records that u.Pred = v was observed during the scan. The
// structure lives entirely in the process's registers (it is wiped by a
// crash) and its maximal paths are the queue fragments.
type graph struct {
	vertices map[memsim.Addr]struct{}
	out      map[memsim.Addr]memsim.Addr
}

func newGraph() graph {
	return graph{
		vertices: make(map[memsim.Addr]struct{}),
		out:      make(map[memsim.Addr]memsim.Addr),
	}
}

func (g *graph) addVertex(v memsim.Addr) {
	g.vertices[v] = struct{}{}
}

// addEdge records u.Pred = v, adding both endpoints ("we consider this as a
// simple graph, so repeated addition of a vertex counts as adding it once").
func (g *graph) addEdge(u, v memsim.Addr) {
	g.vertices[u] = struct{}{}
	g.vertices[v] = struct{}{}
	g.out[u] = v
}

func (g *graph) hasVertex(v memsim.Addr) bool {
	_, ok := g.vertices[v]
	return ok
}

// size is the local-computation cost driver for line 39 (|V| + |E|).
func (g *graph) size() int { return len(g.vertices) + len(g.out) }

// path is a maximal path through the fragment graph, ordered from start
// (tail-most node: no edge points at it) to end (head-most node: it has no
// outgoing edge; its Pred is a sentinel or an unscanned node).
type path []memsim.Addr

func (p path) start() memsim.Addr { return p[0] }
func (p path) end() memsim.Addr   { return p[len(p)-1] }

func (p path) contains(v memsim.Addr) bool {
	for _, x := range p {
		if x == v {
			return true
		}
	}
	return false
}

// maximalPaths computes the set Paths of line 39. Iteration order is made
// deterministic (ascending start address) so simulated runs are exactly
// reproducible.
//
// In the paper's reachable states the graph is a union of disjoint simple
// paths (Appendix C, Condition 23). The deep-exploration ablation can
// produce degenerate shapes (shared predecessors, even cycles, which is
// precisely the Golab–Hendler hazard); the fallback below still terminates
// and covers every vertex so the ablation can run to completion.
func (g *graph) maximalPaths() []path {
	indeg := make(map[memsim.Addr]int, len(g.vertices))
	for v := range g.vertices {
		indeg[v] = 0
	}
	for _, v := range g.out {
		indeg[v]++
	}
	var starts []memsim.Addr
	for v := range g.vertices {
		if indeg[v] == 0 {
			starts = append(starts, v)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	visited := make(map[memsim.Addr]struct{}, len(g.vertices))
	var paths []path
	walk := func(from memsim.Addr) {
		p := path{from}
		visited[from] = struct{}{}
		cur := from
		for {
			next, ok := g.out[cur]
			if !ok {
				break
			}
			if _, seen := visited[next]; seen {
				break // cycle or join: stop, keeping the path simple
			}
			p = append(p, next)
			visited[next] = struct{}{}
			cur = next
		}
		paths = append(paths, p)
	}
	for _, s := range starts {
		walk(s)
	}
	// Fallback for cycles (unreachable from any start): break each at its
	// smallest-address vertex. Never triggered by the paper's algorithm.
	if len(visited) != len(g.vertices) {
		var rest []memsim.Addr
		for v := range g.vertices {
			if _, seen := visited[v]; !seen {
				rest = append(rest, v)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		for _, v := range rest {
			if _, seen := visited[v]; !seen {
				walk(v)
			}
		}
	}
	return paths
}
