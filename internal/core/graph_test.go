package core

import (
	"testing"
	"testing/quick"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/xrand"
)

func pathsEqual(a, b []path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestMaximalPathsShapes(t *testing.T) {
	tests := []struct {
		name     string
		vertices []memsim.Addr
		edges    [][2]memsim.Addr
		want     []path
	}{
		{
			name:     "singletons",
			vertices: []memsim.Addr{5, 3, 9},
			want:     []path{{3}, {5}, {9}},
		},
		{
			name:  "one chain",
			edges: [][2]memsim.Addr{{7, 4}, {4, 2}},
			want:  []path{{7, 4, 2}},
		},
		{
			name:     "two fragments and an orphan",
			vertices: []memsim.Addr{50},
			edges:    [][2]memsim.Addr{{10, 9}, {30, 20}, {20, 15}},
			want:     []path{{10, 9}, {30, 20, 15}, {50}},
		},
		{
			name:  "figure5 initial fragments",
			edges: [][2]memsim.Addr{{2, 1}, {4, 3}, {6, 5}},
			want:  []path{{2, 1}, {4, 3}, {6, 5}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := newGraph()
			for _, v := range tt.vertices {
				g.addVertex(v)
			}
			for _, e := range tt.edges {
				g.addEdge(e[0], e[1])
			}
			got := g.maximalPaths()
			if !pathsEqual(got, tt.want) {
				t.Fatalf("paths = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMaximalPathsCycleFallback(t *testing.T) {
	// Cycles cannot arise from the paper's algorithm but can from the
	// deep-exploration ablation under races; the computation must still
	// terminate and cover every vertex exactly once.
	g := newGraph()
	g.addEdge(1, 2)
	g.addEdge(2, 3)
	g.addEdge(3, 1)
	g.addEdge(9, 1) // a tail leading into the cycle
	paths := g.maximalPaths()
	seen := map[memsim.Addr]int{}
	for _, p := range paths {
		for _, v := range p {
			seen[v]++
		}
	}
	for _, v := range []memsim.Addr{1, 2, 3, 9} {
		if seen[v] != 1 {
			t.Fatalf("vertex %d covered %d times; want exactly once (paths=%v)", v, seen[v], paths)
		}
	}
}

func TestMaximalPathsDeterministic(t *testing.T) {
	g := newGraph()
	rng := xrand.New(8)
	for i := 0; i < 40; i++ {
		u := memsim.Addr(rng.Intn(100) + 1)
		v := memsim.Addr(rng.Intn(100) + 1)
		if u != v {
			g.addEdge(u, v)
		}
	}
	first := g.maximalPaths()
	for i := 0; i < 10; i++ {
		if !pathsEqual(first, g.maximalPaths()) {
			t.Fatal("maximalPaths is not deterministic")
		}
	}
}

// TestMaximalPathsProperty checks, on random disjoint-path graphs (the only
// shape the algorithm produces, per invariant C23), that the computed paths
// partition the vertices and respect the edges.
func TestMaximalPathsProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := newGraph()
		// Build random disjoint chains over distinct addresses.
		next := memsim.Addr(1)
		type chain []memsim.Addr
		var chains []chain
		for c := 0; c < 1+rng.Intn(5); c++ {
			n := 1 + rng.Intn(5)
			var ch chain
			for i := 0; i < n; i++ {
				ch = append(ch, next)
				next++
			}
			chains = append(chains, ch)
			if len(ch) == 1 {
				g.addVertex(ch[0])
			}
			for i := 0; i+1 < len(ch); i++ {
				g.addEdge(ch[i], ch[i+1])
			}
		}
		paths := g.maximalPaths()
		if len(paths) != len(chains) {
			return false
		}
		covered := map[memsim.Addr]bool{}
		for _, p := range paths {
			for i, v := range p {
				if covered[v] {
					return false
				}
				covered[v] = true
				if i+1 < len(p) {
					if g.out[v] != p[i+1] {
						return false
					}
				}
			}
		}
		return len(covered) == int(next-1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPathAccessors(t *testing.T) {
	p := path{10, 20, 30}
	if p.start() != 10 || p.end() != 30 {
		t.Fatalf("start/end = %d/%d, want 10/30", p.start(), p.end())
	}
	if !p.contains(20) || p.contains(99) {
		t.Fatal("contains is wrong")
	}
}

func TestFragmentsOfSimpleQueue(t *testing.T) {
	// Build a 3-deep queue by driving processes, then read fragments back.
	_, sh, procs := newWorld(t, memsim.DSM, 3, 0)
	d := sched.NewDriver(asSched(procs)...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	d.Step(1, 30)
	d.Step(2, 30)
	frags := FragmentsOf(sh)
	if len(frags) != 1 {
		t.Fatalf("fragments = %d, want 1 (%v)", len(frags), frags)
	}
	if len(frags[0]) != 3 {
		t.Fatalf("fragment length = %d, want 3", len(frags[0]))
	}
	if frags[0][0] != sh.PeekNodeCell(0) {
		t.Fatal("fragment head is not the CS holder's node")
	}
}
