package core

import (
	"fmt"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/rlock"
	"github.com/rmelib/rme/internal/sigobj"
)

// Program counter values. The convention is 10×(paper line number), with
// +1 suffixes for sub-steps of a line. PCs are exposed via Handle.PC for
// crash-at-line experiments, and section/P̂C bookkeeping keys off them.
const (
	PCIdle = 0

	PCL10  = 100 // read Node[p]
	PCL11  = 110 // allocate a fresh QNode (local)
	PCL12  = 120 // Node[p] := mynode
	PCL13  = 130 // mypred := FAS(Tail, mynode)
	PCL14  = 140 // mynode.Pred := mypred
	PCL15  = 150 // mynode.NonNil_Signal.set()   (Setter sub-machine)
	PCL17  = 170 // mynode := Node[p] (register move; local)
	PCL18r = 180 // read mynode.Pred (NIL test)
	PCL18w = 181 // mynode.Pred := &Crash
	PCL19  = 190 // mypred := mynode.Pred; lines 20–21 branch locally
	PCL23  = 230 // mynode.NonNil_Signal.set()   (Setter sub-machine)
	PCL24  = 240 // RLock Try (rlock.Handle sub-machine)
	PCL30  = 300 // repair needed? (local test of mypred)
	PCL31  = 310 // tail := Tail; init graph registers
	PCL33  = 330 // scan loop: cur := Node[i] / loop exit
	PCL35  = 350 // cur.NonNil_Signal.wait()     (Waiter sub-machine)
	PCL36  = 360 // curpred := cur.Pred; extend graph (lines 37–38 local)
	PCDeep = 365 // deep-exploration chase (ablation only)
	PCL39  = 390 // compute maximal paths, mypath, tailpath (local)
	PCL43  = 430 // per-path: read end(σ).Pred
	PCL44  = 440 // per-path: read start(σ).Pred; maybe headpath := σ
	PCL46  = 460 // tailpath test (reads end(tailpath).Pred if present)
	PCL47  = 470 // mypred := FAS(Tail, start(mypath))
	PCL48  = 480 // mypred := start(headpath) or &SpecialNode (local)
	PCL49  = 490 // mynode.Pred := mypred
	PCRUnl = 495 // RLock Exit (rlock.Handle sub-machine)
	PCL25  = 250 // mypred.CS_Signal.wait()      (Waiter sub-machine)
	PCL26  = 260 // mynode.Pred := &InCS; enter CS

	PCL27 = 270 // mynode.Pred := &Exit
	PCL28 = 280 // mynode.CS_Signal.set()        (Setter sub-machine)
	PCL29 = 290 // Node[p] := NIL

	// Exit-recovery entry points (tree composition; not in the paper's
	// figure, equivalent to re-running lines 10/20–22 without starting a
	// new passage).
	pcXRead = 500 // read Node[p]
	pcXPred = 510 // read Pred, dispatch to 27/28/done
)

// Handle runs the Try (lines 10–26) and Exit (lines 27–29) sections of
// Figures 3–4 for one port. All fields are the process's volatile
// registers: Crash wipes them, and recovery reconstructs everything from
// NVRAM, exactly as the paper prescribes.
type Handle struct {
	sh   *Shared
	proc int
	port int

	pc   int
	phat int // the hidden variable P̂C of Figures 6–7

	// Registers of Figure 3/4 (⊥ = 0 after a crash).
	mynode  memsim.Addr
	mypred  memsim.Addr
	nodeVal memsim.Addr // value read at line 10, consumed by line 17
	after22 bool        // executing lines 28–29 on behalf of line 22

	// Repair registers (lines 31–48).
	tail     memsim.Addr
	scanIdx  int
	cur      memsim.Addr
	curpred  memsim.Addr
	chase    memsim.Addr // deep-exploration cursor (ablation)
	chaseLen int
	graph    graph
	paths    []path
	pathIdx  int
	mypath   path
	tailpath path
	headpath path

	// Sub-machines (volatile like other registers).
	setter sigobj.Setter
	waiter sigobj.Waiter
	rl     *rlock.Handle
}

// NewHandle creates the step machine for proc using port p of sh.
func NewHandle(sh *Shared, proc, port int) *Handle {
	if port < 0 || port >= sh.cfg.Ports {
		panic(fmt.Sprintf("core: port %d out of range [0,%d)", port, sh.cfg.Ports))
	}
	return &Handle{
		sh:     sh,
		proc:   proc,
		port:   port,
		phat:   11, // initial P̂C (Appendix C base case)
		setter: sigobj.NewSetter(sh.mem, proc),
		waiter: sigobj.NewWaiter(sh.mem, proc),
		rl:     rlock.NewHandle(sh.RLock, proc, port),
	}
}

// PC exposes the program counter (paper line × 10).
func (h *Handle) PC() int { return h.pc }

// PHat exposes the hidden variable P̂C for the invariant checker.
func (h *Handle) PHat() int { return h.phat }

// Port returns the handle's port.
func (h *Handle) Port() int { return h.port }

// Done reports that no operation is in flight.
func (h *Handle) Done() bool { return h.pc == PCIdle }

// InCS reports whether the process currently owns the critical section
// (hidden-variable definition: P̂C = 27).
func (h *Handle) InCS() bool { return h.phat == 27 }

// MyNode returns the mynode register (checkers only).
func (h *Handle) MyNode() memsim.Addr { return h.mynode }

// ScanIndex returns the repair scan's loop index i (scripted tests).
func (h *Handle) ScanIndex() int { return h.scanIdx }

// BeginLock starts the Try section at line 10. It is also the crash
// recovery entry point: the code itself discovers whether the previous
// passage crashed and where.
func (h *Handle) BeginLock() {
	if h.pc != PCIdle {
		panic("core: BeginLock while an operation is in flight")
	}
	h.pc = PCL10
}

// BeginUnlock starts the Exit section at line 27. Valid only in the CS.
func (h *Handle) BeginUnlock() {
	if h.pc != PCIdle {
		panic("core: BeginUnlock while an operation is in flight")
	}
	if h.phat != 27 {
		panic(fmt.Sprintf("core: BeginUnlock outside the CS (P̂C=%d)", h.phat))
	}
	h.pc = PCL27
}

// BeginExitRecover starts completion of a possibly interrupted Exit without
// starting a new passage: used by the arbitration tree's downward release
// replay. It is idempotent (a completed exit is detected and skipped).
func (h *Handle) BeginExitRecover() {
	if h.pc != PCIdle {
		panic("core: BeginExitRecover while an operation is in flight")
	}
	h.pc = pcXRead
}

// Crash is the crash step: all registers (including sub-machines) are reset
// to ⊥; NVRAM and P̂C (a proof artifact, not a register) survive.
func (h *Handle) Crash() {
	h.pc = PCIdle
	h.mynode, h.mypred, h.nodeVal = 0, 0, 0
	h.after22 = false
	h.tail, h.cur, h.curpred, h.chase = 0, 0, 0, 0
	h.scanIdx, h.chaseLen, h.pathIdx = 0, 0, 0
	h.graph = graph{}
	h.paths, h.mypath, h.tailpath, h.headpath = nil, nil, nil, nil
	h.setter.Crash()
	h.waiter.Crash()
	h.rl.Crash()
}

// node field helpers.
func (h *Handle) predOf(n memsim.Addr) memsim.Addr { return n + OffPred }

// Step executes one atomic step. It returns true when the operation begun
// by BeginLock (CS acquired), BeginUnlock, or BeginExitRecover completes.
func (h *Handle) Step() bool {
	mem, sh := h.sh.mem, h.sh
	switch h.pc {
	case PCIdle:
		return true

	// ------------------------------------------------------ Try section
	case PCL10:
		h.nodeVal = memsim.Addr(mem.Read(h.proc, sh.nodeCell(h.port)))
		if h.nodeVal == memsim.NilAddr {
			h.pc = PCL11
		} else {
			h.pc = PCL17
		}

	case PCL11:
		// new QNode: allocated in the creating process's partition; zeroed
		// words are exactly the required initial state (Pred = NIL,
		// signals unset).
		h.mynode = mem.Alloc(h.proc, NodeWords)
		sh.registerNode(h.mynode)
		mem.LocalStep(h.proc)
		h.phat = 12
		h.pc = PCL12

	case PCL12:
		mem.Write(h.proc, sh.nodeCell(h.port), memsim.Word(h.mynode))
		h.phat = 13
		h.pc = PCL13

	case PCL13:
		h.mypred = memsim.Addr(mem.FAS(h.proc, sh.Tail, memsim.Word(h.mynode)))
		h.phat = 14
		h.pc = PCL14

	case PCL14:
		mem.Write(h.proc, h.predOf(h.mynode), memsim.Word(h.mypred))
		h.phat = 15
		h.setter.Begin(h.mynode + OffNonNil)
		h.pc = PCL15

	case PCL15:
		if h.setter.Step() {
			h.phat = 25
			h.waiter.Begin(h.mypred + OffCS)
			h.pc = PCL25
		}

	case PCL17:
		h.mynode = h.nodeVal
		mem.LocalStep(h.proc)
		h.pc = PCL18r

	case PCL18r:
		if memsim.Addr(mem.Read(h.proc, h.predOf(h.mynode))) == memsim.NilAddr {
			h.pc = PCL18w
		} else {
			h.pc = PCL19
		}

	case PCL18w:
		mem.Write(h.proc, h.predOf(h.mynode), memsim.Word(sh.CrashNode))
		h.pc = PCL19

	case PCL19:
		h.mypred = memsim.Addr(mem.Read(h.proc, h.predOf(h.mynode)))
		switch h.mypred {
		case sh.InCSNode: // line 20: crashed inside the CS — re-enter it
			h.pc = PCIdle
			return true
		case sh.ExitNode: // line 21–22: finish lines 28–29, then line 10
			h.after22 = true
			h.setter.Begin(h.mynode + OffCS)
			h.phat = 28
			h.pc = PCL28
		default: // line 23
			h.setter.Begin(h.mynode + OffNonNil)
			h.pc = PCL23
		}

	case PCL23:
		if h.setter.Step() {
			h.rl.BeginLock()
			h.pc = PCL24
		}

	case PCL24:
		if h.rl.Step() {
			h.pc = PCL30
		}

	// -------------------------------------------- Critical section of RLock
	case PCL30:
		mem.LocalStep(h.proc)
		if h.mypred != sh.CrashNode {
			// Already queued before the last crash: no repair needed.
			h.phat = 25
			h.rl.BeginUnlock()
			h.pc = PCRUnl
		} else {
			h.pc = PCL31
		}

	case PCL31:
		h.tail = memsim.Addr(mem.Read(h.proc, sh.Tail))
		h.graph = newGraph()
		h.paths, h.mypath, h.tailpath, h.headpath = nil, nil, nil, nil
		h.scanIdx = 0
		h.pathIdx = 0
		h.pc = PCL33

	case PCL33:
		if h.scanIdx >= sh.cfg.Ports {
			h.pc = PCL39
			break
		}
		h.cur = memsim.Addr(mem.Read(h.proc, sh.NodeTab+memsim.Addr(h.scanIdx)))
		if h.cur == memsim.NilAddr { // line 34
			h.scanIdx++
			break // continue: next loop iteration re-enters PCL33
		}
		h.waiter.Begin(h.cur + OffNonNil)
		h.pc = PCL35

	case PCL35:
		if h.waiter.Step() {
			h.pc = PCL36
		}

	case PCL36:
		h.curpred = memsim.Addr(mem.Read(h.proc, h.predOf(h.cur)))
		// Lines 37–38: extend the graph (local computation).
		if sh.IsSentinel(h.curpred) {
			h.graph.addVertex(h.cur)
		} else {
			h.graph.addEdge(h.cur, h.curpred)
		}
		mem.LocalStep(h.proc)
		if sh.cfg.DeepExploration && !sh.IsSentinel(h.curpred) {
			// Ablation: Golab–Hendler-style deep chase of the Pred chain.
			h.chase = h.curpred
			h.chaseLen = 0
			h.pc = PCDeep
		} else {
			h.scanIdx++
			h.pc = PCL33
		}

	case PCDeep:
		// Visit chase's predecessor, add it to the graph, and continue
		// until the chain bottoms out in a sentinel (or a NIL Pred of a
		// node whose owner has not yet linked it, which ends the chain
		// too). This is O(k) extra shared reads per scanned node: O(k²)
		// per repair, the cost the paper's shallow exploration removes.
		pred := memsim.Addr(mem.Read(h.proc, h.predOf(h.chase)))
		h.chaseLen++
		if sh.IsSentinel(pred) || pred == memsim.NilAddr || h.chaseLen > sh.cfg.Ports+1 {
			h.scanIdx++
			h.pc = PCL33
			break
		}
		h.graph.addEdge(h.chase, pred)
		mem.LocalStep(h.proc)
		h.chase = pred

	case PCL39:
		// Lines 39–41: maximal paths, mypath, tailpath. Local computation,
		// charged proportionally to the graph size.
		h.paths = h.graph.maximalPaths()
		mem.LocalSteps(h.proc, h.graph.size())
		h.mypath = nil
		for _, p := range h.paths {
			if p.contains(h.mynode) {
				h.mypath = p
				break
			}
		}
		if h.mypath == nil {
			panic(fmt.Sprintf("core: port %d: mynode %d not in any maximal path (invariant broken)", h.port, h.mynode))
		}
		h.tailpath = nil
		if h.graph.hasVertex(h.tail) {
			for _, p := range h.paths {
				if p.contains(h.tail) {
					h.tailpath = p
					break
				}
			}
		}
		h.headpath = nil
		h.pathIdx = 0
		h.pc = PCL43

	case PCL43:
		if h.pathIdx >= len(h.paths) {
			h.pc = PCL46
			break
		}
		sigma := h.paths[h.pathIdx]
		endPred := memsim.Addr(mem.Read(h.proc, h.predOf(sigma.end())))
		if endPred == sh.InCSNode || endPred == sh.ExitNode {
			h.pc = PCL44
		} else {
			h.pathIdx++
		}

	case PCL44:
		sigma := h.paths[h.pathIdx]
		startPred := memsim.Addr(mem.Read(h.proc, h.predOf(sigma.start())))
		if startPred != sh.ExitNode {
			h.headpath = sigma // line 45
		}
		h.pathIdx++
		h.pc = PCL43

	case PCL46:
		if h.tailpath == nil {
			mem.LocalStep(h.proc)
			h.pc = PCL47
			break
		}
		endPred := memsim.Addr(mem.Read(h.proc, h.predOf(h.tailpath.end())))
		if endPred == sh.InCSNode || endPred == sh.ExitNode {
			h.pc = PCL47
		} else {
			h.pc = PCL48
		}

	case PCL47:
		h.mypred = memsim.Addr(mem.FAS(h.proc, sh.Tail, memsim.Word(h.mypath.start())))
		h.phat = 14
		h.pc = PCL49

	case PCL48:
		if h.headpath != nil {
			h.mypred = h.headpath.start()
		} else {
			h.mypred = sh.SpecialNode
		}
		mem.LocalStep(h.proc)
		h.phat = 14
		h.pc = PCL49

	case PCL49:
		mem.Write(h.proc, h.predOf(h.mynode), memsim.Word(h.mypred))
		h.phat = 25
		h.rl.BeginUnlock()
		h.pc = PCRUnl

	case PCRUnl:
		if h.rl.Step() {
			h.waiter.Begin(h.mypred + OffCS)
			h.pc = PCL25
		}

	// ------------------------------------------------- back in plain Try
	case PCL25:
		if h.waiter.Step() {
			h.phat = 26
			h.pc = PCL26
		}

	case PCL26:
		mem.Write(h.proc, h.predOf(h.mynode), memsim.Word(sh.InCSNode))
		h.phat = 27
		h.pc = PCIdle
		return true

	// ------------------------------------------------------ Exit section
	case PCL27:
		mem.Write(h.proc, h.predOf(h.mynode), memsim.Word(sh.ExitNode))
		h.phat = 28
		h.setter.Begin(h.mynode + OffCS)
		h.pc = PCL28

	case PCL28:
		if h.setter.Step() {
			h.phat = 29
			h.pc = PCL29
		}

	case PCL29:
		mem.Write(h.proc, sh.nodeCell(h.port), memsim.Word(memsim.NilAddr))
		h.phat = 11
		if h.after22 {
			// Line 22: ... and go to Line 10 (same Try continues).
			h.after22 = false
			h.pc = PCL10
		} else {
			h.pc = PCIdle
			return true
		}

	// ------------------------------------------- exit recovery (tree use)
	case pcXRead:
		h.nodeVal = memsim.Addr(mem.Read(h.proc, sh.nodeCell(h.port)))
		if h.nodeVal == memsim.NilAddr {
			h.pc = PCIdle
			return true
		}
		h.mynode = h.nodeVal
		h.pc = pcXPred

	case pcXPred:
		switch memsim.Addr(mem.Read(h.proc, h.predOf(h.mynode))) {
		case sh.InCSNode:
			h.pc = PCL27
		case sh.ExitNode:
			h.setter.Begin(h.mynode + OffCS)
			h.phat = 28
			h.pc = PCL28
		default:
			panic("core: exit recovery on a node that never reached the CS")
		}

	default:
		panic(fmt.Sprintf("core: corrupt pc %d", h.pc))
	}
	return h.pc == PCIdle
}
