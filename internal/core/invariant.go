package core

import (
	"fmt"

	"github.com/rmelib/rme/internal/memsim"
)

// This file implements an executable subset of the paper's Appendix C
// invariant (Figures 8–14). The proof maintains hidden variables (P̂C,
// n̂ode); our machines track P̂C directly (Handle.PHat), so the conditions
// below can be evaluated in every configuration of a simulated run. The
// checker is wired into randomized and scripted tests: a single violated
// condition fails the run with a description of the offending state.
//
// Implemented conditions (numbering from the paper):
//
//	C1  — correspondence between P̂C and n̂ode.Pred / Node[p̂ort];
//	C2  — register consistency: mynode = Node[p̂ort] in lines 13–48;
//	C4  — node distinctness, predecessor distinctness, bounded chains;
//	C5  — Signal-state consistency per QNode (with the line-18/23 and
//	      line-27/28 windows the running algorithm actually exhibits);
//	C7  — at most one fragment head carries &InCS;
//	C16 — Tail points at a real node that is the tail of its fragment;
//	ME  — at most one process has P̂C = 27 (Lemma 4).

// nodesRegistry records every QNode ever created, mirroring the paper's
// hidden set N. It lives on Shared (NVRAM-side bookkeeping for checkers,
// invisible to the algorithm).
func (s *Shared) registerNode(a memsim.Addr) {
	s.allNodes = append(s.allNodes, a)
}

// AllNodes returns every QNode created so far plus the SpecialNode (the
// paper's N). The slice is shared; callers must not mutate it.
func (s *Shared) AllNodes() []memsim.Addr {
	return append([]memsim.Addr{s.SpecialNode}, s.allNodes...)
}

// Checker evaluates the invariant subset over one lock instance and its
// client handles.
type Checker struct {
	sh      *Shared
	handles []*Handle
}

// NewChecker builds a checker over client processes of sh.
func NewChecker(sh *Shared, procs []*Proc) *Checker {
	handles := make([]*Handle, len(procs))
	for i, p := range procs {
		handles[i] = p.h
	}
	return &Checker{sh: sh, handles: handles}
}

// NewHandleChecker builds a checker over raw handles (used by the
// arbitration tree, whose per-node clients are Handles, not Procs).
func NewHandleChecker(sh *Shared, handles []*Handle) *Checker {
	return &Checker{sh: sh, handles: handles}
}

// nhat returns the paper's hidden variable n̂ode for h (NIL when the
// process has no current node).
func (c *Checker) nhat(h *Handle) memsim.Addr {
	switch {
	case h.phat >= 13 && h.phat <= 15, h.phat >= 25 && h.phat <= 29:
		return c.sh.PeekNodeCell(h.port)
	case h.pc == PCL12:
		return h.mynode
	default:
		return memsim.NilAddr
	}
}

// dormant reports that h is between super-passages: no operation in flight
// and P̂C back at its initial value. In the arbitration tree several
// processes own handles on the same port (their use is serialized by the
// levels below); dormant handles are not the port's current user and are
// excluded from the per-port conditions.
func (h *Handle) dormant() bool { return h.pc == PCIdle && h.phat == 11 }

// active returns the handles currently using each port. It is an invariant
// of its own (checked here) that each port has at most one non-dormant
// handle.
func (c *Checker) active() (map[int]*Handle, error) {
	act := make(map[int]*Handle)
	for _, h := range c.handles {
		if h.dormant() {
			continue
		}
		if prev, dup := act[h.port]; dup {
			return nil, fmt.Errorf("port exclusivity violated: two live handles on port %d (P̂C %d and %d)",
				h.port, prev.phat, h.phat)
		}
		act[h.port] = h
	}
	return act, nil
}

// Check evaluates all implemented conditions, returning the first
// violation.
func (c *Checker) Check() error {
	act, err := c.active()
	if err != nil {
		return err
	}
	if err := c.checkME(); err != nil {
		return err
	}
	if err := c.checkC1(act); err != nil {
		return err
	}
	if err := c.checkC2(act); err != nil {
		return err
	}
	if err := c.checkC4(); err != nil {
		return err
	}
	if err := c.checkC5(); err != nil {
		return err
	}
	if err := c.checkC7(); err != nil {
		return err
	}
	return c.checkC16()
}

func (c *Checker) checkME() error {
	holders := 0
	for _, h := range c.handles {
		if h.phat == 27 {
			holders++
		}
	}
	if holders > 1 {
		return fmt.Errorf("ME violated: %d processes have P̂C=27", holders)
	}
	return nil
}

func (c *Checker) checkC1(act map[int]*Handle) error {
	sh := c.sh
	for port := 0; port < sh.cfg.Ports; port++ {
		h := act[port]
		cell := sh.PeekNodeCell(port)
		if h == nil {
			// No live user: the paper's P̂C ∈ {11} case.
			if cell != memsim.NilAddr {
				return fmt.Errorf("C1: port %d has no live user but Node[%d]=%d", port, port, cell)
			}
			continue
		}
		phat := h.phat
		switch {
		case phat == 11 || phat == 12:
			if cell != memsim.NilAddr {
				return fmt.Errorf("C1: port %d P̂C=%d but Node[%d]=%d", h.port, phat, h.port, cell)
			}
		case cell == memsim.NilAddr:
			return fmt.Errorf("C1: port %d P̂C=%d but Node[%d]=NIL", h.port, phat, h.port)
		case phat == 13 || phat == 14:
			pred := sh.PeekPred(cell)
			if pred != memsim.NilAddr && pred != sh.CrashNode {
				return fmt.Errorf("C1: port %d P̂C=%d but Pred=%s", h.port, phat, sh.SentinelName(pred))
			}
		case phat == 15 || phat == 25 || phat == 26:
			pred := sh.PeekPred(cell)
			if pred == memsim.NilAddr || sh.IsSentinel(pred) {
				return fmt.Errorf("C1: port %d P̂C=%d but Pred=%s (want a queue node)", h.port, phat, sh.SentinelName(pred))
			}
		case phat == 27:
			if pred := sh.PeekPred(cell); pred != sh.InCSNode {
				return fmt.Errorf("C1: port %d P̂C=27 but Pred=%s", h.port, sh.SentinelName(pred))
			}
		case phat == 28 || phat == 29:
			if pred := sh.PeekPred(cell); pred != sh.ExitNode {
				return fmt.Errorf("C1: port %d P̂C=%d but Pred=%s", h.port, phat, sh.SentinelName(pred))
			}
		}
	}
	return nil
}

func (c *Checker) checkC2(act map[int]*Handle) error {
	for _, h := range act {
		line := h.pc / 10
		// Paper C2 range: PC ∈ [13,15] ∪ [18,29] ∪ [30,48]; our PC space
		// folds the RLock exit at 495 (line 49) into the same range.
		inRange := (line >= 13 && line <= 15) || (line >= 18 && line <= 49)
		if !inRange || h.mynode == memsim.NilAddr {
			continue
		}
		if cell := c.sh.PeekNodeCell(h.port); cell != h.mynode {
			return fmt.Errorf("C2: port %d at pc %d has mynode=%d but Node[%d]=%d",
				h.port, h.pc, h.mynode, h.port, cell)
		}
	}
	return nil
}

func (c *Checker) checkC4() error {
	sh := c.sh
	// Distinct current nodes.
	seen := make(map[memsim.Addr]int)
	for _, h := range c.handles {
		n := c.nhat(h)
		if n == memsim.NilAddr {
			continue
		}
		if prev, dup := seen[n]; dup {
			return fmt.Errorf("C4: ports %d and %d share n̂ode %d", prev, h.port, n)
		}
		seen[n] = h.port
	}
	// Distinct predecessors unless NIL/&Crash/&Exit.
	preds := make(map[memsim.Addr]int)
	for _, h := range c.handles {
		n := c.nhat(h)
		if n == memsim.NilAddr {
			continue
		}
		pred := sh.PeekPred(n)
		if pred == memsim.NilAddr || pred == sh.CrashNode || pred == sh.ExitNode {
			continue
		}
		if prev, dup := preds[pred]; dup {
			return fmt.Errorf("C4: ports %d and %d share predecessor %s (the Golab–Hendler Scenario 2 failure shape)",
				prev, h.port, sh.SentinelName(pred))
		}
		preds[pred] = h.port
	}
	// Bounded chains: following Pred from any current node reaches a
	// sentinel or NIL within k+2 hops (no cycles, no runaway fragments).
	for _, h := range c.handles {
		n := c.nhat(h)
		if n == memsim.NilAddr {
			continue
		}
		cur := n
		for hop := 0; ; hop++ {
			if hop > sh.cfg.Ports+2 {
				return fmt.Errorf("C4: Pred chain from port %d's node exceeds %d hops (cycle?)", h.port, sh.cfg.Ports+2)
			}
			pred := sh.PeekPred(cur)
			if pred == memsim.NilAddr || sh.IsSentinel(pred) {
				break
			}
			cur = pred
		}
	}
	return nil
}

func (c *Checker) checkC5() error {
	sh := c.sh
	// Map each current node to its owner's P̂C for the windowed clauses.
	ownerPhat := make(map[memsim.Addr]int)
	for _, h := range c.handles {
		if n := c.nhat(h); n != memsim.NilAddr {
			ownerPhat[n] = h.phat
		}
	}
	for _, n := range sh.AllNodes() {
		pred := sh.PeekPred(n)
		nonNil := sh.mem.Peek(n+OffNonNil) != 0
		cs := sh.mem.Peek(n+OffCS) != 0
		if cs && pred != sh.ExitNode {
			return fmt.Errorf("C5: node %d has CS_Signal=1 but Pred=%s", n, sh.SentinelName(pred))
		}
		if nonNil && pred == memsim.NilAddr {
			return fmt.Errorf("C5: node %d has NonNil_Signal=1 but Pred=NIL", n)
		}
		if !nonNil && pred != memsim.NilAddr && pred != sh.CrashNode {
			// One legal window: line 14 has written Pred but line 15's
			// set() has not completed, i.e. the owner's P̂C is 15.
			if ownerPhat[n] != 15 {
				return fmt.Errorf("C5: node %d has NonNil_Signal=0 but Pred=%s (owner P̂C=%d)",
					n, sh.SentinelName(pred), ownerPhat[n])
			}
		}
		if !cs && pred == sh.ExitNode {
			// Only legal in the line 27→28 window, i.e. its owner has
			// P̂C=28, or the node is abandoned mid-exit by a crash (its
			// owner will re-enter and complete lines 28–29; the cell is
			// still set, so the owner's P̂C is 28 after line 27).
			if ownerPhat[n] != 28 {
				return fmt.Errorf("C5: node %d has CS_Signal=0, Pred=&Exit, owner P̂C=%d (want 28)", n, ownerPhat[n])
			}
		}
	}
	return nil
}

func (c *Checker) checkC7() error {
	sh := c.sh
	// Distinct fragment heads whose Pred is &InCS: processes in the same
	// fragment share a head, so heads are deduplicated by node address.
	headsInCS := make(map[memsim.Addr]struct{})
	for _, h := range c.handles {
		n := c.nhat(h)
		if n == memsim.NilAddr {
			continue
		}
		// Head of p's fragment: follow Pred until a sentinel or NIL.
		cur := n
		for hop := 0; hop <= sh.cfg.Ports+2; hop++ {
			pred := sh.PeekPred(cur)
			if pred == memsim.NilAddr || sh.IsSentinel(pred) {
				if pred == sh.InCSNode {
					headsInCS[cur] = struct{}{}
				}
				break
			}
			cur = pred
		}
	}
	if len(headsInCS) > 1 {
		return fmt.Errorf("C7: %d distinct fragment heads have Pred=&InCS", len(headsInCS))
	}
	return nil
}

func (c *Checker) checkC16() error {
	sh := c.sh
	tail := sh.PeekTail()
	if tail == memsim.NilAddr || sh.IsSentinel(tail) {
		return fmt.Errorf("C16: Tail=%s is not a queue node", sh.SentinelName(tail))
	}
	// Tail = tail(fragment(Tail)): no in-flight node's Pred names it.
	for q := 0; q < sh.cfg.Ports; q++ {
		cell := sh.PeekNodeCell(q)
		if cell == memsim.NilAddr || cell == tail {
			continue
		}
		if sh.PeekPred(cell) == tail {
			return fmt.Errorf("C16: Node[%d].Pred = Tail (%d); Tail is not the tail of its fragment", q, tail)
		}
	}
	return nil
}

// Fragments reconstructs the queue fragments over the in-flight nodes (the
// Node table) for renderers and tests: each fragment is ordered head → tail
// (head's Pred is a sentinel or NIL).
func (c *Checker) Fragments() [][]memsim.Addr {
	return FragmentsOf(c.sh)
}

// FragmentsOf computes the fragments of sh's queue from the port table.
// Exported for the Figure 5 renderer (cmd/rmetrace) and tests.
func FragmentsOf(sh *Shared) [][]memsim.Addr {
	// successors: pred node -> the in-flight node pointing at it.
	succ := make(map[memsim.Addr]memsim.Addr)
	inflight := make(map[memsim.Addr]bool)
	for q := 0; q < sh.cfg.Ports; q++ {
		if cell := sh.PeekNodeCell(q); cell != memsim.NilAddr {
			inflight[cell] = true
		}
	}
	for n := range inflight {
		pred := sh.PeekPred(n)
		if pred != memsim.NilAddr && !sh.IsSentinel(pred) {
			succ[pred] = n
		}
	}
	// Heads: in-flight nodes whose Pred is sentinel/NIL, or whose Pred is a
	// node that is not in-flight (an abandoned completed node).
	var frags [][]memsim.Addr
	for q := 0; q < sh.cfg.Ports; q++ {
		n := sh.PeekNodeCell(q)
		if n == memsim.NilAddr {
			continue
		}
		pred := sh.PeekPred(n)
		isHead := pred == memsim.NilAddr || sh.IsSentinel(pred) || !inflight[pred]
		if !isHead {
			continue
		}
		frag := []memsim.Addr{n}
		cur := n
		for {
			next, ok := succ[cur]
			if !ok {
				break
			}
			frag = append(frag, next)
			cur = next
		}
		frags = append(frags, frag)
	}
	return frags
}
