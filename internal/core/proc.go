package core

import (
	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
)

// Client program counters (outer RME cycle around a Handle).
const (
	clientRemainder = iota
	clientLocking
	clientCS
	clientUnlocking
)

// Proc is a sched.Proc cycling Remainder → Try → CS → Exit through one
// Handle. The CS dwell is a configurable number of local steps.
type Proc struct {
	id    int
	mem   *memsim.Memory
	h     *Handle
	cpc   int
	dwell int
	left  int

	passages uint64
}

// NewProc builds a client for process id on port port of sh.
func NewProc(sh *Shared, id, port, dwell int) *Proc {
	return &Proc{id: id, mem: sh.mem, h: NewHandle(sh, id, port), dwell: dwell}
}

// ID implements sched.Proc.
func (p *Proc) ID() int { return p.id }

// Handle exposes the underlying step machine (tests, checkers).
func (p *Proc) Handle() *Handle { return p.h }

// PC implements sched.PCer: the handle's PC while an operation is in
// flight, a negative client code otherwise.
func (p *Proc) PC() int {
	switch p.cpc {
	case clientLocking, clientUnlocking:
		return p.h.PC()
	default:
		return -1 - p.cpc
	}
}

// Section implements sched.Proc. The CS is entered the moment the Try
// completes, which coincides with P̂C = 27 (the paper's definition).
func (p *Proc) Section() sched.Section {
	switch p.cpc {
	case clientRemainder:
		return sched.Remainder
	case clientLocking:
		return sched.Try
	case clientCS:
		return sched.CS
	default:
		return sched.Exit
	}
}

// Passages implements sched.Proc.
func (p *Proc) Passages() uint64 { return p.passages }

// Step implements sched.Proc.
func (p *Proc) Step() {
	switch p.cpc {
	case clientRemainder:
		p.h.BeginLock()
		p.mem.LocalStep(p.id)
		p.cpc = clientLocking
	case clientLocking:
		if p.h.Step() {
			p.cpc = clientCS
			p.left = p.dwell
		}
	case clientCS:
		if p.left > 0 {
			p.left--
			p.mem.LocalStep(p.id)
			return
		}
		p.h.BeginUnlock()
		p.mem.LocalStep(p.id)
		p.cpc = clientUnlocking
	case clientUnlocking:
		if p.h.Step() {
			p.passages++
			p.cpc = clientRemainder
		}
	}
}

// Crash implements sched.Proc: registers are wiped and the process restarts
// from Remainder; its next normal step re-enters the Try section, which
// performs the paper's recovery.
func (p *Proc) Crash() {
	p.h.Crash()
	p.cpc = clientRemainder
	p.left = 0
	p.mem.CrashProcess(p.id)
}
