package experiments

import (
	"fmt"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/sigobj"
	"github.com/rmelib/rme/internal/table"
	"github.com/rmelib/rme/internal/xrand"
)

// E1Signal measures set()/wait() RMR costs on both machine models, with the
// waiter forced through ever longer busy-waits: the spin must be free
// (Theorem 1(v): O(1) RMRs per operation regardless of waiting time).
func E1Signal() *Result {
	res := &Result{ID: "E1", Title: "Signal object: RMRs per operation vs. spin length"}
	tb := table.New("RMRs per set()/wait() (spin iterations before the set arrives)",
		"model", "spin iters", "setter RMRs", "waiter RMRs")
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		for _, spins := range []int{0, 10, 1000, 100000} {
			mem := memsim.New(memsim.Config{Model: model, Procs: 2})
			sig := sigobj.Alloc(mem, 0)

			w := sigobj.NewWaiter(mem, 1)
			w.Begin(sig)
			for i := 0; i < 6+spins; i++ {
				if w.Step() {
					break
				}
			}
			s := sigobj.NewSetter(mem, 0)
			s.Begin(sig)
			for !s.Step() {
			}
			for !w.Step() {
			}
			tb.AddF(model.String(), spins, mem.Stats(0).RMRs, mem.Stats(1).RMRs)
			if mem.Stats(1).RMRs > 6 {
				res.Err = fmt.Errorf("waiter RMRs grew with spin length: %d", mem.Stats(1).RMRs)
			}
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("expected shape: both columns constant in the spin length (Theorem 1(v))")
	return res
}

// E2PassageRMR measures crash-free RMRs per passage of the flat k-ported
// algorithm as k grows: Theorem 2 says O(1), so the series must be flat.
func E2PassageRMR() *Result {
	res := &Result{ID: "E2", Title: "Flat algorithm, crash-free: RMRs per passage vs. k"}
	tb := table.New("RMRs per passage (no crashes, all ports contending)",
		"k", "CC", "DSM")
	var first, last [2]float64
	ks := []int{2, 4, 8, 16, 32, 64}
	for _, k := range ks {
		var row [2]float64
		for mi, model := range []memsim.Model{memsim.CC, memsim.DSM} {
			mem, _, procs := coreWorld(model, k, 1, false)
			per, err := rmrPerPassage(mem, asSched(procs), 15, uint64(k)*31+uint64(model))
			if err != nil {
				res.Err = err
				return res
			}
			row[mi] = per
		}
		tb.AddF(k, row[0], row[1])
		if k == ks[0] {
			first = row
		}
		last = row
	}
	res.Tables = append(res.Tables, tb)
	for mi, name := range []string{"CC", "DSM"} {
		if last[mi] > first[mi]*2.5 {
			res.Err = fmt.Errorf("%s series is not O(1): %0.1f at k=2 vs %0.1f at k=64",
				name, first[mi], last[mi])
		}
	}
	res.note("expected shape: flat in k (Theorem 2, crash-free half)")
	return res
}

// crashFThenRepair crashes process 0 once at line 14 and f-1 more times at
// the end of each repair (line 49), forcing f recoveries in one
// super-passage.
type crashFThenRepair struct {
	total, done int
	pcFirst     int
	pcLater     int
}

func (c *crashFThenRepair) ShouldCrash(_ uint64, p sched.Proc) bool {
	if c.done >= c.total || p.ID() != 0 {
		return false
	}
	want := c.pcLater
	if c.done == 0 {
		want = c.pcFirst
	}
	if p.(sched.PCer).PC() != want {
		return false
	}
	c.done++
	return true
}

// E3CrashRMR measures process 0's super-passage RMR cost with f forced
// crash-and-repair cycles, for several k: Theorem 2's O(f·k).
func E3CrashRMR() *Result {
	res := &Result{ID: "E3", Title: "Super-passage RMRs vs. crash count f (flat algorithm, DSM)"}
	tb := table.New("RMRs of the crashing process's super-passage",
		"k", "f=0", "f=1", "f=2", "f=4", "f=8")
	fs := []int{0, 1, 2, 4, 8}
	for _, k := range []int{4, 8, 16} {
		row := []any{k}
		var costs []float64
		for _, f := range fs {
			mem, _, procs := coreWorld(memsim.DSM, k, 0, false)
			policy := &crashFThenRepair{total: f, pcFirst: corePCL14, pcLater: corePCL49}
			r := &sched.Runner{
				Procs:    asSched(procs),
				Sched:    sched.Random{Src: xrand.New(uint64(k*100 + f))},
				Crash:    policy,
				StopWhen: func() bool { return procs[0].Passages() >= 1 },
				MaxSteps: 1 << 26,
			}
			if err := r.Run(); err != nil {
				res.Err = err
				return res
			}
			cost := float64(mem.Stats(0).RMRs)
			costs = append(costs, cost)
			row = append(row, cost)
		}
		tb.AddF(row...)
		// Shape check: roughly linear in f (f=8 within ~16x of f=1).
		if costs[4] > costs[1]*16 {
			res.Err = fmt.Errorf("k=%d: growth in f looks superlinear: f=1:%0.0f f=8:%0.0f",
				k, costs[1], costs[4])
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("expected shape: linear in f with slope growing with k (Theorem 2, O(f*k))")
	return res
}

// E4TreeRMR measures the arbitration tree's per-passage RMRs as n grows,
// crash-free and with crashes; Theorem 3's O((1+f)·log n/log log n).
func E4TreeRMR() *Result {
	res := &Result{ID: "E4", Title: "Arbitration tree: RMRs per passage vs. n"}
	tb := table.New("RMRs per passage (tree; DSM; crash-free)",
		"n", "arity", "height", "RMR/passage", "RMR/height")
	type point struct{ height, per float64 }
	var pts []point
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		mem, procs := buildLock(kindTree, memsim.DSM, n, 0)
		per, err := rmrPerPassage(mem, procs, 8, uint64(n)*7)
		if err != nil {
			res.Err = err
			return res
		}
		tr := treeShape(n)
		tb.AddF(n, tr.arity, tr.levels, per, per/float64(tr.levels))
		pts = append(pts, point{height: float64(tr.levels), per: per})
	}
	res.Tables = append(res.Tables, tb)
	// Shape: RMR/height roughly constant (cost proportional to the height).
	lo, hi := pts[0].per/pts[0].height, pts[0].per/pts[0].height
	for _, p := range pts {
		v := p.per / p.height
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 3.5*lo {
		res.Err = fmt.Errorf("RMR per height varies %0.1f..%0.1f; not proportional to height", lo, hi)
	}
	res.note("expected shape: proportional to tree height = O(log n / log log n) (Theorem 3)")
	return res
}

// E5Comparison produces the head-to-head table: RMRs per crash-free passage
// for MCS, the GR-style read/write tournament, the paper's flat algorithm,
// and the paper's tree, on CC and DSM.
func E5Comparison() *Result {
	res := &Result{ID: "E5", Title: "RMRs per passage: baselines vs. the paper's algorithm"}
	kinds := []lockKind{kindMCS, kindGRTournament, kindFlat, kindTree}
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		tb := table.New(fmt.Sprintf("RMRs per passage, %s machine", model),
			"n", "MCS", "GR tournament", "flat (paper)", "tree (paper)")
		for _, n := range []int{2, 4, 8, 16, 32, 64} {
			row := []any{n}
			for _, kind := range kinds {
				mem, procs := buildLock(kind, model, n, 1)
				per, err := rmrPerPassage(mem, procs, 10, uint64(n)+uint64(kind)*13)
				if err != nil {
					res.Err = err
					return res
				}
				row = append(row, per)
			}
			tb.AddF(row...)
		}
		res.Tables = append(res.Tables, tb)
	}
	res.note("expected shape: MCS and flat stay O(1); GR tournament grows like log2 n;")
	res.note("tree grows like log n/log log n (between flat and GR); only the paper's")
	res.note("algorithms combine recoverability with bounded RMR on both models")
	return res
}
