package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rmelib/rme/internal/core"
	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
)

// E6Figure5 re-runs the Figure 5 walkthrough (the paper's Appendix B
// illustration) and renders the queue after every repair, checking each
// intermediate state against the figure.
func E6Figure5() *Result {
	res := &Result{ID: "E6", Title: "Figure 5: queue states during the five repairs"}
	states, err := Figure5States()
	if err != nil {
		res.Err = err
		return res
	}
	for _, s := range states {
		res.note("%s", s)
	}
	res.note("matches Figure 5: π1→Special+CS, π7→π2, π5→π7, π8 FAS behind π6, π3 FAS π4 / →π8")
	return res
}

// Figure5States drives the Figure 5 schedule and returns a rendering of
// the queue after the setup and after each repair. It returns an error if
// any intermediate state deviates from the figure.
func Figure5States() ([]string, error) {
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 8})
	sh := core.NewShared(mem, core.Config{Ports: 8})
	procs := make([]*core.Proc, 8)
	for i := range procs {
		procs[i] = core.NewProc(sh, i, i, 1)
	}
	d := sched.NewDriver(asSched(procs)...)
	node := func(pi int) memsim.Addr { return sh.PeekNodeCell(pi) }
	pred := func(pi int) memsim.Addr { return sh.PeekPred(node(pi)) }

	// Setup: π1,π3,π5 crash at line 14; π2,π4,π6 wait at line 25;
	// π7,π8 crash at line 13 (π_i is port i-1).
	for _, pi := range []int{0, 1, 2, 3, 4, 5} {
		if pi%2 == 0 {
			if !d.StepUntilPC(pi, core.PCL14) {
				return nil, fmt.Errorf("π%d never reached line 14", pi+1)
			}
			d.Crash(pi)
		} else {
			if !d.StepUntilPC(pi, core.PCL25) {
				return nil, fmt.Errorf("π%d never reached line 25", pi+1)
			}
			d.Step(pi, 8)
		}
	}
	for _, pi := range []int{6, 7} {
		if !d.StepUntilPC(pi, core.PCL13) {
			return nil, fmt.Errorf("π%d never reached line 13", pi+1)
		}
		d.Crash(pi)
	}
	var states []string
	states = append(states, "initial:     "+RenderQueue(sh))

	for _, pi := range []int{0, 6, 4, 7, 2} {
		if !d.StepUntilPC(pi, core.PCL24) {
			return nil, fmt.Errorf("π%d never reached line 24 after restart", pi+1)
		}
	}
	repairs := []struct {
		pi    int
		check func() error
	}{
		{0, func() error {
			if pred(0) != sh.InCSNode {
				return fmt.Errorf("π1 should be in the CS after its repair")
			}
			return nil
		}},
		{6, func() error {
			if pred(6) != node(1) {
				return fmt.Errorf("π7 should point at π2's node")
			}
			return nil
		}},
		{4, func() error {
			if pred(4) != node(6) {
				return fmt.Errorf("π5 should point at π7's node")
			}
			return nil
		}},
		{7, func() error {
			if pred(7) != node(5) || sh.PeekTail() != node(7) {
				return fmt.Errorf("π8 should FAS itself behind π6")
			}
			return nil
		}},
		{2, func() error {
			if pred(2) != node(7) || sh.PeekTail() != node(3) {
				return fmt.Errorf("π3 should FAS π4 in and point at π8's node")
			}
			return nil
		}},
	}
	for _, rep := range repairs {
		var arrived bool
		if rep.pi == 0 {
			arrived = d.StepUntilSection(rep.pi, sched.CS)
		} else {
			arrived = d.StepUntilPC(rep.pi, core.PCL25)
		}
		if !arrived {
			return nil, fmt.Errorf("π%d did not finish its repair", rep.pi+1)
		}
		if err := rep.check(); err != nil {
			return nil, err
		}
		states = append(states, fmt.Sprintf("π%d repairs:  %s", rep.pi+1, RenderQueue(sh)))
	}
	return states, nil
}

// RenderQueue renders the port table's fragments in Figure 5 style: the
// tail chain first (from Tail, following Pred), then the remaining
// fragments, naming each node π(port+1) and showing where each fragment's
// head points.
func RenderQueue(sh *core.Shared) string {
	name := make(map[memsim.Addr]string)
	for p := 0; p < sh.Ports(); p++ {
		if n := sh.PeekNodeCell(p); n != memsim.NilAddr {
			name[n] = fmt.Sprintf("π%d", p+1)
		}
	}
	headOf := func(a memsim.Addr) string {
		switch {
		case a == memsim.NilAddr:
			return "⊥"
		case sh.IsSentinel(a), a == sh.SpecialNode:
			return sh.SentinelName(a)
		case name[a] != "":
			return name[a]
		default:
			return "x" // an abandoned completed node (the figure's "x")
		}
	}
	// A fragment's tail is a named node that no other named node's Pred
	// references; render each fragment tail → head, the Tail pointer's
	// fragment first.
	pointedAt := make(map[memsim.Addr]bool)
	for n := range name {
		pointedAt[sh.PeekPred(n)] = true
	}
	renderChainFrom := func(start memsim.Addr, label string) string {
		var b strings.Builder
		b.WriteString(label)
		cur := start
		for hops := 0; cur != memsim.NilAddr && name[cur] != "" && hops <= sh.Ports(); hops++ {
			b.WriteString(name[cur])
			nxt := sh.PeekPred(cur)
			b.WriteString("→")
			if name[nxt] == "" {
				b.WriteString(headOf(nxt))
				break
			}
			cur = nxt
		}
		return b.String()
	}
	var parts []string
	tailPtr := sh.PeekTail()
	if name[tailPtr] != "" {
		parts = append(parts, renderChainFrom(tailPtr, "Tail:"))
	} else {
		parts = append(parts, "Tail:"+headOf(tailPtr))
	}
	var rest []int
	for p := 0; p < sh.Ports(); p++ {
		n := sh.PeekNodeCell(p)
		if n == memsim.NilAddr || n == tailPtr || pointedAt[n] {
			continue
		}
		rest = append(rest, p)
	}
	sort.Ints(rest)
	for _, p := range rest {
		parts = append(parts, renderChainFrom(sh.PeekNodeCell(p), ""))
	}
	return strings.Join(parts, "  ")
}
