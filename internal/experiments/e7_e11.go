package experiments

import (
	"fmt"

	"github.com/rmelib/rme/internal/core"
	"github.com/rmelib/rme/internal/ghrepro"
	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/table"
	"github.com/rmelib/rme/internal/xrand"
)

// E7Scenario1 replays Appendix A.1: the Golab–Hendler reconstruction
// deadlocks in Recover; the paper's algorithm completes the same schedule.
func E7Scenario1() *Result {
	res := &Result{ID: "E7", Title: "Appendix A, Scenario 1 (Recover deadlock)"}
	gh, err := ghrepro.RunScenario1(200_000)
	if err != nil {
		res.Err = err
		return res
	}
	res.note("GH reconstruction deadlocked: %v (P2 waits on lnodes[%d], P4 on lnodes[%d], %d steps of no progress)",
		gh.Deadlocked, gh.P2Waits, gh.P4Waits, gh.Steps)
	if !gh.Deadlocked {
		res.Err = fmt.Errorf("GH did not deadlock; scenario reproduction broken")
		return res
	}

	// The paper's algorithm under the analogous schedule.
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 5})
	sh := core.NewShared(mem, core.Config{Ports: 5})
	procs := make([]*core.Proc, 5)
	for i := range procs {
		procs[i] = core.NewProc(sh, i, i, 0)
	}
	d := sched.NewDriver(asSched(procs)...)
	const P2, P4 = 2, 4
	if !d.FinishPassage(P4) {
		res.Err = fmt.Errorf("setup: P4 passage")
		return res
	}
	if !d.StepUntilPC(P2, core.PCL14) {
		res.Err = fmt.Errorf("setup: P2 line 14")
		return res
	}
	d.Crash(P2)
	if !d.StepUntilPC(P4, core.PCL14) {
		res.Err = fmt.Errorf("setup: P4 line 14")
		return res
	}
	d.Crash(P4)
	ok := d.RunConcurrently([]int{P2, P4}, func() bool {
		return procs[P2].Passages() >= 1 && procs[P4].Passages() >= 2
	})
	res.note("this paper's algorithm completed the same schedule: %v", ok)
	if !ok {
		res.Err = fmt.Errorf("the paper's algorithm failed the Scenario 1 schedule")
	}
	return res
}

// E8Scenario2 replays Appendix A.2: GH manufactures a duplicate
// predecessor and starves P6; the paper's algorithm completes the schedule
// with invariant C4 (no shared predecessors) intact.
func E8Scenario2() *Result {
	res := &Result{ID: "E8", Title: "Appendix A, Scenario 2 (starvation via duplicate predecessor)"}
	gh, err := ghrepro.RunScenario2(400_000)
	if err != nil {
		res.Err = err
		return res
	}
	res.note("GH reconstruction: duplicate predecessor: %v, queue drained: %v, P6 starved: %v",
		gh.DuplicatePredecessor, gh.Drained, gh.P6Starved)
	if !gh.DuplicatePredecessor || !gh.P6Starved {
		res.Err = fmt.Errorf("scenario 2 did not reproduce")
		return res
	}

	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 7})
	sh := core.NewShared(mem, core.Config{Ports: 7})
	procs := make([]*core.Proc, 7)
	for i := range procs {
		procs[i] = core.NewProc(sh, i, i, 0)
	}
	ck := core.NewChecker(sh, procs)
	d := sched.NewDriver(asSched(procs)...)
	setup := []func() bool{
		func() bool { return d.StepUntilSection(0, sched.CS) },
		func() bool { return d.StepUntilPC(1, core.PCL25) },
		func() bool { return d.StepUntilPC(2, core.PCL14) },
		func() bool { d.Crash(2); return true },
		func() bool { return d.StepUntilPC(2, core.PCL33) },
		func() bool { return d.StepUntilPC(3, core.PCL25) },
		func() bool { return d.StepUntilPC(4, core.PCL14) },
		func() bool { d.Crash(4); return true },
		func() bool { return d.StepUntilPC(5, core.PCL25) },
	}
	for i, step := range setup {
		if !step() {
			res.Err = fmt.Errorf("paper-side setup step %d failed", i)
			return res
		}
	}
	var invErr error
	ok := d.RunConcurrently([]int{0, 1, 2, 3, 4, 5, 6}, func() bool {
		if invErr == nil {
			invErr = ck.Check()
		}
		for _, p := range procs {
			if p.Passages() < 1 {
				return false
			}
		}
		return true
	})
	res.note("this paper's algorithm completed the same schedule: %v (invariant violations: %v)", ok, invErr)
	if !ok || invErr != nil {
		res.Err = fmt.Errorf("the paper's algorithm failed the Scenario 2 schedule: %v", invErr)
	}
	return res
}

// E9Ablation contrasts the paper's shallow repair exploration with
// Golab–Hendler-style deep exploration (§1.5, bullet 3): local computation
// steps, RMRs under a tiny (4-word) cache, and unbounded-cache residency.
func E9Ablation() *Result {
	res := &Result{ID: "E9", Title: "Repair exploration ablation: shallow (paper) vs deep (GH-style)"}
	tb := table.New("per-super-passage cost of repairing after all k ports crash at line 14 (CC machine)",
		"k", "mode", "local steps", "RMRs (4-word cache)", "RMRs (unbounded cache)")

	type cost struct{ local, rmrSmall, rmrBig float64 }
	measure := func(k int, deep bool, cacheCap int) (cost, error) {
		mem, _, procs := coreWorldCache(memsim.CC, k, 0, deep, cacheCap)
		d := sched.NewDriver(asSched(procs)...)
		// Fragment the queue completely: every port crashes at line 14.
		for p := 0; p < k; p++ {
			if !d.StepUntilPC(p, core.PCL14) {
				return cost{}, fmt.Errorf("port %d never reached line 14", p)
			}
			d.Crash(p)
		}
		// Park everyone at line 24, then let them repair one at a time,
		// each parking at line 25 afterwards so the repaired chain keeps
		// growing: the deep-exploration cost is the repeated re-walking of
		// that chain from every scanned node.
		for p := 0; p < k; p++ {
			if !d.StepUntilPC(p, core.PCL24) {
				return cost{}, fmt.Errorf("port %d never reached line 24", p)
			}
		}
		for p := 0; p < k; p++ {
			if !d.StepUntilPC(p, core.PCL25) {
				return cost{}, fmt.Errorf("port %d never completed its repair", p)
			}
		}
		var c cost
		for p := 0; p < k; p++ {
			st := mem.Stats(p)
			c.local += float64(st.LocalSteps)
			c.rmrSmall += float64(st.RMRs)
		}
		c.local /= float64(k)
		c.rmrSmall /= float64(k)
		return c, nil
	}

	type row struct{ shallow, deep cost }
	rows := map[int]row{}
	ks := []int{4, 8, 16, 32}
	for _, k := range ks {
		var r row
		for _, deep := range []bool{false, true} {
			small, err := measure(k, deep, 4)
			if err != nil {
				res.Err = err
				return res
			}
			unbounded, err := measure(k, deep, 0)
			if err != nil {
				res.Err = err
				return res
			}
			c := cost{local: unbounded.local, rmrSmall: small.rmrSmall, rmrBig: unbounded.rmrSmall}
			mode := "shallow"
			if deep {
				mode = "deep"
				r.deep = c
			} else {
				r.shallow = c
			}
			tb.AddF(k, mode, c.local, c.rmrSmall, c.rmrBig)
		}
		rows[k] = r
	}
	res.Tables = append(res.Tables, tb)

	// Shape checks: deep local work grows ~quadratically relative to
	// shallow; deep needs a growing cache while shallow's stays flat.
	s4, s32 := rows[4].shallow, rows[32].shallow
	d4, d32 := rows[4].deep, rows[32].deep
	shallowGrowth := s32.local / s4.local
	deepGrowth := d32.local / d4.local
	if deepGrowth < shallowGrowth*1.5 {
		res.Err = fmt.Errorf("deep exploration local growth (%.1fx) not worse than shallow (%.1fx)",
			deepGrowth, shallowGrowth)
	}
	res.note("local-step growth k=4→32: shallow %.1fx vs deep %.1fx (paper: O(k) vs O(k^2))",
		shallowGrowth, deepGrowth)
	// The cache-size claim (S1.4 item 2): deep exploration only keeps its
	// RMR count down when the whole chain fits in cache; shallow barely
	// cares. Compare each mode's small-cache penalty at k=32.
	shallowPenalty := s32.rmrSmall / s32.rmrBig
	deepPenalty := d32.rmrSmall / d32.rmrBig
	res.note("4-word-cache RMR penalty at k=32: shallow %.2fx vs deep %.2fx "+
		"(the paper's O(1)-cache-words claim holds only for shallow)",
		shallowPenalty, deepPenalty)
	if deepPenalty < shallowPenalty {
		res.Err = fmt.Errorf("deep exploration shows no extra cache sensitivity (%.2fx vs %.2fx)",
			deepPenalty, shallowPenalty)
	}
	return res
}

// E10Bounds measures the wait-free Exit and wait-free CSR step bounds
// (Lemmas 6 and 7) under piled-up contention.
func E10Bounds() *Result {
	res := &Result{ID: "E10", Title: "Wait-free Exit and CSR re-entry step bounds"}
	tb := table.New("maximum own-steps observed (adversarial rivals mid-Try)",
		"k", "Exit steps", "CSR re-entry steps")
	for _, k := range []int{2, 8, 32} {
		_, _, procs := coreWorld(memsim.DSM, k, 2, false)
		d := sched.NewDriver(asSched(procs)...)
		if !d.StepUntilSection(0, sched.CS) {
			res.Err = fmt.Errorf("k=%d: no CS", k)
			return res
		}
		for p := 1; p < k; p++ {
			d.Step(p, 11) // rivals stall mid-Try
		}
		// CSR: crash in the CS, count steps back in.
		d.Crash(0)
		reentry := 0
		for procs[0].Section() != sched.CS {
			d.Step(0, 1)
			if reentry++; reentry > 100 {
				res.Err = fmt.Errorf("k=%d: CSR re-entry not wait-free", k)
				return res
			}
		}
		if !d.StepUntilSection(0, sched.Exit) {
			res.Err = fmt.Errorf("k=%d: no Exit", k)
			return res
		}
		exitSteps := 0
		for procs[0].Section() == sched.Exit {
			d.Step(0, 1)
			if exitSteps++; exitSteps > 100 {
				res.Err = fmt.Errorf("k=%d: Exit not wait-free", k)
				return res
			}
		}
		tb.AddF(k, exitSteps, reentry)
	}
	res.Tables = append(res.Tables, tb)
	res.note("expected shape: small constants independent of k (Lemmas 6-7)")
	return res
}

// E11Invariant sweeps randomized crash-heavy schedules with the Appendix C
// invariant subset checked after every step.
func E11Invariant() *Result {
	res := &Result{ID: "E11", Title: "Appendix C invariant subset under randomized crash schedules"}
	tb := table.New("randomized sweeps (checker evaluated after every step)",
		"k", "seeds", "crashes", "steps checked", "violations")
	for _, k := range []int{2, 4, 8} {
		var steps uint64
		var crashes uint64
		violations := 0
		for seed := uint64(0); seed < 8; seed++ {
			_, sh, procs := coreWorld(memsim.DSM, k, 1, false)
			ck := core.NewChecker(sh, procs)
			rng := xrand.New(seed*2027 + uint64(k))
			var fail error
			r := &sched.Runner{
				Procs: asSched(procs),
				Sched: sched.Random{Src: rng},
				Crash: &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 50, Budget: 30},
				OnStep: func(sched.StepEvent) {
					if fail == nil {
						fail = ck.Check()
					}
				},
				StopWhen: sched.AllPassagesAtLeast(asSched(procs), 6),
				MaxSteps: 1 << 24,
			}
			if err := r.Run(); err != nil {
				res.Err = err
				return res
			}
			if fail != nil {
				violations++
				res.note("k=%d seed=%d: %v", k, seed, fail)
			}
			steps += r.Steps()
			crashes += r.TotalCrashes()
		}
		tb.AddF(k, 8, crashes, steps, violations)
		if violations > 0 {
			res.Err = fmt.Errorf("invariant violations found at k=%d", k)
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("expected: zero violations (machine-checked stand-in for the Appendix C proof)")
	return res
}
