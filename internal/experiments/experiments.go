// Package experiments implements the reproduction harness: one runner per
// experiment in EXPERIMENTS.md (E1–E11), each regenerating a paper artifact
// — a theorem's complexity claim measured in the simulated RMR model, the
// Figure 5 walkthrough, or an Appendix A failure scenario. cmd/rmebench
// prints the results; bench_test.go wraps them as testing.B benchmarks;
// tests assert on the shapes.
//
// All runs are deterministic: schedules and crash points derive from fixed
// seeds, so tables are reproducible bit-for-bit.
package experiments

import (
	"fmt"

	"github.com/rmelib/rme/internal/core"
	"github.com/rmelib/rme/internal/mcs"
	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/rlock"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/table"
	"github.com/rmelib/rme/internal/tree"
	"github.com/rmelib/rme/internal/xrand"
)

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier (e.g. "E2").
	ID string
	// Title describes the paper artifact being regenerated.
	Title string
	// Tables carry the measured series.
	Tables []*table.Table
	// Notes carry free-form findings (e.g. "deadlocked: true").
	Notes []string
	// Err is set when the experiment could not complete or an assertion
	// embedded in the runner failed; runners never panic.
	Err error
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Runner produces one experiment result.
type Runner struct {
	ID    string
	Title string
	Run   func() *Result
}

// All returns every experiment in order. E12 (runtime throughput) lives in
// bench_test.go only: it measures wall-clock, which has no place in the
// deterministic harness.
func All() []Runner {
	return []Runner{
		{"E1", "Signal object RMR (Theorem 1, Figures 1-2)", E1Signal},
		{"E2", "Crash-free passage RMR is O(1) (Theorem 2)", E2PassageRMR},
		{"E3", "Super-passage RMR is O(f*k) under f crashes (Theorem 2)", E3CrashRMR},
		{"E4", "Arbitration tree RMR is O((1+f) log n/log log n) (Theorem 3)", E4TreeRMR},
		{"E5", "Head-to-head RMR comparison (MCS / GR tournament / flat / tree)", E5Comparison},
		{"E6", "Figure 5 queue-repair walkthrough", E6Figure5},
		{"E7", "Appendix A Scenario 1: GH deadlock; this algorithm survives", E7Scenario1},
		{"E8", "Appendix A Scenario 2: GH starvation; this algorithm survives", E8Scenario2},
		{"E9", "Shallow vs deep exploration ablation (S1.5)", E9Ablation},
		{"E10", "Wait-free Exit and wait-free CSR bounds (Lemmas 6-7)", E10Bounds},
		{"E11", "Invariant checking sweep (Appendix C subset)", E11Invariant},
	}
}

// ---------------------------------------------------------------- helpers

// coreWorld builds a flat k-ported instance with one client per port.
func coreWorld(model memsim.Model, k, dwell int, deep bool) (*memsim.Memory, *core.Shared, []*core.Proc) {
	return coreWorldCache(model, k, dwell, deep, 0)
}

// coreWorldCache is coreWorld with a bounded CC cache (0 = unbounded).
func coreWorldCache(model memsim.Model, k, dwell int, deep bool, cacheCap int) (*memsim.Memory, *core.Shared, []*core.Proc) {
	mem := memsim.New(memsim.Config{Model: model, Procs: k, CacheCapacity: cacheCap})
	sh := core.NewShared(mem, core.Config{Ports: k, DeepExploration: deep})
	procs := make([]*core.Proc, k)
	for i := 0; i < k; i++ {
		procs[i] = core.NewProc(sh, i, i, dwell)
	}
	return mem, sh, procs
}

func asSched[T sched.Proc](ps []T) []sched.Proc {
	out := make([]sched.Proc, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

// rmrPerPassage runs procs under a seeded random schedule until every
// process finished passages passages, then averages RMRs per passage over
// all processes.
func rmrPerPassage(mem *memsim.Memory, procs []sched.Proc, passages uint64, seed uint64) (float64, error) {
	r := &sched.Runner{
		Procs:    procs,
		Sched:    sched.Random{Src: xrand.New(seed)},
		StopWhen: sched.AllPassagesAtLeast(procs, passages),
		MaxSteps: 1 << 26,
	}
	if err := r.Run(); err != nil {
		return 0, err
	}
	var rmrs, done uint64
	for i, p := range procs {
		rmrs += mem.Stats(i).RMRs
		done += p.Passages()
	}
	return float64(rmrs) / float64(done), nil
}

// Paper-line program counters used by crash policies.
const (
	corePCL14 = core.PCL14
	corePCL49 = core.PCL49
)

// shape describes an arbitration tree's geometry.
type shape struct{ arity, levels int }

func treeShape(n int) shape {
	arity := tree.DefaultArity(n)
	levels, groups := 0, n
	for groups > 1 {
		groups = (groups + arity - 1) / arity
		levels++
	}
	return shape{arity: arity, levels: levels}
}

// lockKind identifies an algorithm for the comparison experiments.
type lockKind int

const (
	kindMCS lockKind = iota
	kindGRTournament
	kindFlat
	kindTree
)

func (k lockKind) String() string {
	switch k {
	case kindMCS:
		return "MCS (not recoverable)"
	case kindGRTournament:
		return "GR-style tournament (RLock)"
	case kindFlat:
		return "this paper, flat k-ported"
	case kindTree:
		return "this paper, arbitration tree"
	default:
		return "?"
	}
}

// buildLock constructs n clients of the given algorithm over a fresh
// memory.
func buildLock(kind lockKind, model memsim.Model, n, dwell int) (*memsim.Memory, []sched.Proc) {
	mem := memsim.New(memsim.Config{Model: model, Procs: n})
	procs := make([]sched.Proc, n)
	switch kind {
	case kindMCS:
		lk := mcs.New(mem, n)
		for i := 0; i < n; i++ {
			procs[i] = mcs.NewProc(mem, lk, i, dwell)
		}
	case kindGRTournament:
		lk := rlock.New(mem, n)
		for i := 0; i < n; i++ {
			procs[i] = rlock.NewProc(mem, lk, i, i, dwell)
		}
	case kindFlat:
		sh := core.NewShared(mem, core.Config{Ports: n})
		for i := 0; i < n; i++ {
			procs[i] = core.NewProc(sh, i, i, dwell)
		}
	case kindTree:
		tr := tree.New(mem, tree.Config{Procs: n})
		for i := 0; i < n; i++ {
			procs[i] = tree.NewProc(mem, tr, i, dwell)
		}
	}
	return mem, procs
}
