package experiments

import (
	"strings"
	"testing"
)

// TestAllExperiments runs the full harness: every experiment must complete
// without error, and the embedded shape assertions (flat O(1) series,
// linear-in-f growth, deadlock/starvation reproduction, zero invariant
// violations, …) must all hold. This is the repository's top-level
// integration test.
func TestAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is not short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			res := r.Run()
			if res.Err != nil {
				t.Fatalf("%s (%s): %v", res.ID, r.Title, res.Err)
			}
			if len(res.Tables) == 0 && len(res.Notes) == 0 {
				t.Fatalf("%s produced no output", res.ID)
			}
			for _, tb := range res.Tables {
				t.Logf("\n%s", tb)
			}
			for _, n := range res.Notes {
				t.Log(n)
			}
		})
	}
}

func TestFigure5StatesRendering(t *testing.T) {
	states, err := Figure5States()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 6 { // initial + five repairs
		t.Fatalf("states = %d, want 6", len(states))
	}
	if !strings.Contains(states[0], "Tail:π6") {
		t.Fatalf("initial state should start at π6's node: %s", states[0])
	}
	final := states[len(states)-1]
	// Final chain: Tail (π4) → π3 → π8 → π6 → π5 → π7 → π2 → π1 → &InCS.
	want := "π4→π3→π8→π6→π5→π7→π2→π1→&InCS"
	if !strings.Contains(final, want) {
		t.Fatalf("final state missing chain %q: %s", want, final)
	}
}

func TestTreeShape(t *testing.T) {
	s := treeShape(64)
	if s.arity < 2 || s.levels < 2 {
		t.Fatalf("odd shape for n=64: %+v", s)
	}
	if s1 := treeShape(2); s1.levels != 1 {
		t.Fatalf("n=2 should be a single node, got %+v", s1)
	}
}

func TestLockKindString(t *testing.T) {
	for _, k := range []lockKind{kindMCS, kindGRTournament, kindFlat, kindTree} {
		if k.String() == "?" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
