// Package ghrepro reconstructs the failure-relevant mechanisms of Golab and
// Hendler's PODC'17 recoverable mutual exclusion algorithm ("GH"), in order
// to reproduce the two bugs reported in the paper's Appendix A:
//
//   - Scenario 1 (deadlock in Recover): a recovering GH process raises its
//     fail flag only after an IsLinkedTo scan confirms evidence that its FAS
//     took effect, and that scan *waits* for every in-flight node's prev
//     field to become non-⊥. Two processes that both crashed between their
//     FAS and their prev-write therefore wait on each other forever. (The
//     paper's algorithm removes the check: line 18 unconditionally writes
//     &Crash into the node's Pred.)
//
//   - Scenario 2 (starvation): GH's repair scans the node table in index
//     order into a relation R while the queue keeps moving, stitches the
//     stale segments together, and can end up giving two nodes the same
//     predecessor. The predecessor's single next pointer then wakes only
//     one of them; the other starves forever. (The paper's algorithm
//     serializes repairs behind RLock *and* re-derives everything from a
//     fresh scan with a NonNil handshake, and its invariant — Condition 4 —
//     forbids shared predecessors.)
//
// GH's full source is not in the reproduced paper, so this package is a
// faithful reconstruction of the mechanisms Appendix A describes (node
// fields prev/next/nextStep, lnodes table, IsLinkedTo, the rLock-guarded
// R-relation repair), not of GH's complete code; see DESIGN.md §5,
// substitution 4. The line numbers in Appendix A map onto the program
// counters as documented on each constant.
//
// The deep, index-ordered scan here is also the "deep exploration" cost
// model of §1.5: experiment E9 contrasts it with the paper's shallow
// exploration.
package ghrepro

import (
	"fmt"
	"sort"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
)

// Node field offsets. A node is allocated per passage in its creator's
// partition. released is inverted MCS-style locking so that the zero value
// of a fresh node means "must wait".
const (
	offPrev     = 0
	offNext     = 1
	offReleased = 2
	offNextStep = 3
	nodeWords   = 4
)

// freeMark is the prev value of a node that entered when the lock was free
// (it models GH's "no predecessor" evidence; distinct from ⊥ = 0).
const freeMark = 1

// nextStep26 marks that the process was executing the FAS/prev-write region
// (Appendix A's "mynode.nextStep = 26").
const nextStep26 = 26

// Lock is the shared NVRAM layout of the reconstruction.
type Lock struct {
	mem    *memsim.Memory
	n      int
	tail   memsim.Addr // FAS target; 0 = lock free
	lnodes memsim.Addr // lnodes[0..n-1]: current node of each process
	rlock  memsim.Addr // recovery lock (test-and-set; only recoverers use it)
}

// New allocates the shared state for n processes.
func New(mem *memsim.Memory, n int) *Lock {
	if n <= 0 {
		panic("ghrepro: need at least one process")
	}
	return &Lock{
		mem:    mem,
		n:      n,
		tail:   mem.Alloc(memsim.HomeShared, 1),
		lnodes: mem.Alloc(memsim.HomeShared, n),
		rlock:  mem.Alloc(memsim.HomeShared, 1),
	}
}

func (l *Lock) lnode(i int) memsim.Addr { return l.lnodes + memsim.Addr(i) }

// PeekLNode reads lnodes[i] without accounting (tests).
func (l *Lock) PeekLNode(i int) memsim.Addr {
	return memsim.Addr(l.mem.Peek(l.lnode(i)))
}

// PeekPrev reads a node's prev without accounting (tests).
func (l *Lock) PeekPrev(node memsim.Addr) memsim.Addr {
	return memsim.Addr(l.mem.Peek(node + offPrev))
}

// Program counters. Comments map them to the Appendix A narrative.
const (
	PCRemainder = iota
	PCAlloc     // allocate the passage's node, publish it in lnodes[i]
	PCNextStep  // mynode.nextStep := 26
	PCFAS       // pred := FAS(tail, mynode)            ("Line 26" region)
	PCPrev      // mynode.prev := pred (crash here = Appendix A's pre-26 crash)
	PCLink      // pred.next := mynode                   (GH Line 30)
	PCSpin      // await mynode.released                 (GH Line 31)
	PCCS        // critical section
	PCExitRead  // next := mynode.next
	PCExitCAS   // CAS(tail, mynode, 0) if no next yet
	PCExitSpin  // await mynode.next
	PCExitWake  // next.released := 1
	PCExitClear // lnodes[i] := 0

	PCRecRead  // recovery: mynode := lnodes[i]
	PCRecPrev  // read mynode.prev: ≠⊥ means already linked
	PCRecStep  // read mynode.nextStep
	PCILNode   // IsLinkedTo: cur := lnodes[il]          (GH Line 44 ff.)
	PCILWait   // await cur.prev != ⊥        ← Scenario 1 deadlock (GH Line 68)
	PCILCheck  // evidence check: cur.prev == mynode?
	PCILTail   // read tail; == mynode is also evidence
	PCRLock    // acquire the recovery lock (test-and-set)
	PCTailSnap // snapshot tail once for the whole scan (gives "(i, TAIL)")
	PCScanNode // repair scan: cur := lnodes[j]          (GH Line 76)
	PCScanPrev // read cur.prev, extend R (TAIL mark from the snapshot)
	PCChoose   // segment stitching (local)              (GH Lines ~80–92)
	PCRepair   // mynode.prev := chosen                  (GH Line 93)
	PCUnRLock  // release the recovery lock; continue at PCLink (GH Line 28–30)
)

// pair is one element of the repair relation R: node's prev was prev when
// scanned (Appendix A's "(2,3)" notation, as node addresses).
type pair struct {
	prev, node memsim.Addr
	tailMark   bool // tail pointed at node when it was scanned
}

// Proc is a sched.Proc running the GH reconstruction.
type Proc struct {
	id    int
	mem   *memsim.Memory
	lk    *Lock
	pc    int
	dwell int
	left  int

	mynode   memsim.Addr
	pred     memsim.Addr
	next     memsim.Addr
	il       int // IsLinkedTo loop index
	cur      memsim.Addr
	j        int // repair scan index
	tailSnap memsim.Addr
	r        []pair
	seen     []memsim.Addr // every node scanned from lnodes, even prev = ⊥

	passages uint64
}

// NewProc builds the client for process id.
func NewProc(mem *memsim.Memory, lk *Lock, id, dwell int) *Proc {
	if id < 0 || id >= lk.n {
		panic(fmt.Sprintf("ghrepro: proc %d out of range", id))
	}
	return &Proc{id: id, mem: mem, lk: lk, dwell: dwell}
}

// ID implements sched.Proc.
func (p *Proc) ID() int { return p.id }

// PC implements sched.PCer.
func (p *Proc) PC() int { return p.pc }

// Section implements sched.Proc.
func (p *Proc) Section() sched.Section {
	switch p.pc {
	case PCRemainder:
		return sched.Remainder
	case PCCS:
		return sched.CS
	case PCExitRead, PCExitCAS, PCExitSpin, PCExitWake, PCExitClear:
		return sched.Exit
	default:
		return sched.Try
	}
}

// Passages implements sched.Proc.
func (p *Proc) Passages() uint64 { return p.passages }

// MyNode exposes the current node register (tests).
func (p *Proc) MyNode() memsim.Addr { return p.mynode }

// Crash implements sched.Proc: registers wiped, PC to Remainder. The next
// normal step runs GH's Recover section if lnodes[i] is still set.
func (p *Proc) Crash() {
	p.pc = PCRemainder
	p.mynode, p.pred, p.next, p.cur, p.tailSnap = 0, 0, 0, 0, 0
	p.il, p.j, p.left = 0, 0, 0
	p.r = nil
	p.seen = nil
	p.mem.CrashProcess(p.id)
}

// Step implements sched.Proc.
func (p *Proc) Step() {
	mem, lk := p.mem, p.lk
	switch p.pc {
	case PCRemainder:
		// Entering Try; Recover runs first if a previous passage remains.
		p.pc = PCRecRead

	case PCRecRead:
		p.mynode = memsim.Addr(mem.Read(p.id, lk.lnode(p.id)))
		if p.mynode == memsim.NilAddr {
			p.pc = PCAlloc
		} else {
			p.pc = PCRecPrev
		}

	case PCAlloc:
		p.mynode = mem.Alloc(p.id, nodeWords)
		mem.Write(p.id, lk.lnode(p.id), memsim.Word(p.mynode))
		p.pc = PCNextStep

	case PCNextStep:
		mem.Write(p.id, p.mynode+offNextStep, nextStep26)
		p.pc = PCFAS

	case PCFAS:
		p.pred = memsim.Addr(mem.FAS(p.id, lk.tail, memsim.Word(p.mynode)))
		p.pc = PCPrev

	case PCPrev:
		if p.pred == memsim.NilAddr {
			mem.Write(p.id, p.mynode+offPrev, freeMark)
			p.pc = PCCS
			p.left = p.dwell
		} else {
			mem.Write(p.id, p.mynode+offPrev, memsim.Word(p.pred))
			p.pc = PCLink
		}

	case PCLink:
		mem.Write(p.id, p.pred+offNext, memsim.Word(p.mynode))
		p.pc = PCSpin

	case PCSpin:
		if mem.Read(p.id, p.mynode+offReleased) != 0 {
			p.pc = PCCS
			p.left = p.dwell
		}

	case PCCS:
		if p.left > 0 {
			p.left--
			mem.LocalStep(p.id)
			return
		}
		p.pc = PCExitRead

	case PCExitRead:
		p.next = memsim.Addr(mem.Read(p.id, p.mynode+offNext))
		if p.next != memsim.NilAddr {
			p.pc = PCExitWake
		} else {
			p.pc = PCExitCAS
		}

	case PCExitCAS:
		if _, ok := mem.CAS(p.id, lk.tail, memsim.Word(p.mynode), 0); ok {
			p.pc = PCExitClear
		} else {
			p.pc = PCExitSpin
		}

	case PCExitSpin:
		p.next = memsim.Addr(mem.Read(p.id, p.mynode+offNext))
		if p.next != memsim.NilAddr {
			p.pc = PCExitWake
		}

	case PCExitWake:
		mem.Write(p.id, p.next+offReleased, 1)
		p.pc = PCExitClear

	case PCExitClear:
		mem.Write(p.id, lk.lnode(p.id), 0)
		p.passages++
		p.pc = PCRemainder

	// ----------------------------------------------------- Recover section
	case PCRecPrev:
		prev := memsim.Addr(mem.Read(p.id, p.mynode+offPrev))
		switch {
		case prev == freeMark:
			p.pc = PCCS // crashed inside the CS
			p.left = p.dwell
		case prev != memsim.NilAddr:
			p.pred = prev
			p.pc = PCLink // already linked; re-announce and wait
		default:
			p.pc = PCRecStep
		}

	case PCRecStep:
		if mem.Read(p.id, p.mynode+offNextStep) == nextStep26 {
			p.il = 0
			p.pc = PCILNode // IsLinkedTo: find evidence the FAS happened
		} else {
			p.pc = PCNextStep // crashed before the FAS region: redo it
		}

	case PCILNode:
		if p.il >= lk.n {
			p.pc = PCILTail
			break
		}
		if p.il == p.id {
			p.il++
			mem.LocalStep(p.id)
			break
		}
		p.cur = memsim.Addr(mem.Read(p.id, lk.lnode(p.il)))
		if p.cur == memsim.NilAddr {
			p.il++
		} else {
			p.pc = PCILWait
		}

	case PCILWait:
		// THE SCENARIO 1 BUG, reconstructed: wait for the scanned node's
		// prev to become non-⊥ *before* having announced our own failure
		// anywhere. Two processes in this state starve each other.
		if mem.Read(p.id, p.cur+offPrev) != memsim.Word(memsim.NilAddr) {
			p.pc = PCILCheck
		}

	case PCILCheck:
		if memsim.Addr(mem.Read(p.id, p.cur+offPrev)) == p.mynode {
			p.pc = PCRLock // evidence found: repair under the rlock
		} else {
			p.il++
			p.pc = PCILNode
		}

	case PCILTail:
		if memsim.Addr(mem.Read(p.id, lk.tail)) == p.mynode {
			p.pc = PCRLock // tail still points at us: the FAS happened
		} else {
			p.pc = PCNextStep // no evidence: redo the FAS
		}

	case PCRLock:
		if mem.FAS(p.id, lk.rlock, 1) == 0 {
			p.pc = PCTailSnap
		}

	case PCTailSnap:
		p.tailSnap = memsim.Addr(mem.Read(p.id, lk.tail))
		p.j = 0
		p.r = nil
		p.seen = nil
		p.pc = PCScanNode

	case PCScanNode:
		if p.j >= lk.n {
			p.pc = PCChoose
			break
		}
		p.cur = memsim.Addr(mem.Read(p.id, lk.lnode(p.j)))
		if p.cur == memsim.NilAddr {
			p.j++
		} else {
			p.pc = PCScanPrev
		}

	case PCScanPrev:
		prev := memsim.Addr(mem.Read(p.id, p.cur+offPrev))
		p.seen = append(p.seen, p.cur)
		if prev != memsim.NilAddr {
			p.r = append(p.r, pair{prev: prev, node: p.cur, tailMark: p.cur == p.tailSnap})
		}
		p.j++
		p.pc = PCScanNode

	case PCChoose:
		p.pred = p.chooseFromR()
		mem.LocalSteps(p.id, len(p.r))
		p.pc = PCRepair

	case PCRepair:
		// GH "Line 93": adopt the stitched predecessor. The relation R is
		// stale by now — this very write is what creates the duplicate
		// predecessor of Scenario 2.
		mem.Write(p.id, p.mynode+offPrev, memsim.Word(p.pred))
		p.pc = PCUnRLock

	case PCUnRLock:
		mem.Write(p.id, lk.rlock, 0)
		p.pc = PCLink // GH Lines 28–30: link behind the chosen pred, wait
	}
}

// chooseFromR performs the segment stitching of GH's repair on the scanned
// relation R, following the ordering Appendix A describes for Scenario 2:
// the "non-failed" (front) segment comes first, middle segments follow in
// scan order, and the repairing process's own segment is last; the repair
// adopts as predecessor the last node of the segment ordered immediately
// before its own. The relation is *stale* by construction — that staleness
// is the Scenario 2 bug being reconstructed, not a defect of this function.
func (p *Proc) chooseFromR() memsim.Addr {
	nodePrev := make(map[memsim.Addr]memsim.Addr, len(p.r)) // first observation wins
	succ := make(map[memsim.Addr]memsim.Addr, len(p.r))
	incoming := make(map[memsim.Addr]bool, len(p.r))
	live := make(map[memsim.Addr]bool, len(p.seen)) // scanned from the lnodes table
	for _, n := range p.seen {
		live[n] = true
	}
	firstPos := make(map[memsim.Addr]int, len(p.r))
	for pos, pr := range p.r {
		if _, seen := nodePrev[pr.node]; !seen {
			nodePrev[pr.node] = pr.prev
		}
		if _, seen := firstPos[pr.node]; !seen {
			firstPos[pr.node] = pos
		}
		if pr.prev == freeMark {
			continue
		}
		if _, seen := firstPos[pr.prev]; !seen {
			firstPos[pr.prev] = pos
		}
		// First-recorded successor wins; a second edge from the same prev
		// (the duplicate-predecessor state this very bug creates) shadows
		// its target, which is then excluded from segment formation below.
		if _, taken := succ[pr.prev]; !taken {
			succ[pr.prev] = pr.node
			incoming[pr.node] = true
		}
	}
	type segment struct {
		chain   []memsim.Addr
		scanPos int
		front   bool
		mine    bool
	}
	var segments []segment
	for v := range firstPos {
		if incoming[v] {
			continue // interior vertex
		}
		prev, known := nodePrev[v]
		attachedBehindGraph := known && prev != freeMark && live[prev]
		if attachedBehindGraph {
			continue // fork-shadowed (its predecessor already has a successor)
		}
		seg := segment{scanPos: firstPos[v]}
		for cur := v; cur != 0; cur = succ[cur] {
			seg.chain = append(seg.chain, cur)
			if cur == p.mynode {
				seg.mine = true
			}
			if succ[cur] == 0 {
				break
			}
		}
		// Front: anchored at a free-entry node or at a node whose owner
		// has already left the table (the fragment holding the queue head).
		seg.front = nodePrev[v] == freeMark || !live[v]
		segments = append(segments, seg)
	}
	// Deterministic GH ordering: front segments first, then middle segments
	// in scan order, then our own segment last.
	var ordered []segment
	for _, s := range segments {
		if s.front && !s.mine {
			ordered = append(ordered, s)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].scanPos < ordered[j].scanPos })
	var middles []segment
	for _, s := range segments {
		if !s.front && !s.mine {
			middles = append(middles, s)
		}
	}
	sort.Slice(middles, func(i, j int) bool { return middles[i].scanPos < middles[j].scanPos })
	ordered = append(ordered, middles...)

	var mine *segment
	for i := range segments {
		if segments[i].mine {
			mine = &segments[i]
		}
	}
	if len(ordered) == 0 || mine == nil {
		// Nothing to stitch behind: enter at the front.
		return freeMark
	}
	before := ordered[len(ordered)-1]
	return before.chain[len(before.chain)-1]
}
