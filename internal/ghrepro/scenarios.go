package ghrepro

import (
	"fmt"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
)

// This file exports compact drivers for the two Appendix A schedules, used
// by the experiment harness (cmd/rmebench, experiment E7/E8) and the CLI
// trace tool. The package's tests drive the same schedules with finer
// intermediate assertions.

// Scenario1Outcome reports what happened when the Appendix A.1 schedule was
// driven against the GH reconstruction.
type Scenario1Outcome struct {
	// Deadlocked is true when P2 and P4 ended up waiting on each other's
	// prev fields with no progress within the step budget.
	Deadlocked bool
	// P2Waits and P4Waits are the IsLinkedTo indices each process is stuck
	// at (4 and 2 respectively when the bug reproduces).
	P2Waits, P4Waits int
	// Steps is the budget spent demonstrating the hang.
	Steps uint64
}

// RunScenario1 drives Appendix A.1 against the GH reconstruction.
func RunScenario1(budget uint64) (Scenario1Outcome, error) {
	var out Scenario1Outcome
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 5})
	lk := New(mem, 5)
	procs := make([]*Proc, 5)
	for i := range procs {
		procs[i] = NewProc(mem, lk, i, 0)
	}
	d := sched.NewDriver(ghAsSchedProcs(procs)...)
	const P2, P4 = 2, 4

	if !d.FinishPassage(P4) {
		return out, fmt.Errorf("setup: P4's first passage did not complete")
	}
	if !d.StepUntilPC(P2, PCPrev) {
		return out, fmt.Errorf("setup: P2 never reached its prev-write")
	}
	d.Crash(P2)
	if !d.StepUntilPC(P2, PCILNode) {
		return out, fmt.Errorf("setup: P2 did not enter IsLinkedTo")
	}
	if !d.StepUntilPC(P4, PCPrev) {
		return out, fmt.Errorf("setup: P4 never reached its prev-write")
	}
	d.Crash(P4)
	if !d.StepUntilPC(P4, PCILNode) {
		return out, fmt.Errorf("setup: P4 did not enter IsLinkedTo")
	}

	d.Budget = budget
	progressed := d.RunConcurrently([]int{P2, P4}, func() bool {
		return procs[P2].Passages() > 0 || procs[P4].Passages() > 1 ||
			procs[P2].Section() == sched.CS || procs[P4].Section() == sched.CS
	})
	out.Steps = d.Steps()
	out.Deadlocked = !progressed && procs[P2].pc == PCILWait && procs[P4].pc == PCILWait
	out.P2Waits, out.P4Waits = procs[P2].il, procs[P4].il
	return out, nil
}

// Scenario2Outcome reports what happened when the Appendix A.2 schedule was
// driven against the GH reconstruction.
type Scenario2Outcome struct {
	// DuplicatePredecessor is true when P2's and P6's nodes ended up with
	// the same predecessor (P5's node) — the state the paper's invariant
	// Condition 4 forbids.
	DuplicatePredecessor bool
	// Drained is true when P0..P5 all subsequently reached the CS.
	Drained bool
	// P6Starved is true when P6 never reached the CS within the budget
	// even though the rest of the queue drained.
	P6Starved bool
}

// RunScenario2 drives Appendix A.2 against the GH reconstruction.
func RunScenario2(budget uint64) (Scenario2Outcome, error) {
	var out Scenario2Outcome
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 7})
	lk := New(mem, 7)
	procs := make([]*Proc, 7)
	for i := range procs {
		procs[i] = NewProc(mem, lk, i, 0)
	}
	d := sched.NewDriver(ghAsSchedProcs(procs)...)
	node := func(i int) memsim.Addr { return lk.PeekLNode(i) }

	if !d.StepUntilSection(0, sched.CS) {
		return out, fmt.Errorf("setup: P0 never entered the CS")
	}
	if !d.StepUntilPC(1, PCSpin) {
		return out, fmt.Errorf("setup: P1 did not queue")
	}
	if !d.StepUntilPC(2, PCPrev) {
		return out, fmt.Errorf("setup: P2 never reached its prev-write")
	}
	d.Crash(2)
	if !d.StepUntilPC(2, PCRLock) {
		return out, fmt.Errorf("setup: P2's IsLinkedTo found no evidence")
	}
	if !d.StepUntilPC(3, PCSpin) {
		return out, fmt.Errorf("setup: P3 did not queue")
	}
	if !d.StepUntil(2, func(sched.Proc) bool { return procs[2].pc == PCScanNode && procs[2].j == 4 }) {
		return out, fmt.Errorf("setup: P2's scan did not pause at j=4")
	}
	if !d.StepUntilPC(4, PCPrev) {
		return out, fmt.Errorf("setup: P4 never reached its prev-write")
	}
	d.Crash(4)
	if !d.StepUntilPC(5, PCSpin) {
		return out, fmt.Errorf("setup: P5 did not queue")
	}
	if !d.StepUntilPC(2, PCUnRLock) {
		return out, fmt.Errorf("setup: P2 did not finish its repair")
	}
	if !d.StepUntilPC(6, PCSpin) {
		return out, fmt.Errorf("setup: P6 did not queue")
	}
	if !d.StepUntilPC(2, PCSpin) {
		return out, fmt.Errorf("setup: P2 did not reach its spin")
	}

	out.DuplicatePredecessor = lk.PeekPrev(node(2)) == node(5) && lk.PeekPrev(node(6)) == node(5)

	everyoneElse := []int{0, 1, 2, 3, 4, 5}
	sawCS := make(map[int]bool)
	d.Budget = budget
	out.Drained = d.RunConcurrently(everyoneElse, func() bool {
		for _, i := range everyoneElse {
			if procs[i].Section() == sched.CS {
				sawCS[i] = true
			}
		}
		return len(sawCS) == len(everyoneElse)
	})
	out.P6Starved = out.Drained && !d.StepUntilSection(6, sched.CS)
	return out, nil
}

func ghAsSchedProcs(ps []*Proc) []sched.Proc {
	out := make([]sched.Proc, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}
