package ghrepro

import (
	"testing"

	"github.com/rmelib/rme/internal/core"
	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
)

// These tests reproduce the paper's Appendix A, move for move:
// the Golab–Hendler reconstruction deadlocks (Scenario 1) and starves a
// correct process (Scenario 2), while the paper's algorithm (internal/core)
// completes the analogous schedules. They are experiments E7 and E8.

func newGHWorld(t testing.TB, n int) (*memsim.Memory, *Lock, []*Proc) {
	t.Helper()
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: n})
	lk := New(mem, n)
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = NewProc(mem, lk, i, 0)
	}
	return mem, lk, procs
}

func ghAsSched(ps []*Proc) []sched.Proc {
	out := make([]sched.Proc, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

// TestGHBasicOperation sanity-checks the reconstruction in crash-free runs:
// the bugs are in the recovery path, not the fast path.
func TestGHBasicOperation(t *testing.T) {
	_, _, procs := newGHWorld(t, 4)
	violated := false
	inCS := func() int {
		n := 0
		for _, p := range procs {
			if p.Section() == sched.CS {
				n++
			}
		}
		return n
	}
	r := &sched.Runner{
		Procs:    ghAsSched(procs),
		OnStep:   func(sched.StepEvent) { violated = violated || inCS() > 1 },
		StopWhen: sched.AllPassagesAtLeast(ghAsSched(procs), 10),
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("GH reconstruction violates ME without crashes; reconstruction broken")
	}
}

// TestGHScenario1Deadlock reproduces Appendix A.1: P2 and P4 both crash
// between their FAS and their prev-write; on recovery, each IsLinkedTo scan
// waits for the *other* node's prev to become non-⊥, forever.
func TestGHScenario1Deadlock(t *testing.T) {
	_, lk, procs := newGHWorld(t, 5)
	d := sched.NewDriver(ghAsSched(procs)...)
	const P2, P4 = 2, 4

	// 1. P4 completes a full passage.
	if !d.FinishPassage(P4) {
		t.Fatal("P4's first passage did not complete")
	}
	// 2. P2 runs up to (but not including) its prev-write, then crashes.
	if !d.StepUntilPC(P2, PCPrev) {
		t.Fatal("P2 never reached the prev-write")
	}
	d.Crash(P2)
	// 3–4. P2 restarts and enters IsLinkedTo (parked at its first scan).
	if !d.StepUntilPC(P2, PCILNode) {
		t.Fatal("P2 did not enter IsLinkedTo")
	}
	// 5. P4 starts another passage and crashes in the same window.
	if !d.StepUntilPC(P4, PCPrev) {
		t.Fatal("P4 never reached the prev-write")
	}
	d.Crash(P4)
	// 6. P4 restarts and enters IsLinkedTo too.
	if !d.StepUntilPC(P4, PCILNode) {
		t.Fatal("P4 did not enter IsLinkedTo")
	}

	// 7. P2 scans until it blocks on P4's node; 8. P4 blocks on P2's node.
	if !d.StepUntil(P2, func(sched.Proc) bool { return procs[P2].pc == PCILWait && procs[P2].il == P4 }) {
		t.Fatal("P2 did not reach the wait on lnodes[4].prev")
	}
	if !d.StepUntil(P4, func(sched.Proc) bool { return procs[P4].pc == PCILWait && procs[P4].il == P2 }) {
		t.Fatal("P4 did not reach the wait on lnodes[2].prev")
	}
	if lk.PeekPrev(lk.PeekLNode(P2)) != memsim.NilAddr || lk.PeekPrev(lk.PeekLNode(P4)) != memsim.NilAddr {
		t.Fatal("setup broken: both prev fields should still be ⊥")
	}

	// 9. No further crashes: both processes must hang forever. Give the
	// pair a large budget and require zero progress — the deadlock.
	d.Budget = 200_000
	progressed := d.RunConcurrently([]int{P2, P4}, func() bool {
		return procs[P2].Passages() > 0 || procs[P2].Section() == sched.CS ||
			procs[P4].Passages() > 1 || procs[P4].Section() == sched.CS
	})
	if progressed {
		t.Fatal("GH did not deadlock; the Scenario 1 reconstruction is wrong")
	}
	if procs[P2].pc != PCILWait || procs[P4].pc != PCILWait {
		t.Fatalf("expected both stuck in IsLinkedTo waits, got pcs %d and %d",
			procs[P2].pc, procs[P4].pc)
	}
}

// TestJJJSurvivesScenario1 runs the paper's algorithm under the analogous
// schedule: two processes crash between the FAS and the Pred write, restart
// and recover. Both must complete (starvation freedom), because line 18
// writes &Crash unconditionally instead of scanning for FAS evidence.
func TestJJJSurvivesScenario1(t *testing.T) {
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 5})
	sh := core.NewShared(mem, core.Config{Ports: 5})
	procs := make([]*core.Proc, 5)
	for i := range procs {
		procs[i] = core.NewProc(sh, i, i, 0)
	}
	sp := make([]sched.Proc, len(procs))
	for i, p := range procs {
		sp[i] = p
	}
	d := sched.NewDriver(sp...)
	ck := core.NewChecker(sh, procs)
	const P2, P4 = 2, 4

	if !d.FinishPassage(P4) {
		t.Fatal("P4's first passage did not complete")
	}
	if !d.StepUntilPC(P2, core.PCL14) { // crashed after FAS, before Pred write
		t.Fatal("P2 never reached line 14")
	}
	d.Crash(P2)
	if !d.StepUntilPC(P4, core.PCL14) {
		t.Fatal("P4 never reached line 14")
	}
	d.Crash(P4)

	// Both recover concurrently; both must finish a passage.
	ok := d.RunConcurrently([]int{P2, P4}, func() bool {
		if err := ck.Check(); err != nil {
			t.Fatalf("invariant: %v", err)
		}
		return procs[P2].Passages() >= 1 && procs[P4].Passages() >= 2
	})
	if !ok {
		t.Fatal("the paper's algorithm failed the Scenario 1 schedule")
	}
}

// TestGHScenario2Starvation reproduces Appendix A.2: P2's stale repair
// relation makes it adopt P5's node as predecessor concurrently with P6
// doing the same, so P5's single next pointer wakes P2 and P6 starves.
func TestGHScenario2Starvation(t *testing.T) {
	_, lk, procs := newGHWorld(t, 7)
	d := sched.NewDriver(ghAsSched(procs)...)
	node := func(i int) memsim.Addr { return lk.PeekLNode(i) }

	// 1. P0 into the CS (parked there).
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("P0 no CS")
	}
	// 2. P1 queues behind P0 and spins.
	if !d.StepUntilPC(1, PCSpin) {
		t.Fatal("P1 did not queue")
	}
	// 3. P2 FASes, crashes before its prev-write.
	if !d.StepUntilPC(2, PCPrev) {
		t.Fatal("P2 never reached the prev-write")
	}
	d.Crash(2)
	// 4. P2 recovers; IsLinkedTo succeeds via the tail check; parked just
	// before acquiring the recovery lock.
	if !d.StepUntilPC(2, PCRLock) {
		t.Fatal("P2's IsLinkedTo did not find FAS evidence")
	}
	// 5. P3 queues behind P2 (sets its prev) and spins.
	if !d.StepUntilPC(3, PCSpin) {
		t.Fatal("P3 did not queue")
	}
	// 6. P2 acquires the rlock and scans i = 0..3, then is interrupted.
	if !d.StepUntil(2, func(sched.Proc) bool { return procs[2].pc == PCScanNode && procs[2].j == 4 }) {
		t.Fatal("P2 did not scan the first four table entries")
	}
	if len(procs[2].r) != 3 { // (free,P0), (P0,P1), (P2,P3)+TAIL
		t.Fatalf("R after first scan half = %d pairs, want 3", len(procs[2].r))
	}
	if !procs[2].r[2].tailMark {
		t.Fatal("missing the (3, TAIL) mark of Appendix A")
	}
	// 7. P4 FASes behind P3 and crashes before its prev-write.
	if !d.StepUntilPC(4, PCPrev) {
		t.Fatal("P4 never reached the prev-write")
	}
	d.Crash(4)
	// 8. P5 queues behind P4.
	if !d.StepUntilPC(5, PCSpin) {
		t.Fatal("P5 did not queue")
	}
	// 9–10. P2 resumes, finishes the scan ((4,5) joins R), stitches, and
	// writes mynode.prev := P5's node (GH Line 93); parked before
	// releasing the rlock.
	if !d.StepUntilPC(2, PCUnRLock) {
		t.Fatal("P2 did not finish its repair")
	}
	if got := lk.PeekPrev(node(2)); got != node(5) {
		t.Fatalf("P2.prev = %d, want P5's node %d (the stale stitch)", got, node(5))
	}
	// 11–12. P6 FASes behind P5, sets prev = P5's node, links, spins.
	if !d.StepUntilPC(6, PCSpin) {
		t.Fatal("P6 did not queue")
	}
	// 13. P2 releases the rlock and links: P5.next := P2's node, clobbering
	// P6's link.
	if !d.StepUntilPC(2, PCSpin) {
		t.Fatal("P2 did not reach its spin")
	}

	// The smoking gun: two distinct nodes share the same predecessor (the
	// exact state the paper's invariant Condition 4 forbids).
	if lk.PeekPrev(node(2)) != node(5) || lk.PeekPrev(node(6)) != node(5) {
		t.Fatalf("expected duplicate predecessor on P5's node; got P2.prev=%d P6.prev=%d (P5=%d)",
			lk.PeekPrev(node(2)), lk.PeekPrev(node(6)), node(5))
	}

	// 14. No more failures: P4 recovers, the queue drains — but P5 wakes P2
	// instead of P6. Everyone up to P3 gets the CS; P6 starves forever.
	everyoneElse := []int{0, 1, 2, 3, 4, 5}
	sawCS := make(map[int]bool)
	d.Budget = 400_000
	drained := d.RunConcurrently(everyoneElse, func() bool {
		for _, i := range everyoneElse {
			if procs[i].Section() == sched.CS {
				sawCS[i] = true
			}
		}
		return len(sawCS) == len(everyoneElse)
	})
	if !drained {
		t.Fatalf("queue did not drain to P3; CS seen: %v", sawCS)
	}
	// P6 alone gets a huge budget and still never enters the CS.
	if d.StepUntilSection(6, sched.CS) {
		t.Fatal("P6 entered the CS; Scenario 2 starvation not reproduced")
	}
	if procs[6].pc != PCSpin {
		t.Fatalf("P6 should be spinning forever, is at pc %d", procs[6].pc)
	}
}

// TestJJJSurvivesScenario2 drives the paper's algorithm through the
// Scenario 2 shape: a repairing process whose scan is interleaved with new
// arrivals and a second crash. The C4 invariant (no shared predecessors)
// must hold throughout and everyone must complete.
func TestJJJSurvivesScenario2(t *testing.T) {
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 7})
	sh := core.NewShared(mem, core.Config{Ports: 7})
	procs := make([]*core.Proc, 7)
	for i := range procs {
		procs[i] = core.NewProc(sh, i, i, 0)
	}
	sp := make([]sched.Proc, len(procs))
	for i, p := range procs {
		sp[i] = p
	}
	d := sched.NewDriver(sp...)
	ck := core.NewChecker(sh, procs)

	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("P0 no CS")
	}
	if !d.StepUntilPC(1, core.PCL25) {
		t.Fatal("P1 did not queue")
	}
	if !d.StepUntilPC(2, core.PCL14) {
		t.Fatal("P2 never reached line 14")
	}
	d.Crash(2)
	// P2 recovers into the repair scan; interrupt it mid-scan (after the
	// 4th table entry), exactly like the GH schedule.
	if !d.StepUntilPC(2, core.PCL33) {
		t.Fatal("P2 did not start the repair scan")
	}
	if !d.StepUntilPC(3, core.PCL25) {
		t.Fatal("P3 did not queue")
	}
	if !d.StepUntil(2, func(sched.Proc) bool {
		return procs[2].PC() == core.PCL33 && procs[2].Handle().ScanIndex() == 4
	}) {
		t.Fatal("P2 did not reach scan index 4")
	}
	if !d.StepUntilPC(4, core.PCL14) {
		t.Fatal("P4 never reached line 14")
	}
	d.Crash(4)
	if !d.StepUntilPC(5, core.PCL25) {
		t.Fatal("P5 did not queue")
	}
	// P2 finishes its repair — it must either complete or wait on P4's
	// NonNil signal (which P4's recovery satisfies). Run everyone with the
	// invariant checked at every opportunity; all 7 must finish a passage.
	all := []int{0, 1, 2, 3, 4, 5, 6}
	ok := d.RunConcurrently(all, func() bool {
		if err := ck.Check(); err != nil {
			t.Fatalf("invariant: %v", err)
		}
		for _, p := range procs {
			if p.Passages() < 1 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("the paper's algorithm failed the Scenario 2 schedule")
	}
}
