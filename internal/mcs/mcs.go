// Package mcs implements the classic Mellor-Crummey–Scott queue lock [11]
// as a step machine over the simulated memory. It is the non-recoverable
// baseline the paper's construction starts from (§1.5): O(1) RMRs per
// passage on CC and DSM, FIFO, local spinning — but a crash while holding
// or waiting wedges the queue forever, which is precisely the problem the
// recoverable algorithm solves.
//
// MCS needs FAS for the enqueue and CAS for the unlocked-release race; the
// paper's algorithm, by contrast, needs only FAS.
package mcs

import (
	"fmt"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
)

// Node field offsets: each process owns one permanent QNode (reused across
// passages), homed in its partition so the spin is local on DSM.
const (
	offNext   = 0
	offLocked = 1
	nodeWords = 2
)

// Lock is the shared layout: the tail word plus per-process nodes.
type Lock struct {
	mem   *memsim.Memory
	tail  memsim.Addr
	nodes []memsim.Addr
}

// New allocates an MCS lock for n processes.
func New(mem *memsim.Memory, n int) *Lock {
	if n <= 0 {
		panic("mcs: need at least one process")
	}
	l := &Lock{mem: mem, tail: mem.Alloc(memsim.HomeShared, 1)}
	l.nodes = make([]memsim.Addr, n)
	for i := range l.nodes {
		l.nodes[i] = mem.Alloc(i, nodeWords)
	}
	return l
}

// Program counters.
const (
	pcRemainder = iota
	pcResetNext // mynode.next := nil; mynode.locked := 1 is deferred
	pcFAS       // pred := FAS(tail, mynode)
	pcSetLocked // mynode.locked := 1
	pcLinkPred  // pred.next := mynode
	pcSpin      // await mynode.locked == 0
	pcCS
	pcReadNext // next := mynode.next
	pcCASTail  // CAS(tail, mynode, nil)
	pcSpinNext // await mynode.next != nil
	pcWakeNext // next.locked := 0
)

// Proc is a sched.Proc cycling through the MCS lock.
type Proc struct {
	id    int
	mem   *memsim.Memory
	lk    *Lock
	pc    int
	dwell int
	left  int

	pred memsim.Addr
	next memsim.Addr

	passages uint64
}

// NewProc builds the client for process id.
func NewProc(mem *memsim.Memory, lk *Lock, id, dwell int) *Proc {
	if id < 0 || id >= len(lk.nodes) {
		panic(fmt.Sprintf("mcs: proc %d out of range", id))
	}
	return &Proc{id: id, mem: mem, lk: lk, dwell: dwell}
}

// ID implements sched.Proc.
func (p *Proc) ID() int { return p.id }

// PC implements sched.PCer.
func (p *Proc) PC() int { return p.pc }

// Section implements sched.Proc.
func (p *Proc) Section() sched.Section {
	switch p.pc {
	case pcRemainder:
		return sched.Remainder
	case pcCS:
		return sched.CS
	case pcReadNext, pcCASTail, pcSpinNext, pcWakeNext:
		return sched.Exit
	default:
		return sched.Try
	}
}

// Passages implements sched.Proc.
func (p *Proc) Passages() uint64 { return p.passages }

func (p *Proc) node() memsim.Addr { return p.lk.nodes[p.id] }

// Step implements sched.Proc.
func (p *Proc) Step() {
	mem := p.mem
	switch p.pc {
	case pcRemainder:
		p.pc = pcResetNext
	case pcResetNext:
		mem.Write(p.id, p.node()+offNext, 0)
		p.pc = pcFAS
	case pcFAS:
		p.pred = memsim.Addr(mem.FAS(p.id, p.lk.tail, memsim.Word(p.node())))
		if p.pred == memsim.NilAddr {
			p.pc = pcCS
			p.left = p.dwell
		} else {
			p.pc = pcSetLocked
		}
	case pcSetLocked:
		mem.Write(p.id, p.node()+offLocked, 1)
		p.pc = pcLinkPred
	case pcLinkPred:
		mem.Write(p.id, p.pred+offNext, memsim.Word(p.node()))
		p.pc = pcSpin
	case pcSpin:
		if mem.Read(p.id, p.node()+offLocked) == 0 {
			p.pc = pcCS
			p.left = p.dwell
		}
	case pcCS:
		if p.left > 0 {
			p.left--
			mem.LocalStep(p.id)
			return
		}
		p.pc = pcReadNext
	case pcReadNext:
		p.next = memsim.Addr(mem.Read(p.id, p.node()+offNext))
		if p.next != memsim.NilAddr {
			p.pc = pcWakeNext
		} else {
			p.pc = pcCASTail
		}
	case pcCASTail:
		if _, ok := mem.CAS(p.id, p.lk.tail, memsim.Word(p.node()), 0); ok {
			p.passages++
			p.pc = pcRemainder
		} else {
			p.pc = pcSpinNext
		}
	case pcSpinNext:
		p.next = memsim.Addr(mem.Read(p.id, p.node()+offNext))
		if p.next != memsim.NilAddr {
			p.pc = pcWakeNext
		}
	case pcWakeNext:
		mem.Write(p.id, p.next+offLocked, 0)
		p.passages++
		p.pc = pcRemainder
	}
}

// Crash implements sched.Proc. MCS is not recoverable: the crashed process
// restarts from Remainder with its registers wiped, and any queue state it
// left behind (a held lock, a half-linked node) stays broken. Tests use
// this to demonstrate why the paper's problem statement exists.
func (p *Proc) Crash() {
	p.pc = pcRemainder
	p.pred, p.next = 0, 0
	p.left = 0
	p.mem.CrashProcess(p.id)
}
