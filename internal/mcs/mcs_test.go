package mcs

import (
	"fmt"
	"testing"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/xrand"
)

func newWorld(t testing.TB, model memsim.Model, n, dwell int) (*memsim.Memory, []sched.Proc) {
	t.Helper()
	mem := memsim.New(memsim.Config{Model: model, Procs: n})
	lk := New(mem, n)
	procs := make([]sched.Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = NewProc(mem, lk, i, dwell)
	}
	return mem, procs
}

func countCS(procs []sched.Proc) int {
	n := 0
	for _, p := range procs {
		if p.Section() == sched.CS {
			n++
		}
	}
	return n
}

func TestMutualExclusion(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
			t.Run(fmt.Sprintf("n%d_%s", n, model), func(t *testing.T) {
				_, procs := newWorld(t, model, n, 1)
				violated := false
				r := &sched.Runner{
					Procs:    procs,
					Sched:    sched.Random{Src: xrand.New(uint64(n) * 7)},
					OnStep:   func(sched.StepEvent) { violated = violated || countCS(procs) > 1 },
					StopWhen: sched.AllPassagesAtLeast(procs, 20),
				}
				if err := r.Run(); err != nil {
					t.Fatal(err)
				}
				if violated {
					t.Fatal("mutual exclusion violated")
				}
			})
		}
	}
}

func TestFIFOOrderUnderRoundRobin(t *testing.T) {
	// With round-robin scheduling and a long CS, waiters are served in
	// arrival order.
	_, procs := newWorld(t, memsim.DSM, 4, 0)
	d := sched.NewDriver(procs...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	for id := 1; id < 4; id++ {
		d.Step(id, 10) // enqueue in id order
	}
	var order []int
	for len(order) < 3 {
		for id := 0; id < 4; id++ {
			d.Step(id, 1)
		}
		for id := 1; id < 4; id++ {
			if procs[id].Section() == sched.CS {
				dup := false
				for _, o := range order {
					dup = dup || o == id
				}
				if !dup {
					order = append(order, id)
				}
			}
		}
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestRMRConstant(t *testing.T) {
	const envelope = 12.0
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		for _, n := range []int{2, 8, 32} {
			mem, procs := newWorld(t, model, n, 0)
			r := &sched.Runner{
				Procs:    procs,
				Sched:    sched.Random{Src: xrand.New(uint64(n))},
				StopWhen: sched.AllPassagesAtLeast(procs, 15),
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			for i, p := range procs {
				per := float64(mem.Stats(i).RMRs) / float64(p.Passages())
				if per > envelope {
					t.Errorf("%s n=%d proc %d: %.1f RMRs/passage (want O(1) <= %.0f)",
						model, n, i, per, envelope)
				}
			}
		}
	}
}

func TestSpinIsLocalOnDSM(t *testing.T) {
	mem, procs := newWorld(t, memsim.DSM, 2, 0)
	d := sched.NewDriver(procs...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	d.Step(1, 10)
	before := mem.Stats(1).RMRs
	d.Step(1, 3000)
	if after := mem.Stats(1).RMRs; after != before {
		t.Fatalf("MCS spin cost %d RMRs on DSM, want 0", after-before)
	}
}

func TestCrashWedgesTheLock(t *testing.T) {
	// The motivating failure: a crash of the CS holder permanently wedges
	// MCS — every later arrival starves. (The recoverable algorithm exists
	// because of exactly this.)
	_, procs := newWorld(t, memsim.DSM, 3, 0)
	d := sched.NewDriver(procs...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	d.Crash(0)
	d.Budget = 50_000
	progressed := d.RunConcurrently([]int{0, 1, 2}, func() bool {
		return procs[1].Passages()+procs[2].Passages() > 0
	})
	if progressed {
		t.Fatal("MCS made progress after a holder crash; baseline is wrong")
	}
}
