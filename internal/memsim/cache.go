package memsim

// cache models one process's cache in the CC machine: a set of resident
// word addresses with optional capacity and LRU eviction.
//
// Only residency is modeled, not values: in the paper's CC model a cached
// copy can never be stale, because any write to the word invalidates all
// copies atomically with the write. Residency alone decides whether a read
// is an RMR.
type cache struct {
	capacity int // 0 = unbounded
	tick     uint64
	resident map[Addr]uint64 // addr -> last-use tick
}

func (c *cache) init(capacity int) {
	c.capacity = capacity
	c.resident = make(map[Addr]uint64)
}

func (c *cache) size() int { return len(c.resident) }

func (c *cache) contains(a Addr) bool {
	_, ok := c.resident[a]
	return ok
}

func (c *cache) touch(a Addr) {
	c.tick++
	c.resident[a] = c.tick
}

// insert makes a resident, evicting the least-recently-used word when the
// capacity bound is hit. Capacities are small in every experiment, so the
// linear eviction scan is deliberate simplicity rather than an oversight.
func (c *cache) insert(a Addr) {
	if c.capacity > 0 && len(c.resident) >= c.capacity {
		var (
			victim   Addr
			earliest uint64
			first    = true
		)
		for addr, t := range c.resident {
			if first || t < earliest {
				victim, earliest, first = addr, t, false
			}
		}
		delete(c.resident, victim)
	}
	c.tick++
	c.resident[a] = c.tick
}

func (c *cache) invalidate(a Addr) {
	delete(c.resident, a)
}

func (c *cache) clear() {
	clear(c.resident)
}
