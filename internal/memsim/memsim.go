// Package memsim simulates the shared-memory multiprocessor of the paper's
// model (§1.1, §1.3): asynchronous processes operating on words of
// non-volatile main memory, with remote-memory-reference (RMR) accounting
// for both machine models the paper analyses:
//
//   - CC (cache-coherent): every process has a cache. A read of word X
//     fetches a copy of X into the reader's cache if not already present.
//     Any non-read operation on X, by any process, invalidates every cached
//     copy of X. An operation by process p on X counts as an RMR iff it is a
//     non-read operation or X is not in p's cache. A crash clears the
//     crashed process's cache.
//
//   - DSM (distributed shared memory): memory is partitioned, each word has
//     a home partition. Any operation by p on X counts as an RMR iff X does
//     not reside in p's partition.
//
// The simulator is the measurement substrate for every experiment in
// EXPERIMENTS.md: counting operations in this model is the paper's
// complexity metric, so no further calibration is needed.
//
// Supported atomic primitives are read, write, FAS (fetch-and-store) and CAS
// (compare-and-swap). The paper's algorithm needs only FAS; CAS exists for
// the Golab–Hendler baseline.
package memsim

import (
	"fmt"
	"sort"
	"strings"
)

// Word is the unit of simulated shared memory. Pointers between simulated
// objects are represented as Addr values stored in Words.
type Word int64

// Addr indexes a word of simulated memory. Addr 0 is reserved and never
// allocated, so it can represent NIL pointers.
type Addr int32

// NilAddr is the reserved null address.
const NilAddr Addr = 0

// HomeShared marks a word whose home partition belongs to no process: on a
// DSM machine every access to it is remote. Globals such as the paper's
// Tail pointer and Node array live in this region.
const HomeShared = -1

// Model selects the machine model used for RMR accounting.
type Model uint8

const (
	// CC is the cache-coherent model.
	CC Model = iota + 1
	// DSM is the distributed-shared-memory model.
	DSM
)

// String returns the conventional name of the model.
func (m Model) String() string {
	switch m {
	case CC:
		return "CC"
	case DSM:
		return "DSM"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// OpKind identifies the primitive applied in a traced operation.
type OpKind uint8

// The operation kinds recorded by tracers.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpFAS
	OpCAS
)

// String returns the mnemonic of the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFAS:
		return "FAS"
	case OpCAS:
		return "CAS"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op describes one executed shared-memory operation, for tracers.
type Op struct {
	Proc int
	Kind OpKind
	Addr Addr
	// Old is the value of the word before the operation; New the value
	// after. For reads Old == New.
	Old, New Word
	// RMR reports whether the operation was counted as remote.
	RMR bool
}

// ProcStats accumulates per-process accounting.
type ProcStats struct {
	Ops    uint64 // shared-memory operations issued
	RMRs   uint64 // operations counted as remote
	Reads  uint64
	Writes uint64
	FASs   uint64
	CASs   uint64
	// LocalSteps counts pure local computation steps (no shared access),
	// charged explicitly by algorithms via Memory.LocalStep. Used by the
	// shallow-vs-deep exploration ablation (experiment E9).
	LocalSteps uint64
	// CacheHighWater is the maximum number of distinct words simultaneously
	// resident in the process's cache (CC only). The paper claims the
	// algorithm needs only O(1) cached words per process (§1.4 item 2).
	CacheHighWater int
}

// Config configures a Memory.
type Config struct {
	// Model selects CC or DSM accounting.
	Model Model
	// Procs is the number of processes that may issue operations.
	Procs int
	// CacheCapacity bounds each CC cache to that many words; 0 means
	// unbounded. On overflow the least-recently-used word is evicted.
	// Ignored under DSM.
	CacheCapacity int
}

// Memory is a simulated non-volatile shared memory. It is not safe for
// concurrent use: the scheduler (internal/sched) serializes steps, which is
// exactly the interleaving semantics of the paper's model.
type Memory struct {
	model    Model
	capacity int
	words    []Word
	home     []int32
	caches   []cache
	stats    []ProcStats
	tracer   func(Op)
}

// New creates a Memory per cfg. Word 0 is pre-allocated and reserved so that
// Addr 0 can serve as NIL.
func New(cfg Config) *Memory {
	if cfg.Model != CC && cfg.Model != DSM {
		panic("memsim: config must select CC or DSM")
	}
	if cfg.Procs <= 0 {
		panic("memsim: config needs at least one process")
	}
	m := &Memory{
		model:    cfg.Model,
		capacity: cfg.CacheCapacity,
		words:    make([]Word, 1, 1024),
		home:     make([]int32, 1, 1024),
		stats:    make([]ProcStats, cfg.Procs),
	}
	m.home[0] = HomeShared
	if cfg.Model == CC {
		m.caches = make([]cache, cfg.Procs)
		for i := range m.caches {
			m.caches[i].init(cfg.CacheCapacity)
		}
	}
	return m
}

// Model returns the machine model of m.
func (m *Memory) Model() Model { return m.model }

// Procs returns the number of processes m was configured for.
func (m *Memory) Procs() int { return len(m.stats) }

// Size returns the number of allocated words (including the reserved NIL
// word).
func (m *Memory) Size() int { return len(m.words) }

// SetTracer installs fn to observe every shared-memory operation; nil
// removes the tracer.
func (m *Memory) SetTracer(fn func(Op)) { m.tracer = fn }

// Alloc reserves n fresh zeroed words homed in owner's partition (or
// HomeShared) and returns the address of the first. Allocation itself is not
// charged as shared-memory operations: in the paper's model "new QNode"
// (line 11) is a local step whose cost is charged separately by the
// algorithm.
func (m *Memory) Alloc(owner int, n int) Addr {
	if n <= 0 {
		panic("memsim: Alloc with non-positive size")
	}
	if owner != HomeShared && (owner < 0 || owner >= len(m.stats)) {
		panic(fmt.Sprintf("memsim: Alloc owner %d out of range", owner))
	}
	base := Addr(len(m.words))
	for i := 0; i < n; i++ {
		m.words = append(m.words, 0)
		m.home = append(m.home, int32(owner))
	}
	return base
}

// Home returns the partition owner of a (HomeShared for the global region).
func (m *Memory) Home(a Addr) int {
	m.check(a)
	return int(m.home[a])
}

func (m *Memory) check(a Addr) {
	if a <= 0 || int(a) >= len(m.words) {
		panic(fmt.Sprintf("memsim: address %d out of range (size %d)", a, len(m.words)))
	}
}

func (m *Memory) checkProc(p int) {
	if p < 0 || p >= len(m.stats) {
		panic(fmt.Sprintf("memsim: process %d out of range (procs %d)", p, len(m.stats)))
	}
}

// remote reports whether an operation of kind k by p on a is an RMR, and
// updates cache state under CC.
func (m *Memory) remote(p int, a Addr, k OpKind) bool {
	if m.model == DSM {
		return int(m.home[a]) != p
	}
	// CC model.
	if k == OpRead {
		c := &m.caches[p]
		if c.contains(a) {
			c.touch(a)
			return false
		}
		c.insert(a)
		if c.size() > m.stats[p].CacheHighWater {
			m.stats[p].CacheHighWater = c.size()
		}
		return true
	}
	// Non-read: invalidate every copy, count as remote.
	for i := range m.caches {
		m.caches[i].invalidate(a)
	}
	return true
}

func (m *Memory) account(p int, k OpKind, rmr bool) {
	s := &m.stats[p]
	s.Ops++
	if rmr {
		s.RMRs++
	}
	switch k {
	case OpRead:
		s.Reads++
	case OpWrite:
		s.Writes++
	case OpFAS:
		s.FASs++
	case OpCAS:
		s.CASs++
	}
}

func (m *Memory) trace(p int, k OpKind, a Addr, old, new Word, rmr bool) {
	if m.tracer != nil {
		m.tracer(Op{Proc: p, Kind: k, Addr: a, Old: old, New: new, RMR: rmr})
	}
}

// Read returns the value of a, charging p per the machine model.
func (m *Memory) Read(p int, a Addr) Word {
	m.checkProc(p)
	m.check(a)
	rmr := m.remote(p, a, OpRead)
	m.account(p, OpRead, rmr)
	v := m.words[a]
	m.trace(p, OpRead, a, v, v, rmr)
	return v
}

// Write stores v into a, charging p per the machine model.
func (m *Memory) Write(p int, a Addr, v Word) {
	m.checkProc(p)
	m.check(a)
	rmr := m.remote(p, a, OpWrite)
	m.account(p, OpWrite, rmr)
	old := m.words[a]
	m.words[a] = v
	m.trace(p, OpWrite, a, old, v, rmr)
}

// FAS atomically stores v into a and returns a's previous value
// (fetch-and-store, the only read-modify-write the paper's algorithm needs).
func (m *Memory) FAS(p int, a Addr, v Word) Word {
	m.checkProc(p)
	m.check(a)
	rmr := m.remote(p, a, OpFAS)
	m.account(p, OpFAS, rmr)
	old := m.words[a]
	m.words[a] = v
	m.trace(p, OpFAS, a, old, v, rmr)
	return old
}

// CAS atomically replaces a's value with new iff it equals old, returning
// the previous value and whether the swap happened. Present only for the
// Golab–Hendler baseline; the paper's algorithm does not use it.
func (m *Memory) CAS(p int, a Addr, old, new Word) (Word, bool) {
	m.checkProc(p)
	m.check(a)
	rmr := m.remote(p, a, OpCAS)
	m.account(p, OpCAS, rmr)
	prev := m.words[a]
	swapped := prev == old
	if swapped {
		m.words[a] = new
	}
	m.trace(p, OpCAS, a, prev, m.words[a], rmr)
	return prev, swapped
}

// LocalStep charges one pure local computation step to p. Local steps never
// count as RMRs; they exist so the shallow-vs-deep repair ablation can
// compare local work (experiment E9).
func (m *Memory) LocalStep(p int) {
	m.checkProc(p)
	m.stats[p].LocalSteps++
}

// LocalSteps charges n local steps to p.
func (m *Memory) LocalSteps(p int, n int) {
	m.checkProc(p)
	if n < 0 {
		panic("memsim: negative local step count")
	}
	m.stats[p].LocalSteps += uint64(n)
}

// CrashProcess models the memory-system effect of a crash of p: under CC the
// cache contents are lost (§1.3). NVRAM words are unaffected.
func (m *Memory) CrashProcess(p int) {
	m.checkProc(p)
	if m.model == CC {
		m.caches[p].clear()
	}
}

// Stats returns a copy of p's accounting.
func (m *Memory) Stats(p int) ProcStats {
	m.checkProc(p)
	return m.stats[p]
}

// TotalRMRs returns the sum of RMR counts over all processes.
func (m *Memory) TotalRMRs() uint64 {
	var sum uint64
	for i := range m.stats {
		sum += m.stats[i].RMRs
	}
	return sum
}

// ResetStats zeroes all per-process counters (cache contents are kept; the
// warm cache is part of the machine state, not of the measurement).
func (m *Memory) ResetStats() {
	for i := range m.stats {
		m.stats[i] = ProcStats{}
		if m.model == CC {
			// High-water restarts from the current residency.
			m.stats[i].CacheHighWater = m.caches[i].size()
		}
	}
}

// Peek reads a without accounting. For checkers and tests only; algorithm
// code must use Read.
func (m *Memory) Peek(a Addr) Word {
	m.check(a)
	return m.words[a]
}

// Poke writes a without accounting. For test setup only.
func (m *Memory) Poke(a Addr, v Word) {
	m.check(a)
	m.words[a] = v
}

// Snapshot returns a copy of all memory words. Together with the machines'
// own snapshots it supports exhaustive model checking. Cache contents are
// deliberately excluded: they influence only accounting, never values, so
// they are not part of the safety-relevant state.
func (m *Memory) Snapshot() []Word {
	s := make([]Word, len(m.words))
	copy(s, m.words)
	return s
}

// Restore replaces memory contents with a snapshot previously returned by
// Snapshot on the same Memory (sizes must match: restoring across
// allocations is not meaningful).
func (m *Memory) Restore(s []Word) {
	if len(s) != len(m.words) {
		panic(fmt.Sprintf("memsim: snapshot size %d does not match memory size %d", len(s), len(m.words)))
	}
	copy(m.words, s)
}

// Dump renders a compact listing of non-zero words, for test failure
// diagnostics.
func (m *Memory) Dump() string {
	var b strings.Builder
	var addrs []int
	for a := 1; a < len(m.words); a++ {
		if m.words[a] != 0 {
			addrs = append(addrs, a)
		}
	}
	sort.Ints(addrs)
	for _, a := range addrs {
		fmt.Fprintf(&b, "[%4d home=%2d] = %d\n", a, m.home[a], m.words[a])
	}
	return b.String()
}
