package memsim

import (
	"testing"

	"github.com/rmelib/rme/internal/xrand"
)

func newCC(t *testing.T, procs, capacity int) *Memory {
	t.Helper()
	return New(Config{Model: CC, Procs: procs, CacheCapacity: capacity})
}

func newDSM(t *testing.T, procs int) *Memory {
	t.Helper()
	return New(Config{Model: DSM, Procs: procs})
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero model", Config{Procs: 1}},
		{"zero procs", Config{Model: CC}},
		{"negative procs", Config{Model: DSM, Procs: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", tt.cfg)
				}
			}()
			New(tt.cfg)
		})
	}
}

func TestAllocReservesNil(t *testing.T) {
	m := newDSM(t, 2)
	a := m.Alloc(0, 3)
	if a == NilAddr {
		t.Fatalf("first allocation returned the NIL address")
	}
	if a != 1 {
		t.Fatalf("first allocation at %d, want 1", a)
	}
	b := m.Alloc(1, 1)
	if b != 4 {
		t.Fatalf("second allocation at %d, want 4", b)
	}
	if m.Home(a) != 0 || m.Home(b) != 1 {
		t.Fatalf("homes wrong: %d %d", m.Home(a), m.Home(b))
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	for _, model := range []Model{CC, DSM} {
		t.Run(model.String(), func(t *testing.T) {
			m := New(Config{Model: model, Procs: 2})
			a := m.Alloc(0, 1)
			m.Write(0, a, 42)
			if got := m.Read(1, a); got != 42 {
				t.Fatalf("read %d, want 42", got)
			}
		})
	}
}

func TestFASSemantics(t *testing.T) {
	m := newDSM(t, 2)
	a := m.Alloc(HomeShared, 1)
	m.Write(0, a, 7)
	old := m.FAS(1, a, 9)
	if old != 7 {
		t.Fatalf("FAS returned %d, want 7", old)
	}
	if got := m.Peek(a); got != 9 {
		t.Fatalf("after FAS value %d, want 9", got)
	}
}

func TestCASSemantics(t *testing.T) {
	m := newDSM(t, 1)
	a := m.Alloc(HomeShared, 1)
	m.Write(0, a, 5)

	if prev, ok := m.CAS(0, a, 4, 10); ok || prev != 5 {
		t.Fatalf("CAS mismatched but swapped: prev=%d ok=%v", prev, ok)
	}
	if got := m.Peek(a); got != 5 {
		t.Fatalf("failed CAS changed value to %d", got)
	}
	if prev, ok := m.CAS(0, a, 5, 10); !ok || prev != 5 {
		t.Fatalf("CAS matched but did not swap: prev=%d ok=%v", prev, ok)
	}
	if got := m.Peek(a); got != 10 {
		t.Fatalf("after CAS value %d, want 10", got)
	}
}

func TestDSMAccounting(t *testing.T) {
	m := newDSM(t, 2)
	own := m.Alloc(0, 1)
	other := m.Alloc(1, 1)
	shared := m.Alloc(HomeShared, 1)

	m.Read(0, own)       // local
	m.Write(0, own, 0)   // local
	m.Read(0, other)     // remote
	m.Write(0, other, 0) // remote
	m.FAS(0, shared, 1)  // remote: shared region is home to nobody

	s := m.Stats(0)
	if s.Ops != 5 {
		t.Fatalf("ops = %d, want 5", s.Ops)
	}
	if s.RMRs != 3 {
		t.Fatalf("DSM RMRs = %d, want 3", s.RMRs)
	}
}

func TestCCReadCachesAndWriteInvalidates(t *testing.T) {
	m := newCC(t, 2, 0)
	a := m.Alloc(HomeShared, 1)

	m.Read(0, a) // miss: RMR, fills cache
	m.Read(0, a) // hit: no RMR
	m.Read(0, a) // hit
	if s := m.Stats(0); s.RMRs != 1 {
		t.Fatalf("after cached reads RMRs = %d, want 1", s.RMRs)
	}

	m.Write(1, a, 5) // invalidates p0's copy, RMR for p1
	m.Read(0, a)     // miss again
	if s := m.Stats(0); s.RMRs != 2 {
		t.Fatalf("after invalidation RMRs = %d, want 2", s.RMRs)
	}
	if s := m.Stats(1); s.RMRs != 1 {
		t.Fatalf("writer RMRs = %d, want 1", s.RMRs)
	}
}

func TestCCNonReadAlwaysRMR(t *testing.T) {
	m := newCC(t, 1, 0)
	a := m.Alloc(HomeShared, 1)
	m.Read(0, a)
	m.Write(0, a, 1) // non-read: RMR even though a was cached
	m.FAS(0, a, 2)
	m.CAS(0, a, 2, 3)
	if s := m.Stats(0); s.RMRs != 4 {
		t.Fatalf("RMRs = %d, want 4 (miss + 3 non-reads)", s.RMRs)
	}
}

func TestCCWriterLosesOwnCopy(t *testing.T) {
	// The paper's model says a non-read invalidates copies at ALL caches;
	// the writer does not retain a copy either, so its next read misses.
	m := newCC(t, 1, 0)
	a := m.Alloc(HomeShared, 1)
	m.Read(0, a)     // miss
	m.Write(0, a, 1) // invalidates own copy
	m.Read(0, a)     // miss again
	if s := m.Stats(0); s.RMRs != 3 {
		t.Fatalf("RMRs = %d, want 3", s.RMRs)
	}
}

func TestCCCrashClearsCache(t *testing.T) {
	m := newCC(t, 1, 0)
	a := m.Alloc(HomeShared, 1)
	m.Read(0, a)
	m.CrashProcess(0)
	m.Read(0, a) // cold again after crash
	if s := m.Stats(0); s.RMRs != 2 {
		t.Fatalf("RMRs = %d, want 2", s.RMRs)
	}
}

func TestDSMCrashKeepsMemory(t *testing.T) {
	m := newDSM(t, 1)
	a := m.Alloc(0, 1)
	m.Write(0, a, 77)
	m.CrashProcess(0)
	if got := m.Peek(a); got != 77 {
		t.Fatalf("NVRAM lost value on crash: %d", got)
	}
}

func TestCacheCapacityLRUEviction(t *testing.T) {
	m := newCC(t, 1, 2)
	a := m.Alloc(HomeShared, 1)
	b := m.Alloc(HomeShared, 1)
	c := m.Alloc(HomeShared, 1)

	m.Read(0, a) // cache: {a}
	m.Read(0, b) // cache: {a,b}
	m.Read(0, a) // touch a, so b is LRU
	m.Read(0, c) // evicts b; cache: {a,c}
	m.Read(0, a) // hit
	m.Read(0, b) // miss (evicted)
	s := m.Stats(0)
	if s.RMRs != 4 {
		t.Fatalf("RMRs = %d, want 4 (a,b,c misses + b re-miss)", s.RMRs)
	}
	if s.CacheHighWater != 2 {
		t.Fatalf("high water = %d, want 2", s.CacheHighWater)
	}
}

func TestCacheHighWaterUnbounded(t *testing.T) {
	m := newCC(t, 1, 0)
	for i := 0; i < 10; i++ {
		a := m.Alloc(HomeShared, 1)
		m.Read(0, a)
	}
	if hw := m.Stats(0).CacheHighWater; hw != 10 {
		t.Fatalf("high water = %d, want 10", hw)
	}
}

func TestTracer(t *testing.T) {
	m := newDSM(t, 2)
	a := m.Alloc(0, 1)
	var ops []Op
	m.SetTracer(func(op Op) { ops = append(ops, op) })
	m.Write(1, a, 3)
	m.Read(0, a)
	m.SetTracer(nil)
	m.Read(0, a)

	if len(ops) != 2 {
		t.Fatalf("traced %d ops, want 2", len(ops))
	}
	w := ops[0]
	if w.Kind != OpWrite || w.Proc != 1 || w.New != 3 || !w.RMR {
		t.Fatalf("unexpected write trace %+v", w)
	}
	r := ops[1]
	if r.Kind != OpRead || r.Proc != 0 || r.Old != 3 || r.RMR {
		t.Fatalf("unexpected read trace %+v", r)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := newDSM(t, 1)
	a := m.Alloc(0, 2)
	m.Write(0, a, 1)
	m.Write(0, a+1, 2)
	snap := m.Snapshot()
	m.Write(0, a, 100)
	m.Restore(snap)
	if m.Peek(a) != 1 || m.Peek(a+1) != 2 {
		t.Fatalf("restore did not bring back values: %d %d", m.Peek(a), m.Peek(a+1))
	}
}

func TestResetStats(t *testing.T) {
	m := newCC(t, 1, 0)
	a := m.Alloc(HomeShared, 1)
	m.Read(0, a)
	m.ResetStats()
	s := m.Stats(0)
	if s.Ops != 0 || s.RMRs != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	if s.CacheHighWater != 1 {
		t.Fatalf("high water should restart from current residency 1, got %d", s.CacheHighWater)
	}
	m.Read(0, a) // still cached: no RMR
	if s := m.Stats(0); s.RMRs != 0 {
		t.Fatalf("warm cache lost across ResetStats: %+v", s)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := newDSM(t, 1)
	tests := []struct {
		name string
		fn   func()
	}{
		{"read nil", func() { m.Read(0, NilAddr) }},
		{"read unallocated", func() { m.Read(0, 99) }},
		{"bad proc", func() { a := m.Alloc(0, 1); m.Read(5, a) }},
		{"alloc zero", func() { m.Alloc(0, 0) }},
		{"alloc bad owner", func() { m.Alloc(7, 1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tt.fn()
		})
	}
}

// refModel is an independent, naive implementation of the paper's RMR rules
// used to cross-check Memory on random operation sequences.
type refModel struct {
	model  Model
	home   map[Addr]int
	cached map[int]map[Addr]bool
}

func (r *refModel) isRMR(p int, a Addr, kind OpKind) bool {
	if r.model == DSM {
		return r.home[a] != p
	}
	if kind == OpRead {
		if r.cached[p][a] {
			return false
		}
		r.cached[p][a] = true
		return true
	}
	for _, c := range r.cached {
		delete(c, a)
	}
	return true
}

func TestRandomOpsAgainstReferenceModel(t *testing.T) {
	for _, model := range []Model{CC, DSM} {
		t.Run(model.String(), func(t *testing.T) {
			const procs, words, steps = 4, 16, 4000
			rng := xrand.New(uint64(model) * 977)
			m := New(Config{Model: model, Procs: procs})
			ref := &refModel{model: model, home: map[Addr]int{}, cached: map[int]map[Addr]bool{}}
			for p := 0; p < procs; p++ {
				ref.cached[p] = map[Addr]bool{}
			}
			addrs := make([]Addr, words)
			for i := range addrs {
				owner := rng.Intn(procs+1) - 1 // -1 = shared
				addrs[i] = m.Alloc(owner, 1)
				ref.home[addrs[i]] = owner
			}
			var wantRMR [procs]uint64
			m.SetTracer(func(op Op) {
				// Cross-check the trace flag against accounting later.
			})
			for i := 0; i < steps; i++ {
				p := rng.Intn(procs)
				a := addrs[rng.Intn(words)]
				kind := OpKind(1 + rng.Intn(4))
				var rmr bool
				switch kind {
				case OpRead:
					rmr = ref.isRMR(p, a, kind)
					m.Read(p, a)
				case OpWrite:
					rmr = ref.isRMR(p, a, kind)
					m.Write(p, a, Word(i))
				case OpFAS:
					rmr = ref.isRMR(p, a, kind)
					m.FAS(p, a, Word(i))
				case OpCAS:
					rmr = ref.isRMR(p, a, kind)
					m.CAS(p, a, Word(i), Word(i+1))
				}
				if rmr {
					wantRMR[p]++
				}
				if rng.Intn(100) == 0 {
					m.CrashProcess(p)
					ref.cached[p] = map[Addr]bool{}
				}
			}
			for p := 0; p < procs; p++ {
				if got := m.Stats(p).RMRs; got != wantRMR[p] {
					t.Fatalf("proc %d: RMRs = %d, reference says %d", p, got, wantRMR[p])
				}
			}
		})
	}
}
