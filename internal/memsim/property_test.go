package memsim

import (
	"testing"
	"testing/quick"

	"github.com/rmelib/rme/internal/xrand"
)

// Property-based tests (testing/quick) for the cost-model invariants every
// higher layer relies on.

// TestQuickCCSecondReadIsFree: on a CC machine, two consecutive reads of
// the same word by the same process with no intervening non-read on that
// word cost exactly one RMR (the miss), never two.
func TestQuickCCSecondReadIsFree(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		m := New(Config{Model: CC, Procs: 2})
		words := make([]Addr, 4)
		for i := range words {
			words[i] = m.Alloc(HomeShared, 1)
		}
		// Random noise from process 1 on OTHER words only.
		target := words[rng.Intn(len(words))]
		m.Read(0, target)
		for i := 0; i < 10; i++ {
			w := words[rng.Intn(len(words))]
			if w != target {
				m.Write(1, w, Word(i))
			}
		}
		before := m.Stats(0).RMRs
		m.Read(0, target)
		return m.Stats(0).RMRs == before
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDSMCostIsLocationOnly: on DSM the cost of an operation depends
// only on (process, word home), never on history.
func TestQuickDSMCostIsLocationOnly(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		const procs = 3
		m := New(Config{Model: DSM, Procs: procs})
		type loc struct {
			a    Addr
			home int
		}
		locs := make([]loc, 5)
		for i := range locs {
			home := rng.Intn(procs+1) - 1
			locs[i] = loc{a: m.Alloc(home, 1), home: home}
		}
		for i := 0; i < 100; i++ {
			p := rng.Intn(procs)
			l := locs[rng.Intn(len(locs))]
			before := m.Stats(p).RMRs
			switch rng.Intn(3) {
			case 0:
				m.Read(p, l.a)
			case 1:
				m.Write(p, l.a, Word(i))
			case 2:
				m.FAS(p, l.a, Word(i))
			}
			wantRMR := l.home != p
			gotRMR := m.Stats(p).RMRs == before+1
			if gotRMR != wantRMR {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFASIsAtomicSwap: FAS always returns the previous value and
// stores the new one, regardless of interleaved history.
func TestQuickFASIsAtomicSwap(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		m := New(Config{Model: DSM, Procs: 2})
		a := m.Alloc(HomeShared, 1)
		shadow := Word(0)
		for i := 0; i < 200; i++ {
			p := rng.Intn(2)
			v := Word(rng.Intn(100))
			if rng.Bool() {
				old := m.FAS(p, a, v)
				if old != shadow {
					return false
				}
				shadow = v
			} else {
				m.Write(p, a, v)
				shadow = v
			}
		}
		return m.Peek(a) == shadow
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSnapshotRoundTrip: Restore(Snapshot()) is the identity on the
// word array regardless of interleaved operations.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		m := New(Config{Model: DSM, Procs: 1})
		n := 1 + rng.Intn(16)
		base := m.Alloc(0, n)
		for i := 0; i < n; i++ {
			m.Write(0, base+Addr(i), Word(rng.Uint64()%1000))
		}
		snap := m.Snapshot()
		for i := 0; i < n; i++ {
			m.Write(0, base+Addr(i), -1)
		}
		m.Restore(snap)
		for i := 0; i < n; i++ {
			if m.Peek(base+Addr(i)) != snap[int(base)+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
