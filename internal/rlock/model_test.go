package rlock

import (
	"encoding/binary"
	"testing"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/xrand"
)

// The tests in this file machine-check the RLock contract the paper's main
// algorithm relies on (Figure 3: "RLock is a k-ported starvation-free RME
// algorithm"), replacing the pencil-and-paper proof that Golab–Ramaraju give
// for their instance:
//
//   - TestModelCheck2Ports: exhaustive breadth-first exploration of ALL
//     interleavings of two clients with a bounded number of crash steps.
//     Safety (mutual exclusion) is asserted in every reachable state;
//     progress (some client can always complete a passage crash-free) is
//     asserted from a dense sample of reachable states, which rules out
//     deadlock and lost-wakeup states.
//   - Randomized deep runs for 3 and 4 ports extend confidence beyond the
//     exhaustively tractable instance.

// modelSnap captures the complete safety-relevant state of the 2-client
// world: NVRAM words, both clients' volatile registers, remaining crash
// budget.
type modelSnap struct {
	mem    []memsim.Word
	c      [2]Proc
	h      [2]Handle
	budget int
}

func takeSnap(mem *memsim.Memory, ps [2]*Proc, budget int) modelSnap {
	return modelSnap{
		mem:    mem.Snapshot(),
		c:      [2]Proc{*ps[0], *ps[1]},
		h:      [2]Handle{*ps[0].h, *ps[1].h},
		budget: budget,
	}
}

func (s *modelSnap) restore(mem *memsim.Memory, ps [2]*Proc) {
	mem.Restore(s.mem)
	for i := 0; i < 2; i++ {
		h := ps[i].h // keep the stable handle pointer
		*ps[i] = s.c[i]
		ps[i].h = h
		*h = s.h[i]
	}
}

// key encodes the state for the visited set. Passage counters are excluded:
// they grow without bound and do not influence behaviour.
func (s *modelSnap) key() string {
	b := make([]byte, 0, 64)
	for _, w := range s.mem {
		b = binary.AppendVarint(b, int64(w))
	}
	for i := 0; i < 2; i++ {
		b = append(b, byte(s.c[i].cpc), byte(s.c[i].left))
		b = binary.AppendVarint(b, int64(s.h[i].pc))
		b = binary.AppendVarint(b, int64(s.h[i].lvl))
		b = binary.AppendVarint(b, int64(s.h[i].r))
		b = binary.AppendVarint(b, int64(s.h[i].a))
		if s.h[i].relock {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = append(b, byte(s.budget))
	return string(b)
}

func TestModelCheck2Ports(t *testing.T) {
	const crashBudget = 2
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 2})
	lk := New(mem, 2)
	ps := [2]*Proc{
		NewProc(mem, lk, 0, 0, 0),
		NewProc(mem, lk, 1, 1, 0),
	}

	bothInCS := func() bool {
		return ps[0].Section() == sched.CS && ps[1].Section() == sched.CS
	}

	// progressFrom asserts that, continuing crash-free round-robin from the
	// current state, the system completes a passage within a small bound.
	progressFrom := func(limit int) bool {
		start := ps[0].Passages() + ps[1].Passages()
		for i := 0; i < limit; i++ {
			ps[i%2].Step()
			if ps[0].Passages()+ps[1].Passages() > start {
				return true
			}
		}
		return false
	}

	visited := make(map[string]struct{}, 1<<18)
	queue := make([]modelSnap, 0, 1<<12)

	root := takeSnap(mem, ps, crashBudget)
	visited[root.key()] = struct{}{}
	queue = append(queue, root)

	states, livenessChecks := 0, 0
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		states++

		// Transitions: normal step of either client, crash of either client
		// (outside Remainder, while budget lasts).
		for tr := 0; tr < 4; tr++ {
			cur.restore(mem, ps)
			budget := cur.budget
			switch tr {
			case 0:
				ps[0].Step()
			case 1:
				ps[1].Step()
			case 2, 3:
				i := tr - 2
				if budget == 0 || ps[i].Section() == sched.Remainder {
					continue
				}
				ps[i].Crash()
				budget--
			}
			if bothInCS() {
				t.Fatalf("mutual exclusion violated (state %d, transition %d)", states, tr)
			}
			next := takeSnap(mem, ps, budget)
			k := next.key()
			if _, seen := visited[k]; seen {
				continue
			}
			visited[k] = struct{}{}

			// Dense liveness sampling: every 8th new state, plus every
			// state at exhausted crash budget (the regime the paper's
			// starvation-freedom condition speaks about).
			if len(visited)%8 == 0 || budget == 0 && len(visited)%4 == 0 {
				if !progressFrom(400) {
					t.Fatalf("no progress from reachable state (deadlock/lost wakeup); state #%d", len(visited))
				}
				livenessChecks++
				next.restore(mem, ps) // progressFrom mutated the world
			}
			queue = append(queue, next)
		}
	}
	t.Logf("explored %d states (%d enqueued), %d liveness checks", states, len(visited), livenessChecks)
	if states < 1000 {
		t.Fatalf("suspiciously small state space: %d states", states)
	}
}

func TestRandomizedDeepRuns(t *testing.T) {
	// Long adversarial random runs for port counts beyond the exhaustive
	// instance; ME checked at every step, progress checked at the end.
	for _, ports := range []int{3, 4} {
		for seed := uint64(1); seed <= 6; seed++ {
			mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: ports})
			lk := New(mem, ports)
			procs := make([]sched.Proc, ports)
			for i := range procs {
				procs[i] = NewProc(mem, lk, i, i, int(seed)%3)
			}
			rng := xrand.New(seed*7919 + uint64(ports))
			violated := false
			r := &sched.Runner{
				Procs:    procs,
				Sched:    sched.Random{Src: rng},
				Crash:    &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 37, Budget: 60},
				OnStep:   func(sched.StepEvent) { violated = violated || countCS(procs) > 1 },
				StopWhen: sched.AllPassagesAtLeast(procs, 25),
			}
			if err := r.Run(); err != nil {
				t.Fatalf("ports=%d seed=%d: %v", ports, seed, err)
			}
			if violated {
				t.Fatalf("ports=%d seed=%d: mutual exclusion violated", ports, seed)
			}
		}
	}
}
