package rlock

import (
	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
)

// Client program counters (outer RME cycle around a Handle).
const (
	clientRemainder = iota
	clientLocking
	clientCS
	clientUnlocking
)

// Proc is a sched.Proc that cycles Remainder → Try (BeginLock) → CS →
// Exit (BeginUnlock) → Remainder through one Handle. It is the harness
// used by tests, the model checker and the benchmarks.
type Proc struct {
	id    int
	mem   *memsim.Memory
	h     *Handle
	cpc   int
	dwell int
	left  int

	passages uint64
}

// NewProc builds a client for proc id on lock lk using the given port.
// dwell is the number of steps spent inside the CS per passage.
func NewProc(mem *memsim.Memory, lk *Lock, id, port, dwell int) *Proc {
	return &Proc{id: id, mem: mem, h: NewHandle(lk, id, port), dwell: dwell}
}

// ID implements sched.Proc.
func (p *Proc) ID() int { return p.id }

// Handle returns the underlying lock handle (used by white-box tests).
func (p *Proc) Handle() *Handle { return p.h }

// PC implements sched.PCer, exposing the handle's program counter while a
// lock operation is in flight and the client counter otherwise (negated to
// keep the spaces disjoint).
func (p *Proc) PC() int {
	switch p.cpc {
	case clientLocking, clientUnlocking:
		return p.h.PC()
	default:
		return -1 - p.cpc
	}
}

// Section implements sched.Proc.
func (p *Proc) Section() sched.Section {
	switch p.cpc {
	case clientRemainder:
		return sched.Remainder
	case clientLocking:
		return sched.Try
	case clientCS:
		return sched.CS
	default:
		return sched.Exit
	}
}

// Passages implements sched.Proc.
func (p *Proc) Passages() uint64 { return p.passages }

// Step implements sched.Proc.
func (p *Proc) Step() {
	switch p.cpc {
	case clientRemainder:
		p.h.BeginLock()
		p.mem.LocalStep(p.id)
		p.cpc = clientLocking
	case clientLocking:
		if p.h.Step() {
			p.cpc = clientCS
			p.left = p.dwell
		}
	case clientCS:
		if p.left > 0 {
			p.left--
			p.mem.LocalStep(p.id)
			return
		}
		p.h.BeginUnlock()
		p.mem.LocalStep(p.id)
		p.cpc = clientUnlocking
	case clientUnlocking:
		if p.h.Step() {
			p.passages++
			p.cpc = clientRemainder
		}
	}
}

// Crash implements sched.Proc: the process loses its registers and restarts
// from Remainder (its next normal step re-enters Try, recovering from the
// NVRAM stage word).
func (p *Proc) Crash() {
	p.h.Crash()
	p.cpc = clientRemainder
	p.left = 0
	p.mem.CrashProcess(p.id)
}
