// Package rlock implements the "RLock" substrate required by the paper's
// main algorithm (Figure 3): a k-ported, starvation-free recoverable
// mutual-exclusion lock with O(k) RMRs per passage on both CC and DSM
// machines, satisfying critical-section re-entry (CSR) after crashes.
//
// The paper suggests instantiating RLock with Golab and Ramaraju's
// recoverable extension of the Yang–Anderson tournament lock [7, §3.2].
// This package implements an equivalent recoverable tournament (see
// DESIGN.md §5 substitution 3): a binary tree of two-side Peterson-style
// nodes where
//
//   - each side of a node has a claimant flag (the claiming port + 1), and a
//     turn word arbitrates as in Peterson's algorithm;
//   - a waiting port busy-waits on a spin word hosted in its *own* memory
//     partition (local on DSM), whose address it publishes before waiting —
//     the Signal-object idea applied to lock hand-off;
//   - a port about to wait first wakes the rival side's published spin word
//     ("entry wake"), and a woken port *re-checks* the Peterson condition
//     before proceeding. The wake/re-check pair is what makes blind
//     re-execution after a crash safe: a process that crashed while holding
//     a node and re-runs the entry simply defers (writes the turn word) and
//     wakes any stale waiter, which then re-checks and proceeds;
//   - exit releases nodes from the root downward with a conditional clear
//     ("only clear the flag if it still names me"), which makes the whole
//     exit idempotent: a crashed exit is simply replayed from the root. The
//     top-down order guarantees the conditional clear is race-free, because
//     a same-side successor cannot reach level ℓ while the levels below ℓ
//     are still held;
//   - a per-port NVRAM stage word (idle/trying/incs/exiting) gives wait-free
//     CSR: recovery of a holder is a single read.
//
// Passage RMR cost is O(log k) crash-free — comfortably within the O(k)
// contract the main algorithm relies on — and O((1+f)·log k) with f crashes.
// The claimed properties are machine-checked in model_test.go: exhaustively
// (all interleavings, bounded crashes) for 2 ports and randomized for more.
package rlock

import (
	"fmt"

	"github.com/rmelib/rme/internal/memsim"
)

// Stage values stored in the per-port NVRAM stage word.
const (
	stageIdle    = 0 // no passage in progress
	stageTrying  = 1 // climbing the tournament
	stageInCS    = 2 // holds the lock
	stageExiting = 3 // releasing the tournament
)

// Lock is the shared NVRAM layout of one k-ported tournament instance.
// All mutable state lives in simulated memory; Lock itself is immutable
// after construction and may be shared by any number of Handles.
type Lock struct {
	mem    *memsim.Memory
	ports  int
	levels int // ceil(log2 ports); 0 when ports == 1

	// nodeBase[l] is the base address of level l's node records; each node
	// is three consecutive words: flag[0], flag[1], turn.
	nodeBase []memsim.Addr
	// spinAddr + port*levels + l holds the published spin-word address of
	// port at level l (NIL until first published).
	spinAddr memsim.Addr
	// stage + port is the port's stage word.
	stage memsim.Addr
}

// New allocates a k-ported tournament lock in mem. Global words (node
// records, published addresses, stage words) are homed in the shared
// region: on DSM every access to them is remote, which the O(log k) bound
// already accounts for; only busy-waiting must be local, and that happens
// on handle-owned words.
func New(mem *memsim.Memory, ports int) *Lock {
	if ports <= 0 {
		panic("rlock: ports must be positive")
	}
	levels := 0
	for 1<<levels < ports {
		levels++
	}
	l := &Lock{mem: mem, ports: ports, levels: levels}
	l.nodeBase = make([]memsim.Addr, levels)
	for lvl := 0; lvl < levels; lvl++ {
		n := 1 << (levels - lvl - 1) // nodes at this level
		l.nodeBase[lvl] = mem.Alloc(memsim.HomeShared, 3*n)
	}
	if levels > 0 {
		l.spinAddr = mem.Alloc(memsim.HomeShared, ports*levels)
	}
	l.stage = mem.Alloc(memsim.HomeShared, ports)
	return l
}

// Ports returns the number of ports the lock was built for.
func (l *Lock) Ports() int { return l.ports }

// Levels returns the height of the tournament tree.
func (l *Lock) Levels() int { return l.levels }

// node returns the addresses of (flag[side], flag[1-side], turn) for port's
// node at level lvl.
func (l *Lock) node(port, lvl, side int) (own, rival, turn memsim.Addr) {
	idx := port >> (lvl + 1)
	base := l.nodeBase[lvl] + memsim.Addr(3*idx)
	return base + memsim.Addr(side), base + memsim.Addr(1-side), base + 2
}

func (l *Lock) side(port, lvl int) int { return (port >> lvl) & 1 }

func (l *Lock) spinAddrWord(port, lvl int) memsim.Addr {
	return l.spinAddr + memsim.Addr(port*l.levels+lvl)
}

func (l *Lock) stageWord(port int) memsim.Addr {
	return l.stage + memsim.Addr(port)
}

// HolderStage reports port's stage word for checkers (uncharged read).
func (l *Lock) HolderStage(port int) int {
	return int(l.mem.Peek(l.stageWord(port)))
}

// Handle program counters. Values are internal; they are exported only
// through Handle.PC for crash-injection policies.
const (
	pcIdle = 0

	// Lock path.
	pcReadStage = 1
	pcSetTrying = 2
	pcE0        = 10 // write own flag
	pcE1        = 11 // write turn (defer)
	pcE2a       = 12 // reset own spin word
	pcE2b       = 13 // publish spin word address
	pcE3        = 14 // read rival flag
	pcE4        = 15 // read turn
	pcE5a       = 16 // read rival's published spin address
	pcE5b       = 17 // entry-wake the rival
	pcE6        = 18 // local spin
	pcE7        = 19 // consume wake, go re-check
	pcSetInCS   = 20
	// Unlock path (also replayed for exit recovery during Lock).
	pcSetExiting = 30
	pcX0         = 31 // read own flag (conditional clear test)
	pcX1         = 32 // clear own flag
	pcX2         = 33 // read rival flag
	pcX3         = 34 // read rival's published spin address
	pcX4         = 35 // exit-wake the rival
	pcSetIdle    = 36
)

// Handle is one process's step machine for acquiring and releasing a Lock
// through a fixed port. The handle's local fields are the process's
// volatile registers: Crash wipes them; everything needed for recovery is
// in the Lock's NVRAM words.
type Handle struct {
	lk   *Lock
	proc int
	port int

	// mySpin[l] is this handle's spin word for level l, allocated once in
	// the handle's own partition and reused across passages (reset before
	// each wait, republished each climb).
	mySpin []memsim.Addr

	// Volatile registers.
	pc     int
	lvl    int
	r      memsim.Word // rival flag register
	a      memsim.Word // published-address register
	relock bool        // finishing a crashed exit, then climb
}

// NewHandle creates a handle for proc using port. The spin words are
// allocated eagerly in proc's partition so the memory footprint is fixed
// (required by the snapshot-based model checker).
func NewHandle(lk *Lock, proc, port int) *Handle {
	if port < 0 || port >= lk.ports {
		panic(fmt.Sprintf("rlock: port %d out of range [0,%d)", port, lk.ports))
	}
	h := &Handle{lk: lk, proc: proc, port: port}
	h.mySpin = make([]memsim.Addr, lk.levels)
	for l := range h.mySpin {
		h.mySpin[l] = lk.mem.Alloc(proc, 1)
	}
	return h
}

// Port returns the handle's port.
func (h *Handle) Port() int { return h.port }

// PC exposes the internal program counter for crash policies.
func (h *Handle) PC() int { return h.pc }

// Done reports whether no operation is in progress.
func (h *Handle) Done() bool { return h.pc == pcIdle }

// BeginLock starts the Try protocol (or its crash recovery; the stage word
// decides which).
func (h *Handle) BeginLock() {
	h.pc = pcReadStage
	h.relock = false
}

// BeginUnlock starts the Exit protocol. Only valid when the lock is held
// (stage == incs); the step machine does not re-verify this.
func (h *Handle) BeginUnlock() {
	h.pc = pcSetExiting
	h.relock = false
}

// Crash wipes the volatile registers. The NVRAM stage word drives recovery
// on the next BeginLock.
func (h *Handle) Crash() {
	h.pc = pcIdle
	h.lvl = 0
	h.r = 0
	h.a = 0
	h.relock = false
}

// advance moves the climb one level up, or into the CS at the top.
func (h *Handle) advance() {
	h.lvl++
	if h.lvl == h.lk.levels {
		h.pc = pcSetInCS
	} else {
		h.pc = pcE0
	}
}

// descend moves the release one level down, or finishes at the leaves.
func (h *Handle) descend() {
	h.lvl--
	if h.lvl < 0 {
		h.pc = pcSetIdle
	} else {
		h.pc = pcX0
	}
}

// Step executes one atomic step; it returns true when the operation begun
// by BeginLock/BeginUnlock has completed. For BeginLock, completion means
// the critical section is held.
func (h *Handle) Step() bool {
	mem, lk := h.lk.mem, h.lk
	switch h.pc {
	case pcIdle:
		return true

	case pcReadStage:
		switch mem.Read(h.proc, lk.stageWord(h.port)) {
		case stageInCS:
			// Wait-free CSR: we crashed holding the lock; still the holder.
			h.pc = pcIdle
			return true
		case stageExiting:
			// Crashed mid-exit: replay the release from the root, then
			// climb as a fresh entry.
			h.relock = true
			h.lvl = lk.levels - 1
			if h.lvl < 0 {
				h.pc = pcSetIdle
			} else {
				h.pc = pcX0
			}
		default: // idle or trying
			h.pc = pcSetTrying
		}

	case pcSetTrying:
		mem.Write(h.proc, lk.stageWord(h.port), stageTrying)
		h.lvl = 0
		if lk.levels == 0 {
			h.pc = pcSetInCS
		} else {
			h.pc = pcE0
		}

	case pcE0:
		own, _, _ := lk.node(h.port, h.lvl, lk.side(h.port, h.lvl))
		mem.Write(h.proc, own, memsim.Word(h.port+1))
		h.pc = pcE1

	case pcE1:
		s := lk.side(h.port, h.lvl)
		_, _, turn := lk.node(h.port, h.lvl, s)
		mem.Write(h.proc, turn, memsim.Word(1-s))
		h.pc = pcE2a

	case pcE2a:
		mem.Write(h.proc, h.mySpin[h.lvl], 0)
		h.pc = pcE2b

	case pcE2b:
		mem.Write(h.proc, lk.spinAddrWord(h.port, h.lvl), memsim.Word(h.mySpin[h.lvl]))
		h.pc = pcE3

	case pcE3:
		s := lk.side(h.port, h.lvl)
		_, rival, _ := lk.node(h.port, h.lvl, s)
		h.r = mem.Read(h.proc, rival)
		if h.r == 0 {
			h.advance()
		} else {
			h.pc = pcE4
		}

	case pcE4:
		s := lk.side(h.port, h.lvl)
		_, _, turn := lk.node(h.port, h.lvl, s)
		if mem.Read(h.proc, turn) != memsim.Word(1-s) {
			h.advance()
		} else {
			h.pc = pcE5a
		}

	case pcE5a:
		h.a = mem.Read(h.proc, lk.spinAddrWord(int(h.r-1), h.lvl))
		h.pc = pcE5b

	case pcE5b:
		// Entry wake: we are about to wait, so the rival has priority; if
		// it was left waiting by an earlier crash of ours, release it. The
		// rival re-checks its condition, so a spurious wake is harmless.
		if h.a != memsim.Word(memsim.NilAddr) {
			mem.Write(h.proc, memsim.Addr(h.a), 1)
		} else {
			mem.LocalStep(h.proc)
		}
		h.pc = pcE6

	case pcE6:
		if mem.Read(h.proc, h.mySpin[h.lvl]) != 0 {
			h.pc = pcE7
		}

	case pcE7:
		mem.Write(h.proc, h.mySpin[h.lvl], 0)
		h.pc = pcE3 // re-check the Peterson condition

	case pcSetInCS:
		mem.Write(h.proc, lk.stageWord(h.port), stageInCS)
		h.pc = pcIdle
		return true

	case pcSetExiting:
		mem.Write(h.proc, lk.stageWord(h.port), stageExiting)
		h.lvl = lk.levels - 1
		if h.lvl < 0 {
			h.pc = pcSetIdle
		} else {
			h.pc = pcX0
		}

	case pcX0:
		s := lk.side(h.port, h.lvl)
		own, _, _ := lk.node(h.port, h.lvl, s)
		if mem.Read(h.proc, own) != memsim.Word(h.port+1) {
			// Already released in the crashed attempt being replayed.
			h.descend()
		} else {
			h.pc = pcX1
		}

	case pcX1:
		s := lk.side(h.port, h.lvl)
		own, _, _ := lk.node(h.port, h.lvl, s)
		mem.Write(h.proc, own, 0)
		h.pc = pcX2

	case pcX2:
		s := lk.side(h.port, h.lvl)
		_, rival, _ := lk.node(h.port, h.lvl, s)
		h.r = mem.Read(h.proc, rival)
		if h.r == 0 {
			h.descend()
		} else {
			h.pc = pcX3
		}

	case pcX3:
		h.a = mem.Read(h.proc, lk.spinAddrWord(int(h.r-1), h.lvl))
		h.pc = pcX4

	case pcX4:
		if h.a != memsim.Word(memsim.NilAddr) {
			mem.Write(h.proc, memsim.Addr(h.a), 1)
		} else {
			mem.LocalStep(h.proc)
		}
		h.descend()

	case pcSetIdle:
		if h.relock {
			// Exit replay finished; now run the fresh entry we were asked
			// for. Going straight to "trying" keeps this a single write.
			h.relock = false
			mem.Write(h.proc, lk.stageWord(h.port), stageTrying)
			h.lvl = 0
			if lk.levels == 0 {
				h.pc = pcSetInCS
			} else {
				h.pc = pcE0
			}
		} else {
			mem.Write(h.proc, lk.stageWord(h.port), stageIdle)
			h.pc = pcIdle
			return true
		}

	default:
		panic(fmt.Sprintf("rlock: corrupt pc %d", h.pc))
	}
	return h.pc == pcIdle
}
