package rlock

import (
	"fmt"
	"math/bits"
	"testing"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/xrand"
)

func newWorld(t testing.TB, model memsim.Model, ports, dwell int) (*memsim.Memory, *Lock, []sched.Proc) {
	t.Helper()
	mem := memsim.New(memsim.Config{Model: model, Procs: ports})
	lk := New(mem, ports)
	procs := make([]sched.Proc, ports)
	for i := 0; i < ports; i++ {
		procs[i] = NewProc(mem, lk, i, i, dwell)
	}
	return mem, lk, procs
}

func countCS(procs []sched.Proc) int {
	n := 0
	for _, p := range procs {
		if p.Section() == sched.CS {
			n++
		}
	}
	return n
}

func TestLevels(t *testing.T) {
	tests := []struct {
		ports, levels int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4},
	}
	for _, tt := range tests {
		mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 1})
		if got := New(mem, tt.ports).Levels(); got != tt.levels {
			t.Errorf("ports=%d: levels=%d, want %d", tt.ports, got, tt.levels)
		}
	}
}

func TestSinglePort(t *testing.T) {
	_, _, procs := newWorld(t, memsim.DSM, 1, 2)
	r := &sched.Runner{Procs: procs, StopWhen: sched.AllPassagesAtLeast(procs, 10)}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutualExclusionNoCrashes(t *testing.T) {
	for _, ports := range []int{2, 3, 4, 8} {
		for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
			t.Run(fmt.Sprintf("k%d_%s", ports, model), func(t *testing.T) {
				_, _, procs := newWorld(t, model, ports, 1)
				violated := false
				r := &sched.Runner{
					Procs:    procs,
					Sched:    sched.Random{Src: xrand.New(uint64(ports) * 1337)},
					OnStep:   func(sched.StepEvent) { violated = violated || countCS(procs) > 1 },
					StopWhen: sched.AllPassagesAtLeast(procs, 20),
				}
				if err := r.Run(); err != nil {
					t.Fatal(err)
				}
				if violated {
					t.Fatal("mutual exclusion violated")
				}
			})
		}
	}
}

func TestMutualExclusionWithCrashes(t *testing.T) {
	for _, ports := range []int{2, 4, 8} {
		for seed := uint64(0); seed < 8; seed++ {
			t.Run(fmt.Sprintf("k%d_seed%d", ports, seed), func(t *testing.T) {
				_, _, procs := newWorld(t, memsim.DSM, ports, 1)
				violated := false
				rng := xrand.New(seed*131 + uint64(ports))
				r := &sched.Runner{
					Procs:    procs,
					Sched:    sched.Random{Src: rng},
					Crash:    &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 50, Budget: 40},
					OnStep:   func(sched.StepEvent) { violated = violated || countCS(procs) > 1 },
					StopWhen: sched.AllPassagesAtLeast(procs, 10),
				}
				if err := r.Run(); err != nil {
					t.Fatal(err)
				}
				if violated {
					t.Fatal("mutual exclusion violated under crashes")
				}
			})
		}
	}
}

func TestStarvationFreedom(t *testing.T) {
	// Heavily skewed scheduling must still let the light process through.
	_, _, procs := newWorld(t, memsim.DSM, 2, 0)
	r := &sched.Runner{
		Procs:    procs,
		Sched:    sched.NewWeightedRandom(xrand.New(5), []int{50, 1}),
		StopWhen: func() bool { return procs[1].Passages() >= 5 },
	}
	if err := r.Run(); err != nil {
		t.Fatalf("light process starved: %v", err)
	}
}

func TestCSRAfterCrashInCS(t *testing.T) {
	// Crash the CS holder; no other process may enter the CS before the
	// holder re-enters, and re-entry must be wait-free (a few steps).
	_, _, procs := newWorld(t, memsim.DSM, 4, 3)
	d := sched.NewDriver(procs...)

	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("proc 0 never entered CS")
	}
	// Let others queue up behind the holder.
	for _, id := range []int{1, 2, 3} {
		d.Step(id, 30)
	}
	d.Crash(0)

	// Others run for a long time; none may slip into the CS (CSR).
	for i := 0; i < 500; i++ {
		for _, id := range []int{1, 2, 3} {
			d.Step(id, 1)
			if s := countCS(procs); s > 0 {
				t.Fatalf("CSR violated: someone entered CS before the crashed holder returned")
			}
		}
	}

	// Wait-free CSR: the holder re-enters within a small constant number of
	// its own steps (stage read + client bookkeeping).
	steps := 0
	for procs[0].Section() != sched.CS {
		d.Step(0, 1)
		steps++
		if steps > 10 {
			t.Fatalf("holder took %d steps to re-enter CS; want wait-free", steps)
		}
	}
}

func TestExitIsWaitFree(t *testing.T) {
	// From the moment Exit starts, the holder finishes within a bound that
	// depends only on the tree height — regardless of rival behaviour.
	for _, ports := range []int{2, 8, 16} {
		_, lk, procs := newWorld(t, memsim.DSM, ports, 0)
		d := sched.NewDriver(procs...)
		if !d.StepUntilSection(0, sched.CS) {
			t.Fatal("no CS")
		}
		// Other procs pile in and then stall mid-Try.
		for id := 1; id < ports; id++ {
			d.Step(id, 7)
		}
		if !d.StepUntilSection(0, sched.Exit) {
			t.Fatal("no Exit")
		}
		bound := 4 + 6*lk.Levels()
		steps := 0
		for procs[0].Section() == sched.Exit {
			d.Step(0, 1)
			steps++
			if steps > bound {
				t.Fatalf("ports=%d: exit took more than %d steps", ports, bound)
			}
		}
	}
}

func TestPassageRMRLogarithmic(t *testing.T) {
	// Crash-free passage cost must scale with log k, not k. We assert a
	// generous c·(log2 k + 1) envelope that a linear-cost implementation
	// would burst at k = 32.
	const perLevel = 14
	for _, ports := range []int{2, 4, 8, 16, 32} {
		mem, lk, procs := newWorld(t, memsim.DSM, ports, 0)
		r := &sched.Runner{
			Procs:    procs,
			Sched:    sched.Random{Src: xrand.New(uint64(ports))},
			StopWhen: sched.AllPassagesAtLeast(procs, 20),
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		for i := range procs {
			st := mem.Stats(i)
			per := float64(st.RMRs) / float64(procs[i].Passages())
			limit := float64(perLevel * (lk.Levels() + 1))
			if per > limit {
				t.Errorf("ports=%d proc=%d: %.1f RMRs/passage exceeds bound %.1f",
					ports, i, per, limit)
			}
		}
		_ = bits.Len(uint(ports))
	}
}

func TestWaitingIsLocalOnDSM(t *testing.T) {
	// A process that waits a long time while the holder dwells must not
	// accumulate RMRs while spinning: its spin word is in its own partition.
	mem, _, procs := newWorld(t, memsim.DSM, 2, 0)
	d := sched.NewDriver(procs...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	// Proc 1 runs until it must be spinning.
	d.Step(1, 50)
	before := mem.Stats(1).RMRs
	d.Step(1, 5000)
	after := mem.Stats(1).RMRs
	if after != before {
		t.Fatalf("spinning cost %d RMRs on DSM; want 0", after-before)
	}
}

func TestCrashStormEventuallyQuiesces(t *testing.T) {
	// A finite crash storm, then crash-free execution: everyone finishes
	// more passages (the paper's starvation-freedom premise: finitely many
	// crashes in the run).
	_, _, procs := newWorld(t, memsim.DSM, 4, 1)
	rng := xrand.New(99)
	r := &sched.Runner{
		Procs: procs,
		Sched: sched.Random{Src: rng},
		Crash: &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 10, Budget: 100},
	}
	r.StopWhen = func() bool { return r.TotalCrashes() >= 100 }
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// Storm over; now require progress for everyone.
	r2 := &sched.Runner{
		Procs:    procs,
		Sched:    sched.Random{Src: rng.Fork()},
		StopWhen: sched.AllPassagesAtLeast(procs, procs[0].Passages()+10),
	}
	if err := r2.Run(); err != nil {
		t.Fatalf("no quiescent progress after crash storm: %v", err)
	}
}

func TestCrashAtEveryPCRecovers(t *testing.T) {
	// Sweep: crash proc 0 the first time it reaches each handle PC, then
	// require the system to keep satisfying ME and complete passages.
	pcs := []int{pcReadStage, pcSetTrying, pcE0, pcE1, pcE2a, pcE2b, pcE3,
		pcE4, pcE5a, pcE5b, pcE6, pcE7, pcSetInCS, pcSetExiting, pcX0, pcX1,
		pcX2, pcX3, pcX4, pcSetIdle}
	for _, pc := range pcs {
		t.Run(fmt.Sprintf("pc%d", pc), func(t *testing.T) {
			_, _, procs := newWorld(t, memsim.DSM, 4, 1)
			violated := false
			r := &sched.Runner{
				Procs:    procs,
				Sched:    sched.Random{Src: xrand.New(uint64(pc) + 7)},
				Crash:    &sched.CrashAtPC{Proc: 0, PC: pc, Times: 3},
				OnStep:   func(sched.StepEvent) { violated = violated || countCS(procs) > 1 },
				StopWhen: sched.AllPassagesAtLeast(procs, 8),
			}
			if err := r.Run(); err != nil {
				t.Fatalf("system wedged after crash at pc %d: %v", pc, err)
			}
			if violated {
				t.Fatalf("ME violated after crash at pc %d", pc)
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("New(0 ports) did not panic")
		}
	}()
	New(mem, 0)
}

func TestHandlePortValidation(t *testing.T) {
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 1})
	lk := New(mem, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("NewHandle with bad port did not panic")
		}
	}()
	NewHandle(lk, 0, 2)
}
