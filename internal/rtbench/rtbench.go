// Package rtbench measures the runtime lock stack — real goroutines, wall
// clock — across the wait-strategy × node-pool matrix, together with the
// wait engine's RMR-proxy counters. cmd/rmebench's -json mode serializes
// the results to BENCH_<scenario>.json files so successive changes leave a
// comparable performance trajectory in the repository.
//
// Three lock shapes are measured: the flat k-ported Mutex (uncontended,
// contended8, oversubscribed); the n-process arbitration TreeMutex
// (tree, tree_oversubscribed — both recorded in BENCH_tree.json), whose
// per-level wake counters expose the paper's O(log n / log log n) hand-off
// structure; and the keyed LockTable (keyed_uniform and keyed_zipf in
// BENCH_keyed.json, crash-free so the zero-allocation gate applies, plus
// keyed_crash in its own file with a deterministic crash mix whose
// recovery allocations are schedule-dependent and therefore kept out of
// the allocs/op regression gate).
//
// The keyed table's asynchronous pipeline has its own file group,
// BENCH_keyed_async.json, holding three scenarios that are meant to be
// read together: keyed_async (the completion-based LockAsync passage
// under zipf traffic), keyed_hot8 (eight workers locking a single
// stripe's keys one by one — the per-key cost batching exists to beat),
// and keyed_batch (the same hot-stripe traffic in DoBatch groups of 8;
// ns/op is per key in both, so batch amortization reads directly as the
// keyed_batch : keyed_hot8 ratio, ≥2x on the committed baselines). All
// three are crash-free and inside the zero-allocation gate.
//
// The shard-backend comparison is a three-way showdown across two file
// groups: keyed_hiport and keyed_tree (BENCH_keyed_tree.json) run one
// identical high-port-count workload on flat and tree shards
// respectively, and keyed_mcs (BENCH_keyed_mcs.json) runs the very same
// workload on the recoverable MCS queue-lock shards, so the cost of the
// tree's sub-logarithmic structure and the MCS lock's O(1) local-spin
// hand-off at big k are committed, gate-pinned numbers rather than
// claims. All three cells are crash-free and inside the zero-allocation
// gate.
//
// The self-managing table has its own cell, keyed_adaptive
// (BENCH_keyed_adaptive.json): a skewed workload on an arena that starts
// with the wrong (flat) shape for its port count, under an aggressive
// WithSupervisor policy. The supervisor migrates the hot stripes during
// an extended warm-up and the measured pass prices the supervised steady
// state — adaptive pools, migration judgments, and sweep ticks all live.
// Crash-free and inside the zero-allocation gate, so a supervisor whose
// steady-state tick allocates (or whose policy flaps, reconstructing
// backends mid-measurement) fails CI.
//
// The system-wide crash tier (BENCH_syscrash.json) prices the whole-table
// failure model: keyed_syscrash and keyed_syscrash_1m each measure full
// crash/checkpoint/restore rounds at 1e5- and 1e6-key scale, with ns/op
// defined as time-to-first-grant after the crash so the CI ns gate pins
// recovery latency. The cells carry the per-sample AllocExempt flag — a
// restore round reconstructs whole arenas, so allocs/op measures
// construction, not leaks — which keeps the file inside the -compare gate
// for latency while staying out of the zero-allocation claim.
//
// Unlike the E1–E11 experiment harness (internal/experiments), these
// numbers are hardware- and scheduler-dependent; the JSON therefore
// records GOMAXPROCS alongside every sample.
//
// Measurement is a fixed passage count per scenario rather than
// testing.Benchmark's adaptive calibration: a contended lock's cost per
// op is sharply nonlinear in N (small-N rounds run effectively
// uncontended), which makes the calibrator extrapolate absurd iteration
// targets under oversubscription.
package rtbench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/wait"
	"github.com/rmelib/rme/internal/xrand"
)

// Scenario is one workload shape.
type Scenario struct {
	Name string
	// File is the basename for BENCH_<File>.json; empty means Name.
	// Scenarios may share a file (the tree pair does).
	File string
	// Tree drives an n-process TreeMutex instead of the flat Mutex; Ports
	// is then the process count.
	Tree bool
	// Keyed drives a LockTable instead of a single lock; Ports is then the
	// worker-goroutine count, and Keys/Shards/ShardPorts shape the
	// workload and arena.
	Keyed bool
	// Backend selects the keyed table's shard lock shape (flat Mutex,
	// arbitration TreeMutex, recoverable MCS queue lock, or the
	// port-count Auto default). Keyed scenarios only; the zero value is
	// rme.AutoBackend, which keeps the long-standing scenarios on flat
	// shards at their small port counts.
	Backend rme.ShardBackend
	// Zipf draws keys zipf-distributed (hot-key contention) instead of
	// uniformly. Keyed scenarios only.
	Zipf bool
	// Async drives the table's completion-based pipeline (LockAsync →
	// receive → Grant.Unlock) instead of the blocking Lock. Keyed
	// scenarios only.
	Async bool
	// HotStripe restricts the key population to a single stripe — the
	// deliberately-degenerate hot-key shape the batch API amortizes.
	// Keyed scenarios only.
	HotStripe bool
	// Batch, when > 1, groups each worker's passages into DoBatch calls
	// of this many keys; Iters still counts keys, so ns/op stays per key
	// and reads directly against the same scenario with Batch == 0.
	// HotStripe scenarios only.
	Batch int
	// Keys is the keyspace size for keyed scenarios.
	Keys uint64
	// Shards and ShardPorts are the keyed table's arena dimensions.
	Shards, ShardPorts int
	// CrashEvery, when non-zero, injects a crash about once per that many
	// protocol steps during the measured pass (deterministic, counter
	// based); the workers recover with the reclaim-and-retry supervisor
	// pattern. Keyed scenarios only.
	CrashEvery uint64
	// Supervised attaches a WithSupervisor self-management loop with
	// deliberately aggressive thresholds (sub-millisecond ticks, adaptive
	// pools, migration at low wake levels), so the adaptive machinery
	// actually fires inside a benchmark-sized run. The warm-up is extended
	// until the supervisor's shape policy stops migrating, so the measured
	// pass prices the settled steady state — supervisor ticking included —
	// and migration's backend constructions land outside the allocation
	// window. Keyed scenarios only.
	Supervised bool
	// SkipUnpooled drops the pool=false cells: without the node pool,
	// allocs/op is a function of which lock shapes the passages ran on,
	// and for a supervised scenario the shape mix is the policy's
	// schedule-dependent choice — not a stable machine-independent
	// invariant a gate can pin (the same reason keyed_crash's file stays
	// out of the gate entirely). The pool=true cell, where every shape's
	// warm passage is allocation-free, is the committed claim.
	SkipUnpooled bool
	// AbortEvery, when non-zero, drives the table through LockContext and
	// sheds every AbortEvery-th passage with a pre-expired deadline (the
	// deterministic zero-allocation shed path); the rest acquire under a
	// live cancellable context, so the whole cancel plumbing is on the
	// measured path. Keyed scenarios only, crash-free only.
	AbortEvery uint64
	// DispatcherPool, when > 0, pins the shared async executor's worker
	// bound (WithDispatcherPool) instead of the GOMAXPROCS default — the
	// knob the many-stripe async cell uses to demonstrate that dispatcher
	// cost is a property of the pool, not the stripe count. Keyed async
	// scenarios only.
	DispatcherPool int
	// AllocExempt marks every cell of the scenario outside the allocs/op
	// gate (the per-sample Sample.AllocExempt flag, until now set only by
	// the syscrash rounds). The many-stripe cell needs it for the same
	// construction-not-leak reason: a 512×16 arena has 8192 (stripe, port)
	// wait-node slots whose pools fill only from retired passages, so
	// first-touch qnode builds trickle through the whole measured pass as
	// each stripe's per-port high-water mark ratchets up — a decaying
	// one-time cost proportional to arena size, schedule-dependent in
	// exactly the way SkipUnpooled's doc describes, not a per-op leak
	// (the profile shows zero steady-state allocation sites). The gate
	// still pins the cell's ns/op.
	AllocExempt bool
	// SysCrash replaces the passage loop with full-table crash rounds:
	// each measured iteration builds an arena, parks one live tenancy per
	// worker inside its critical section, kills the whole population at
	// once (nobody ever releases — the process-death model), checkpoints,
	// and restores into a fresh table whose orphan sweep runs concurrently
	// with a waiting acquirer. NsPerOp records time-to-first-grant after
	// the crash — restore plus however much recovery the first grant had
	// to wait for — so the ns regression gate pins recovery latency; the
	// full-heal time is recorded alongside. Keyed scenarios only.
	SysCrash bool
	// Ports returns the port count (= worker goroutines), which may
	// depend on GOMAXPROCS.
	Ports func() int
	// Iters is the total measured passage count across all ports.
	Iters int
	// SkipStrategies names strategies that are pathological for this
	// shape and excluded by default (pure spinning while oversubscribed).
	SkipStrategies []string
}

// FileName returns the basename under which the scenario's samples are
// recorded (BENCH_<FileName>.json).
func (sc Scenario) FileName() string {
	if sc.File != "" {
		return sc.File
	}
	return sc.Name
}

// Scenarios returns the benchmark matrix's workload axis.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "uncontended", Ports: func() int { return 1 }, Iters: 500_000},
		{Name: "contended8", Ports: func() int { return 8 }, Iters: 100_000},
		{
			Name:  "oversubscribed",
			Ports: func() int { return 32 * runtime.GOMAXPROCS(0) },
			Iters: 20_000,
			// A pure spinner with more runnable waiters than processors
			// burns whole scheduler quanta per handoff; the scenario
			// exists to show the parking strategy fixing exactly that.
			SkipStrategies: []string{"spin"},
		},
		{
			Name: "tree", File: "tree", Tree: true,
			Ports: func() int { return 16 },
			Iters: 50_000,
		},
		{
			Name: "tree_oversubscribed", File: "tree", Tree: true,
			Ports:          func() int { return 8 * runtime.GOMAXPROCS(0) },
			Iters:          10_000,
			SkipStrategies: []string{"spin"},
		},
		{
			Name: "keyed_uniform", File: "keyed", Keyed: true,
			Ports:  func() int { return 16 },
			Iters:  100_000,
			Keys:   1 << 20,
			Shards: 32, ShardPorts: 4,
		},
		{
			Name: "keyed_zipf", File: "keyed", Keyed: true, Zipf: true,
			Ports:  func() int { return 16 },
			Iters:  100_000,
			Keys:   1 << 20,
			Shards: 32, ShardPorts: 4,
		},
		{
			// The crash mix lives in its own file group: recovery work
			// allocates amounts that depend on the schedule, so these
			// cells are recorded for trend-watching but excluded from the
			// CI allocs/op gate (which BENCH_keyed.json's crash-free
			// cells do enforce).
			Name: "keyed_crash", File: "keyed_crash", Keyed: true, Zipf: true,
			Ports:  func() int { return 16 },
			Iters:  30_000,
			Keys:   1 << 20,
			Shards: 32, ShardPorts: 4,
			CrashEvery: 4096,
		},
		{
			// The abort tier under zipf traffic, one cell per shard
			// backend (BENCH_keyed_abort.json): every passage goes through
			// LockContext — live cancellable context on the grant path, a
			// pre-expired deadline on every 100th (a 1% shed rate) — so
			// the deadline-aware entry point's cost sits directly against
			// keyed_zipf's plain Lock numbers. Both the crash-free grant
			// passages and the deterministic pre-expired sheds allocate
			// nothing, so unlike keyed_crash this file group IS inside the
			// allocs/op gate: a cancel path that starts allocating fails
			// CI, which is the point of committing it.
			Name: "keyed_abort", File: "keyed_abort", Keyed: true, Zipf: true,
			Ports:  func() int { return 16 },
			Iters:  30_000,
			Keys:   1 << 20,
			Shards: 32, ShardPorts: 4,
			AbortEvery: 100,
			Backend:    rme.FlatBackend,
		},
		{
			Name: "keyed_abort_tree", File: "keyed_abort", Keyed: true, Zipf: true,
			Ports:  func() int { return 16 },
			Iters:  30_000,
			Keys:   1 << 20,
			Shards: 32, ShardPorts: 4,
			AbortEvery: 100,
			Backend:    rme.TreeBackend,
		},
		{
			Name: "keyed_abort_mcs", File: "keyed_abort", Keyed: true, Zipf: true,
			Ports:  func() int { return 16 },
			Iters:  30_000,
			Keys:   1 << 20,
			Shards: 32, ShardPorts: 4,
			AbortEvery: 100,
			Backend:    rme.MCSBackend,
		},
		{
			// The async pipeline under the same zipf traffic as
			// keyed_zipf: each passage is LockAsync → receive → Unlock,
			// so the cell prices the dispatcher hop and completion
			// delivery against the blocking path's numbers.
			Name: "keyed_async", File: "keyed_async", Keyed: true, Async: true, Zipf: true,
			Ports:  func() int { return 16 },
			Iters:  60_000,
			Keys:   1 << 20,
			Shards: 32, ShardPorts: 4,
		},
		{
			// The shared-executor scaling cell (BENCH_keyed_pooled.json):
			// the keyed_async pipeline stretched over a 512-stripe × 16-port
			// arena with the dispatcher pool pinned to 8 workers. Under the
			// old one-goroutine-per-stripe dispatcher this shape cost 512
			// parked goroutines before the first request moved; the cell's
			// Goroutines sample records the pooled footprint (workers + 8
			// dispatchers + housekeeping). Alloc-exempt — see the
			// Scenario.AllocExempt doc: the arena's 8192 wait-node slots
			// fill lazily, so first-touch builds trickle through the run —
			// but the executor itself contributes nothing to that figure:
			// scheduling a stripe onto the run queue allocates zero, which
			// the keyed_async gate pins at 0.000 on every backend and the
			// allocation profile of this very shape confirms (every
			// steady-state site is construction). Zipf keeps a hot
			// minority of stripes runnable at once, so the run queue and the
			// runnext locality slot both see traffic rather than degenerating
			// into one stripe bouncing through one worker.
			Name: "keyed_manyshards", File: "keyed_pooled", Keyed: true, Async: true, Zipf: true,
			Ports:  func() int { return 32 },
			Iters:  40_000,
			Keys:   1 << 20,
			Shards: 512, ShardPorts: 16,
			DispatcherPool: 8,
			AllocExempt:    true,
		},
		{
			// The backend-comparison pair (BENCH_keyed_tree.json):
			// keyed_hiport and keyed_tree run the identical high-port
			// workload — the arena shape the multi-backend option exists
			// for — differing only in the shard lock shape, so tree-vs-
			// flat at big k reads directly off the file. 64 workers
			// saturate 2 stripes of 64 ports each (the tree builds
			// arity-3 nodes 4 levels deep for k=64); at that depth the
			// stripes are always queued, which is the regime that
			// justifies a 64-port arena in the first place.
			//
			// Yield cells only. The pair isolates the shard shape's
			// handoff structure (the tree's per-level wakes show up in
			// wakes_per_op, ~4x flat's single handoff); under spinpark
			// each of those extra wakes becomes a park/unpark scheduler
			// round trip, a cost of parking-under-oversubscription that
			// BENCH_tree.json's tree_oversubscribed cells already record
			// against the same flat baseline, and its 3-5x swing would
			// drown the per-cell regression signal this gate-pinned pair
			// exists for. Spin is auto-skipped past GOMAXPROCS anyway.
			Name: "keyed_hiport", File: "keyed_tree", Keyed: true,
			Ports:  func() int { return 64 },
			Iters:  40_000,
			Keys:   1 << 16,
			Shards: 2, ShardPorts: 64,
			Backend:        rme.FlatBackend,
			SkipStrategies: []string{"spinpark"},
		},
		{
			Name: "keyed_tree", File: "keyed_tree", Keyed: true,
			Ports:  func() int { return 64 },
			Iters:  40_000,
			Keys:   1 << 16,
			Shards: 2, ShardPorts: 64,
			Backend:        rme.TreeBackend,
			SkipStrategies: []string{"spinpark"},
		},
		{
			// Third leg of the backend showdown: the identical workload as
			// keyed_hiport / keyed_tree on recoverable MCS queue-lock
			// shards. Its own file group so the MCS baseline can be
			// (re)generated and gate-pinned independently of the flat/tree
			// pair; read the three files together. The MCS lock's single
			// CAS-tail handoff keeps wakes/op at ~flat's single-handoff
			// level while the queue removes the flat lock's wake-everyone
			// broadcast, which is the regime this backend exists for.
			Name: "keyed_mcs", File: "keyed_mcs", Keyed: true,
			Ports:  func() int { return 64 },
			Iters:  40_000,
			Keys:   1 << 16,
			Shards: 2, ShardPorts: 64,
			Backend:        rme.MCSBackend,
			SkipStrategies: []string{"spinpark"},
		},
		{
			// The self-managing table cell (BENCH_keyed_adaptive.json): a
			// deliberately skewed zipf workload on a 4-stripe × 48-port
			// arena that starts on flat shards — the wrong shape for a
			// 48-port hot stripe — under a supervisor aggressive enough to
			// notice and migrate within the warm-up. The measured pass then
			// prices the supervised steady state: traffic on the migrated
			// shapes with the supervisor still ticking (sweeps, pool
			// resizes, migration judgments) in the background, which is the
			// configuration the self-management feature ships in. Crash-free
			// and inside the zero-allocation gate: a supervisor tick that
			// starts allocating, or a policy that keeps migrating at steady
			// state (each swap constructs a backend), fails the gate.
			// MigrationsPerOp in the sample records the lifetime migration
			// count — proof the adaptive path ran, not just priced.
			Name: "keyed_adaptive", File: "keyed_adaptive", Keyed: true, Zipf: true, Supervised: true,
			Ports:  func() int { return 16 },
			Iters:  40_000,
			Keys:   4096,
			Shards: 4, ShardPorts: 48,
			Backend:      rme.FlatBackend,
			SkipUnpooled: true,
			// Yield cells only: spin-then-park's parked handoffs run this
			// workload an order of magnitude slower, which starves the
			// migration policy's per-tick minimum-sample gate — the cell
			// would record a supervised table whose policy never has enough
			// evidence to act, which is not the claim this file pins.
			SkipStrategies: []string{"spinpark"},
		},
		{
			// The system-wide crash tier (BENCH_syscrash.json): every
			// iteration is one full crash/recover round at a 1e5 keyspace —
			// 64 lessees die inside their critical sections across a
			// 128-stripe arena, the wreckage is checkpointed, and a fresh
			// incarnation restores from the bytes while an acquirer waits.
			// ns/op IS time-to-first-grant after the crash, which puts
			// recovery latency under the CI ns gate; full-heal time and
			// checkpoint size ride along in the sample. Restoring
			// reconstructs whole arenas, so allocations are dominated by
			// construction and the cells are flagged alloc-exempt (the
			// keyed_crash precedent, made per-sample).
			Name: "keyed_syscrash", File: "syscrash", Keyed: true, SysCrash: true,
			Ports:  func() int { return 64 },
			Iters:  8,
			Keys:   100_000,
			Shards: 128, ShardPorts: 8,
			Backend:        rme.FlatBackend,
			SkipUnpooled:   true,
			SkipStrategies: []string{"spin", "spinpark"},
		},
		{
			// The same crash/recover round an order of magnitude up: a 1e6
			// keyspace over a 512×16 arena with 128 dead lessees. Read
			// against keyed_syscrash to see how recovery latency scales
			// with arena size — the 2023 successor paper's O(1)-space
			// system-wide recovery claim predicts the per-stripe sweep is
			// what grows, not any per-process state.
			Name: "keyed_syscrash_1m", File: "syscrash", Keyed: true, SysCrash: true,
			Ports:  func() int { return 128 },
			Iters:  4,
			Keys:   1_000_000,
			Shards: 512, ShardPorts: 16,
			Backend:        rme.FlatBackend,
			SkipUnpooled:   true,
			SkipStrategies: []string{"spin", "spinpark"},
		},
		{
			// Hot-stripe baseline for the batch cells: eight workers lock
			// a single stripe's keys one at a time, paying the full
			// per-acquisition overhead per key.
			Name: "keyed_hot8", File: "keyed_async", Keyed: true, HotStripe: true,
			Ports:  func() int { return 8 },
			Iters:  400_000,
			Keys:   hotSpan,
			Shards: 32, ShardPorts: 4,
		},
		{
			// The same hot-stripe traffic, DoBatch-grouped 8 keys at a
			// time: one lease scan, one queue entry, and one handoff wake
			// per 8 keys. Read per-key ns/op against keyed_hot8 — the
			// committed baselines show the ≥2x amortization win the batch
			// API exists for.
			Name: "keyed_batch", File: "keyed_async", Keyed: true, HotStripe: true, Batch: 8,
			Ports:  func() int { return 8 },
			Iters:  400_000,
			Keys:   hotSpan,
			Shards: 32, ShardPorts: 4,
		},
	}
}

// hotSpan is the hot-stripe scenarios' key-population size: large enough
// that a batch is not one key repeated, small enough to stay hot.
// hotGroup is the group size both hot cells share — keyed_hot8 locks each
// group's keys sequentially, keyed_batch locks the group in one DoBatch —
// so their per-key numbers differ only by the acquisition pipeline.
const (
	hotSpan  = 64
	hotGroup = 8
)

// StrategyNames returns the strategy axis, in report order.
func StrategyNames() []string { return []string{"yield", "spin", "spinpark"} }

// ParseBackend maps a command-line backend name (case-insensitive) to
// the option value — the vocabulary cmd/rmebench's -backend flag
// accepts.
func ParseBackend(name string) (rme.ShardBackend, error) {
	switch strings.ToLower(name) {
	case "flat":
		return rme.FlatBackend, nil
	case "tree":
		return rme.TreeBackend, nil
	case "mcs":
		return rme.MCSBackend, nil
	case "auto":
		return rme.AutoBackend, nil
	}
	return rme.AutoBackend, fmt.Errorf("unknown shard backend %q (have: flat, tree, mcs, auto)", name)
}

func strategyByName(name string) rme.WaitStrategy {
	switch name {
	case "yield":
		return rme.YieldWaitStrategy()
	case "spin":
		return rme.SpinWaitStrategy()
	case "spinpark":
		return rme.SpinParkWaitStrategy(32)
	default:
		panic(fmt.Sprintf("rtbench: unknown strategy %q", name))
	}
}

// Sample is one cell of the matrix: a scenario run under one strategy and
// pooling setting.
type Sample struct {
	Scenario    string  `json:"scenario"`
	Strategy    string  `json:"strategy"`
	Pool        bool    `json:"pool"`
	Ports       int     `json:"ports"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// RMR-proxy counters from the wait engine, normalized per passage:
	// each wake is one remote write to another process's spin word and each
	// sleep the matching remote-read miss, which is what the paper's CC
	// cost model counts; spins and parks are local by construction.
	PublishesPerOp  float64 `json:"publishes_per_op"`
	SleepsPerOp     float64 `json:"sleeps_per_op"`
	WakesPerOp      float64 `json:"wakes_per_op"`
	ParksPerOp      float64 `json:"parks_per_op"`
	SpinRoundsPerOp float64 `json:"spin_rounds_per_op"`

	// Tree runs only: tree height and per-level wake deliveries per
	// passage (index 0 = leaf level) — the hand-off cost profile of the
	// arbitration tree.
	Levels          int       `json:"levels,omitempty"`
	LevelWakesPerOp []float64 `json:"level_wakes_per_op,omitempty"`

	// Keyed runs only: the keyspace size and how many crashes the
	// deterministic crash mix injected during the measured pass. Async
	// and Batch make the keyed pipeline cells self-describing: Async
	// marks LockAsync completion passages, Batch > 1 records the DoBatch
	// group size (ns/op stays per key). Backend records the resolved
	// shard lock shape ("flat", "tree", or "mcs").
	Keys    uint64 `json:"keys,omitempty"`
	Crashes uint64 `json:"crashes,omitempty"`
	Async   bool   `json:"async,omitempty"`
	Batch   int    `json:"batch,omitempty"`
	Backend string `json:"backend,omitempty"`
	// Goroutines, async cells only, is runtime.NumGoroutine() sampled
	// right after the measured pass with the table still open: workers +
	// dispatcher pool + runtime housekeeping. The committed
	// many-stripe baseline pins the shared-executor claim — a 512-stripe
	// arena shows a pool-sized figure, not a stripe-sized one. A
	// point-in-time gauge, so the -compare gate treats it as
	// informational rather than a hard ratio.
	Goroutines int `json:"goroutines,omitempty"`
	// ShedsPerOp records cancelled/expired acquisitions per passage
	// (ShardStats.Aborts + Timeouts as a warm-to-measured delta) — the
	// abort cells' self-description, ~1/AbortEvery by construction.
	ShedsPerOp float64 `json:"sheds_per_op,omitempty"`

	// SysCrash runs only. TimeToFirstGrantNs duplicates NsPerOp under its
	// own name (one round = one op, and the op IS the first grant's
	// latency); FullHealNs is the mean time from restore start until the
	// concurrent orphan sweep has healed every dead tenancy and
	// Orphans()==0; CheckpointNs and CheckpointBytes price the snapshot
	// itself. AllocExempt marks the cell as outside the allocs/op
	// regression gate: a restore round rebuilds whole arenas, so its
	// allocation count measures construction, not a leak — rmebench's
	// -compare honors the flag instead of keying off file names.
	TimeToFirstGrantNs float64 `json:"ttfg_ns,omitempty"`
	FullHealNs         float64 `json:"full_heal_ns,omitempty"`
	CheckpointNs       float64 `json:"checkpoint_ns,omitempty"`
	CheckpointBytes    int     `json:"checkpoint_bytes,omitempty"`
	AllocExempt        bool    `json:"alloc_exempt,omitempty"`

	// Supervised runs only: MigrationsPerOp is the supervisor's lifetime
	// stripe-shape migration count normalized by the measured passage
	// count. Lifetime rather than a measured-window delta on purpose: the
	// warm-up deliberately absorbs the migrations (see
	// Scenario.Supervised), so a window delta would read 0.0 in a healthy
	// run and hide whether the adaptive machinery fired at all. A healthy
	// cell shows a small non-zero value; 0.0 means the policy never
	// migrated.
	Supervised      bool    `json:"supervised,omitempty"`
	MigrationsPerOp float64 `json:"migrations_per_op,omitempty"`

	// TableStats is the keyed table's full post-run observability
	// snapshot, captured only when CollectStats is set (rmebench's -stats
	// flag) and stripped from the BENCH baselines — it is a point-in-time
	// diagnostic dump, not a gate-comparable number.
	TableStats *rme.TableStats `json:"table_stats,omitempty"`
}

// CollectStats makes Run attach each keyed cell's post-run
// LockTable.Stats snapshot to its Sample (the TableStats field).
// cmd/rmebench sets it for -stats; it is off by default because the
// snapshot is diagnostic output, not part of the regression baseline.
var CollectStats bool

// locker is the common surface of Mutex and TreeMutex the harness drives.
type locker interface {
	Lock(int)
	Unlock(int)
}

// runPassages drives total Lock/Unlock passages split across the ports.
// Multi-port workers model critical- and non-critical-section work with a
// scheduler yield on each side. The yield inside the CS is what makes the
// cell actually contended regardless of GOMAXPROCS: a ~100ns critical
// section that never crosses a scheduler boundary is always already
// unlocked when the next worker runs on a busy host, and the "contended"
// cell silently measures sequential fast paths (observed on a single-core
// host as contended ns/op equal to uncontended and zero wakes). With the
// lock held across a yield, every runnable rival enqueues behind it and
// the cell measures what it claims to: the strategy's handoff machinery.
func runPassages(m locker, ports, total int) {
	forEachWorker(ports, total, func(port, n int) {
		for i := 0; i < n; i++ {
			m.Lock(port)
			if ports > 1 {
				runtime.Gosched() // critical-section work
			}
			m.Unlock(port)
			if ports > 1 {
				runtime.Gosched() // non-critical-section work
			}
		}
	})
}

// RunKeyedPassages drives total keyed Lock/Unlock passages split across
// workers goroutines on tbl, each worker drawing keys from its own
// deterministic stream (zipf-skewed or uniform over keys). With crashing
// true the workers go through LockTable.Do — the reclaim-and-retry
// supervisor — so injected deaths are recovered inline. Exported so
// BenchmarkE16KeyedTable measures the exact workload the BENCH_keyed.json
// gate records.
func RunKeyedPassages(tbl *rme.LockTable, workers, total int, zipfian bool, keys uint64, crashing bool) {
	forEachWorker(workers, total, func(w, n int) {
		nextKey := keyStream(w, zipfian, keys)
		for i := 0; i < n; i++ {
			k := nextKey()
			if crashing {
				tbl.Do(k, runtime.Gosched) // critical-section work inside
			} else {
				tbl.Lock(k)
				runtime.Gosched() // critical-section work
				tbl.Unlock(k)
			}
			runtime.Gosched() // non-critical-section work
		}
	})
}

// keyStream builds worker w's deterministic key stream: zipf-skewed or
// uniform over keys, seeded per worker so runs are reproducible.
func keyStream(w int, zipfian bool, keys uint64) func() uint64 {
	if zipfian {
		z := rand.NewZipf(rand.New(rand.NewSource(int64(w)+1)), 1.2, 1, keys-1)
		return z.Uint64
	}
	r := xrand.New(uint64(w)*0x9e3779b97f4a7c15 + 1)
	return func() uint64 { return r.Uint64() % keys }
}

// RunAbortKeyedPassages drives total passages through the deadline-aware
// entry point: every abortEvery-th passage presents a pre-expired deadline
// and is shed at the door (the deterministic zero-allocation abort path),
// every other passage acquires under a live cancellable context — the full
// cancel plumbing (cancellable lease wait, cancellable queue wait) on the
// grant path — and releases normally. Key streams match RunKeyedPassages,
// so the cells read directly against the blocking ones.
func RunAbortKeyedPassages(tbl *rme.LockTable, workers, total int, zipfian bool, keys, abortEvery uint64) {
	expired, cancelExpired := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancelExpired()
	forEachWorker(workers, total, func(w, n int) {
		live, cancelLive := context.WithCancel(context.Background())
		defer cancelLive()
		nextKey := keyStream(w, zipfian, keys)
		for i := 0; i < n; i++ {
			k := nextKey()
			if abortEvery > 0 && uint64(i)%abortEvery == abortEvery-1 {
				if tbl.LockContext(expired, k) == nil {
					panic("rtbench: pre-expired context was granted")
				}
				continue
			}
			if err := tbl.LockContext(live, k); err != nil {
				panic(fmt.Sprintf("rtbench: live context shed: %v", err))
			}
			runtime.Gosched() // critical-section work
			tbl.Unlock(k)
			runtime.Gosched() // non-critical-section work
		}
	})
}

// RunAsyncKeyedPassages drives total completion-based passages split
// across workers goroutines: each passage submits with LockAsync,
// receives its Grant, does the critical-section work, and releases
// through the grant. Key streams match RunKeyedPassages, so the async
// cells read directly against the blocking ones.
func RunAsyncKeyedPassages(tbl *rme.LockTable, workers, total int, zipfian bool, keys uint64) {
	forEachWorker(workers, total, func(w, n int) {
		nextKey := keyStream(w, zipfian, keys)
		for i := 0; i < n; i++ {
			g := <-tbl.LockAsync(nextKey())
			runtime.Gosched() // critical-section work
			g.Unlock()
			runtime.Gosched() // non-critical-section work
		}
	})
}

// hotStripeKeys returns span distinct keys that all map to tbl's stripe
// 0 — the single-stripe population of the hot-key scenarios.
func hotStripeKeys(tbl *rme.LockTable, span int) []uint64 {
	out := make([]uint64, 0, span)
	for k := uint64(1); len(out) < span; k++ {
		if tbl.ShardIndex(k) == 0 {
			out = append(out, k)
		}
	}
	return out
}

// RunHotKeyedPassages drives total single-stripe passages split across
// workers goroutines, in groups of group keys. With batch false each
// group's keys are locked and released one by one — the "b sequential
// Lock calls" shape whose per-key overhead batching exists to beat; with
// batch true each group is one DoBatch. Everything else is identical:
// empty critical sections (the cells price acquisition overhead, not CS
// work) and one scheduler yield per group, so per-key ns/op between the
// two shapes reads directly as the batch amortization factor.
func RunHotKeyedPassages(tbl *rme.LockTable, workers, total, group int, batch bool, span uint64) {
	keys := hotStripeKeys(tbl, int(span))
	forEachWorker(workers, total, func(w, n int) {
		r := xrand.New(uint64(w)*0x9e3779b97f4a7c15 + 1)
		buf := make([]uint64, group)
		for i := 0; i < n; i += group {
			m := group
			if rem := n - i; rem < m {
				m = rem
			}
			for j := 0; j < m; j++ {
				buf[j] = keys[r.Uint64()%span]
			}
			if batch {
				tbl.DoBatch(buf[:m], nopPerKey)
			} else {
				for _, k := range buf[:m] {
					tbl.Lock(k)
					tbl.Unlock(k)
				}
			}
			runtime.Gosched() // inter-group work
		}
	})
}

// nopPerKey is the batch runner's empty per-key critical section.
func nopPerKey(uint64) {}

// runKeyed dispatches a keyed workload to the runner its scenario shape
// selects; warm-up and measured passes go through the same path.
func runKeyed(tbl *rme.LockTable, sc Scenario, total int, crashing bool) {
	switch {
	case sc.AbortEvery > 0:
		if crashing {
			// The abort runner has no crash-absorbing supervisor either;
			// refuse the combination like the async and hot runners do.
			panic(fmt.Sprintf("rtbench: scenario %s combines AbortEvery with CrashEvery", sc.Name))
		}
		RunAbortKeyedPassages(tbl, sc.Ports(), total, sc.Zipf, sc.Keys, sc.AbortEvery)
	case sc.Async:
		if crashing {
			// The async/hot runners carry no crash-absorbing supervisor;
			// an injected Crash would escape a worker goroutine and abort
			// the process. Refuse the combination instead of aborting
			// confusingly at the first injection.
			panic(fmt.Sprintf("rtbench: scenario %s combines Async with CrashEvery", sc.Name))
		}
		RunAsyncKeyedPassages(tbl, sc.Ports(), total, sc.Zipf, sc.Keys)
	case sc.HotStripe:
		if crashing {
			panic(fmt.Sprintf("rtbench: scenario %s combines HotStripe with CrashEvery", sc.Name))
		}
		group := sc.Batch
		if group <= 1 {
			group = hotGroup
		}
		RunHotKeyedPassages(tbl, sc.Ports(), total, group, sc.Batch > 1, sc.Keys)
	default:
		RunKeyedPassages(tbl, sc.Ports(), total, sc.Zipf, sc.Keys, crashing)
	}
}

// syscrashStripeKeys returns one key per distinct stripe, n of them, drawn
// from the scenario's keyspace — the dead lessees' keys, spread so every
// death lands on its own stripe and recovery parallelism is the arena's.
func syscrashStripeKeys(tbl *rme.LockTable, n int, keys uint64) []uint64 {
	out := make([]uint64, 0, n)
	seen := make(map[int]bool, n)
	for k := uint64(1); len(out) < n && k < keys; k++ {
		if si := tbl.ShardIndex(k); !seen[si] {
			seen[si] = true
			out = append(out, k)
		}
	}
	if len(out) < n {
		panic(fmt.Sprintf("rtbench: keyspace %d spans fewer than %d stripes", keys, n))
	}
	return out
}

// runSysCrashRound is one full system-wide crash and recovery: build the
// arena, park one tenancy per worker inside its critical section, crash
// the whole population (no release ever comes — the goroutines end holding,
// which is exactly what a process death leaves), checkpoint, and restore
// into a fresh incarnation whose orphan sweep runs concurrently with one
// waiting acquirer. Returns the round's latencies and checkpoint size.
func runSysCrashRound(sc Scenario, strategy string, pool bool) (ttfg, heal, ckpt time.Duration, bytes int) {
	opts := []rme.Option{
		rme.WithWaitStrategy(strategyByName(strategy)), rme.WithNodePool(pool),
		rme.WithTableSeed(0x5eed), rme.WithShardBackend(sc.Backend),
	}
	tbl := rme.NewLockTable(sc.Shards, sc.ShardPorts, opts...)
	keys := syscrashStripeKeys(tbl, sc.Ports(), sc.Keys)
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			tbl.Lock(k) // and die holding: the system-wide crash
		}(k)
	}
	wg.Wait()

	t0 := time.Now()
	image, err := tbl.Checkpoint()
	if err != nil {
		panic(fmt.Sprintf("rtbench: checkpoint: %v", err))
	}
	ckpt = time.Since(t0)
	bytes = len(image)
	tbl.Close()

	// The restored incarnation: every dead tenancy surfaces as an orphan,
	// the sweep runs concurrently, and the prober's acquisition queues
	// behind an adopted dead holder until recovery releases it — the
	// post-crash availability story, timed.
	t1 := time.Now()
	nt, err := rme.RestoreTable(image, rme.WithWaitStrategy(strategyByName(strategy)), rme.WithNodePool(pool))
	if err != nil {
		panic(fmt.Sprintf("rtbench: restore: %v", err))
	}
	healed := make(chan struct{})
	go func() {
		nt.Reclaim()
		close(healed)
	}()
	nt.Lock(keys[0])
	ttfg = time.Since(t1)
	nt.Unlock(keys[0])
	<-healed
	heal = time.Since(t1)
	if n := nt.Orphans(); n != 0 {
		panic(fmt.Sprintf("rtbench: %d orphans survived the post-crash sweep", n))
	}
	nt.Close()
	return ttfg, heal, ckpt, bytes
}

// runSysCrashCell measures one syscrash matrix cell: a warm round outside
// the window, then Iters crash/recover rounds. NsPerOp is the mean
// time-to-first-grant, so the regular ns regression gate pins recovery
// latency; allocations per round are construction-dominated and the cell
// is marked AllocExempt.
func runSysCrashCell(sc Scenario, strategy string, pool bool) Sample {
	runSysCrashRound(sc, strategy, pool) // warm: code paths, park channels

	var ttfg, heal, ckpt time.Duration
	var bytes int
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < sc.Iters; i++ {
		dt, dh, dc, b := runSysCrashRound(sc, strategy, pool)
		ttfg += dt
		heal += dh
		ckpt += dc
		bytes = b
	}
	runtime.ReadMemStats(&ms1)

	total := float64(sc.Iters)
	meanTTFG := float64(ttfg.Nanoseconds()) / total
	return Sample{
		Scenario:    sc.Name,
		Strategy:    strategy,
		Pool:        pool,
		Ports:       sc.Ports(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iters:       sc.Iters,
		NsPerOp:     meanTTFG,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / total,
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / total,
		Keys:        sc.Keys,
		Backend:     sc.Backend.String(),

		TimeToFirstGrantNs: meanTTFG,
		FullHealNs:         float64(heal.Nanoseconds()) / total,
		CheckpointNs:       float64(ckpt.Nanoseconds()) / total,
		CheckpointBytes:    bytes,
		AllocExempt:        true,
	}
}

// forEachWorker splits total passages over workers goroutines (the
// remainder spread one-per-worker), runs body(w, n) on each with its
// share, and waits — the fan-out scaffolding every keyed runner shares.
func forEachWorker(workers, total int, body func(w, n int)) {
	var wg sync.WaitGroup
	per := total / workers
	extra := total % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			body(w, n)
		}(w, n)
	}
	wg.Wait()
}

// Run measures one matrix cell: a warm-up pass (which also fills the node
// pools and creates the reusable park channels), then Iters measured
// passages. Allocation numbers come from the runtime's global malloc
// counters, so they include the per-run worker spawns — amortized over the
// passage count, that bias is < 0.01/op at the configured scales.
//
// Flat scenarios wrap the strategy with one global wait.Instrumented;
// tree scenarios instead instrument per level (WithTreeInstrumentation)
// and report the global counters as the sum over levels, so a wake is
// never double-counted. Keyed scenarios read the table's own per-stripe
// collectors (LockTable.Stats) as warm-to-measured deltas: the table
// instruments every shard's strategy itself with the outermost wrap, so
// a caller-side wrap would never see the table's waits. Keyed warm-ups
// always run crash-free (they exist to fill the pools); the crash mix,
// if any, is confined to the measured pass.
func Run(sc Scenario, strategy string, pool bool) Sample {
	if sc.SysCrash {
		return runSysCrashCell(sc, strategy, pool)
	}
	ports := sc.Ports()
	stats := &wait.Stats{}
	var lk locker
	var tm *rme.TreeMutex
	var tbl *rme.LockTable
	switch {
	case sc.Tree:
		tm = rme.NewTree(ports,
			rme.WithWaitStrategy(strategyByName(strategy)),
			rme.WithNodePool(pool),
			rme.WithTreeInstrumentation(true))
		lk = tm
	case sc.Keyed:
		opts := []rme.Option{
			rme.WithWaitStrategy(strategyByName(strategy)), rme.WithNodePool(pool),
			rme.WithTableSeed(0x5eed), rme.WithShardBackend(sc.Backend),
		}
		if sc.DispatcherPool > 0 {
			opts = append(opts, rme.WithDispatcherPool(sc.DispatcherPool))
		}
		if sc.Async {
			// Pre-build every shard's request free list up to the worker
			// count — the per-shard concurrency ceiling, since each worker
			// holds one request in flight. Without this a many-stripe cell
			// trickles first-touch node builds through the whole measured
			// pass (each stripe's free list ratchets up to its historical
			// concurrency high-water mark), which is construction cost, not
			// the steady-state pipeline the async cells price.
			opts = append(opts, rme.WithAsyncPrewarm(ports))
		}
		if sc.Supervised {
			// Aggressive on purpose: benchmark cells live milliseconds, so
			// the policy must observe, decide, and migrate within the
			// warm-up. HotWakesPerOp sits far below a contended stripe's
			// wakes-per-acquire (~1 under yield handoff) and far above an
			// idle one's, so the judgment is stable once shapes settle.
			opts = append(opts, rme.WithSupervisor(rme.SupervisorConfig{
				Interval:        200 * time.Microsecond,
				MaxHealsPerTick: 4,
				AdaptivePorts:   true,
				MinPorts:        4,
				Migrate:         true,
				HotWakesPerOp:   0.05,
				ColdWakesPerOp:  0.005,
				HysteresisTicks: 2,
				QuiesceTimeout:  100 * time.Millisecond,
			}))
		}
		tbl = rme.NewLockTable(sc.Shards, sc.ShardPorts, opts...)
	default:
		st := wait.Instrumented(strategyByName(strategy), stats)
		lk = rme.New(ports, rme.WithWaitStrategy(st), rme.WithNodePool(pool))
	}

	warm := sc.Iters / 10
	if warm < 8*ports {
		warm = 8 * ports
	}
	if tbl != nil {
		runKeyed(tbl, sc, warm, false)
	} else {
		runPassages(lk, ports, warm)
	}
	if tbl != nil && sc.Supervised {
		// Let the supervisor's shape policy settle before measuring: keep
		// running warm-sized chunks until one passes with no migration (or
		// the bound runs out), so each swap's backend construction is
		// allocated outside the measured window and the measured pass
		// prices the settled shapes. Hysteresis makes this converge fast —
		// a stationary workload stops migrating after the first flips.
		prev := tbl.Stats().Supervisor.Migrations()
		for i := 0; i < 8; i++ {
			runKeyed(tbl, sc, warm, false)
			cur := tbl.Stats().Supervisor.Migrations()
			if cur == prev {
				break
			}
			prev = cur
		}
	}
	stats.Reset()
	if tm != nil {
		for _, ls := range tm.LevelStats() {
			ls.Reset()
		}
	}
	var keyedBase rme.ShardStats
	if tbl != nil {
		keyedBase = tbl.Stats().Total() // subtract the warm-up's events
	}
	var crashCount atomic.Uint64
	if tbl != nil && sc.CrashEvery > 0 {
		var calls atomic.Uint64
		every := sc.CrashEvery
		tbl.SetCrashFunc(func(port int, point string) bool {
			if xrand.Mix64(calls.Add(1))%every == 0 {
				crashCount.Add(1)
				return true
			}
			return false
		})
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	if tbl != nil {
		runKeyed(tbl, sc, sc.Iters, sc.CrashEvery > 0)
	} else {
		runPassages(lk, ports, sc.Iters)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if tbl != nil && sc.CrashEvery > 0 {
		tbl.SetCrashFunc(nil)
		tbl.Reclaim() // leave no orphan behind for the next cell
	}

	total := float64(sc.Iters)
	s := Sample{
		Scenario:    sc.Name,
		Strategy:    strategy,
		Pool:        pool,
		Ports:       ports,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iters:       sc.Iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / total,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / total,
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / total,
	}
	if tbl != nil {
		s.Keys = sc.Keys
		s.Crashes = crashCount.Load()
		s.Async = sc.Async
		s.Batch = sc.Batch
		s.Backend = tbl.Backend().String()
		if sc.Async {
			// Sampled before Close so the dispatcher pool is still alive:
			// the figure a 512-stripe arena commits is pool-sized, which is
			// the shared-runtime claim in one number.
			s.Goroutines = runtime.NumGoroutine()
		}
		s.AllocExempt = sc.AllocExempt
		full := tbl.Stats()
		if sc.Supervised {
			s.Supervised = true
			s.MigrationsPerOp = float64(full.Supervisor.Migrations()) / total
		}
		if CollectStats {
			s.TableStats = &full
		}
		d := full.Total()
		s.ShedsPerOp = float64((d.Aborts+d.Timeouts)-(keyedBase.Aborts+keyedBase.Timeouts)) / total
		stats.Publishes.Store(d.Publishes - keyedBase.Publishes)
		stats.Sleeps.Store(d.Sleeps - keyedBase.Sleeps)
		stats.Wakes.Store(d.Wakes - keyedBase.Wakes)
		stats.Parks.Store(d.Parks - keyedBase.Parks)
		stats.SpinRounds.Store(d.SpinRounds - keyedBase.SpinRounds)
		tbl.Close() // stop the cell's dispatchers before the next cell runs
	}
	if tm != nil {
		s.Levels = tm.Levels()
		for _, ls := range tm.LevelStats() {
			s.LevelWakesPerOp = append(s.LevelWakesPerOp, float64(ls.Wakes.Load())/total)
			stats.Publishes.Add(ls.Publishes.Load())
			stats.Sleeps.Add(ls.Sleeps.Load())
			stats.Wakes.Add(ls.Wakes.Load())
			stats.Parks.Add(ls.Parks.Load())
			stats.SpinRounds.Add(ls.SpinRounds.Load())
		}
	}
	s.PublishesPerOp = float64(stats.Publishes.Load()) / total
	s.SleepsPerOp = float64(stats.Sleeps.Load()) / total
	s.WakesPerOp = float64(stats.Wakes.Load()) / total
	s.ParksPerOp = float64(stats.Parks.Load()) / total
	s.SpinRoundsPerOp = float64(stats.SpinRounds.Load()) / total
	return s
}

// RunScenario measures every (strategy, pool) cell of one scenario,
// skipping the strategies the scenario marks pathological.
func RunScenario(sc Scenario) []Sample {
	var out []Sample
	for _, name := range StrategyNames() {
		skip := false
		for _, s := range sc.SkipStrategies {
			if s == name {
				skip = true
			}
		}
		// Pure spinning is only meaningful when every waiter can own a
		// core; past that ratio each handoff burns whole spin budgets of
		// the one goroutine that could progress (observed: minutes per
		// benchmark cell on a single-core host).
		if name == "spin" && sc.Ports() > runtime.GOMAXPROCS(0) {
			skip = true
		}
		if skip {
			continue
		}
		pools := []bool{false, true}
		if sc.SkipUnpooled {
			pools = []bool{true}
		}
		for _, pool := range pools {
			out = append(out, Run(sc, name, pool))
		}
	}
	return out
}
