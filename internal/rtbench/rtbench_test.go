package rtbench

import "testing"

// TestRunCell smokes one matrix cell and pins the headline pooling claim:
// warm uncontended passages with the node pool allocate nothing (the
// harness's own worker spawn amortizes below 0.01/op).
func TestRunCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full measurement pass")
	}
	sc := Scenarios()[0] // uncontended
	sc.Iters = 100_000
	s := Run(sc, "yield", true)
	if s.NsPerOp <= 0 {
		t.Fatalf("NsPerOp = %v, want > 0", s.NsPerOp)
	}
	if s.AllocsPerOp >= 0.01 {
		t.Fatalf("uncontended pooled AllocsPerOp = %v, want ~0", s.AllocsPerOp)
	}
	if s.Iters == 0 || s.Ports != 1 {
		t.Fatalf("bad sample shape: %+v", s)
	}
}

// TestRunTreeCell smokes the arbitration-tree cell: the sample must carry
// the tree shape (height, per-level wake profile) and its aggregate wake
// counter must equal the per-level sum.
func TestRunTreeCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full measurement pass")
	}
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "tree" {
			sc = s
		}
	}
	if !sc.Tree {
		t.Fatal("tree scenario missing from Scenarios()")
	}
	sc.Iters = 5_000
	s := Run(sc, "yield", true)
	if s.NsPerOp <= 0 {
		t.Fatalf("NsPerOp = %v, want > 0", s.NsPerOp)
	}
	if s.Levels <= 0 || len(s.LevelWakesPerOp) != s.Levels {
		t.Fatalf("tree sample shape wrong: levels=%d profile=%v", s.Levels, s.LevelWakesPerOp)
	}
	var sum float64
	for _, w := range s.LevelWakesPerOp {
		sum += w
	}
	if diff := sum - s.WakesPerOp; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("level wakes sum %v != aggregate wakes %v", sum, s.WakesPerOp)
	}
	if sc.FileName() != "tree" {
		t.Fatalf("tree scenario file = %q, want tree", sc.FileName())
	}
}
