package rtbench

import "testing"

// TestRunCell smokes one matrix cell and pins the headline pooling claim:
// warm uncontended passages with the node pool allocate nothing (the
// harness's own worker spawn amortizes below 0.01/op).
func TestRunCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full measurement pass")
	}
	sc := Scenarios()[0] // uncontended
	sc.Iters = 100_000
	s := Run(sc, "yield", true)
	if s.NsPerOp <= 0 {
		t.Fatalf("NsPerOp = %v, want > 0", s.NsPerOp)
	}
	if s.AllocsPerOp >= 0.01 {
		t.Fatalf("uncontended pooled AllocsPerOp = %v, want ~0", s.AllocsPerOp)
	}
	if s.Iters == 0 || s.Ports != 1 {
		t.Fatalf("bad sample shape: %+v", s)
	}
}
