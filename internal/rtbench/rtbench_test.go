package rtbench

import (
	"testing"

	rme "github.com/rmelib/rme"
)

// TestRunCell smokes one matrix cell and pins the headline pooling claim:
// warm uncontended passages with the node pool allocate nothing (the
// harness's own worker spawn amortizes below 0.01/op).
func TestRunCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full measurement pass")
	}
	sc := Scenarios()[0] // uncontended
	sc.Iters = 100_000
	s := Run(sc, "yield", true)
	if s.NsPerOp <= 0 {
		t.Fatalf("NsPerOp = %v, want > 0", s.NsPerOp)
	}
	if s.AllocsPerOp >= 0.01 {
		t.Fatalf("uncontended pooled AllocsPerOp = %v, want ~0", s.AllocsPerOp)
	}
	if s.Iters == 0 || s.Ports != 1 {
		t.Fatalf("bad sample shape: %+v", s)
	}
}

// TestRunTreeCell smokes the arbitration-tree cell: the sample must carry
// the tree shape (height, per-level wake profile) and its aggregate wake
// counter must equal the per-level sum.
func TestRunTreeCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full measurement pass")
	}
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "tree" {
			sc = s
		}
	}
	if !sc.Tree {
		t.Fatal("tree scenario missing from Scenarios()")
	}
	sc.Iters = 5_000
	s := Run(sc, "yield", true)
	if s.NsPerOp <= 0 {
		t.Fatalf("NsPerOp = %v, want > 0", s.NsPerOp)
	}
	if s.Levels <= 0 || len(s.LevelWakesPerOp) != s.Levels {
		t.Fatalf("tree sample shape wrong: levels=%d profile=%v", s.Levels, s.LevelWakesPerOp)
	}
	var sum float64
	for _, w := range s.LevelWakesPerOp {
		sum += w
	}
	if diff := sum - s.WakesPerOp; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("level wakes sum %v != aggregate wakes %v", sum, s.WakesPerOp)
	}
	if sc.FileName() != "tree" {
		t.Fatalf("tree scenario file = %q, want tree", sc.FileName())
	}
}

// TestRunKeyedCell smokes the keyed cells: the crash-free zipf cell must
// uphold the zero-allocation claim with pooling on, and the crash-mix cell
// must actually inject (and fully recover from) crashes.
func TestRunKeyedCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full measurement pass")
	}
	var zipf, crash Scenario
	for _, s := range Scenarios() {
		switch s.Name {
		case "keyed_zipf":
			zipf = s
		case "keyed_crash":
			crash = s
		}
	}
	if !zipf.Keyed || !crash.Keyed {
		t.Fatal("keyed scenarios missing from Scenarios()")
	}
	zipf.Iters = 20_000
	s := Run(zipf, "yield", true)
	if s.NsPerOp <= 0 || s.Keys != zipf.Keys || s.Crashes != 0 {
		t.Fatalf("bad keyed sample shape: %+v", s)
	}
	if s.AllocsPerOp >= 0.01 {
		t.Fatalf("crash-free keyed pooled AllocsPerOp = %v, want ~0", s.AllocsPerOp)
	}
	if zipf.FileName() != "keyed" || crash.FileName() != "keyed_crash" {
		t.Fatalf("keyed file groups wrong: %q, %q", zipf.FileName(), crash.FileName())
	}
	crash.Iters = 20_000
	s = Run(crash, "yield", true)
	if s.Crashes == 0 {
		t.Fatal("crash-mix cell injected no crashes")
	}
}

// TestRunKeyedMCSCell smokes the MCS leg of the backend showdown: the
// sample must record the mcs backend, stay inside the zero-allocation
// gate, and carry live wait-engine counters — keyed cells read the
// table's own per-stripe collectors (LockTable.Stats), and a regression
// to caller-side wrapping would silently zero every RMR-proxy column
// because the table's own instrumentation wrap is outermost.
func TestRunKeyedMCSCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full measurement pass")
	}
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "keyed_mcs" {
			sc = s
		}
	}
	if !sc.Keyed || sc.Backend != rme.MCSBackend || sc.FileName() != "keyed_mcs" {
		t.Fatalf("keyed_mcs scenario shape wrong: %+v", sc)
	}
	// Keep the scenario's configured passage count: the harness's own
	// 64 worker spawns amortize below the 0.01/op gate only at full
	// scale (observed 0.026/op when cut to 10k passages).
	s := Run(sc, "yield", true)
	if s.Backend != "mcs" {
		t.Fatalf("sample backend = %q, want mcs", s.Backend)
	}
	if s.AllocsPerOp >= 0.01 {
		t.Fatalf("crash-free MCS keyed pooled AllocsPerOp = %v, want ~0", s.AllocsPerOp)
	}
	// 64 workers on 2 stripes are always queued; a zero here means the
	// counters were not collected, not that nothing blocked.
	if s.WakesPerOp <= 0 || s.SleepsPerOp <= 0 {
		t.Fatalf("MCS keyed cell carries no wait counters: %+v", s)
	}
}

// TestRunKeyedAbortCell smokes the abort tier: every passage routes through
// LockContext, every 100th carries a pre-expired deadline, and the sample
// must record the resulting ~1% shed rate while staying inside the
// zero-allocation gate — the headline claim of the keyed_abort file group
// is that neither the cancellable grant path nor the deterministic shed
// path allocates.
func TestRunKeyedAbortCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full measurement pass")
	}
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "keyed_abort" {
			sc = s
		}
	}
	if !sc.Keyed || sc.AbortEvery != 100 || sc.FileName() != "keyed_abort" {
		t.Fatalf("keyed_abort scenario shape wrong: %+v", sc)
	}
	s := Run(sc, "yield", true)
	if s.NsPerOp <= 0 || s.Crashes != 0 {
		t.Fatalf("bad abort sample shape: %+v", s)
	}
	if s.AllocsPerOp >= 0.01 {
		t.Fatalf("abort-tier pooled AllocsPerOp = %v, want ~0", s.AllocsPerOp)
	}
	// 1 shed per AbortEvery passages per worker, minus each worker's
	// sub-AbortEvery remainder — so the measured rate sits just under
	// the nominal 1% but can never reach zero or exceed it.
	want := 1.0 / float64(sc.AbortEvery)
	if s.ShedsPerOp <= want/2 || s.ShedsPerOp > want {
		t.Fatalf("ShedsPerOp = %v, want in (%v, %v]", s.ShedsPerOp, want/2, want)
	}
}

// TestParseBackend pins the -backend vocabulary: all four names, case
// folded, and an enumerating error for anything else.
func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want rme.ShardBackend
	}{
		{"flat", rme.FlatBackend},
		{"tree", rme.TreeBackend},
		{"mcs", rme.MCSBackend},
		{"auto", rme.AutoBackend},
		{"MCS", rme.MCSBackend},
		{"Tree", rme.TreeBackend},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseBackend("bogus"); err == nil {
		t.Fatal("ParseBackend(bogus) succeeded, want enumerating error")
	}
}
