package sched

import "fmt"

// Driver executes hand-scripted adversarial schedules: "run π3 until it is
// about to execute line 14, crash it, then let π5 finish its passage". The
// Figure 5 walkthrough and the Appendix A scenarios are written against it.
//
// Driver and Runner are alternative frontends over the same Proc machines;
// a Driver is just imperative control where a Runner is policy-driven.
type Driver struct {
	procs map[int]Proc
	steps uint64
	// Budget bounds the total steps a single directive may take before the
	// Driver reports failure; it converts would-be hangs (e.g. a deadlocked
	// schedule) into checkable outcomes. 0 means 1<<20.
	Budget uint64
}

// NewDriver builds a driver over procs, keyed by Proc.ID.
func NewDriver(procs ...Proc) *Driver {
	d := &Driver{procs: make(map[int]Proc, len(procs))}
	for _, p := range procs {
		if _, dup := d.procs[p.ID()]; dup {
			panic(fmt.Sprintf("sched: duplicate proc id %d", p.ID()))
		}
		d.procs[p.ID()] = p
	}
	return d
}

// Steps returns the total number of steps the driver has executed.
func (d *Driver) Steps() uint64 { return d.steps }

func (d *Driver) proc(id int) Proc {
	p, ok := d.procs[id]
	if !ok {
		panic(fmt.Sprintf("sched: no proc with id %d", id))
	}
	return p
}

func (d *Driver) budget() uint64 {
	if d.Budget == 0 {
		return 1 << 20
	}
	return d.Budget
}

// Step runs n normal steps of process id.
func (d *Driver) Step(id int, n int) {
	p := d.proc(id)
	for i := 0; i < n; i++ {
		p.Step()
		d.steps++
	}
}

// Crash delivers a crash step to process id.
func (d *Driver) Crash(id int) {
	d.proc(id).Crash()
	d.steps++
}

// StepUntil runs process id until pred(p) holds, checking before each step.
// It returns true if pred held within the budget; false means the process
// was still running (e.g. spinning forever) when the budget ran out — the
// scripted deadlock/starvation scenarios assert on exactly that.
func (d *Driver) StepUntil(id int, pred func(Proc) bool) bool {
	p := d.proc(id)
	for i := uint64(0); i < d.budget(); i++ {
		if pred(p) {
			return true
		}
		p.Step()
		d.steps++
	}
	return pred(p)
}

// StepUntilPC runs process id until its program counter equals pc (the
// process is then poised to execute that line but has not yet).
func (d *Driver) StepUntilPC(id int, pc int) bool {
	return d.StepUntil(id, func(p Proc) bool {
		pcer, ok := p.(PCer)
		if !ok {
			panic(fmt.Sprintf("sched: proc %d does not expose a PC", id))
		}
		return pcer.PC() == pc
	})
}

// StepUntilSection runs process id until it is in section s.
func (d *Driver) StepUntilSection(id int, s Section) bool {
	return d.StepUntil(id, func(p Proc) bool { return p.Section() == s })
}

// FinishPassage runs process id until its passage count increases by one
// (i.e. it completes Exit and returns to Remainder).
func (d *Driver) FinishPassage(id int) bool {
	p := d.proc(id)
	start := p.Passages()
	return d.StepUntil(id, func(Proc) bool { return p.Passages() > start })
}

// RunConcurrently interleaves all listed processes round-robin until pred
// holds, within the budget. It is used by scenarios to show that a system
// makes (or fails to make) global progress from a configured state.
func (d *Driver) RunConcurrently(ids []int, pred func() bool) bool {
	for i := uint64(0); i < d.budget(); i++ {
		if pred() {
			return true
		}
		d.proc(ids[int(i)%len(ids)]).Step()
		d.steps++
	}
	return pred()
}
