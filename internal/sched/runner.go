package sched

import (
	"errors"
	"fmt"
)

// ErrMaxSteps is returned by Runner.Run when the step budget is exhausted
// before the stop condition holds. Callers that treat exhaustion as normal
// (open-ended measurement runs) can errors.Is against it.
var ErrMaxSteps = errors.New("sched: step budget exhausted before stop condition")

// StepEvent describes one executed step, for per-step observers.
type StepEvent struct {
	Step    uint64
	Proc    int
	Crashed bool // the step was a crash step
}

// Runner drives a set of processes under a scheduler and crash policy.
type Runner struct {
	// Procs are the step machines, indexed by scheduler choice.
	Procs []Proc
	// Sched picks the next process; defaults to RoundRobin.
	Sched Scheduler
	// Crash decides crash steps; defaults to NoCrash.
	Crash CrashPolicy
	// MaxSteps bounds the run; 0 means a default of 1<<22 steps, which is
	// far beyond any convergent experiment and turns livelock into a
	// diagnosable error instead of a hang.
	MaxSteps uint64
	// OnStep, when non-nil, observes every executed step (after it ran).
	// Invariant checkers hook here.
	OnStep func(StepEvent)
	// StopWhen, when non-nil, is evaluated after each step; the run ends
	// when it returns true.
	StopWhen func() bool

	steps   uint64
	crashes []uint64
}

// Steps returns the number of steps executed so far.
func (r *Runner) Steps() uint64 { return r.steps }

// Crashes returns how many crash steps process i has received.
func (r *Runner) Crashes(i int) uint64 {
	if r.crashes == nil {
		return 0
	}
	return r.crashes[i]
}

// TotalCrashes sums crash steps over all processes.
func (r *Runner) TotalCrashes() uint64 {
	var sum uint64
	for _, c := range r.crashes {
		sum += c
	}
	return sum
}

// Run executes steps until StopWhen holds, returning nil, or until MaxSteps
// is exhausted, returning ErrMaxSteps.
func (r *Runner) Run() error {
	if len(r.Procs) == 0 {
		return errors.New("sched: no processes")
	}
	if r.Sched == nil {
		r.Sched = RoundRobin{}
	}
	if r.Crash == nil {
		r.Crash = NoCrash{}
	}
	maxSteps := r.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 22
	}
	if r.crashes == nil {
		r.crashes = make([]uint64, len(r.Procs))
	}
	if r.StopWhen != nil && r.StopWhen() {
		return nil
	}
	for r.steps < maxSteps {
		i := r.Sched.Next(r.steps, len(r.Procs))
		if i < 0 || i >= len(r.Procs) {
			return fmt.Errorf("sched: scheduler chose process %d of %d", i, len(r.Procs))
		}
		p := r.Procs[i]
		crashed := r.Crash.ShouldCrash(r.steps, p)
		if crashed {
			p.Crash()
			r.crashes[i]++
		} else {
			p.Step()
		}
		r.steps++
		if r.OnStep != nil {
			r.OnStep(StepEvent{Step: r.steps, Proc: i, Crashed: crashed})
		}
		if r.StopWhen != nil && r.StopWhen() {
			return nil
		}
	}
	if r.StopWhen == nil {
		return nil
	}
	return fmt.Errorf("%w (%d steps)", ErrMaxSteps, maxSteps)
}

// AllPassagesAtLeast returns a stop condition that holds once every process
// has completed at least n passages.
func AllPassagesAtLeast(procs []Proc, n uint64) func() bool {
	return func() bool {
		for _, p := range procs {
			if p.Passages() < n {
				return false
			}
		}
		return true
	}
}

// TotalPassagesAtLeast returns a stop condition on the sum of passages.
func TotalPassagesAtLeast(procs []Proc, n uint64) func() bool {
	return func() bool {
		var sum uint64
		for _, p := range procs {
			sum += p.Passages()
		}
		return sum >= n
	}
}
