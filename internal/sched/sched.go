// Package sched provides the execution framework for the paper's model
// (§1.1–1.2): asynchronous processes take steps one at a time, where a step
// is either a normal step (one atomic shared-memory operation plus bounded
// local computation) or a crash step (program counter reset to the start of
// the program, all other registers wiped to ⊥, cache lost).
//
// Algorithms are written as explicit program-counter step machines
// implementing Proc, so a crash can be injected between any two
// shared-memory operations — the same granularity as the paper's model.
// Schedulers choose which process steps next; crash policies decide when a
// chosen step becomes a crash step instead.
package sched

import "fmt"

// Section identifies where in the mutual-exclusion cycle a process is
// (§1.2: Remainder, Try, Critical, Exit).
type Section uint8

// The four sections of the RME cycle.
const (
	Remainder Section = iota + 1
	Try
	CS
	Exit
)

// String returns the section name.
func (s Section) String() string {
	switch s {
	case Remainder:
		return "Remainder"
	case Try:
		return "Try"
	case CS:
		return "CS"
	case Exit:
		return "Exit"
	default:
		return fmt.Sprintf("Section(%d)", uint8(s))
	}
}

// Proc is an RME client process compiled into a step machine. A Proc cycles
// Remainder → Try → CS → Exit → Remainder forever; the run harness decides
// when to stop stepping it.
//
// Implementations must ensure each Step performs at most one shared-memory
// operation so crash injection has the model's granularity.
type Proc interface {
	// ID returns the process identifier (also its memsim process index).
	ID() int
	// Step executes one normal step.
	Step()
	// Crash executes a crash step: PC to the program start, registers to ⊥.
	// Implementations must not touch shared memory.
	Crash()
	// Section reports the current section of the RME cycle.
	Section() Section
	// Passages returns the number of passages completed by finishing the
	// Exit section (crash-truncated passages are not counted here).
	Passages() uint64
}

// PCer is implemented by machines that expose their program counter, keyed
// to the paper's line numbers where applicable. Crash policies and scripted
// schedules use it to place crashes at exact lines.
type PCer interface {
	PC() int
}

// Scheduler picks which process takes the next step.
type Scheduler interface {
	// Next returns the index (into the runner's process slice) of the
	// process to step, given the global step number.
	Next(step uint64, n int) int
}

// RoundRobin steps processes cyclically: 0,1,…,n-1,0,…
type RoundRobin struct{}

// Next implements Scheduler.
func (RoundRobin) Next(step uint64, n int) int { return int(step % uint64(n)) }

// randSource is the minimal randomness dependency of the random scheduler,
// satisfied by *xrand.Rand. Declared locally to keep the package decoupled.
type randSource interface {
	Intn(n int) int
}

// Random schedules uniformly at random from a deterministic source.
type Random struct {
	Src randSource
}

// Next implements Scheduler.
func (r Random) Next(_ uint64, n int) int { return r.Src.Intn(n) }

// WeightedRandom schedules process i with probability proportional to
// Weights[i]. Used to model slow/fast process mixes in adversarial runs.
type WeightedRandom struct {
	Src     randSource
	Weights []int
	total   int
}

// NewWeightedRandom builds a weighted scheduler; all weights must be
// positive.
func NewWeightedRandom(src randSource, weights []int) *WeightedRandom {
	w := &WeightedRandom{Src: src, Weights: append([]int(nil), weights...)}
	for _, x := range weights {
		if x <= 0 {
			panic("sched: weights must be positive")
		}
		w.total += x
	}
	return w
}

// Next implements Scheduler.
func (w *WeightedRandom) Next(_ uint64, n int) int {
	if n != len(w.Weights) {
		panic(fmt.Sprintf("sched: weighted scheduler built for %d procs, run has %d", len(w.Weights), n))
	}
	x := w.Src.Intn(w.total)
	for i, wt := range w.Weights {
		x -= wt
		if x < 0 {
			return i
		}
	}
	return n - 1
}

// CrashPolicy decides whether the step about to be taken by proc p becomes
// a crash step.
type CrashPolicy interface {
	ShouldCrash(step uint64, p Proc) bool
}

// NoCrash never crashes anyone.
type NoCrash struct{}

// ShouldCrash implements CrashPolicy.
func (NoCrash) ShouldCrash(uint64, Proc) bool { return false }

// RandomCrash crashes the scheduled process with probability Rate per step,
// but only while it is outside the Remainder section (crashing an idle
// process is a no-op in the model) and only until Budget total crashes have
// been spent (0 budget = unlimited).
type RandomCrash struct {
	Src    randSource
	RateN  int // crash with probability RateN / RateD
	RateD  int
	Budget int
	spent  int
}

// ShouldCrash implements CrashPolicy.
func (c *RandomCrash) ShouldCrash(_ uint64, p Proc) bool {
	if c.RateD <= 0 || p.Section() == Remainder {
		return false
	}
	if c.Budget > 0 && c.spent >= c.Budget {
		return false
	}
	if c.Src.Intn(c.RateD) < c.RateN {
		c.spent++
		return true
	}
	return false
}

// Spent returns how many crashes the policy has delivered.
func (c *RandomCrash) Spent() int { return c.spent }

// CrashAtPC crashes a specific process the first time it is scheduled while
// its program counter equals PC. It is the tool behind the
// crash-at-every-line sweeps: one run per (line, process) pair.
type CrashAtPC struct {
	Proc  int
	PC    int
	Times int // how many times to deliver (default 1)
	done  int
}

// ShouldCrash implements CrashPolicy.
func (c *CrashAtPC) ShouldCrash(_ uint64, p Proc) bool {
	times := c.Times
	if times == 0 {
		times = 1
	}
	if c.done >= times || p.ID() != c.Proc {
		return false
	}
	pcer, ok := p.(PCer)
	if !ok || pcer.PC() != c.PC {
		return false
	}
	c.done++
	return true
}

// Delivered reports how many crashes this policy has injected.
func (c *CrashAtPC) Delivered() int { return c.done }
