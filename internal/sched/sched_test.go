package sched

import (
	"errors"
	"testing"

	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/xrand"
)

// tasProc is a minimal test-and-set lock client used to exercise the
// framework. It is intentionally not recoverable; crash-related tests only
// use it to validate crash bookkeeping, not progress after crashes.
type tasProc struct {
	id       int
	mem      *memsim.Memory
	lock     memsim.Addr
	pc       int
	dwell    int
	passages uint64
	broken   bool // when set, skips the acquire test: violates ME on purpose
}

const (
	tasPCTry = iota
	tasPCCS
	tasPCExit
)

func (p *tasProc) ID() int { return p.id }
func (p *tasProc) PC() int { return p.pc }

func (p *tasProc) Section() Section {
	switch p.pc {
	case tasPCTry:
		return Try
	case tasPCCS:
		return CS
	default:
		return Exit
	}
}

func (p *tasProc) Passages() uint64 { return p.passages }

func (p *tasProc) Step() {
	switch p.pc {
	case tasPCTry:
		if p.broken {
			p.pc = tasPCCS
			return
		}
		if old := p.mem.FAS(p.id, p.lock, 1); old == 0 {
			p.pc = tasPCCS
		}
	case tasPCCS:
		if p.dwell > 0 {
			p.dwell--
			return
		}
		p.pc = tasPCExit
	case tasPCExit:
		p.mem.Write(p.id, p.lock, 0)
		p.passages++
		p.pc = tasPCTry
	}
}

func (p *tasProc) Crash() {
	p.pc = tasPCTry
	p.dwell = 0
	p.mem.CrashProcess(p.id)
}

func newTASWorld(t *testing.T, n int, broken bool) (*memsim.Memory, []Proc) {
	t.Helper()
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: n})
	lock := mem.Alloc(memsim.HomeShared, 1)
	procs := make([]Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = &tasProc{id: i, mem: mem, lock: lock, broken: broken}
	}
	return mem, procs
}

func inCS(procs []Proc) int {
	n := 0
	for _, p := range procs {
		if p.Section() == CS {
			n++
		}
	}
	return n
}

func TestRunnerRoundRobinCompletesPassages(t *testing.T) {
	_, procs := newTASWorld(t, 4, false)
	r := &Runner{Procs: procs, StopWhen: AllPassagesAtLeast(procs, 5)}
	if err := r.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, p := range procs {
		if p.Passages() < 5 {
			t.Fatalf("proc %d completed %d passages, want >= 5", i, p.Passages())
		}
	}
}

func TestRunnerMutualExclusionHolds(t *testing.T) {
	_, procs := newTASWorld(t, 3, false)
	violated := false
	r := &Runner{
		Procs:    procs,
		Sched:    Random{Src: xrand.New(11)},
		OnStep:   func(StepEvent) { violated = violated || inCS(procs) > 1 },
		StopWhen: TotalPassagesAtLeast(procs, 50),
	}
	if err := r.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if violated {
		t.Fatal("TAS lock violated mutual exclusion (framework bug)")
	}
}

func TestRunnerDetectsBrokenLock(t *testing.T) {
	// A lock that admits everyone must trip the same observer: this guards
	// the observer machinery itself against false negatives.
	_, procs := newTASWorld(t, 3, true)
	violated := false
	r := &Runner{
		Procs:    procs,
		OnStep:   func(StepEvent) { violated = violated || inCS(procs) > 1 },
		StopWhen: TotalPassagesAtLeast(procs, 10),
	}
	if err := r.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !violated {
		t.Fatal("observer failed to notice the deliberately broken lock")
	}
}

func TestRunnerMaxStepsError(t *testing.T) {
	_, procs := newTASWorld(t, 2, false)
	r := &Runner{
		Procs:    procs,
		MaxSteps: 10,
		StopWhen: AllPassagesAtLeast(procs, 1000),
	}
	err := r.Run()
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
	if r.Steps() != 10 {
		t.Fatalf("steps = %d, want 10", r.Steps())
	}
}

func TestRandomCrashBudgetAndCounting(t *testing.T) {
	_, procs := newTASWorld(t, 2, false)
	crash := &RandomCrash{Src: xrand.New(3), RateN: 1, RateD: 4, Budget: 5}
	r := &Runner{
		Procs:    procs,
		Crash:    crash,
		MaxSteps: 5000,
	}
	if err := r.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if crash.Spent() != 5 {
		t.Fatalf("crash policy spent %d, want full budget 5", crash.Spent())
	}
	if r.TotalCrashes() != 5 {
		t.Fatalf("runner counted %d crashes, want 5", r.TotalCrashes())
	}
}

func TestCrashAtPCFiresExactlyOnce(t *testing.T) {
	// Crash proc 1 while it is still in Try (not yet holding the TAS lock),
	// so the non-recoverable toy lock is left in a sane state.
	_, procs := newTASWorld(t, 2, false)
	policy := &CrashAtPC{Proc: 1, PC: tasPCTry}
	r := &Runner{
		Procs:    procs,
		Crash:    policy,
		StopWhen: func() bool { return procs[0].Passages() >= 20 },
	}
	if err := r.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if policy.Delivered() != 1 {
		t.Fatalf("delivered %d crashes, want 1", policy.Delivered())
	}
	if r.Crashes(1) != 1 || r.Crashes(0) != 0 {
		t.Fatalf("crash counts wrong: p0=%d p1=%d", r.Crashes(0), r.Crashes(1))
	}
}

func TestWeightedRandomRespectsWeights(t *testing.T) {
	w := NewWeightedRandom(xrand.New(9), []int{1, 9})
	counts := [2]int{}
	for i := uint64(0); i < 10000; i++ {
		counts[w.Next(i, 2)]++
	}
	if counts[1] < 8000 {
		t.Fatalf("heavy process scheduled only %d/10000 times", counts[1])
	}
	if counts[0] == 0 {
		t.Fatal("light process never scheduled")
	}
}

func TestWeightedRandomValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero weight accepted")
		}
	}()
	NewWeightedRandom(xrand.New(1), []int{1, 0})
}

func TestDriverStepUntilPCAndCrash(t *testing.T) {
	_, procs := newTASWorld(t, 2, false)
	d := NewDriver(procs...)

	if !d.StepUntilPC(0, tasPCCS) {
		t.Fatal("proc 0 never reached the CS")
	}
	if procs[0].Section() != CS {
		t.Fatalf("section = %v, want CS", procs[0].Section())
	}
	// Proc 1 now spins: it must never enter the CS while 0 holds the lock.
	if d.StepUntil(1, func(p Proc) bool { return p.Section() == CS }) {
		t.Fatal("proc 1 entered CS while proc 0 held the lock")
	}
	// Crash proc 0. The TAS lock is not recoverable, so the lock word stays
	// set and proc 1 keeps starving: exactly what the budget surfaces.
	d.Crash(0)
	if got := procs[0].Section(); got != Try {
		t.Fatalf("after crash section = %v, want Try (restart)", got)
	}
}

func TestDriverFinishPassage(t *testing.T) {
	_, procs := newTASWorld(t, 1, false)
	d := NewDriver(procs...)
	if !d.FinishPassage(0) {
		t.Fatal("single process failed to finish a passage")
	}
	if procs[0].Passages() != 1 {
		t.Fatalf("passages = %d, want 1", procs[0].Passages())
	}
}

func TestDriverRunConcurrently(t *testing.T) {
	_, procs := newTASWorld(t, 3, false)
	d := NewDriver(procs...)
	ok := d.RunConcurrently([]int{0, 1, 2}, func() bool {
		var sum uint64
		for _, p := range procs {
			sum += p.Passages()
		}
		return sum >= 30
	})
	if !ok {
		t.Fatal("concurrent run did not reach 30 passages")
	}
}

func TestDriverDuplicateIDPanics(t *testing.T) {
	_, procs := newTASWorld(t, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ids accepted")
		}
	}()
	NewDriver(procs[0], procs[0])
}

func TestStopWhenCheckedBeforeFirstStep(t *testing.T) {
	_, procs := newTASWorld(t, 1, false)
	r := &Runner{Procs: procs, StopWhen: func() bool { return true }}
	if err := r.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Steps() != 0 {
		t.Fatalf("steps = %d, want 0", r.Steps())
	}
}
