// Package sigobj implements the paper's Signal object (Section 2,
// Figures 1–2): a single-shot flag with two operations,
//
//	set()  — sets State to 1;
//	wait() — returns once State is 1,
//
// such that both operations incur O(1) RMRs on CC *and* DSM machines,
// provided no two wait() executions are concurrent (the main algorithm
// guarantees that by construction).
//
// The DSM difficulty is that the setter does not know who is waiting. The
// implementation (Figure 2) therefore uses a published spin-variable
// address: the waiter allocates a fresh boolean in its *own* memory
// partition (so its busy-wait is local), publishes the address in GoAddr,
// and re-checks Bit; the setter first writes Bit and then wakes whatever
// address it finds in GoAddr.
//
// Operations are step machines (Setter, Waiter) so the enclosing algorithm
// can interleave and crash them at instruction granularity.
package sigobj

import "github.com/rmelib/rme/internal/memsim"

// Memory layout of a Signal instance, relative to its base address.
const (
	// OffBit is the Bit field (paper Figure 2): 1 once set() has run.
	OffBit = 0
	// OffGoAddr holds the waiter-published spin variable address (NIL if
	// no waiter has published one).
	OffGoAddr = 1
	// Words is the size of a Signal instance in memory words.
	Words = 2
)

// Alloc allocates a fresh Signal instance homed in owner's partition and
// returns its base address. Zeroed words are exactly the initial state:
// Bit = 0, GoAddr = NIL.
func Alloc(mem *memsim.Memory, owner int) memsim.Addr {
	return mem.Alloc(owner, Words)
}

// State returns the abstract X.State of the signal at base, for checkers
// and tests (uncharged read).
func State(mem *memsim.Memory, base memsim.Addr) int {
	return int(mem.Peek(base + OffBit))
}

// ForceSet marks the signal set without charging operations. It exists for
// initializing the paper's SpecialNode, whose signals start at 1.
func ForceSet(mem *memsim.Memory, base memsim.Addr) {
	mem.Poke(base+OffBit, 1)
}

// Setter is the step machine for X.set() (Figure 2 lines 1–4).
// The zero value is idle; call Begin before stepping.
type Setter struct {
	mem  *memsim.Memory
	proc int

	base memsim.Addr
	pc   int
	addr memsim.Word // local register addr_p (line 2)
}

// Setter program counter values; named for the paper's line numbers.
const (
	setIdle   = 0
	setLine1  = 1 // Bit <- 1
	setLine2  = 2 // addr <- GoAddr
	setLine34 = 3 // if addr != NIL then *addr <- true
)

// NewSetter returns a Setter executing as process proc.
func NewSetter(mem *memsim.Memory, proc int) Setter {
	return Setter{mem: mem, proc: proc}
}

// Begin starts a set() on the signal at base.
func (s *Setter) Begin(base memsim.Addr) {
	s.base = base
	s.pc = setLine1
	s.addr = 0
}

// Done reports whether the current set() has completed (or none started).
func (s *Setter) Done() bool { return s.pc == setIdle }

// Step executes one atomic step of set(); it returns true when the
// operation has completed. Calling Step when Done is a no-op returning true.
func (s *Setter) Step() bool {
	switch s.pc {
	case setIdle:
		return true
	case setLine1:
		s.mem.Write(s.proc, s.base+OffBit, 1)
		s.pc = setLine2
	case setLine2:
		s.addr = s.mem.Read(s.proc, s.base+OffGoAddr)
		s.pc = setLine34
	case setLine34:
		// Line 3 is a register test (local); line 4 is the only shared op.
		if s.addr != memsim.Word(memsim.NilAddr) {
			s.mem.Write(s.proc, memsim.Addr(s.addr), 1)
		}
		s.pc = setIdle
		return true
	}
	return s.pc == setIdle
}

// Crash wipes the machine's registers (the enclosing process crashed).
func (s *Setter) Crash() {
	s.pc = setIdle
	s.addr = 0
	s.base = 0
}

// Waiter is the step machine for X.wait() (Figure 2 lines 5–9).
// The zero value is idle; call Begin before stepping.
type Waiter struct {
	mem  *memsim.Memory
	proc int

	base memsim.Addr
	pc   int
	gov  memsim.Addr // local register go_p: address of own spin variable
}

// Waiter program counter values; named for the paper's line numbers.
const (
	waitIdle  = 0
	waitLine5 = 5 // go <- new Boolean (local allocation)
	waitLine6 = 6 // *go <- false
	waitLine7 = 7 // GoAddr <- go
	waitLine8 = 8 // if Bit == 0 ...
	waitLine9 = 9 // ... wait till *go == true
)

// NewWaiter returns a Waiter executing as process proc.
func NewWaiter(mem *memsim.Memory, proc int) Waiter {
	return Waiter{mem: mem, proc: proc}
}

// Begin starts a wait() on the signal at base.
func (w *Waiter) Begin(base memsim.Addr) {
	w.base = base
	w.pc = waitLine5
	w.gov = memsim.NilAddr
}

// Done reports whether the current wait() has completed (or none started).
func (w *Waiter) Done() bool { return w.pc == waitIdle }

// Spinning reports whether the waiter is in its local busy-wait (line 9).
func (w *Waiter) Spinning() bool { return w.pc == waitLine9 }

// Step executes one atomic step of wait(); it returns true when the
// operation has completed.
func (w *Waiter) Step() bool {
	switch w.pc {
	case waitIdle:
		return true
	case waitLine5:
		// A fresh boolean in the waiter's own partition: this is what makes
		// the busy-wait local on DSM. Allocation is a local step.
		w.gov = w.mem.Alloc(w.proc, 1)
		w.mem.LocalStep(w.proc)
		w.pc = waitLine6
	case waitLine6:
		w.mem.Write(w.proc, w.gov, 0)
		w.pc = waitLine7
	case waitLine7:
		w.mem.Write(w.proc, w.base+OffGoAddr, memsim.Word(w.gov))
		w.pc = waitLine8
	case waitLine8:
		if w.mem.Read(w.proc, w.base+OffBit) == 0 {
			w.pc = waitLine9
		} else {
			w.pc = waitIdle
			return true
		}
	case waitLine9:
		if w.mem.Read(w.proc, w.gov) != 0 {
			w.pc = waitIdle
			return true
		}
	}
	return w.pc == waitIdle
}

// Crash wipes the machine's registers.
func (w *Waiter) Crash() {
	w.pc = waitIdle
	w.gov = 0
	w.base = 0
}
