package sigobj

import (
	"testing"

	"github.com/rmelib/rme/internal/memsim"
)

func newMem(model memsim.Model, procs int) *memsim.Memory {
	return memsim.New(memsim.Config{Model: model, Procs: procs})
}

func runToDone(t *testing.T, step func() bool, bound int, what string) int {
	t.Helper()
	for i := 1; i <= bound; i++ {
		if step() {
			return i
		}
	}
	t.Fatalf("%s did not complete within %d steps", what, bound)
	return 0
}

func TestSetThenWaitReturnsImmediately(t *testing.T) {
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		t.Run(model.String(), func(t *testing.T) {
			mem := newMem(model, 2)
			sig := Alloc(mem, 0)

			s := NewSetter(mem, 0)
			s.Begin(sig)
			runToDone(t, s.Step, 10, "set()")
			if State(mem, sig) != 1 {
				t.Fatal("State != 1 after set()")
			}

			w := NewWaiter(mem, 1)
			w.Begin(sig)
			n := runToDone(t, w.Step, 10, "wait()")
			if n > 5 {
				t.Fatalf("wait() after set took %d steps, want <= 5", n)
			}
		})
	}
}

func TestWaitBlocksUntilSet(t *testing.T) {
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		t.Run(model.String(), func(t *testing.T) {
			mem := newMem(model, 2)
			sig := Alloc(mem, 0)

			w := NewWaiter(mem, 1)
			w.Begin(sig)
			for i := 0; i < 100; i++ {
				if w.Step() {
					t.Fatal("wait() returned before set()")
				}
			}
			if !w.Spinning() {
				t.Fatal("waiter should be in its local spin")
			}

			s := NewSetter(mem, 0)
			s.Begin(sig)
			runToDone(t, s.Step, 10, "set()")
			runToDone(t, w.Step, 10, "wait() after set")
		})
	}
}

func TestRMRConstantOnBothModels(t *testing.T) {
	// Theorem 1(v): set() and wait() incur O(1) RMRs each. The waiter is
	// made to spin many times before the setter arrives; the spin must be
	// free on DSM (own partition) and at most two misses on CC (cold read +
	// one invalidation by the wake write).
	tests := []struct {
		model                memsim.Model
		maxWaiter, maxSetter uint64
	}{
		{memsim.CC, 6, 3},
		{memsim.DSM, 4, 3},
	}
	for _, tt := range tests {
		t.Run(tt.model.String(), func(t *testing.T) {
			mem := newMem(tt.model, 2)
			sig := Alloc(mem, 0) // signal homed at the setter's partition

			w := NewWaiter(mem, 1)
			w.Begin(sig)
			for i := 0; i < 1000; i++ {
				w.Step()
			}
			s := NewSetter(mem, 0)
			s.Begin(sig)
			runToDone(t, s.Step, 10, "set()")
			runToDone(t, w.Step, 10, "wait()")

			if got := mem.Stats(1).RMRs; got > tt.maxWaiter {
				t.Fatalf("waiter RMRs = %d, want <= %d (spin must be local)", got, tt.maxWaiter)
			}
			if got := mem.Stats(0).RMRs; got > tt.maxSetter {
				t.Fatalf("setter RMRs = %d, want <= %d", got, tt.maxSetter)
			}
		})
	}
}

func TestWaiterCrashAndReExecute(t *testing.T) {
	// A crashed waiter restarts wait() from scratch (fresh spin variable,
	// per Figure 2 line 5). The old published GoAddr is simply overwritten.
	mem := newMem(memsim.DSM, 2)
	sig := Alloc(mem, 0)

	w := NewWaiter(mem, 1)
	w.Begin(sig)
	for i := 0; i < 10; i++ {
		w.Step()
	}
	w.Crash()
	if !w.Done() {
		t.Fatal("crashed waiter should be idle")
	}
	w.Begin(sig)
	for i := 0; i < 10; i++ {
		w.Step()
	}

	s := NewSetter(mem, 0)
	s.Begin(sig)
	runToDone(t, s.Step, 10, "set()")
	runToDone(t, w.Step, 10, "wait() after crash and re-execute")
}

func TestSetterCrashMidwayThenReExecute(t *testing.T) {
	// Crash the setter after each possible prefix of its steps, re-execute
	// set() from scratch, and require that a waiter always gets released.
	for prefix := 0; prefix <= 2; prefix++ {
		mem := newMem(memsim.DSM, 2)
		sig := Alloc(mem, 0)

		w := NewWaiter(mem, 1)
		w.Begin(sig)
		for i := 0; i < 6; i++ {
			w.Step()
		}

		s := NewSetter(mem, 0)
		s.Begin(sig)
		for i := 0; i < prefix; i++ {
			s.Step()
		}
		s.Crash()
		s.Begin(sig)
		runToDone(t, s.Step, 10, "re-executed set()")
		runToDone(t, w.Step, 10, "wait()")
	}
}

func TestForceSetInitializesSpecialNodeSemantics(t *testing.T) {
	mem := newMem(memsim.CC, 1)
	sig := Alloc(mem, memsim.HomeShared)
	ForceSet(mem, sig)
	w := NewWaiter(mem, 0)
	w.Begin(sig)
	n := runToDone(t, w.Step, 10, "wait() on force-set signal")
	if n > 5 {
		t.Fatalf("wait() on pre-set signal took %d steps", n)
	}
}

// TestExhaustiveInterleavings explores every interleaving of one set()
// against one wait() (after the waiter's local allocation, which has no
// shared effect) and asserts Theorem 1's properties on every path:
//
//	(ii) when wait() returns, State is 1;
//	(iii) set() completes in a bounded number of its own steps;
//	(iv) once State is 1, wait() completes within a small bound of the
//	     waiter's own steps.
func TestExhaustiveInterleavings(t *testing.T) {
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		t.Run(model.String(), func(t *testing.T) {
			paths := 0
			var explore func(mem *memsim.Memory, s Setter, w Waiter, spinsSinceSetterStep int)
			explore = func(mem *memsim.Memory, s Setter, w Waiter, spins int) {
				if s.Done() && w.Done() {
					paths++
					if State(mem, sigAddrForTest) != 1 {
						t.Fatal("terminal state with State != 1")
					}
					return
				}
				if w.Done() && !s.Done() {
					// Property (iii): setter alone finishes quickly.
					snap := mem.Snapshot()
					s2 := s
					runToDone(t, s2.Step, 4, "set() alone")
					mem.Restore(snap)
				}
				if !w.Done() && s.Done() {
					// Property (iv): State is 1, waiter alone must finish.
					snap := mem.Snapshot()
					w2 := w
					if State(mem, sigAddrForTest) != 1 {
						t.Fatal("setter done but State != 1")
					}
					runToDone(t, w2.Step, 6, "wait() alone after set")
					mem.Restore(snap)
				}
				if !s.Done() {
					snap := mem.Snapshot()
					s2, w2 := s, w
					s2.Step()
					explore(mem, s2, w2, 0)
					mem.Restore(snap)
				}
				if !w.Done() {
					// Prune unbounded spinning: scheduling a pure spin twice
					// without an intervening setter step revisits the same
					// state.
					if w.Spinning() && spins > 0 {
						return
					}
					snap := mem.Snapshot()
					s2, w2 := s, w
					done := w2.Step()
					ns := spins + 1
					if done || !w2.Spinning() {
						ns = spins
					}
					explore(mem, s2, w2, ns)
					mem.Restore(snap)
				}
			}

			mem := newMem(model, 2)
			sig := Alloc(mem, 0)
			sigAddrForTest = sig
			w := NewWaiter(mem, 1)
			w.Begin(sig)
			w.Step() // line 5: local allocation, fixed before branching
			s := NewSetter(mem, 0)
			s.Begin(sig)
			explore(mem, s, w, 0)
			if paths < 20 {
				t.Fatalf("explored only %d interleavings; expected many more", paths)
			}
			t.Logf("explored %d interleavings", paths)
		})
	}
}

// sigAddrForTest lets the recursive explorer assert on the signal under
// test without threading it through every frame.
var sigAddrForTest memsim.Addr

func TestStepWhenIdleIsNoOp(t *testing.T) {
	mem := newMem(memsim.DSM, 1)
	s := NewSetter(mem, 0)
	if !s.Step() || !s.Done() {
		t.Fatal("idle setter Step should be a done no-op")
	}
	w := NewWaiter(mem, 0)
	if !w.Step() || !w.Done() {
		t.Fatal("idle waiter Step should be a done no-op")
	}
}
