// Package table renders the plain-text, column-aligned tables the
// benchmark harness prints (and that EXPERIMENTS.md records).
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of cells. The zero value is usable.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// New creates a table with a title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; cells beyond the header width are kept as-is.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddF appends one row, formatting each cell with %v.
func (t *Table) AddF(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = F1(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the cell at (row, col); empty if out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range width {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// F1 formats a float with one decimal.
func F1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// F2 formats a float with two decimals.
func F2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
