package table

import (
	"strings"
	"testing"
)

func TestRendering(t *testing.T) {
	tb := New("demo", "k", "RMR/passage")
	tb.Add("2", "9.0")
	tb.Add("64", "9.1")
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "RMR/passage") {
		t.Fatalf("missing title/header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows not aligned:\n%s", out)
	}
}

func TestAddFFormatsFloats(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddF(3, 1.25)
	if got := tb.Cell(0, 1); got != "1.2" && got != "1.3" {
		t.Fatalf("float cell = %q", got)
	}
	if got := tb.Cell(0, 0); got != "3" {
		t.Fatalf("int cell = %q", got)
	}
}

func TestCellOutOfRange(t *testing.T) {
	tb := New("", "a")
	if tb.Cell(0, 0) != "" || tb.Cell(-1, 2) != "" {
		t.Fatal("out-of-range cells should be empty")
	}
}

func TestFormatters(t *testing.T) {
	if F1(1.26) != "1.3" || F2(1.256) != "1.26" {
		t.Fatalf("F1/F2 wrong: %s %s", F1(1.26), F2(1.256))
	}
}
