// Package tree implements the paper's Section 3.3 construction: n processes
// compete on an arbitration tree whose internal nodes are instances of the
// k-ported core algorithm (internal/core) with k = Θ(log n / log log n)
// ports. A process climbs from its leaf to the root, acquiring each node's
// critical section, holds the outer CS at the top, and releases the nodes
// top-down on exit.
//
// Recoverability (Theorem 3): a single NVRAM phase word per process records
// whether it was climbing (up), holding the CS (cs), or releasing (down).
//
//   - crash while climbing: the process re-climbs from its leaf. Nodes it
//     already held are re-entered wait-free through the core algorithm's own
//     recovery (line 20: Pred = &InCS ⇒ straight to that node's CS), so a
//     crash costs O(height) plus one node repair: O((1+f)·log n/log log n)
//     RMRs per super-passage with f crashes.
//   - crash in the CS: recovery reads the phase word and returns to the CS
//     immediately (wait-free CSR); every tree node is still held.
//   - crash while releasing: the phase word also stores a release cursor
//     (the highest level not yet known released), and recovery replays the
//     release from the cursor downward using the core algorithm's idempotent
//     exit recovery. Replaying from the cursor — never from the root — is
//     essential: once a level is released, its port can legitimately be
//     claimed by a sibling process, so touching it again would corrupt the
//     sibling's passage. Levels at and below the cursor are still held and
//     therefore safe to replay.
package tree

import (
	"fmt"
	"math"

	"github.com/rmelib/rme/internal/core"
	"github.com/rmelib/rme/internal/memsim"
)

// Phase values stored in the per-process NVRAM phase word. During the down
// phase the word also carries a release cursor (the highest level not yet
// known to be released) in its upper bits: phase | cursor<<phaseShift.
// The cursor is what makes the release replay safe: replaying always starts
// at the cursor, never above it, because a released upper node's port may
// already have been claimed by a sibling process (the levels *below* the
// cursor are still held, so the cursor level itself cannot have been
// reused).
const (
	phaseIdle = 0
	phaseUp   = 1
	phaseCS   = 2
	phaseDown = 3

	phaseShift = 4
	phaseMask  = (1 << phaseShift) - 1
)

func encodeDown(cursor int) memsim.Word {
	if cursor < 0 { // degenerate single-process tree: nothing to release
		return phaseDown
	}
	return memsim.Word(phaseDown | cursor<<phaseShift)
}

// Config parameterizes a Tree.
type Config struct {
	// Procs is n, the number of processes.
	Procs int
	// Arity is the tree degree; 0 selects the paper's
	// max(2, ⌈log₂ n / log₂ log₂ n⌉).
	Arity int
}

// DefaultArity returns the paper's node degree for n processes.
func DefaultArity(n int) int {
	if n <= 4 {
		return 2
	}
	lg := math.Log2(float64(n))
	a := int(math.Ceil(lg / math.Log2(lg)))
	if a < 2 {
		return 2
	}
	return a
}

// Tree is the shared NVRAM layout: the node instances and the per-process
// phase words. Immutable after construction.
type Tree struct {
	mem    *memsim.Memory
	n      int
	arity  int
	levels int
	// nodes[l][g] is the core instance for group g at level l
	// (level 0 is adjacent to the leaves; level levels-1 is the root).
	nodes [][]*core.Shared
	// phase + proc is the process's phase word.
	phase memsim.Addr
}

// New allocates an arbitration tree in mem.
func New(mem *memsim.Memory, cfg Config) *Tree {
	if cfg.Procs <= 0 {
		panic("tree: Procs must be positive")
	}
	arity := cfg.Arity
	if arity == 0 {
		arity = DefaultArity(cfg.Procs)
	}
	if arity < 2 {
		panic("tree: arity must be at least 2")
	}
	t := &Tree{mem: mem, n: cfg.Procs, arity: arity}
	groups := cfg.Procs
	for groups > 1 {
		groups = (groups + arity - 1) / arity
		level := make([]*core.Shared, groups)
		for g := range level {
			level[g] = core.NewShared(mem, core.Config{Ports: arity})
		}
		t.nodes = append(t.nodes, level)
		t.levels++
	}
	t.phase = mem.Alloc(memsim.HomeShared, cfg.Procs)
	return t
}

// Levels returns the tree height (number of core instances on any
// leaf-to-root path).
func (t *Tree) Levels() int { return t.levels }

// Arity returns the node degree.
func (t *Tree) Arity() int { return t.arity }

// Nodes returns the node instances (checkers and tests).
func (t *Tree) Nodes() [][]*core.Shared { return t.nodes }

// position returns the (group, port) of process i at level l.
func (t *Tree) position(i, l int) (group, port int) {
	div := 1
	for j := 0; j < l; j++ {
		div *= t.arity
	}
	return i / (div * t.arity), (i / div) % t.arity
}

func (t *Tree) phaseWord(proc int) memsim.Addr {
	return t.phase + memsim.Addr(proc)
}

// Handle program counters.
const (
	pcIdle      = 0
	pcReadPhase = 1
	pcWriteUp   = 2
	pcClimb     = 3
	pcWriteCS   = 4
	pcWriteDown = 5
	pcRelease   = 6
	pcCursor    = 7 // advances the NVRAM release cursor between levels
	pcWriteEnd  = 8 // writes idle; in relock mode continues with a climb
)

// Handle is one process's step machine over the tree. Per-level core
// handles are part of the process's identity (fixed ports); their volatile
// registers are wiped on crash like everything else.
type Handle struct {
	t    *Tree
	proc int

	perLevel []*core.Handle

	pc     int
	lvl    int
	relock bool
}

// NewHandle builds the step machine for process proc.
func NewHandle(t *Tree, proc int) *Handle {
	if proc < 0 || proc >= t.n {
		panic(fmt.Sprintf("tree: proc %d out of range [0,%d)", proc, t.n))
	}
	h := &Handle{t: t, proc: proc}
	h.perLevel = make([]*core.Handle, t.levels)
	for l := 0; l < t.levels; l++ {
		g, port := t.position(proc, l)
		h.perLevel[l] = core.NewHandle(t.nodes[l][g], proc, port)
	}
	return h
}

// PC exposes a composite program counter: the tree phase in the thousands
// digit plus the current level's core PC.
func (h *Handle) PC() int {
	switch h.pc {
	case pcClimb, pcRelease:
		return 1000*h.pc + h.perLevel[h.lvl].PC()
	default:
		return 1000 * h.pc
	}
}

// Done reports no operation in flight.
func (h *Handle) Done() bool { return h.pc == pcIdle }

// Level returns the level the handle is operating on (tests).
func (h *Handle) Level() int { return h.lvl }

// LevelHandles exposes the per-level core handles (checkers).
func (h *Handle) LevelHandles() []*core.Handle { return h.perLevel }

// InCS reports whether the process holds the outer critical section: it is
// the root node's CS holder. (Phase may lag by one step: the phase word is
// written after the root is won.)
func (h *Handle) InCS() bool {
	if h.t.levels == 0 {
		return h.pc == pcIdle && h.t.mem.Peek(h.t.phaseWord(h.proc)) == phaseCS
	}
	return h.perLevel[h.t.levels-1].InCS() && h.pc == pcIdle
}

// BeginLock starts (or, after a crash, recovers) the outer Try section.
func (h *Handle) BeginLock() {
	if h.pc != pcIdle {
		panic("tree: BeginLock while an operation is in flight")
	}
	h.pc = pcReadPhase
	h.relock = false
}

// BeginUnlock starts the outer Exit section.
func (h *Handle) BeginUnlock() {
	if h.pc != pcIdle {
		panic("tree: BeginUnlock while an operation is in flight")
	}
	h.pc = pcWriteDown
	h.relock = false
}

// Crash wipes all volatile registers, including the per-level machines.
func (h *Handle) Crash() {
	h.pc = pcIdle
	h.lvl = 0
	h.relock = false
	for _, ch := range h.perLevel {
		ch.Crash()
	}
}

// Step executes one atomic step, returning true when the operation begun by
// BeginLock/BeginUnlock completes.
func (h *Handle) Step() bool {
	mem, t := h.t.mem, h.t
	switch h.pc {
	case pcIdle:
		return true

	case pcReadPhase:
		word := mem.Read(h.proc, t.phaseWord(h.proc))
		switch int(word) & phaseMask {
		case phaseCS:
			// Crashed inside the CS: all levels are still held.
			h.pc = pcIdle
			return true
		case phaseDown:
			// Crashed mid-release: replay from the stored cursor (levels
			// above it are done and their ports may already be in use by
			// sibling processes), then climb afresh.
			h.relock = true
			h.lvl = int(word) >> phaseShift
			if h.lvl < 0 || t.levels == 0 {
				h.pc = pcWriteEnd
			} else {
				h.perLevel[h.lvl].BeginExitRecover()
				h.pc = pcRelease
			}
		default: // idle or up
			h.pc = pcWriteUp
		}

	case pcWriteUp:
		mem.Write(h.proc, t.phaseWord(h.proc), phaseUp)
		h.lvl = 0
		if t.levels == 0 {
			h.pc = pcWriteCS
		} else {
			h.perLevel[0].BeginLock()
			h.pc = pcClimb
		}

	case pcClimb:
		if h.perLevel[h.lvl].Step() {
			h.lvl++
			if h.lvl == t.levels {
				h.pc = pcWriteCS
			} else {
				h.perLevel[h.lvl].BeginLock()
			}
		}

	case pcWriteCS:
		mem.Write(h.proc, t.phaseWord(h.proc), phaseCS)
		h.pc = pcIdle
		return true

	case pcWriteDown:
		mem.Write(h.proc, t.phaseWord(h.proc), encodeDown(t.levels-1))
		h.lvl = t.levels - 1
		if h.lvl < 0 {
			h.pc = pcWriteEnd
		} else {
			h.perLevel[h.lvl].BeginExitRecover()
			h.pc = pcRelease
		}

	case pcRelease:
		if h.perLevel[h.lvl].Step() {
			if h.lvl == 0 {
				h.pc = pcWriteEnd
			} else {
				h.pc = pcCursor
			}
		}

	case pcCursor:
		mem.Write(h.proc, t.phaseWord(h.proc), encodeDown(h.lvl-1))
		h.lvl--
		h.perLevel[h.lvl].BeginExitRecover()
		h.pc = pcRelease

	case pcWriteEnd:
		if h.relock {
			h.relock = false
			mem.Write(h.proc, t.phaseWord(h.proc), phaseUp)
			h.lvl = 0
			if t.levels == 0 {
				h.pc = pcWriteCS
			} else {
				h.perLevel[0].BeginLock()
				h.pc = pcClimb
			}
		} else {
			mem.Write(h.proc, t.phaseWord(h.proc), phaseIdle)
			h.pc = pcIdle
			return true
		}

	default:
		panic(fmt.Sprintf("tree: corrupt pc %d", h.pc))
	}
	return h.pc == pcIdle
}
