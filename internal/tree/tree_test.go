package tree

import (
	"fmt"
	"testing"

	"github.com/rmelib/rme/internal/core"
	"github.com/rmelib/rme/internal/memsim"
	"github.com/rmelib/rme/internal/sched"
	"github.com/rmelib/rme/internal/xrand"
)

func newWorld(t testing.TB, model memsim.Model, n, dwell int) (*memsim.Memory, *Tree, []*Proc) {
	t.Helper()
	mem := memsim.New(memsim.Config{Model: model, Procs: n})
	tr := New(mem, Config{Procs: n})
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = NewProc(mem, tr, i, dwell)
	}
	return mem, tr, procs
}

func asSched(ps []*Proc) []sched.Proc {
	out := make([]sched.Proc, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

func countCS(ps []*Proc) int {
	n := 0
	for _, p := range ps {
		if p.Section() == sched.CS {
			n++
		}
	}
	return n
}

// nodeCheckers builds an invariant checker per tree node, mapping each
// process's per-level core handle to its node instance.
func nodeCheckers(tr *Tree, procs []*Proc) []*core.Checker {
	perNode := make(map[*core.Shared][]*core.Handle)
	for _, p := range procs {
		for l, ch := range p.Handle().LevelHandles() {
			g, _ := tr.position(p.ID(), l)
			sh := tr.Nodes()[l][g]
			perNode[sh] = append(perNode[sh], ch)
		}
	}
	var cks []*core.Checker
	for sh, hs := range perNode {
		cks = append(cks, core.NewHandleChecker(sh, hs))
	}
	return cks
}

func TestDefaultArity(t *testing.T) {
	tests := []struct {
		n, arity int
	}{
		{2, 2}, {4, 2}, {8, 2}, {16, 2}, {64, 3}, {256, 3}, {1024, 4}, {4096, 4},
	}
	for _, tt := range tests {
		if got := DefaultArity(tt.n); got != tt.arity {
			t.Errorf("DefaultArity(%d) = %d, want %d", tt.n, got, tt.arity)
		}
	}
}

func TestLevelsAndPositions(t *testing.T) {
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 9})
	tr := New(mem, Config{Procs: 9, Arity: 3})
	if tr.Levels() != 2 {
		t.Fatalf("levels = %d, want 2", tr.Levels())
	}
	if len(tr.Nodes()[0]) != 3 || len(tr.Nodes()[1]) != 1 {
		t.Fatalf("node counts = %d,%d want 3,1", len(tr.Nodes()[0]), len(tr.Nodes()[1]))
	}
	g, p := tr.position(7, 0)
	if g != 2 || p != 1 {
		t.Fatalf("position(7,0) = (%d,%d), want (2,1)", g, p)
	}
	g, p = tr.position(7, 1)
	if g != 0 || p != 2 {
		t.Fatalf("position(7,1) = (%d,%d), want (0,2)", g, p)
	}
}

func TestSingleProcess(t *testing.T) {
	_, _, procs := newWorld(t, memsim.DSM, 1, 1)
	r := &sched.Runner{Procs: asSched(procs), StopWhen: sched.AllPassagesAtLeast(asSched(procs), 5)}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutualExclusionNoCrashes(t *testing.T) {
	for _, n := range []int{2, 4, 6, 9, 16} {
		for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
			t.Run(fmt.Sprintf("n%d_%s", n, model), func(t *testing.T) {
				_, tr, procs := newWorld(t, model, n, 1)
				cks := nodeCheckers(tr, procs)
				var fail error
				r := &sched.Runner{
					Procs: asSched(procs),
					Sched: sched.Random{Src: xrand.New(uint64(n)*17 + uint64(model))},
					OnStep: func(sched.StepEvent) {
						if fail != nil {
							return
						}
						if countCS(procs) > 1 {
							fail = fmt.Errorf("two clients in outer CS")
							return
						}
						for _, ck := range cks {
							if err := ck.Check(); err != nil {
								fail = err
								return
							}
						}
					},
					StopWhen: sched.AllPassagesAtLeast(asSched(procs), 8),
				}
				if err := r.Run(); err != nil {
					t.Fatal(err)
				}
				if fail != nil {
					t.Fatal(fail)
				}
			})
		}
	}
}

func TestMutualExclusionWithCrashes(t *testing.T) {
	for _, n := range []int{4, 9} {
		for seed := uint64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("n%d_seed%d", n, seed), func(t *testing.T) {
				_, tr, procs := newWorld(t, memsim.DSM, n, 1)
				cks := nodeCheckers(tr, procs)
				rng := xrand.New(seed*733 + uint64(n))
				var fail error
				r := &sched.Runner{
					Procs: asSched(procs),
					Sched: sched.Random{Src: rng},
					Crash: &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 80, Budget: 25},
					OnStep: func(sched.StepEvent) {
						if fail != nil {
							return
						}
						if countCS(procs) > 1 {
							fail = fmt.Errorf("two clients in outer CS")
							return
						}
						for _, ck := range cks {
							if err := ck.Check(); err != nil {
								fail = err
								return
							}
						}
					},
					StopWhen: sched.AllPassagesAtLeast(asSched(procs), 5),
					MaxSteps: 1 << 23,
				}
				if err := r.Run(); err != nil {
					t.Fatalf("wedged: %v (crashes=%d)", err, r.TotalCrashes())
				}
				if fail != nil {
					t.Fatal(fail)
				}
			})
		}
	}
}

func TestCSRAfterCrashInCS(t *testing.T) {
	_, _, procs := newWorld(t, memsim.DSM, 4, 3)
	d := sched.NewDriver(asSched(procs)...)
	if !d.StepUntilSection(0, sched.CS) {
		t.Fatal("no CS")
	}
	for id := 1; id < 4; id++ {
		d.Step(id, 40)
	}
	d.Crash(0)
	for i := 0; i < 400; i++ {
		for id := 1; id < 4; id++ {
			d.Step(id, 1)
			if countCS(procs) > 0 {
				t.Fatal("CSR violated across the tree")
			}
		}
	}
	steps := 0
	for procs[0].Section() != sched.CS {
		d.Step(0, 1)
		steps++
		if steps > 10 {
			t.Fatalf("crashed holder took %d steps to re-enter CS, want wait-free", steps)
		}
	}
}

func TestExitBoundedByHeight(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		_, tr, procs := newWorld(t, memsim.DSM, n, 0)
		d := sched.NewDriver(asSched(procs)...)
		if !d.StepUntilSection(0, sched.CS) {
			t.Fatal("no CS")
		}
		if !d.StepUntilSection(0, sched.Exit) {
			t.Fatal("no Exit")
		}
		bound := 4 + 10*tr.Levels()
		steps := 0
		for procs[0].Section() == sched.Exit {
			d.Step(0, 1)
			steps++
			if steps > bound {
				t.Fatalf("n=%d: exit exceeded %d steps", n, bound)
			}
		}
	}
}

func TestPassageRMRScalesWithHeight(t *testing.T) {
	// Theorem 3 (experiment E4): crash-free passage cost is O(levels), i.e.
	// O(log n / log log n) — not O(n), not O(1). Verify an envelope
	// proportional to the height.
	const perLevel = 45.0
	for _, n := range []int{4, 16, 64} {
		mem, tr, procs := newWorld(t, memsim.DSM, n, 0)
		r := &sched.Runner{
			Procs:    asSched(procs),
			Sched:    sched.Random{Src: xrand.New(uint64(n))},
			StopWhen: sched.AllPassagesAtLeast(asSched(procs), 6),
			MaxSteps: 1 << 24,
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		for i, p := range procs {
			per := float64(mem.Stats(i).RMRs) / float64(p.Passages())
			if limit := perLevel * float64(tr.Levels()); per > limit {
				t.Errorf("n=%d proc %d: %.1f RMRs/passage > %.1f (O(height) expected)",
					n, i, per, limit)
			}
		}
	}
}

func TestCrashStormThenQuiescence(t *testing.T) {
	_, _, procs := newWorld(t, memsim.DSM, 6, 1)
	rng := xrand.New(4242)
	r := &sched.Runner{
		Procs: asSched(procs),
		Sched: sched.Random{Src: rng},
		Crash: &sched.RandomCrash{Src: rng.Fork(), RateN: 1, RateD: 25, Budget: 80},
	}
	r.StopWhen = func() bool { return r.TotalCrashes() >= 80 }
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	base := procs[0].Passages()
	r2 := &sched.Runner{
		Procs:    asSched(procs),
		Sched:    sched.Random{Src: rng.Fork()},
		StopWhen: sched.AllPassagesAtLeast(asSched(procs), base+5),
	}
	if err := r2.Run(); err != nil {
		t.Fatalf("no progress after storm: %v", err)
	}
}

func TestStarvationFreedomSkewed(t *testing.T) {
	_, _, procs := newWorld(t, memsim.DSM, 4, 0)
	r := &sched.Runner{
		Procs:    asSched(procs),
		Sched:    sched.NewWeightedRandom(xrand.New(6), []int{30, 30, 30, 1}),
		StopWhen: func() bool { return procs[3].Passages() >= 3 },
	}
	if err := r.Run(); err != nil {
		t.Fatalf("light process starved: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	mem := memsim.New(memsim.Config{Model: memsim.DSM, Procs: 1})
	for _, cfg := range []Config{{Procs: 0}, {Procs: 4, Arity: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(mem, cfg)
		}()
	}
}
