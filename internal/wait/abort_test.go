package wait

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAbortChainCancelVsWakeRace storms the WaitDone cancel path against
// concurrent Wakes on a capacity-1 semaphore: half the wait episodes carry
// an already-closed cancel channel, so cancellations constantly race the
// wake handout and the retire path's absorb-and-forward fires for real.
// The referee checks both halves of the contract under -race: mutual
// exclusion never exceeds the semaphore's capacity (a forwarded wake is a
// hint, not a grant), and every worker finishes (a wake aimed at a
// cancelling waiter is forwarded, never dropped — one drop would park some
// open-channel waiter forever).
func TestAbortChainCancelVsWakeRace(t *testing.T) {
	for _, st := range []Strategy{Yield(), SpinThenPark(64)} {
		st := st
		t.Run(st.String(), func(t *testing.T) {
			const capacity = 1
			const workers = 8
			iters := 2000
			if testing.Short() {
				iters = 400
			}

			var c Chain
			var sem atomic.Int32
			sem.Store(capacity)
			tryAcquire := func() bool {
				for {
					v := sem.Load()
					if v == 0 {
						return false
					}
					if sem.CompareAndSwap(v, v-1) {
						return true
					}
				}
			}
			free := func() bool { return sem.Load() > 0 }

			closed := make(chan struct{})
			close(closed)
			open := make(chan struct{})
			defer close(open)

			var held atomic.Int32
			var cancels atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						// First attempt of each acquisition races a closed
						// cancel channel against the wake traffic; after a
						// cancellation, wait for real so the loop always
						// makes progress.
						done := closed
						if (w+i)%2 == 0 {
							done = open
						}
						for !tryAcquire() {
							if !c.WaitDone(st, free, done) {
								cancels.Add(1)
								done = open
							}
						}
						if h := held.Add(1); h > capacity {
							t.Errorf("%d holders of a capacity-%d semaphore", h, capacity)
						}
						// Yield while holding so peers pile up on the chain —
						// without this the scheduler runs each worker's whole
						// loop in one quantum and nothing ever waits.
						runtime.Gosched()
						held.Add(-1)
						sem.Add(1)
						c.Wake()
					}
				}(w)
			}

			finished := make(chan struct{})
			go func() { wg.Wait(); close(finished) }()
			select {
			case <-finished:
			case <-time.After(60 * time.Second):
				t.Fatal("storm stalled: a wake aimed at a cancelling waiter was dropped")
			}
			if c.Waiters() != 0 {
				t.Fatalf("%d waiters still registered after the storm", c.Waiters())
			}
			if cancels.Load() == 0 {
				t.Fatal("storm exercised no cancellations; the race under test never ran")
			}
		})
	}
}
