package wait

import (
	"sync"
	"sync/atomic"
)

// Chain is the engine's multi-waiter primitive: an unbounded FIFO set of
// wait episodes that any number of goroutines can join, with peers
// handing out wakes one at a time (Wake). It is the building block for
// condition-style waits that the single-episode Cell cannot express — a
// lease pool where every Release should unblock exactly one of
// arbitrarily many parked acquirers.
//
// Each registered waiter gets its own Cell, so the actual blocking runs on
// the same generation-stamped spin words as every other wait in the stack
// and inherits the engine's crash-safety and strategy tuning unchanged.
// List maintenance is under a plain mutex: registration and wake handout
// happen only on contended slow paths (an uncontended acquirer never
// touches the chain), where a microsecond of serialization is noise next
// to the wait itself, and the mutex removes whole classes of lock-free
// list hazards (ABA on node reuse, lost unlink on cancellation).
//
// # The no-lost-wake contract
//
// Wait(st, cond) registers the caller, then re-checks cond, and only then
// sleeps; Wake pops the oldest registered waiter and delivers a wake to
// its episode. A waker that changes the condition before calling Wake
// therefore cannot be missed: either the waiter was registered in time to
// be popped, or its post-registration cond re-check observes the change
// and Wait cancels. A cancellation that loses the race with a concurrent
// pop absorbs the incoming wake and passes it on (Wake again), so a wake
// handed to a canceling waiter is forwarded, never dropped.
//
// Waiter nodes are recycled through a per-Chain free list, so steady-state
// waits allocate nothing once the chain has seen its high-water mark of
// concurrent waiters.
type Chain struct {
	mu         sync.Mutex
	head, tail *chainNode // FIFO of registered waiters
	free       *chainNode // recycled nodes, linked through next
	// count mirrors the registered-waiter total so Wake on an empty chain
	// (every uncontended Release) costs one atomic load, not a mutex
	// round-trip. It is maintained under mu but read without it; see Wake
	// for why the race is benign.
	count atomic.Int32
}

type chainNode struct {
	cell   Cell
	next   *chainNode
	queued bool // still linked in the waiter FIFO (guarded by Chain.mu)
}

// Wait registers the caller on the chain, re-checks cond, and if cond is
// still false sleeps under st until a peer's Wake reaches it. A true cond
// after registration cancels the wait (forwarding any wake that was
// already aimed at it), so the caller can use the classic pattern
//
//	for !tryAcquire() {
//		chain.Wait(st, resourceFree)
//	}
//
// without ever losing a wake to the register/release race. Spurious
// returns are allowed (a forwarded wake can briefly over-wake); callers
// must re-check their condition in a loop, as the pattern above does.
func (c *Chain) Wait(st Strategy, cond func() bool) {
	n, w := c.register(st)

	if cond() {
		c.retire(st, n, w)
		return
	}

	st.Sleep(w)
	c.putFree(n)
}

// WaitDone is Wait with a cancellation channel. It reports whether the
// wait ended by wake or condition (true — the caller should re-try its
// acquisition) rather than by cancellation (false). The no-lost-wake
// contract extends to the cancel path: a cancelled waiter that was already
// popped by a concurrent Wake absorbs the incoming wake — sleeping the
// bounded moment until it lands — and hands it to the next registered
// waiter, so a wake aimed at a departing waiter is forwarded, never
// dropped, and a cancellation that wins the race unlinks a node nobody has
// aimed a wake at. Either way the waiter's generation is retired before
// its node is recycled, settling the episode exactly once.
func (c *Chain) WaitDone(st Strategy, cond func() bool, done <-chan struct{}) bool {
	n, w := c.register(st)

	if cond() {
		c.retire(st, n, w)
		return true
	}

	if SleepDone(st, w, done) {
		c.putFree(n)
		return true
	}
	c.retire(st, n, w)
	return false
}

// register links a fresh episode for the caller at the chain's tail.
func (c *Chain) register(st Strategy) (*chainNode, *Waiter) {
	c.mu.Lock()
	n := c.free
	if n != nil {
		c.free = n.next
	} else {
		n = new(chainNode)
	}
	w := n.cell.Begin(st)
	n.next = nil
	n.queued = true
	if c.tail != nil {
		c.tail.next = n
	} else {
		c.head = n
	}
	c.tail = n
	c.count.Add(1)
	c.mu.Unlock()
	return n, w
}

// retire removes a waiter that no longer wants its wake (its condition came
// true on the re-check, or its wait was cancelled). If the node is still
// queued nobody has aimed a wake at it: unlink and recycle. If a waker
// already popped it, a wake is delivered or in flight — absorb it and hand
// it to the next waiter, who may still need it.
func (c *Chain) retire(st Strategy, n *chainNode, w *Waiter) {
	c.mu.Lock()
	if n.queued {
		c.unlink(n)
		n.next = c.free
		c.free = n
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	st.Sleep(w)
	c.Wake()
	c.putFree(n)
}

// unlink removes n from the waiter FIFO. Caller holds mu and has checked
// n.queued; the scan is linear but runs only on the rare cancel path.
func (c *Chain) unlink(n *chainNode) {
	var prev *chainNode
	for cur := c.head; cur != nil; prev, cur = cur, cur.next {
		if cur != n {
			continue
		}
		if prev == nil {
			c.head = cur.next
		} else {
			prev.next = cur.next
		}
		if c.tail == n {
			c.tail = prev
		}
		n.queued = false
		c.count.Add(-1)
		return
	}
	panic("wait: chain node queued but not linked")
}

func (c *Chain) putFree(n *chainNode) {
	c.mu.Lock()
	n.next = c.free
	c.free = n
	c.mu.Unlock()
}

// Wake delivers one wake: the oldest registered waiter is popped and its
// episode woken. On an empty chain it is a no-op costing one atomic load.
//
// The empty fast path cannot lose a wake to a registering waiter: a caller
// that made a resource available did so (in the seq-cst order of the
// resource's atomics) before loading count, while a waiter increments
// count before its cond re-check loads the resource state. If the waker
// reads count == 0, the waiter's increment came later, so its re-check
// comes after the release and observes the resource — the waiter cancels
// itself instead of sleeping.
func (c *Chain) Wake() {
	if c.count.Load() == 0 {
		return
	}
	c.mu.Lock()
	n := c.head
	if n == nil {
		c.mu.Unlock()
		return
	}
	c.head = n.next
	if c.head == nil {
		c.tail = nil
	}
	n.next = nil
	n.queued = false
	c.count.Add(-1)
	c.mu.Unlock()
	// Deliver outside the lock. The episode is necessarily live: its
	// waiter frees the node only after this wake reaches it (or, if it is
	// mid-cancel, it sleeps for exactly this wake and forwards it).
	n.cell.Wake()
}

// Broadcast wakes every currently registered waiter. It is the barrier
// primitive for state flips that invalidate every parked episode at once —
// a LockTable stripe reopening its migration gate, a lease pool whose
// active-port bound just grew — where handing out wakes one at a time
// would leave waiters parked behind a condition that already changed.
// Waiters registering concurrently with the broadcast are covered by the
// no-lost-wake contract unchanged: they re-check their condition after
// registration and cancel themselves if the flip already happened.
func (c *Chain) Broadcast() {
	if c.count.Load() == 0 {
		return
	}
	c.mu.Lock()
	n := c.head
	for x := n; x != nil; x = x.next {
		x.queued = false
		c.count.Add(-1)
	}
	c.head, c.tail = nil, nil
	c.mu.Unlock()
	// Deliver outside the lock, capturing each next link before its wake:
	// a woken waiter recycles its node (rewriting next) as soon as the wake
	// reaches it, so the traversal must be ahead of every delivery.
	for n != nil {
		next := n.next
		n.next = nil
		n.cell.Wake()
		n = next
	}
}

// Waiters reports how many waiters are currently registered — a racy
// snapshot for tests and introspection.
func (c *Chain) Waiters() int { return int(c.count.Load()) }
