package wait

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChainWakeOne: one Wake unblocks exactly one of several waiters, in
// FIFO order of registration.
func TestChainWakeOne(t *testing.T) {
	var c Chain
	var released atomic.Bool
	done := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			c.Wait(Yield(), released.Load)
			done <- i
		}()
		// Registration (the count increment) happens before the waiter can
		// sleep, so the next spawn observes a fixed FIFO position.
		waitFor(t, "registration", func() bool { return c.Waiters() == i+1 })
	}
	for i := 0; i < 3; i++ {
		c.Wake()
		select {
		case w := <-done:
			if w != i {
				t.Fatalf("wake %d reached waiter %d, want FIFO order", i, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("wake %d lost", i)
		}
	}
}

// TestChainCancel: a waiter whose condition turns true right after
// registration cancels itself without consuming anyone else's wake.
func TestChainCancel(t *testing.T) {
	var c Chain
	var cond atomic.Bool
	cond.Store(true)
	// cond already true: Wait must return immediately and leave the chain
	// empty.
	c.Wait(Yield(), cond.Load)
	if c.Waiters() != 0 {
		t.Fatalf("canceled waiter left the chain at %d waiters", c.Waiters())
	}
	// A Wake on the now-empty chain must not panic or block.
	c.Wake()
}

// TestChainNoLostWakeStorm is the contract test: total wakes handed out
// equals total waits unblocked, under heavy concurrency. Workers loop on a
// semaphore-like permit counter; every release wakes one waiter.
func TestChainNoLostWakeStorm(t *testing.T) {
	const workers = 16
	const itersPerWorker = 300
	var c Chain
	var permits atomic.Int64
	permits.Store(2)
	tryTake := func() bool {
		for {
			p := permits.Load()
			if p <= 0 {
				return false
			}
			if permits.CompareAndSwap(p, p-1) {
				return true
			}
		}
	}
	free := func() bool { return permits.Load() > 0 }
	var inside atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < itersPerWorker; i++ {
				for !tryTake() {
					c.Wait(SpinThenPark(8), free)
				}
				if n := inside.Add(1); n > 2 {
					t.Errorf("%d holders of a 2-permit semaphore", n)
				}
				inside.Add(-1)
				permits.Add(1)
				c.Wake()
			}
		}()
	}
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(60 * time.Second):
		t.Fatal("storm deadlocked: a wake was lost")
	}
	if c.Waiters() != 0 {
		t.Fatalf("%d waiters left registered after the storm", c.Waiters())
	}
}

// TestChainWakeDrainsAll: repeated Wakes unblock every registered waiter
// (the reclaim sweep's one-wake-per-freed-port pattern).
func TestChainWakeDrainsAll(t *testing.T) {
	const n = 8
	var c Chain
	var released atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !released.Load() {
				c.Wait(Yield(), released.Load)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Waiters() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters registered", c.Waiters(), n)
		}
		time.Sleep(time.Millisecond)
	}
	released.Store(true)
	for i := 0; i < n; i++ {
		c.Wake()
	}
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(10 * time.Second):
		t.Fatal("a waiter was stranded after n Wakes")
	}
}

// TestChainZeroAllocSteadyState: once the free list holds the high-water
// mark of nodes, a wait/wake round trip allocates nothing.
func TestChainZeroAllocSteadyState(t *testing.T) {
	var c Chain
	var cond atomic.Bool
	st := Yield()
	// Warm: one registration creates the node.
	cond.Store(true)
	c.Wait(st, cond.Load)
	if avg := testing.AllocsPerRun(200, func() {
		c.Wait(st, cond.Load) // cancels immediately; node recycled
	}); avg != 0 {
		t.Fatalf("steady-state chain wait allocs = %v, want 0", avg)
	}
	// And a real sleep/wake round trip, driven from a second goroutine.
	cond.Store(false)
	stop := make(chan struct{})
	var wakes atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if c.Waiters() > 0 {
				cond.Store(true)
				c.Wake()
				wakes.Add(1)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	if avg := testing.AllocsPerRun(50, func() {
		cond.Store(false)
		for !cond.Load() {
			c.Wait(st, cond.Load)
		}
	}); avg != 0 {
		t.Fatalf("sleep/wake round trip allocs = %v, want 0", avg)
	}
	close(stop)
}
