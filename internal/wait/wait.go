// Package wait is the busy-wait engine of the runtime lock stack: the
// publish-a-spin-word / set / wake / consume-and-recheck protocol that the
// paper's Signal object (Figure 2) and repair-lock tournament (internal/rlock)
// both build on, extracted once so every wait in the stack shares a single,
// tunable implementation.
//
// # Protocol
//
// A waiting process allocates a fresh Waiter (the paper's spin variable,
// Figure 2 line 5), publishes it in a Cell that its peers know about, then
// re-checks the condition it is waiting for and goes to sleep. A peer that
// changes the condition calls Cell.Wake, which delivers a wake to whichever
// Waiter is currently published. The freshness of the Waiter per publication
// is what makes re-execution after a crash safe: a stale wake aimed at an
// abandoned Waiter lands on garbage and is simply lost, and a recycled wake
// can never leak into a later wait (there is no later wait on that Waiter).
//
// Waits that must re-check a condition in a loop (the tournament lock's
// entry protocol) call Waiter.Consume after each wake and loop; spurious
// wakes are therefore always harmless.
//
// # Strategies
//
// How a Waiter passes the time between publishing and being woken is the
// Strategy: pure spinning with procyield-style backoff (lowest handoff
// latency, pathological when runnable waiters exceed GOMAXPROCS),
// spin-then-park on a channel (survives heavy oversubscription), or
// yielding to the Go scheduler on every probe (the conservative default).
// All three deliver wakes through the same Waiter state machine, so the
// crash-safety argument is strategy-independent.
package wait

import (
	"runtime"
	"sync/atomic"
)

// Waiter states. A Waiter moves Empty→Set on wake, Empty→Parked when the
// waiter blocks on its channel, Parked→Set on wake (with a channel send),
// and Set→Empty on Consume.
const (
	stateEmpty int32 = iota
	stateSet
	stateParked
)

// Waiter is one published spin word: the unit a single waiting process
// spins (or parks) on, allocated fresh for every publication.
type Waiter struct {
	state atomic.Int32
	// park carries at most one token per Parked episode; nil unless the
	// Waiter was created parkable.
	park  chan struct{}
	stats *Stats
}

// NewWaiter returns a fresh, unpublished Waiter. Parkable Waiters carry the
// channel that Park blocks on; non-parkable ones avoid the allocation.
func NewWaiter(parkable bool) *Waiter {
	w := &Waiter{}
	if parkable {
		w.park = make(chan struct{}, 1)
	}
	return w
}

// Woken reports whether a wake has been delivered since the last Consume.
func (w *Waiter) Woken() bool { return w.state.Load() == stateSet }

// Wake delivers a wake: it marks the Waiter set and, if the waiter is
// parked, hands it the park token. Safe to call concurrently and more than
// once; extra wakes collapse into one.
func (w *Waiter) Wake() {
	if w.state.Swap(stateSet) == stateParked {
		select {
		case w.park <- struct{}{}:
		default:
		}
	}
	if w.stats != nil {
		w.stats.Wakes.Add(1)
	}
}

// Consume clears a delivered wake so the Waiter can be waited on again
// (the tournament lock's consume-then-re-check discipline). Only the
// waiting process calls Consume.
func (w *Waiter) Consume() { w.state.Store(stateEmpty) }

// Park blocks until a wake is delivered, sleeping on the Waiter's channel.
// If the wake already arrived (or arrives while publishing the parked
// state), Park returns immediately. On a Waiter created without a channel
// it degrades to yielding.
func (w *Waiter) Park() {
	if w.park == nil {
		for !w.Woken() {
			runtime.Gosched()
		}
		return
	}
	if w.state.CompareAndSwap(stateEmpty, stateParked) {
		if w.stats != nil {
			w.stats.Parks.Add(1)
		}
		<-w.park
	}
}

// Cell is a publication slot: the shared word through which peers find the
// current Waiter (the Signal object's GoAddr, the tournament lock's
// GoAddr[p][l]). The zero Cell is empty and ready to use.
type Cell struct {
	w atomic.Pointer[Waiter]
}

// Publish installs w as the Cell's current Waiter, replacing any abandoned
// predecessor (whose pending wakes are thereby lost — deliberately).
func (c *Cell) Publish(w *Waiter) { c.w.Store(w) }

// Wake delivers a wake to the currently published Waiter, if any.
func (c *Cell) Wake() {
	if w := c.w.Load(); w != nil {
		w.Wake()
	}
}

// Reset empties the Cell. Used when the memory holding the Cell is
// recycled for a fresh protocol life.
func (c *Cell) Reset() { c.w.Store(nil) }

// Await publishes a fresh Waiter, re-checks cond, and sleeps until a wake
// arrives — the single-shot wait of the Signal object (Figure 2 lines 5–9).
// cond must become true before (in happens-before order) the corresponding
// Cell.Wake, which is exactly the set-bit-then-wake discipline of signal
// setters; Await re-checks it after publishing so a wake that raced ahead
// of the publication is never missed.
func (c *Cell) Await(st Strategy, cond func() bool) {
	w := st.New()
	c.Publish(w)
	if cond() {
		return
	}
	st.Sleep(w)
}

// Stats counts wait-engine events; attach one to a Strategy with
// Instrumented. Wakes is the RMR proxy on a CC machine: each wake is one
// remote write to another process's spin word, and each sleep that it
// terminates is the matching remote-read miss. Everything a strategy does
// between publication and wake (Spins, Parks) is local by construction.
type Stats struct {
	Publishes  atomic.Uint64 // Waiters created and published
	Sleeps     atomic.Uint64 // sleeps that found the wake not yet delivered
	Wakes      atomic.Uint64 // wake deliveries to a live Waiter
	Parks      atomic.Uint64 // sleeps that escalated to a channel park
	SpinRounds atomic.Uint64 // backoff rounds spent spinning
}

// Reset zeroes every counter (e.g. after a benchmark warm-up pass).
func (s *Stats) Reset() {
	s.Publishes.Store(0)
	s.Sleeps.Store(0)
	s.Wakes.Store(0)
	s.Parks.Store(0)
	s.SpinRounds.Store(0)
}

// Strategy is how a waiting process passes the time between publishing its
// Waiter and receiving a wake. Implementations must return from Sleep once
// the Waiter is woken.
type Strategy interface {
	// New allocates a fresh Waiter suitable for this strategy's Sleep.
	New() *Waiter
	// Sleep blocks until w has been woken (Woken reports true).
	Sleep(w *Waiter)
	// String names the strategy in benchmark output.
	String() string
}

// spin parameters: pause lengths double from minPause to maxPause; after
// spinYieldAfter fruitless rounds the spinner concedes one scheduler yield
// per round so oversubscribed workloads cannot livelock the runtime, while
// the wait stays spin-first.
const (
	minPause       = 4
	maxPause       = 4096
	spinYieldAfter = 1024
)

// spinSink defeats dead-code elimination of the pause loop without writing
// shared memory on the hot path (the store is unreachable).
var spinSink int

// procyield burns roughly n cycles locally, like runtime.procyield / the
// PAUSE instruction: no memory traffic, no scheduler interaction.
func procyield(n int) {
	acc := 0
	for i := 0; i < n; i++ {
		acc += i
	}
	if acc == -1 {
		spinSink = 1
	}
}

type yieldStrategy struct{}

// Yield returns the compatibility-default strategy: probe the Waiter and
// yield to the Go scheduler between probes — the runtime port's historical
// behavior (a bare runtime.Gosched loop).
func Yield() Strategy { return yieldStrategy{} }

func (yieldStrategy) New() *Waiter { return NewWaiter(false) }

func (yieldStrategy) Sleep(w *Waiter) {
	if w.Woken() {
		return
	}
	if w.stats != nil {
		w.stats.Sleeps.Add(1)
	}
	for !w.Woken() {
		runtime.Gosched()
	}
}

func (yieldStrategy) String() string { return "yield" }

type spinStrategy struct{}

// Spin returns the pure-spin strategy: procyield-style exponential backoff
// with no scheduler interaction until a generous budget is exhausted.
// Lowest wake-to-run latency; do not use when runnable waiters can exceed
// GOMAXPROCS.
func Spin() Strategy { return spinStrategy{} }

func (spinStrategy) New() *Waiter { return NewWaiter(false) }

func (spinStrategy) Sleep(w *Waiter) {
	if w.Woken() {
		return
	}
	if w.stats != nil {
		w.stats.Sleeps.Add(1)
	}
	pause := minPause
	for round := 0; !w.Woken(); round++ {
		procyield(pause)
		if pause < maxPause {
			pause <<= 1
		}
		if round >= spinYieldAfter {
			runtime.Gosched()
		}
		if w.stats != nil {
			w.stats.SpinRounds.Add(1)
		}
	}
}

func (spinStrategy) String() string { return "spin" }

type spinParkStrategy struct {
	rounds int
}

// SpinThenPark returns the oversubscription-friendly strategy: spin with
// backoff for the given number of rounds, then park on the Waiter's
// channel until the wake arrives. rounds <= 0 selects a small default.
func SpinThenPark(rounds int) Strategy {
	if rounds <= 0 {
		rounds = 64
	}
	return spinParkStrategy{rounds: rounds}
}

func (s spinParkStrategy) New() *Waiter { return NewWaiter(true) }

func (s spinParkStrategy) Sleep(w *Waiter) {
	if w.Woken() {
		return
	}
	if w.stats != nil {
		w.stats.Sleeps.Add(1)
	}
	pause := minPause
	for round := 0; round < s.rounds; round++ {
		if w.Woken() {
			return
		}
		procyield(pause)
		if pause < maxPause {
			pause <<= 1
		}
		if w.stats != nil {
			w.stats.SpinRounds.Add(1)
		}
	}
	w.Park()
}

func (s spinParkStrategy) String() string { return "spinpark" }

type instrumented struct {
	inner Strategy
	stats *Stats
}

// Instrumented wraps a strategy so every Waiter it creates records its
// events into stats — the RMR-proxy counters reported by cmd/rmebench.
func Instrumented(inner Strategy, stats *Stats) Strategy {
	return instrumented{inner: inner, stats: stats}
}

func (s instrumented) New() *Waiter {
	w := s.inner.New()
	w.stats = s.stats
	s.stats.Publishes.Add(1)
	return w
}

func (s instrumented) Sleep(w *Waiter) { s.inner.Sleep(w) }

func (s instrumented) String() string { return s.inner.String() }
