// Package wait is the busy-wait engine of the runtime lock stack: the
// publish-a-spin-word / set / wake / consume-and-recheck protocol that the
// paper's Signal object (Figure 2) and repair-lock tournament (internal/rlock)
// both build on, extracted once so every wait in the stack shares a single,
// tunable implementation.
//
// # Protocol
//
// A waiting process opens a wait episode on a Cell its peers know about
// (Cell.Begin), re-checks the condition it is waiting for, and goes to
// sleep on the Cell's Waiter. A peer that changes the condition calls
// Cell.Wake, which delivers a wake to whichever episode is currently open.
// Waits that must re-check a condition in a loop (the tournament lock's
// entry protocol) call Waiter.Consume after each wake and loop; spurious
// wakes are therefore always harmless.
//
// # Generations: why reuse is as crash-safe as fresh allocation
//
// The paper allocates a fresh spin variable per blocking wait (Figure 2
// line 5), and an earlier version of this package did the same: the
// freshness was the crash-safety argument, because a wake aimed at a spin
// word that a crashed process abandoned lands on garbage and is simply
// lost, never leaking into the re-executed wait's fresh word.
//
// This package gets the identical semantics without the allocation. Each
// Cell owns one reusable Waiter whose atomic word packs a 32-bit
// generation next to the wait state. Begin stamps a fresh generation
// (clearing the state); a waker snapshots the word once and then delivers
// its wake by CAS-ing the state only for the generation it snapshotted. A
// stale wake — one whose snapshot predates a crash-and-re-execute (or any
// republication) — carries an old generation, its CAS fails, and the wake
// is lost, exactly as if it had landed on an abandoned allocation. A wake
// whose snapshot follows the republication targets the live episode and is
// delivered. There is no third case, so the case analysis of the
// fresh-allocation argument carries over unchanged, and the crash-free
// blocking path performs zero allocations.
//
// The missed-wakeup argument also carries over. A setter changes the
// condition before (in the sequentially-consistent order of the word's
// atomics) it snapshots the word; the waiter stamps the generation before
// it re-checks the condition. If the snapshot precedes the stamp, the wake
// is lost — but then the condition change also precedes the stamp, and the
// waiter's post-stamp re-check observes it and never sleeps. If the
// snapshot follows the stamp, the wake is delivered to the live episode.
//
// Generations are 32-bit and wrap around; only equality is ever compared,
// so wraparound is harmless unless a waker stalls for exactly 2^32
// republications of one slot between its snapshot and its CAS.
//
// The park channel is part of the same reuse story: it is created once
// (lazily, by the parking strategy's first Attach on the slot) and reused
// by every later episode. A wake token sent to an episode that was
// abandoned after its waker committed the state transition can therefore
// surface in a later episode as a stale token; Park guards against that by
// re-checking the packed word after every channel receive and re-parking
// on tokens that do not correspond to a delivered wake.
//
// # Strategies
//
// How a Waiter passes the time between Begin and being woken is the
// Strategy: pure spinning with procyield-style backoff (lowest handoff
// latency, pathological when runnable waiters exceed GOMAXPROCS),
// spin-then-park on the reusable channel (survives heavy oversubscription),
// or yielding to the Go scheduler on every probe (the conservative
// default). All three deliver wakes through the same packed-word state
// machine, so the crash-safety argument is strategy-independent.
package wait

import (
	"runtime"
	"sync/atomic"
)

// Waiter states, held in the low bits of the packed word. A Waiter moves
// Empty→Set on wake, Empty→Parked when the waiter blocks on the channel,
// Parked→Set on wake (with a channel send), and Set→Empty on Consume.
// Begin moves any state to Empty while bumping the generation.
const (
	stateEmpty uint64 = iota
	stateSet
	stateParked

	stateMask uint64 = 3
	genShift         = 32
)

func pack(gen uint32, state uint64) uint64 { return uint64(gen)<<genShift | state }

func genOf(word uint64) uint32 { return uint32(word >> genShift) }

// Waiter is one reusable generation-stamped spin word: the unit a single
// waiting process spins (or parks) on. It is owned by its Cell and recycled
// for every episode; see the package comment for why that is as crash-safe
// as allocating it fresh.
type Waiter struct {
	// word packs (generation << genShift | state) into one atomic 64-bit
	// cell, so a wake can check the generation and deliver in a single CAS.
	word atomic.Uint64
	// ch is the reusable park token channel, created once by the parking
	// strategy's Attach and never replaced. It is written before (and read
	// after) operations on word, which order the plain accesses.
	ch chan struct{}
	// stats is the instrumentation sink bound at Begin; atomic because
	// stale wakers may read it concurrently with a rebind.
	stats atomic.Pointer[Stats]
}

// begin opens a fresh episode: bump the generation, clear the state, and
// drain any park token leaked by a waker of a dead episode. The Swap (not a
// plain store) is what hands the previous episode's happens-before edges —
// including the park channel's creation — to a replacement goroutine.
func (w *Waiter) begin() {
	g := genOf(w.word.Load()) + 1 // wraps at 2^32, deliberately
	w.word.Swap(pack(g, stateEmpty))
	if w.ch != nil {
		select {
		case <-w.ch:
		default:
		}
	}
}

// gen reports the current episode's generation (test hook; the waiter's own
// strategy code never needs it because only the waiter bumps it).
func (w *Waiter) gen() uint32 { return genOf(w.word.Load()) }

// Woken reports whether a wake has been delivered to the current episode
// since the last Consume.
func (w *Waiter) Woken() bool { return w.word.Load()&stateMask == stateSet }

// Consume clears a delivered wake so the Waiter can be waited on again
// (the tournament lock's consume-then-re-check discipline) without closing
// the episode: the generation is kept. It reports whether a wake was
// actually consumed.
//
// Consume is a CAS loop that only ever retires a Set state it observed: a
// Consume that finds no delivered wake writes nothing, so a wake landing
// between its load and its (non-)store is delivered, not clobbered. The
// earlier blind load-clear-store was safe only because every current
// caller happens to re-check its condition after consuming; the CAS form
// makes the no-lost-wake contract a property of the engine itself, so
// future callers (and spurious consumes generally) need no such
// discipline.
func (w *Waiter) Consume() bool {
	for {
		cur := w.word.Load()
		if cur&stateMask != stateSet {
			return false // nothing delivered; leave a racing wake intact
		}
		if w.word.CompareAndSwap(cur, cur&^stateMask) {
			return true
		}
	}
}

// wake delivers a wake to episode gen: CAS the state to Set only if the
// word still carries that generation. Returns whether the wake was
// delivered; a stale generation (the target episode was abandoned or
// completed) or an already-set state means it was lost or collapsed —
// deliberately, see the package comment.
func (w *Waiter) wake(gen uint32) bool {
	for {
		cur := w.word.Load()
		if genOf(cur) != gen || cur&stateMask == stateSet {
			return false
		}
		if w.word.CompareAndSwap(cur, pack(gen, stateSet)) {
			if cur&stateMask == stateParked {
				select {
				case w.ch <- struct{}{}:
				default: // a stale token already fills the buffer; it substitutes
				}
			}
			if st := w.stats.Load(); st != nil {
				st.Wakes.Add(1)
			}
			return true
		}
	}
}

// ParkDone is Park with a cancellation channel: it blocks until a wake is
// delivered or done is closed, and reports whether the episode was woken.
// A false return leaves the packed word as it stands (possibly Parked); the
// caller retires the episode (Cell.AwaitDone does) so a racing wake dies on
// its generation CAS instead of leaking into a later episode.
func (w *Waiter) ParkDone(done <-chan struct{}) bool {
	if w.ch == nil {
		for !w.Woken() {
			select {
			case <-done:
				return w.Woken()
			default:
			}
			runtime.Gosched()
		}
		return true
	}
	for {
		cur := w.word.Load()
		switch cur & stateMask {
		case stateSet:
			return true
		case stateEmpty:
			if !w.word.CompareAndSwap(cur, cur&^stateMask|stateParked) {
				continue
			}
			if st := w.stats.Load(); st != nil {
				st.Parks.Add(1)
			}
		}
		select {
		case <-w.ch:
		case <-done:
			return w.Woken()
		}
	}
}

// Park blocks until a wake is delivered to the current episode, sleeping on
// the Waiter's channel. A channel token is only a hint: tokens leaked by
// wakers of dead episodes wake Park spuriously, so it re-checks the packed
// word after every receive and re-parks until the wake is real. On a Waiter
// whose strategy never created the channel it degrades to yielding.
func (w *Waiter) Park() {
	if w.ch == nil {
		for !w.Woken() {
			runtime.Gosched()
		}
		return
	}
	for {
		cur := w.word.Load()
		switch cur & stateMask {
		case stateSet:
			return
		case stateEmpty:
			if !w.word.CompareAndSwap(cur, cur&^stateMask|stateParked) {
				continue
			}
			if st := w.stats.Load(); st != nil {
				st.Parks.Add(1)
			}
		}
		<-w.ch
	}
}

// Cell is a publication slot: the shared word through which peers find the
// current wait episode (the Signal object's GoAddr, the tournament lock's
// GoAddr[p][l]). It owns the one reusable Waiter every episode on this slot
// runs on. The zero Cell is empty and ready to use.
type Cell struct {
	w Waiter
}

// Begin opens a fresh wait episode on the Cell's Waiter and returns it:
// the replacement for allocating and publishing a fresh spin word. Any
// pending wakes aimed at earlier episodes are thereby lost — deliberately.
// The caller must re-check its wait condition after Begin and before
// sleeping (Await does this for the single-shot case).
func (c *Cell) Begin(st Strategy) *Waiter {
	st.Attach(&c.w)
	c.w.begin()
	return &c.w
}

// Wake delivers a wake to the episode currently open on the Cell, if any.
// The generation is snapshotted once: if the episode is republished after
// the snapshot, this wake is aimed at the abandoned episode and is lost.
func (c *Cell) Wake() {
	cur := c.w.word.Load()
	if cur&stateMask == stateSet {
		return // collapse duplicates without a CAS
	}
	c.w.wake(genOf(cur))
}

// Reset invalidates the Cell for a recycled protocol life (a pooled queue
// node starting a fresh passage): in-flight wakes aimed at the old life
// carry the old generation and die on their CAS.
func (c *Cell) Reset() {
	c.w.begin()
}

// Await opens an episode, re-checks cond, and sleeps until a wake arrives —
// the single-shot wait of the Signal object (Figure 2 lines 5–9). cond must
// become true before (in happens-before order) the corresponding Cell.Wake,
// which is exactly the set-bit-then-wake discipline of signal setters;
// Await re-checks it after stamping the generation so a wake that raced
// ahead of the stamp is never missed.
func (c *Cell) Await(st Strategy, cond func() bool) {
	w := c.Begin(st)
	if cond() {
		return
	}
	st.Sleep(w)
}

// AwaitDone is Await with a cancellation channel: it sleeps until a wake
// arrives or done is closed, and returns cond()'s final value — true when
// the wait ended woken (or the condition was already true), false only when
// the wait was cancelled with the condition still false. Checking cond once
// more after a cancelled sleep is what makes a cancel-vs-wake race settle
// deterministically: a waker that set the condition and delivered its wake
// concurrently with the cancellation is observed here, and the caller
// proceeds as woken.
//
// On cancellation the episode is retired (generation bumped) before the
// final cond check, so a racing wake aimed at it dies on its CAS — exactly
// the fate of a wake aimed at a crashed process's abandoned spin word. That
// is safe for condition-style waits, where wakes are hints over persistent
// state; callers whose wakes are consumable resources (one handed out per
// release) must forward a racing wake instead of dropping it, which is what
// Chain.WaitDone layers on top of this.
func (c *Cell) AwaitDone(st Strategy, cond func() bool, done <-chan struct{}) bool {
	w := c.Begin(st)
	if cond() {
		return true
	}
	if SleepDone(st, w, done) {
		return true
	}
	c.w.begin() // retire the cancelled episode: racing wakes die on their CAS
	return cond()
}

// Stats counts wait-engine events; attach one to a Strategy with
// Instrumented. Wakes is the RMR proxy on a CC machine: each wake is one
// remote write to another process's spin word, and each sleep that it
// terminates is the matching remote-read miss. Everything a strategy does
// between Begin and wake (Spins, Parks) is local by construction.
type Stats struct {
	Publishes  atomic.Uint64 // episodes opened (Cell.Begin calls)
	Sleeps     atomic.Uint64 // sleeps that found the wake not yet delivered
	Wakes      atomic.Uint64 // wake deliveries to a live episode
	Parks      atomic.Uint64 // sleeps that escalated to a channel park
	SpinRounds atomic.Uint64 // backoff rounds spent spinning
}

// Reset zeroes every counter (e.g. after a benchmark warm-up pass).
func (s *Stats) Reset() {
	s.Publishes.Store(0)
	s.Sleeps.Store(0)
	s.Wakes.Store(0)
	s.Parks.Store(0)
	s.SpinRounds.Store(0)
}

// Strategy is how a waiting process passes the time between opening its
// episode and receiving a wake. Implementations must return from Sleep once
// the Waiter is woken. A given Cell is meant to be driven by one strategy
// for its whole life (the lock stack fixes it at construction).
type Strategy interface {
	// Attach readies the Cell's reusable Waiter for one episode; it runs
	// before the generation stamp makes the episode live. The parking
	// strategy creates the reusable channel here (once); the instrumented
	// wrapper binds its counters here. It must not allocate on the
	// steady-state path.
	Attach(w *Waiter)
	// Sleep blocks until w has been woken (Woken reports true).
	Sleep(w *Waiter)
	// String names the strategy in benchmark output.
	String() string
}

// DoneSleeper is the optional cancellable face of a Strategy: a strategy
// that implements it can interrupt a Sleep when a cancellation channel
// closes. All strategies in this package implement it natively; SleepDone
// falls back to a yield-poll loop for foreign strategies that do not.
type DoneSleeper interface {
	// SleepDone blocks until w is woken or done is closed, and reports
	// whether the episode was woken (a wake that raced the cancellation
	// counts as woken). It must not return false while a wake is already
	// delivered.
	SleepDone(w *Waiter, done <-chan struct{}) bool
}

// SleepDone sleeps under st until a wake or a cancellation, reporting
// whether the episode was woken. Strategies that implement DoneSleeper are
// interrupted natively (a parked sleeper selects on done); others degrade
// to probing the Waiter and the channel in a yield loop.
func SleepDone(st Strategy, w *Waiter, done <-chan struct{}) bool {
	if ds, ok := st.(DoneSleeper); ok {
		return ds.SleepDone(w, done)
	}
	if w.Woken() {
		return true
	}
	if s := w.stats.Load(); s != nil {
		s.Sleeps.Add(1)
	}
	for !w.Woken() {
		select {
		case <-done:
			return w.Woken()
		default:
		}
		runtime.Gosched()
	}
	return true
}

// spin parameters: pause lengths double from minPause to maxPause; after
// spinYieldAfter fruitless rounds the spinner concedes one scheduler yield
// per round so oversubscribed workloads cannot livelock the runtime, while
// the wait stays spin-first.
const (
	minPause       = 4
	maxPause       = 4096
	spinYieldAfter = 1024
)

// spinSink defeats dead-code elimination of the pause loop without writing
// shared memory on the hot path (the store is unreachable).
var spinSink int

// procyield burns roughly n cycles locally, like runtime.procyield / the
// PAUSE instruction: no memory traffic, no scheduler interaction.
func procyield(n int) {
	acc := 0
	for i := 0; i < n; i++ {
		acc += i
	}
	if acc == -1 {
		spinSink = 1
	}
}

type yieldStrategy struct{}

// Yield returns the compatibility-default strategy: probe the Waiter and
// yield to the Go scheduler between probes — the runtime port's historical
// behavior (a bare runtime.Gosched loop).
func Yield() Strategy { return yieldStrategy{} }

func (yieldStrategy) Attach(*Waiter) {}

func (yieldStrategy) Sleep(w *Waiter) {
	if w.Woken() {
		return
	}
	if st := w.stats.Load(); st != nil {
		st.Sleeps.Add(1)
	}
	for !w.Woken() {
		runtime.Gosched()
	}
}

func (yieldStrategy) SleepDone(w *Waiter, done <-chan struct{}) bool {
	if w.Woken() {
		return true
	}
	if st := w.stats.Load(); st != nil {
		st.Sleeps.Add(1)
	}
	for !w.Woken() {
		select {
		case <-done:
			return w.Woken()
		default:
		}
		runtime.Gosched()
	}
	return true
}

func (yieldStrategy) String() string { return "yield" }

type spinStrategy struct{}

// Spin returns the pure-spin strategy: procyield-style exponential backoff
// with no scheduler interaction until a generous budget is exhausted.
// Lowest wake-to-run latency; do not use when runnable waiters can exceed
// GOMAXPROCS.
func Spin() Strategy { return spinStrategy{} }

func (spinStrategy) Attach(*Waiter) {}

func (spinStrategy) Sleep(w *Waiter) {
	if w.Woken() {
		return
	}
	st := w.stats.Load()
	if st != nil {
		st.Sleeps.Add(1)
	}
	pause := minPause
	for round := 0; !w.Woken(); round++ {
		procyield(pause)
		if pause < maxPause {
			pause <<= 1
		}
		if round >= spinYieldAfter {
			runtime.Gosched()
		}
		if st != nil {
			st.SpinRounds.Add(1)
		}
	}
}

func (spinStrategy) SleepDone(w *Waiter, done <-chan struct{}) bool {
	if w.Woken() {
		return true
	}
	st := w.stats.Load()
	if st != nil {
		st.Sleeps.Add(1)
	}
	pause := minPause
	for round := 0; !w.Woken(); round++ {
		select {
		case <-done:
			return w.Woken()
		default:
		}
		procyield(pause)
		if pause < maxPause {
			pause <<= 1
		}
		if round >= spinYieldAfter {
			runtime.Gosched()
		}
		if st != nil {
			st.SpinRounds.Add(1)
		}
	}
	return true
}

func (spinStrategy) String() string { return "spin" }

type spinParkStrategy struct {
	rounds int
}

// SpinThenPark returns the oversubscription-friendly strategy: spin with
// backoff for the given number of rounds, then park on the Waiter's
// reusable channel until the wake arrives. rounds <= 0 selects a small
// default.
func SpinThenPark(rounds int) Strategy {
	if rounds <= 0 {
		rounds = 64
	}
	return spinParkStrategy{rounds: rounds}
}

// Attach creates the slot's park channel on the first episode; every later
// episode reuses it (the channel's happens-before hand-off rides the
// generation stamp, see Waiter.begin).
func (s spinParkStrategy) Attach(w *Waiter) {
	if w.ch == nil {
		w.ch = make(chan struct{}, 1)
	}
}

func (s spinParkStrategy) Sleep(w *Waiter) {
	if w.Woken() {
		return
	}
	st := w.stats.Load()
	if st != nil {
		st.Sleeps.Add(1)
	}
	pause := minPause
	for round := 0; round < s.rounds; round++ {
		if w.Woken() {
			return
		}
		procyield(pause)
		if pause < maxPause {
			pause <<= 1
		}
		if st != nil {
			st.SpinRounds.Add(1)
		}
	}
	w.Park()
}

func (s spinParkStrategy) SleepDone(w *Waiter, done <-chan struct{}) bool {
	if w.Woken() {
		return true
	}
	st := w.stats.Load()
	if st != nil {
		st.Sleeps.Add(1)
	}
	pause := minPause
	for round := 0; round < s.rounds; round++ {
		if w.Woken() {
			return true
		}
		select {
		case <-done:
			return w.Woken()
		default:
		}
		procyield(pause)
		if pause < maxPause {
			pause <<= 1
		}
		if st != nil {
			st.SpinRounds.Add(1)
		}
	}
	return w.ParkDone(done)
}

func (s spinParkStrategy) String() string { return "spinpark" }

type instrumented struct {
	inner Strategy
	stats *Stats
}

// Instrumented wraps a strategy so every episode it drives records its
// events into stats — the RMR-proxy counters reported by cmd/rmebench.
func Instrumented(inner Strategy, stats *Stats) Strategy {
	return instrumented{inner: inner, stats: stats}
}

func (s instrumented) Attach(w *Waiter) {
	s.inner.Attach(w)
	w.stats.Store(s.stats)
	s.stats.Publishes.Add(1)
}

func (s instrumented) Sleep(w *Waiter) { s.inner.Sleep(w) }

func (s instrumented) SleepDone(w *Waiter, done <-chan struct{}) bool {
	return SleepDone(s.inner, w, done)
}

func (s instrumented) String() string { return s.inner.String() }
