package wait

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func strategies() []Strategy {
	return []Strategy{Yield(), Spin(), SpinThenPark(8)}
}

// TestWakeBeforeSleep: a wake that lands between Begin and Sleep must make
// Sleep return immediately (the re-check discipline).
func TestWakeBeforeSleep(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			w := c.Begin(st)
			c.Wake()
			done := make(chan struct{})
			go func() {
				st.Sleep(w)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("Sleep did not observe the earlier wake")
			}
		})
	}
}

// TestSleepThenWake: the ordinary blocking handshake under every strategy.
func TestSleepThenWake(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			w := c.Begin(st)
			done := make(chan struct{})
			go func() {
				st.Sleep(w)
				close(done)
			}()
			select {
			case <-done:
				t.Fatal("Sleep returned before any wake")
			case <-time.After(10 * time.Millisecond):
			}
			c.Wake()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("Sleep never released after Wake")
			}
		})
	}
}

// TestStaleWakeIsLost is the crash-safety argument of the whole engine: a
// wake whose generation snapshot predates a crash-and-re-execute must be
// lost, never leaking into the re-executed wait's fresh episode — the
// generation-stamped equivalent of the paper's fresh-spin-word-per-wait
// property (Figure 2 line 5).
func TestStaleWakeIsLost(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			c.Begin(st) // the pre-crash episode
			staleGen := c.w.gen()
			// The process "crashes" and re-executes its wait, which stamps a
			// fresh generation; a waker that snapshotted the word before the
			// crash now delivers its wake against the old generation.
			w := c.Begin(st)
			if c.w.wake(staleGen) {
				t.Fatal("stale wake reported as delivered")
			}
			if w.Woken() {
				t.Fatal("stale wake leaked into the fresh episode")
			}
			done := make(chan struct{})
			go func() {
				st.Sleep(w)
				close(done)
			}()
			select {
			case <-done:
				t.Fatal("fresh episode's Sleep released by a stale wake")
			case <-time.After(20 * time.Millisecond):
			}
			c.Wake() // a wake snapshotting the live generation is delivered
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("live episode never woken through the Cell")
			}
		})
	}
}

// TestGenerationWraparound starts the generation counter at the top of its
// 32-bit range: stamping across the wrap must keep stale wakes lost and
// live wakes delivered (only equality is ever compared).
func TestGenerationWraparound(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			c.w.word.Store(pack(math.MaxUint32-1, stateEmpty))
			c.Begin(st)
			if g := c.w.gen(); g != math.MaxUint32 {
				t.Fatalf("gen = %d, want MaxUint32", g)
			}
			preWrap := c.w.gen()
			w := c.Begin(st) // wraps to 0
			if g := c.w.gen(); g != 0 {
				t.Fatalf("gen after wrap = %d, want 0", g)
			}
			if c.w.wake(preWrap) {
				t.Fatal("pre-wrap stale wake delivered across the wrap")
			}
			if w.Woken() {
				t.Fatal("pre-wrap stale wake leaked across the wrap")
			}
			c.Wake()
			if !w.Woken() {
				t.Fatal("live wake not delivered in generation 0")
			}
			w.Consume()
			// One more full episode on the wrapped counter.
			w = c.Begin(st)
			done := make(chan struct{})
			go func() {
				st.Sleep(w)
				close(done)
			}()
			time.Sleep(2 * time.Millisecond)
			c.Wake()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("post-wrap episode never woken")
			}
		})
	}
}

// TestRepublishWakeStorm hammers Begin against concurrent Cell.Wake calls
// (run with -race): the crash-storm shape, where a slot is abandoned and
// re-stamped over and over while a peer keeps delivering wakes. Every
// episode that actually sleeps must be released, and the engine must not
// allocate fresh state to survive it.
func TestRepublishWakeStorm(t *testing.T) {
	for _, st := range []Strategy{Yield(), SpinThenPark(1)} {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			var cond atomic.Int64
			const iters = 3000
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // the crashing-and-recovering waiter
				defer wg.Done()
				for i := 0; i < iters; i++ {
					w := c.Begin(st)
					if i%3 == 0 {
						continue // "crash": abandon the episode unslept
					}
					for cond.Load() < int64(i) {
						st.Sleep(w)
						w.Consume()
					}
				}
				close(stop)
			}()
			go func() { // the waker
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					cond.Add(1)
					c.Wake()
					if i%64 == 0 {
						runtime.Gosched()
					}
				}
			}()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("republish/wake storm hung (lost wakeup)")
			}
		})
	}
}

// TestZeroAllocEpisodes pins the tentpole claim at the engine level: after
// the first episode (which may create the park channel), a full
// Begin/Wake/Sleep/Consume cycle allocates nothing under any strategy.
func TestZeroAllocEpisodes(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			w := c.Begin(st) // first episode pays the lazy channel, if any
			c.Wake()
			st.Sleep(w)
			avg := testing.AllocsPerRun(200, func() {
				w := c.Begin(st)
				c.Wake()
				st.Sleep(w)
				w.Consume()
			})
			if avg != 0 {
				t.Fatalf("allocs per episode = %v, want 0", avg)
			}
		})
	}
}

// TestConsumeAndRecheck drives the tournament lock's wait loop shape: each
// wake is consumed, the condition re-checked, and the same episode slept on
// again. Spurious wakes (delivered before the condition holds) must neither
// be missed nor double-counted.
func TestConsumeAndRecheck(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			var cond atomic.Int32
			const rounds = 5
			w := c.Begin(st)
			done := make(chan int)
			go func() {
				wakes := 0
				for cond.Load() < rounds {
					st.Sleep(w)
					w.Consume()
					wakes++
				}
				done <- wakes
			}()
			for i := 0; i < rounds; i++ {
				time.Sleep(time.Millisecond)
				cond.Add(1)
				c.Wake()
			}
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("consume-and-recheck loop hung")
			}
		})
	}
}

// TestParkWakeRace hammers the park/wake transition with minimal spin so
// the CAS-to-parked path races real wakes (run with -race). The episodes
// all reuse one Waiter and one channel — the reuse the generation stamp
// makes safe.
func TestParkWakeRace(t *testing.T) {
	st := SpinThenPark(1)
	var c Cell
	var turn atomic.Int32
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			w := c.Begin(st)
			for turn.Load() <= int32(i) {
				st.Sleep(w)
				w.Consume()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			turn.Add(1)
			c.Wake()
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}()
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("park/wake race test hung (lost wakeup)")
	}
}

// TestDoubleWakeCollapses: extra wakes on the same episode collapse into
// one and never corrupt a later park episode's token accounting.
func TestDoubleWakeCollapses(t *testing.T) {
	st := SpinThenPark(1)
	var c Cell
	w := c.Begin(st)
	c.Wake()
	c.Wake()
	st.Sleep(w) // returns immediately
	w.Consume()
	done := make(chan struct{})
	go func() {
		st.Sleep(w) // must actually block: both wakes were consumed as one
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("collapsed wake observed twice")
	case <-time.After(20 * time.Millisecond):
	}
	c.Wake()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never released")
	}
}

// TestStaleParkTokenIsAbsorbed forces the one token-leak window reuse
// opens: a waker commits its parked→set CAS, the episode dies before the
// token is consumed, and a later episode of the same slot parks. The stale
// token must wake that park only spuriously — Park re-checks and re-parks —
// and the real wake must still get through.
func TestStaleParkTokenIsAbsorbed(t *testing.T) {
	st := SpinThenPark(1)
	var c Cell
	w := c.Begin(st)
	// Park the first episode and wake it, leaving its token consumed; then
	// plant a stale token directly, modeling a waker that stalled between
	// its CAS and its send until after the next Begin's drain.
	go func() {
		time.Sleep(2 * time.Millisecond)
		c.Wake()
	}()
	st.Sleep(w)
	w = c.Begin(st)
	c.w.ch <- struct{}{} // the stale token lands after the drain
	done := make(chan struct{})
	go func() {
		st.Sleep(w) // spurious token must not release this sleep
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("stale park token released a live sleep")
	case <-time.After(20 * time.Millisecond):
	}
	c.Wake()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real wake lost after a stale token")
	}
}

// TestAwait covers the single-shot Signal-style wait: condition already
// true (no sleep) and condition set concurrently with the wake.
func TestAwait(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			var bit atomic.Bool
			bit.Store(true)
			c.Await(st, bit.Load) // returns without sleeping

			bit.Store(false)
			done := make(chan struct{})
			go func() {
				c.Await(st, bit.Load)
				close(done)
			}()
			time.Sleep(5 * time.Millisecond)
			bit.Store(true) // set the condition...
			c.Wake()        // ...then wake, as every setter in the stack does
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("Await never released")
			}
		})
	}
}

// TestInstrumented checks the RMR-proxy counters: one publish per Await,
// one wake per delivery, sleeps only when blocking happened.
func TestInstrumented(t *testing.T) {
	var stats Stats
	st := Instrumented(SpinThenPark(1), &stats)
	var c Cell
	var bit atomic.Bool
	done := make(chan struct{})
	go func() {
		c.Await(st, bit.Load)
		close(done)
	}()
	for stats.Publishes.Load() == 0 {
		runtime.Gosched()
	}
	time.Sleep(5 * time.Millisecond)
	bit.Store(true)
	c.Wake()
	<-done
	if got := stats.Publishes.Load(); got != 1 {
		t.Errorf("Publishes = %d, want 1", got)
	}
	if got := stats.Wakes.Load(); got != 1 {
		t.Errorf("Wakes = %d, want 1", got)
	}
	if got := stats.Sleeps.Load(); got != 1 {
		t.Errorf("Sleeps = %d, want 1", got)
	}
}

// TestOversubscribedHandoff runs a wake chain across far more goroutines
// than GOMAXPROCS under the parking strategy: every link must hand off
// without livelock even though almost all waiters are runnable-starved.
func TestOversubscribedHandoff(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	n := 32 * procs
	st := SpinThenPark(4)
	cells := make([]Cell, n)
	var sum atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := cells[i].Begin(st)
		wg.Add(1)
		go func(i int, w *Waiter) {
			defer wg.Done()
			st.Sleep(w)
			sum.Add(1)
			if i+1 < n {
				cells[i+1].Wake()
			}
		}(i, w)
	}
	cells[0].Wake()
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(60 * time.Second):
		t.Fatalf("oversubscribed handoff stalled at %d/%d", sum.Load(), n)
	}
}

// TestConsumeDoesNotClobberConcurrentWake pins the clobbered-wake window
// closed by the CAS form of Consume: a spurious Consume (one racing a wake
// that has not been delivered yet from its point of view) must never erase
// the wake. The old load-clear-store could read Empty, have the wake land,
// and then blindly store Empty over it. The invariant checked is exact:
// after both calls finish, either the Consume consumed the wake or the
// wake is still visible — never neither. Run under -race, the schedule
// churn makes the window hit reliably within the iteration budget.
func TestConsumeDoesNotClobberConcurrentWake(t *testing.T) {
	st := Yield()
	var c Cell
	iters := 50_000
	if testing.Short() {
		iters = 5_000
	}
	for i := 0; i < iters; i++ {
		w := c.Begin(st)
		var consumed atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			c.Wake()
		}()
		go func() {
			defer wg.Done()
			consumed.Store(w.Consume())
		}()
		wg.Wait()
		if !consumed.Load() && !w.Woken() {
			t.Fatalf("iteration %d: wake was clobbered by a spurious Consume", i)
		}
		if consumed.Load() && w.Woken() {
			t.Fatalf("iteration %d: wake both consumed and still pending", i)
		}
	}
}

// TestConsumeReportsDelivery pins Consume's return value: false on an
// empty episode, true exactly once per delivered wake.
func TestConsumeReportsDelivery(t *testing.T) {
	var c Cell
	w := c.Begin(Yield())
	if w.Consume() {
		t.Fatal("Consume on a fresh episode reported a wake")
	}
	c.Wake()
	if !w.Consume() {
		t.Fatal("Consume after Wake reported nothing")
	}
	if w.Consume() {
		t.Fatal("second Consume re-consumed the same wake")
	}
}
