package wait

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func strategies() []Strategy {
	return []Strategy{Yield(), Spin(), SpinThenPark(8)}
}

// TestWakeBeforeSleep: a wake that lands between publication and Sleep must
// make Sleep return immediately (the re-check discipline).
func TestWakeBeforeSleep(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			w := st.New()
			c.Publish(w)
			c.Wake()
			done := make(chan struct{})
			go func() {
				st.Sleep(w)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("Sleep did not observe the earlier wake")
			}
		})
	}
}

// TestSleepThenWake: the ordinary blocking handshake under every strategy.
func TestSleepThenWake(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			w := st.New()
			c.Publish(w)
			done := make(chan struct{})
			go func() {
				st.Sleep(w)
				close(done)
			}()
			select {
			case <-done:
				t.Fatal("Sleep returned before any wake")
			case <-time.After(10 * time.Millisecond):
			}
			c.Wake()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("Sleep never released after Wake")
			}
		})
	}
}

// TestStaleWakeIsLost is the crash-safety argument of the whole engine
// (signal.wait's fresh-boolean-per-wait property, Figure 2 line 5): a wake
// aimed at an abandoned Waiter — published by a process that then crashed —
// must be lost, never leaking into the re-executed wait's fresh Waiter.
func TestStaleWakeIsLost(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			abandoned := st.New()
			c.Publish(abandoned) // the pre-crash publication
			// The process "crashes" and re-executes its wait with a fresh
			// Waiter; a setter that loaded the old publication before the
			// crash now delivers its wake to the abandoned Waiter.
			fresh := st.New()
			c.Publish(fresh)
			abandoned.Wake() // the stale wake
			if fresh.Woken() {
				t.Fatal("stale wake leaked into the fresh Waiter")
			}
			done := make(chan struct{})
			go func() {
				st.Sleep(fresh)
				close(done)
			}()
			select {
			case <-done:
				t.Fatal("fresh Waiter's Sleep released by a stale wake")
			case <-time.After(20 * time.Millisecond):
			}
			c.Wake() // a wake through the Cell reaches the live Waiter
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("live Waiter never woken through the Cell")
			}
		})
	}
}

// TestConsumeAndRecheck drives the tournament lock's wait loop shape: each
// wake is consumed, the condition re-checked, and the same Waiter slept on
// again. Spurious wakes (delivered before the condition holds) must neither
// be missed nor double-counted.
func TestConsumeAndRecheck(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			var cond atomic.Int32
			const rounds = 5
			w := st.New()
			c.Publish(w)
			done := make(chan int)
			go func() {
				wakes := 0
				for cond.Load() < rounds {
					st.Sleep(w)
					w.Consume()
					wakes++
				}
				done <- wakes
			}()
			for i := 0; i < rounds; i++ {
				time.Sleep(time.Millisecond)
				cond.Add(1)
				c.Wake()
			}
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("consume-and-recheck loop hung")
			}
		})
	}
}

// TestParkWakeRace hammers the park/wake transition with minimal spin so
// the CAS-to-parked path races real wakes (run with -race).
func TestParkWakeRace(t *testing.T) {
	st := SpinThenPark(1)
	var c Cell
	var turn atomic.Int32
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			w := st.New()
			c.Publish(w)
			for turn.Load() <= int32(i) {
				st.Sleep(w)
				w.Consume()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			turn.Add(1)
			c.Wake()
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}()
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("park/wake race test hung (lost wakeup)")
	}
}

// TestDoubleWakeCollapses: extra wakes on the same Waiter collapse into one
// and never corrupt a later park episode's token accounting.
func TestDoubleWakeCollapses(t *testing.T) {
	st := SpinThenPark(1)
	w := st.New()
	var c Cell
	c.Publish(w)
	c.Wake()
	c.Wake()
	st.Sleep(w) // returns immediately
	w.Consume()
	done := make(chan struct{})
	go func() {
		st.Sleep(w) // must actually block: both wakes were consumed as one
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("collapsed wake observed twice")
	case <-time.After(20 * time.Millisecond):
	}
	c.Wake()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never released")
	}
}

// TestAwait covers the single-shot Signal-style wait: condition already
// true (no sleep) and condition set concurrently with the wake.
func TestAwait(t *testing.T) {
	for _, st := range strategies() {
		t.Run(st.String(), func(t *testing.T) {
			var c Cell
			var bit atomic.Bool
			bit.Store(true)
			c.Await(st, bit.Load) // returns without sleeping

			bit.Store(false)
			done := make(chan struct{})
			go func() {
				c.Await(st, bit.Load)
				close(done)
			}()
			time.Sleep(5 * time.Millisecond)
			bit.Store(true) // set the condition...
			c.Wake()        // ...then wake, as every setter in the stack does
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("Await never released")
			}
		})
	}
}

// TestInstrumented checks the RMR-proxy counters: one publish per Await,
// one wake per delivery, sleeps only when blocking happened.
func TestInstrumented(t *testing.T) {
	var stats Stats
	st := Instrumented(SpinThenPark(1), &stats)
	var c Cell
	var bit atomic.Bool
	done := make(chan struct{})
	go func() {
		c.Await(st, bit.Load)
		close(done)
	}()
	for stats.Publishes.Load() == 0 {
		runtime.Gosched()
	}
	time.Sleep(5 * time.Millisecond)
	bit.Store(true)
	c.Wake()
	<-done
	if got := stats.Publishes.Load(); got != 1 {
		t.Errorf("Publishes = %d, want 1", got)
	}
	if got := stats.Wakes.Load(); got != 1 {
		t.Errorf("Wakes = %d, want 1", got)
	}
	if got := stats.Sleeps.Load(); got != 1 {
		t.Errorf("Sleeps = %d, want 1", got)
	}
}

// TestOversubscribedHandoff runs a wake chain across far more goroutines
// than GOMAXPROCS under the parking strategy: every link must hand off
// without livelock even though almost all waiters are runnable-starved.
func TestOversubscribedHandoff(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	n := 32 * procs
	st := SpinThenPark(4)
	cells := make([]Cell, n)
	var sum atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := st.New()
		cells[i].Publish(w)
		wg.Add(1)
		go func(i int, w *Waiter) {
			defer wg.Done()
			st.Sleep(w)
			sum.Add(1)
			if i+1 < n {
				cells[i+1].Wake()
			}
		}(i, w)
	}
	cells[0].Wake()
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(60 * time.Second):
		t.Fatalf("oversubscribed handoff stalled at %d/%d", sum.Load(), n)
	}
}
