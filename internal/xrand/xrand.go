// Package xrand provides a small, deterministic, allocation-free
// pseudo-random number generator (splitmix64) used by every randomized
// component in this repository.
//
// The standard library's math/rand is deliberately avoided in the
// simulator and experiment stack: experiments must be exactly reproducible
// from a seed across runs and across packages, and package-level global
// generators are mutable shared state (which the style guides used by this
// repository forbid). An xrand.Rand is a two-word value that is safe to
// copy and cheap to fork. The one sanctioned exception is math/rand.Zipf
// in the wall-clock benchmark harness and its tests (always behind an
// explicitly seeded rand.New, never the global functions): those numbers
// are host-dependent by nature, and this package does not reimplement the
// rejection-inversion sampler.
package xrand

// Rand is a splitmix64 generator. The zero value is a valid generator with
// seed 0; use New to seed it explicitly.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
//
// This is Sebastiano Vigna's splitmix64: a 64-bit Weyl sequence passed
// through a variant of the MurmurHash3 finalizer. It passes BigCrush and is
// the recommended seeder for larger generators; its period of 2^64 is ample
// for every experiment in this repository.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return Mix64(r.state)
}

// Mix64 is the splitmix64 finalizer on its own: a full-avalanche,
// invertible 64-bit mixer. It is the repository's standard stateless hash
// — key-to-shard striping, counter-indexed crash schedules — so the magic
// constants live in exactly one place.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork returns a new generator whose stream is decorrelated from r's.
// Forking advances r by one value, so sibling forks differ.
func (r *Rand) Fork() *Rand {
	return &Rand{state: r.Uint64() ^ 0xd1b54a32d192ed03}
}
