package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 1000 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkDecorrelates(t *testing.T) {
	r := New(5)
	f := r.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork produced %d collisions in 1000 draws", same)
	}
}

func TestUniformityRough(t *testing.T) {
	// A coarse chi-square-free sanity check: each of 16 buckets should get
	// roughly 1/16 of 64k draws (within 20%).
	r := New(123)
	const draws = 1 << 16
	var buckets [16]int
	for i := 0; i < draws; i++ {
		buckets[r.Uint64()&15]++
	}
	want := draws / 16
	for i, got := range buckets {
		if got < want*8/10 || got > want*12/10 {
			t.Fatalf("bucket %d: got %d, want about %d", i, got, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
