package rme

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"github.com/rmelib/rme/internal/wait"
)

// White-box tests for the unexported runtime building blocks: the Signal
// object port and the recoverable tournament lock port.

func signalStrategies() []wait.Strategy {
	return []wait.Strategy{wait.Yield(), wait.Spin(), wait.SpinThenPark(8)}
}

func TestSignalSetThenWait(t *testing.T) {
	for _, st := range signalStrategies() {
		t.Run(st.String(), func(t *testing.T) {
			var s signal
			s.set()
			done := make(chan struct{})
			go func() {
				s.wait(st)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("wait() after set() did not return")
			}
		})
	}
}

func TestSignalWaitThenSet(t *testing.T) {
	for _, st := range signalStrategies() {
		t.Run(st.String(), func(t *testing.T) {
			var s signal
			done := make(chan struct{})
			go func() {
				s.wait(st)
				close(done)
			}()
			select {
			case <-done:
				t.Fatal("wait() returned before set()")
			case <-time.After(20 * time.Millisecond):
			}
			s.set()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("wait() never released after set()")
			}
		})
	}
}

func TestSignalReExecutedWaitAfterAbandonment(t *testing.T) {
	// A waiter "crashes" (abandons its published spin word); the
	// re-executed wait must still be released by a later set. This is the
	// paper's fresh-boolean-per-wait property (Figure 2, line 5).
	for _, st := range signalStrategies() {
		t.Run(st.String(), func(t *testing.T) {
			var s signal
			abandoned := make(chan struct{})
			go func() {
				// Simulate the pre-crash prefix of wait(): open the
				// episode, then die without sleeping.
				s.cell.Begin(st)
				close(abandoned)
			}()
			<-abandoned
			done := make(chan struct{})
			go func() {
				s.wait(st) // the recovered process re-executes wait()
				close(done)
			}()
			time.Sleep(10 * time.Millisecond)
			s.set()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("re-executed wait() was not released")
			}
		})
	}
}

func TestSignalForceSet(t *testing.T) {
	var s signal
	s.forceSet()
	if !s.isSet() {
		t.Fatal("forceSet did not set")
	}
	s.wait(wait.Yield()) // must return immediately (same goroutine: would hang otherwise)
}

func TestRLockMutualExclusion(t *testing.T) {
	const ports, iters = 8, 300
	m := New(ports) // provides the crash hook plumbing for rlock
	counter := 0    // race detector referee
	var inside atomic.Int32
	var wg sync.WaitGroup
	for p := 0; p < ports; p++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.rl.lock(m, port)
				if inside.Add(1) != 1 {
					t.Errorf("two ports inside the rlock CS")
				}
				counter++
				inside.Add(-1)
				m.rl.unlock(m, port)
			}
		}(p)
	}
	wg.Wait()
	if counter != ports*iters {
		t.Fatalf("counter = %d, want %d", counter, ports*iters)
	}
}

func TestRLockCSRStage(t *testing.T) {
	m := New(2)
	m.rl.lock(m, 0)
	// Simulate a crash while holding: a fresh lock call on the same port
	// must return immediately (stage = inCS).
	done := make(chan struct{})
	go func() {
		m.rl.lock(m, 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("rlock CSR re-entry blocked")
	}
	m.rl.unlock(m, 0)
}

func TestRLockExitReplayAfterCrash(t *testing.T) {
	// Crash mid-exit (stage exiting, flags partially cleared), then a new
	// lock call must replay the exit and acquire afresh — while a rival
	// also gets its turn.
	m := New(2)
	m.rl.lock(m, 0)
	m.rl.stage[0].Store(rlExiting) // crashed just after declaring the exit

	acquired := make(chan int, 2)
	go func() {
		m.rl.lock(m, 1)
		acquired <- 1
		m.rl.unlock(m, 1)
	}()
	go func() {
		m.rl.lock(m, 0) // replays the exit, then climbs
		acquired <- 0
		m.rl.unlock(m, 0)
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-acquired:
		case <-time.After(5 * time.Second):
			t.Fatal("exit replay deadlocked the rlock")
		}
	}
}

func TestMaximalQPathsShapes(t *testing.T) {
	a, b, c, d := new(qnode), new(qnode), new(qnode), new(qnode)
	sc := newRepairScratch(4)
	sc.reset()
	for _, v := range []*qnode{a, b, c, d} {
		sc.vertices[v] = struct{}{}
	}
	sc.out[a] = b // a -> b -> c, d isolated
	sc.out[b] = c
	paths := sc.maximalPaths()
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		switch p[0] {
		case a:
			if len(p) != 3 || p[2] != c {
				t.Fatalf("chain path wrong: %v", p)
			}
		case d:
			if len(p) != 1 {
				t.Fatalf("singleton path wrong: %v", p)
			}
		default:
			t.Fatalf("unexpected path start")
		}
	}
}

// TestAsyncPrewarmPerShard pins WithAsyncPrewarm's per-shard guarantee:
// every shard's free list gets the full n request nodes (each with its
// reusable cap-1 grant channel) and the dispatcher pool's full worker
// complement is spawned eagerly, so the submit side of a stripe's very
// first request allocates nothing. The pre-fix round-robin left shards
// with no nodes whenever n < Shards(), silently breaking the
// first-request claim on the unwarmed stripes.
func TestAsyncPrewarmPerShard(t *testing.T) {
	const shards, n = 8, 3
	tbl := NewLockTable(shards, 2, WithAsyncPrewarm(n), WithNodePool(true))
	defer tbl.Close()
	for i := range tbl.shards {
		sh := &tbl.shards[i]
		count := 0
		sh.reqMu.Lock()
		for r := sh.reqFree; r != nil; r = r.next {
			if r.ch == nil || cap(r.ch) != 1 {
				sh.reqMu.Unlock()
				t.Fatalf("shard %d: prewarmed node without a usable grant channel", i)
			}
			count++
		}
		sh.reqMu.Unlock()
		if count != n {
			t.Fatalf("shard %d prewarmed %d request nodes, want %d on every shard", i, count, n)
		}
	}
	if got, want := tbl.exec.spawned.Load(), tbl.exec.bound; got != want {
		t.Fatalf("prewarm spawned %d pool workers, want the full bound %d", got, want)
	}
	// Let the eagerly-spawned workers reach their idle parks (the first
	// park lazily creates each chain cell's reusable channel) so the
	// measurement below sees only the request-node path.
	time.Sleep(20 * time.Millisecond)
	if avg := testing.AllocsPerRun(50, func() {
		for i := range tbl.shards {
			r := tbl.shards[i].getReq()
			tbl.shards[i].putReq(r)
		}
	}); avg != 0 {
		t.Fatalf("prewarmed request-node path allocs = %v, want 0", avg)
	}
}

// TestShardStrategyHook pins WithShardStrategy's wiring: a non-nil hook
// result overrides the table-wide strategy for exactly that shard's lock
// and lease pool, a nil result keeps the default, and the override
// reaches every tree node when the shard backend is the arbitration tree.
func TestShardStrategyHook(t *testing.T) {
	tbl := NewLockTable(3, 2,
		WithWaitStrategy(YieldWaitStrategy()),
		WithShardStrategy(func(shard int) WaitStrategy {
			if shard == 1 {
				return SpinWaitStrategy()
			}
			return nil
		}))
	want := []string{"yield", "spin", "yield"}
	for i := range tbl.shards {
		if got := tbl.shards[i].m().(*Mutex).strat.String(); got != want[i] {
			t.Errorf("shard %d lock strategy = %s, want %s", i, got, want[i])
		}
		if got := tbl.shards[i].pool.strat.String(); got != want[i] {
			t.Errorf("shard %d lease strategy = %s, want %s", i, got, want[i])
		}
	}

	tree := NewLockTable(2, 8,
		WithShardBackend(TreeBackend),
		WithShardStrategy(func(shard int) WaitStrategy {
			if shard == 0 {
				return SpinParkWaitStrategy(16)
			}
			return nil
		}))
	wantTree := []string{"spinpark", "yield"}
	for i := range tree.shards {
		tm := tree.shards[i].m().(*TreeMutex)
		for l, level := range tm.nodes {
			for g, node := range level {
				if got := node.strat.String(); got != wantTree[i] {
					t.Errorf("tree shard %d node [%d][%d] strategy = %s, want %s", i, l, g, got, wantTree[i])
				}
			}
		}
	}
}

// TestPaddedLayout pins the cache-line padding contract of the hot shared
// arrays: one slot must never share a (prefetcher-paired) line with its
// neighbor. If a field is added to one of these types, grow its pad.
func TestPaddedLayout(t *testing.T) {
	if s := unsafe.Sizeof(paddedInt32{}); s%cacheLineSize != 0 {
		t.Errorf("paddedInt32 size %d not a multiple of %d", s, cacheLineSize)
	}
	if s := unsafe.Sizeof(paddedInt64{}); s%cacheLineSize != 0 {
		t.Errorf("paddedInt64 size %d not a multiple of %d", s, cacheLineSize)
	}
	if s := unsafe.Sizeof(paddedUint64{}); s%cacheLineSize != 0 {
		t.Errorf("paddedUint64 size %d not a multiple of %d", s, cacheLineSize)
	}
	if s := unsafe.Sizeof(paddedQnodePtr{}); s%cacheLineSize != 0 {
		t.Errorf("paddedQnodePtr size %d not a multiple of %d", s, cacheLineSize)
	}
	if s := unsafe.Sizeof(rlockNode{}); s%cacheLineSize != 0 {
		t.Errorf("rlockNode size %d not a multiple of %d", s, cacheLineSize)
	}
	if s := unsafe.Sizeof(portFree{}); s%cacheLineSize != 0 {
		t.Errorf("portFree size %d not a multiple of %d", s, cacheLineSize)
	}
}

// TestTreeLayout pins TreeMutex's memory layout: the per-process phase
// words must occupy one full padded cache line each (so neighboring
// processes' passage bookkeeping cannot false-share), and the per-process
// path table rows must exist for every (proc, level).
func TestTreeLayout(t *testing.T) {
	tm := NewTree(9)
	if s := unsafe.Sizeof(tm.phase[0]); s%cacheLineSize != 0 {
		t.Errorf("phase element size %d not a multiple of %d", s, cacheLineSize)
	}
	// The stride between adjacent phase words is the padded element size:
	// no two processes' phase words may share a line pair.
	stride := uintptr(unsafe.Pointer(&tm.phase[1])) - uintptr(unsafe.Pointer(&tm.phase[0]))
	if stride != unsafe.Sizeof(paddedInt64{}) {
		t.Errorf("phase stride %d, want %d", stride, unsafe.Sizeof(paddedInt64{}))
	}
	if stride < cacheLineSize {
		t.Errorf("phase stride %d below cache line %d", stride, cacheLineSize)
	}
	if len(tm.path) != tm.n {
		t.Fatalf("path table has %d rows, want %d", len(tm.path), tm.n)
	}
	for p, row := range tm.path {
		if len(row) != tm.levels {
			t.Fatalf("path[%d] has %d steps, want %d", p, len(row), tm.levels)
		}
	}
}

// TestTreePathTable cross-checks the precomputed path table against the
// position arithmetic it replaced: node index proc/arity^(l+1), port
// (proc/arity^l) mod arity.
func TestTreePathTable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 9, 16, 64, 100} {
		tm := NewTree(n)
		for p := 0; p < n; p++ {
			div := 1
			for l := 0; l < tm.levels; l++ {
				wantNode := tm.nodes[l][p/(div*tm.arity)]
				wantPort := (p / div) % tm.arity
				got := tm.path[p][l]
				if got.m != wantNode || got.port != wantPort {
					t.Fatalf("n=%d path[%d][%d] = (%p,%d), want (%p,%d)",
						n, p, l, got.m, got.port, wantNode, wantPort)
				}
				div *= tm.arity
			}
		}
	}
}
