package rme

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/rmelib/rme/internal/wait"
)

// The paper's model gives every process a fixed identity for life; the
// runtime port expresses that as ports, and until now the only safe usage
// was one pinned goroutine per port forever. PortLeaser relaxes that:
// arbitrary worker goroutines borrow a port for the duration of a passage
// (or any longer tenancy) and hand it back, with an epoch-stamped
// ownership word per port making stale hand-backs detectable and crashed
// lessees recoverable.
//
// Each port's word packs (epoch << 2 | state). A successful acquisition
// CASes free→held while bumping the epoch, so a PortLease is a capability
// for exactly one tenancy: releasing (or orphaning) it CASes against the
// full word, and a lease from an earlier tenancy fails its CAS and panics
// instead of corrupting the current lessee's port.
//
// Crashes reuse the library's Crash panic protocol: when a lessee dies
// mid-protocol, whoever observes the death (normally the deferred guard
// installed by OrphanOnCrash) marks the lease orphaned. An orphaned port
// still owns whatever protocol state the dead worker left behind — it may
// hold the lock's critical section, or sit mid-queue stalling its
// successors — so orphans must be reclaimed promptly: ReclaimOrphans runs
// a caller-supplied recovery (typically the recovery Lock/Unlock on the
// same port) and only then returns the port to the free pool.

// Lease states, held in the low bits of each port's ownership word.
const (
	leaseFree uint64 = iota
	leaseHeld
	leaseOrphaned
	leaseReclaiming

	leaseStateMask  uint64 = 3
	leaseEpochShift        = 2
)

// LeaseState is the observable tenancy state of one port.
type LeaseState int

const (
	// LeaseFree: the port is available for TryAcquire.
	LeaseFree LeaseState = iota
	// LeaseHeld: a live worker holds the port.
	LeaseHeld
	// LeaseOrphaned: the holder died; the port awaits a recovery sweep.
	LeaseOrphaned
	// LeaseReclaiming: a recovery sweep claimed the port and is running
	// the recovery protocol on it.
	LeaseReclaiming
)

func (s LeaseState) String() string {
	switch s {
	case LeaseFree:
		return "free"
	case LeaseHeld:
		return "held"
	case LeaseOrphaned:
		return "orphaned"
	case LeaseReclaiming:
		return "reclaiming"
	}
	return fmt.Sprintf("LeaseState(%d)", int(s))
}

// PortLease is the capability returned by a successful acquisition: the
// port index plus the tenancy epoch it was granted under. The zero value
// is not a valid lease. Leases are values; copy them freely, but release
// each tenancy exactly once.
type PortLease struct {
	// Port is the leased port (or process) index.
	Port int

	epoch uint64
}

// PortLeaser multiplexes a fixed set of port identities over arbitrary
// worker goroutines. It manages identities only — pair it with the
// Mutex/TreeMutex (or LockTable shard) whose ports it guards. All state is
// in the ownership words, so the leaser itself obeys the same
// crash-recovery story as the locks: a dead worker loses nothing that a
// replacement can't pick up from the word.
type PortLeaser struct {
	words []paddedUint64
	// active bounds which ports TryAcquire hands out: only ports below it
	// are offered to new tenancies. It starts at the full capacity and is
	// moved by Resize (and the LockTable's adaptive-pool policy); see
	// Resize for why moving it never weakens the fencing invariants.
	active atomic.Int64
	// clock rotates the scan start so independent acquirers don't all
	// hammer port 0's word.
	clock atomic.Uint64
	// strat is how blocked acquirers pass the time; chain is the engine's
	// multi-waiter list they park on, one wake handed out per port freed.
	strat wait.Strategy
	chain wait.Chain
	// freeCond is anyFree bound once at construction, so the Acquire slow
	// path does not allocate a method-value closure per wait.
	freeCond func() bool
}

// NewPortLeaser creates a leaser for ports identities, all initially free.
// Options select how blocked acquirers wait (WithWaitStrategy); a leaser
// paired with a lock should use the lock's strategy, as NewLockTable does
// for its shards. Other options are ignored.
func NewPortLeaser(ports int, opts ...Option) *PortLeaser {
	if ports <= 0 {
		panic("rme: NewPortLeaser needs at least one port")
	}
	cfg := buildConfig(opts)
	p := &PortLeaser{words: make([]paddedUint64, ports), strat: cfg.strat}
	p.active.Store(int64(ports))
	p.freeCond = p.anyFree
	return p
}

// anyFree reports whether some active port is currently free — the wake-up
// condition blocked acquirers re-check against the register/release race.
// Ports above the active bound are invisible here: a free deactivated port
// is not an acquisition opportunity, so waking a parked acquirer for it
// would be spurious.
func (p *PortLeaser) anyFree() bool {
	n := int(p.active.Load())
	for i := 0; i < n && i < len(p.words); i++ {
		if p.words[i].Load()&leaseStateMask == leaseFree {
			return true
		}
	}
	return false
}

// Ports returns the number of identities the leaser manages — its
// capacity, fixed at construction. The number currently offered to new
// tenancies is Active(), which Resize moves within [1, Ports()].
func (p *PortLeaser) Ports() int { return len(p.words) }

// Active returns the current active-port bound: how many of the leaser's
// ports new acquisitions are drawn from. Always in [1, Ports()].
func (p *PortLeaser) Active() int { return int(p.active.Load()) }

// Resize moves the active-port bound to n (clamped to [1, Ports()]) and
// returns the bound actually set. Growing immediately re-offers the
// reactivated ports (parked acquirers are woken to rescan); shrinking is
// lazy — ports at or above the new bound simply stop being handed out,
// while tenancies already on them run to their natural end (Release,
// orphan recovery, abort fix-up all work on any port of the capacity,
// active or not).
//
// Resizing preserves the lease fencing and orphan invariants, and the
// argument is worth stating because the adaptive table leans on it:
// Resize touches only the scan bound, never the ownership words. A port's
// epoch sequence therefore continues across any number of
// deactivations — a lease granted before a shrink still fails its CAS
// against any later tenancy of the port (stale hand-backs stay loud), and
// a port reactivated later resumes from its last epoch, not from zero, so
// no stale lease can ever alias a fresh one. Likewise every sweep
// (claimOrphans, InUse, State) scans the full capacity regardless of the
// bound, so a shrink can never hide an orphan from recovery: a dead
// tenancy on a deactivated port is claimed, healed, and freed exactly as
// if the bound had never moved.
func (p *PortLeaser) Resize(n int) int {
	if n < 1 {
		n = 1
	}
	if c := len(p.words); n > c {
		n = c
	}
	old := p.active.Swap(int64(n))
	if int64(n) > old {
		// Reactivated ports may already be free; parked acquirers must
		// rescan under the wider bound or they would sleep through them.
		p.chain.Broadcast()
	}
	return n
}

// grow raises the active bound by up to k ports (bounded by capacity),
// returning how many were added — the lock-free step the LockTable's
// work-stealing fallback uses from the acquire path. The caller that grew
// consumes the headroom itself, so no broadcast is needed here.
func (p *PortLeaser) grow(k int) int {
	for {
		a := p.active.Load()
		c := int64(len(p.words))
		if a >= c {
			return 0
		}
		n := a + int64(k)
		if n > c {
			n = c
		}
		if p.active.CompareAndSwap(a, n) {
			return int(n - a)
		}
	}
}

// TryAcquire claims a free port from the active set, bumping its epoch,
// and returns its lease. It fails (ok == false) only when no active port
// is currently free — orphaned ports do not count as free until a recovery
// sweep reclaims them, and ports above the Resize bound are not offered.
func (p *PortLeaser) TryAcquire() (l PortLease, ok bool) {
	n := int(p.active.Load())
	if n > len(p.words) {
		n = len(p.words)
	}
	// Reduce before converting: on 32-bit targets a truncated int(clock)
	// can be negative, and Go's % would keep the sign.
	start := int(p.clock.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		port := start + i
		if port >= n {
			port -= n
		}
		w := p.words[port].Load()
		if w&leaseStateMask != leaseFree {
			continue
		}
		epoch := (w >> leaseEpochShift) + 1
		if p.words[port].CompareAndSwap(w, epoch<<leaseEpochShift|leaseHeld) {
			return PortLease{Port: port, epoch: epoch}, true
		}
	}
	return PortLease{}, false
}

// Acquire claims a free port, waiting for one to be released (or
// reclaimed) if all are currently leased. Blocked acquirers park on the
// wait engine's multi-waiter chain under the leaser's wait strategy —
// every Release (and every port a reclaim sweep frees) hands out exactly
// one wake — so a queue of acquirers costs wakes, not burned scheduler
// quanta. The wait allocates nothing once the chain's node free list is
// warm. Liveness depends on orphans being reclaimed: if every port is
// orphaned and nobody sweeps, Acquire parks forever — run ReclaimOrphans
// from the same supervisor that observes worker deaths.
func (p *PortLeaser) Acquire() PortLease {
	for {
		if l, ok := p.TryAcquire(); ok {
			return l
		}
		p.chain.Wait(p.strat, p.freeCond)
	}
}

// AcquireDone is Acquire with a cancellation channel: it returns ok=false
// if done closes while every port is leased. The cancel path inherits the
// wait engine's no-lost-wake contract — a cancelled waiter that was already
// handed a Release's wake forwards it to the next parked acquirer (see
// wait.Chain.WaitDone) — so abandoning an acquisition can never strand a
// free port behind a dropped wake. A cancellation returns immediately
// without a final scan: done closing is a deadline, and the caller asked
// not to take a port past it.
func (p *PortLeaser) AcquireDone(done <-chan struct{}) (PortLease, bool) {
	for {
		if l, ok := p.TryAcquire(); ok {
			return l, true
		}
		if !p.chain.WaitDone(p.strat, p.freeCond, done) {
			return PortLease{}, false
		}
	}
}

// Release returns a held port to the free pool. It panics if the lease is
// stale (the tenancy was already released or orphaned): the epoch check is
// what makes a forgotten double-release loud instead of silently revoking
// a later lessee's port.
func (p *PortLeaser) Release(l PortLease) {
	if !p.transition(l, leaseHeld, leaseFree) {
		panic(fmt.Sprintf("rme: Release of stale lease (port %d, epoch %d, word now %s/%d)",
			l.Port, l.epoch, p.State(l.Port), p.epochOf(l.Port)))
	}
	p.chain.Wake() // one port freed: hand one parked acquirer its wake
}

// Orphan marks a held port's lessee as dead, scheduling the port for a
// recovery sweep. It is called by whoever observed the death — normally
// the deferred guard installed by OrphanOnCrash in the dying goroutine
// itself, whose panic is the library's model of a process crash. Orphan
// panics on a stale lease for the same reason Release does.
func (p *PortLeaser) Orphan(l PortLease) {
	if !p.transition(l, leaseHeld, leaseOrphaned) {
		panic(fmt.Sprintf("rme: Orphan of stale lease (port %d, epoch %d, word now %s/%d)",
			l.Port, l.epoch, p.State(l.Port), p.epochOf(l.Port)))
	}
}

// transition CASes port l.Port from (l.epoch, from) to (l.epoch, to).
func (p *PortLeaser) transition(l PortLease, from, to uint64) bool {
	if l.Port < 0 || l.Port >= len(p.words) {
		panic(fmt.Sprintf("rme: lease port %d out of range [0,%d)", l.Port, len(p.words)))
	}
	old := l.epoch<<leaseEpochShift | from
	return p.words[l.Port].CompareAndSwap(old, l.epoch<<leaseEpochShift|to)
}

// OrphanOnCrash runs f under a guard that marks the lease orphaned if f
// panics with an injected Crash (any other panic value passes through
// unmarked — it is a bug, not a modeled death). Wrap each protocol step a
// lessee performs with its leased identity:
//
//	l := leaser.Acquire()
//	leaser.OrphanOnCrash(l, func() { m.Lock(l.Port) })
//	... critical section ...
//	leaser.OrphanOnCrash(l, func() { m.Unlock(l.Port) })
//	leaser.Release(l)
//
// The guard runs in the dying goroutine while the panic unwinds, which is
// the runtime stand-in for the environment noticing a process death; the
// panic then continues to the caller's recovery harness.
func (p *PortLeaser) OrphanOnCrash(l PortLease, f func()) {
	defer p.orphanGuard(l)
	f()
}

// orphanGuard is OrphanOnCrash's deferred crash handler (a named method so
// the defer is open-coded and the crash-free path does not allocate).
func (p *PortLeaser) orphanGuard(l PortLease) {
	if r := recover(); r != nil {
		if _, ok := AsCrash(r); ok {
			p.Orphan(l)
		}
		panic(r)
	}
}

// State reports the tenancy state of one port. The answer is a racy
// snapshot: a concurrent acquire or sweep may have moved the word by the
// time the caller acts on it.
func (p *PortLeaser) State(port int) LeaseState {
	switch p.words[port].Load() & leaseStateMask {
	case leaseFree:
		return LeaseFree
	case leaseHeld:
		return LeaseHeld
	case leaseOrphaned:
		return LeaseOrphaned
	default:
		return LeaseReclaiming
	}
}

func (p *PortLeaser) epochOf(port int) uint64 {
	return p.words[port].Load() >> leaseEpochShift
}

// InUse counts ports not currently free (held, orphaned, or mid-reclaim) —
// a quiescence probe for shutdown and tests, with the same snapshot caveat
// as State.
func (p *PortLeaser) InUse() int {
	n := 0
	for i := range p.words {
		if p.words[i].Load()&leaseStateMask != leaseFree {
			n++
		}
	}
	return n
}

// ReclaimOrphans sweeps the table once: every port found orphaned is
// claimed, recovered by recoverPort, and returned to the free pool. It
// returns the number of ports reclaimed.
//
// Claiming happens for all orphans before any recovery completes, and the
// recoveries run concurrently (one goroutine each): a recovery typically
// runs the lock's recovery Lock on the port, and two orphans can be
// queued behind each other's dead nodes, so reclaiming them one at a time
// could deadlock. recoverPort must run its port's recovery to completion
// and must not panic — retry injected crashes internally (LockTable's
// sweep shows the pattern).
//
// The same claim-everything-first discipline must extend across pools
// when a sweep spans several (one tenancy can die holding several pools'
// ports — a LockTable batch — and their recoveries can depend on each
// other through the locks' queues); that is why LockTable.ReclaimWith
// drives the split claimOrphans/finishReclaim phases directly instead of
// calling this per shard.
//
// Ports orphaned after the sweep's claim pass are left for the next sweep;
// concurrent sweeps never claim the same port (the claim is a CAS on the
// epoch-stamped word).
func (p *PortLeaser) ReclaimOrphans(recoverPort func(port int)) int {
	claimed := p.claimOrphans(nil)
	if len(claimed) == 0 {
		return 0
	}
	var wg sync.WaitGroup
	for _, l := range claimed {
		wg.Add(1)
		go func(l PortLease) {
			defer wg.Done()
			recoverPort(l.Port)
			p.finishReclaim(l)
		}(l)
	}
	wg.Wait()
	return len(claimed)
}

// claimOrphans is the claim phase of a reclaim sweep: every orphan whose
// orphaned→reclaiming CAS this caller wins is appended to dst. The caller
// owes each claimed lease a recovery followed by finishReclaim.
func (p *PortLeaser) claimOrphans(dst []PortLease) []PortLease {
	for port := range p.words {
		w := p.words[port].Load()
		if w&leaseStateMask != leaseOrphaned {
			continue
		}
		l := PortLease{Port: port, epoch: w >> leaseEpochShift}
		if p.transition(l, leaseOrphaned, leaseReclaiming) {
			dst = append(dst, l)
		}
	}
	return dst
}

// finishReclaim returns a claimed, fully-recovered orphan to the free
// pool and hands a parked acquirer its wake.
func (p *PortLeaser) finishReclaim(l PortLease) {
	if !p.transition(l, leaseReclaiming, leaseFree) {
		panic(fmt.Sprintf("rme: reclaimed lease moved under the sweep (port %d)", l.Port))
	}
	p.chain.Wake()
}
