package rme_test

import (
	"sync"
	"sync/atomic"
	"testing"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

func TestPortLeaserBasics(t *testing.T) {
	p := rme.NewPortLeaser(2)
	if p.Ports() != 2 || p.InUse() != 0 {
		t.Fatalf("fresh leaser: ports=%d inuse=%d", p.Ports(), p.InUse())
	}
	a, ok := p.TryAcquire()
	b, ok2 := p.TryAcquire()
	if !ok || !ok2 || a.Port == b.Port {
		t.Fatalf("could not lease both ports: %v/%v %v/%v", a, ok, b, ok2)
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded with every port leased")
	}
	if p.State(a.Port) != rme.LeaseHeld {
		t.Fatalf("State(%d) = %v, want held", a.Port, p.State(a.Port))
	}
	p.Release(a)
	if p.State(a.Port) != rme.LeaseFree || p.InUse() != 1 {
		t.Fatalf("after release: state=%v inuse=%d", p.State(a.Port), p.InUse())
	}
	c := p.Acquire() // must hand back the freed port
	if c.Port != a.Port {
		t.Fatalf("Acquire leased port %d, want the freed %d", c.Port, a.Port)
	}
	p.Release(b)
	p.Release(c)
}

func TestPortLeaserStaleLeasePanics(t *testing.T) {
	p := rme.NewPortLeaser(1)
	l := p.Acquire()
	p.Release(l)
	l2 := p.Acquire() // new tenancy, new epoch
	defer p.Release(l2)
	defer func() {
		if recover() == nil {
			t.Fatal("stale Release did not panic")
		}
	}()
	p.Release(l) // stale: epoch moved on
}

func TestPortLeaserOrphanReclaim(t *testing.T) {
	p := rme.NewPortLeaser(3)
	l := p.Acquire()
	func() {
		defer func() {
			if _, ok := rme.AsCrash(recover()); !ok {
				t.Fatal("crash did not propagate out of OrphanOnCrash")
			}
		}()
		p.OrphanOnCrash(l, func() { panic(rme.Crash{Port: l.Port, Point: "test"}) })
	}()
	if p.State(l.Port) != rme.LeaseOrphaned {
		t.Fatalf("State = %v after crash, want orphaned", p.State(l.Port))
	}
	var recovered []int
	if n := p.ReclaimOrphans(func(port int) { recovered = append(recovered, port) }); n != 1 {
		t.Fatalf("ReclaimOrphans = %d, want 1", n)
	}
	if len(recovered) != 1 || recovered[0] != l.Port {
		t.Fatalf("recovered ports %v, want [%d]", recovered, l.Port)
	}
	if p.State(l.Port) != rme.LeaseFree || p.InUse() != 0 {
		t.Fatalf("after reclaim: state=%v inuse=%d", p.State(l.Port), p.InUse())
	}
	// A non-crash panic must pass through without orphaning.
	l = p.Acquire()
	func() {
		defer func() { recover() }()
		p.OrphanOnCrash(l, func() { panic("a real bug") })
	}()
	if p.State(l.Port) != rme.LeaseHeld {
		t.Fatalf("non-crash panic moved the lease to %v", p.State(l.Port))
	}
	p.Release(l)
}

// TestLeaseStormRace is the lease layer's -race storm: many more workers
// than ports acquire, sometimes die (Crash panic through OrphanOnCrash),
// and a supervisor sweeps orphans concurrently. The referee is per-port
// tenancy exclusivity: between acquire and hand-back exactly one worker
// may consider the port its own.
func TestLeaseStormRace(t *testing.T) {
	const ports, workers, iters = 4, 32, 200
	p := rme.NewPortLeaser(ports)
	owners := make([]atomic.Int32, ports)
	var crashes, reclaims atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < iters; i++ {
				l := p.Acquire()
				if owners[l.Port].Add(1) != 1 {
					t.Errorf("port %d leased to two workers at once", l.Port)
				}
				die := rng.Intn(5) == 0
				owners[l.Port].Add(-1)
				if die {
					func() {
						defer func() {
							if _, ok := rme.AsCrash(recover()); !ok {
								t.Error("lost a crash panic")
							}
						}()
						p.OrphanOnCrash(l, func() { panic(rme.Crash{Port: l.Port, Point: "storm"}) })
					}()
					crashes.Add(1)
					// The worker that observed the death sweeps, as a real
					// supervisor would; sweeps race each other on purpose.
					reclaims.Add(int64(p.ReclaimOrphans(func(int) {})))
				} else {
					p.Release(l)
				}
			}
		}(w)
	}
	wg.Wait()
	reclaims.Add(int64(p.ReclaimOrphans(func(int) {}))) // final sweep
	if p.InUse() != 0 {
		t.Fatalf("ports still in use after the storm: %d", p.InUse())
	}
	if crashes.Load() != reclaims.Load() {
		t.Fatalf("crashes %d != reclaims %d: orphan lost or double-reclaimed",
			crashes.Load(), reclaims.Load())
	}
	if crashes.Load() == 0 {
		t.Fatal("storm produced no crashes; referee never exercised")
	}
}

// TestLeasedMutexWorkers drives one k-ported Mutex from a rotating cast of
// worker goroutines via PortLeaser — the usage the lease layer exists for:
// no goroutine is pinned to a port, yet the port discipline (one live user
// per port) holds throughout.
func TestLeasedMutexWorkers(t *testing.T) {
	const ports, workers, iters = 3, 12, 150
	m := rme.New(ports, rme.WithNodePool(true))
	p := rme.NewPortLeaser(ports)
	var inside atomic.Int32
	counter := 0 // race-detector referee
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l := p.Acquire()
				m.Lock(l.Port)
				if inside.Add(1) != 1 {
					t.Error("two leased workers inside the CS")
				}
				counter++
				inside.Add(-1)
				m.Unlock(l.Port)
				p.Release(l)
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}
