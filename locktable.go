package rme

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/rmelib/rme/internal/wait"
	"github.com/rmelib/rme/internal/xrand"
)

// LockTable is the keyed lock service: it multiplexes an unbounded space
// of named resources (uint64 or string keys) onto a fixed arena of
// recoverable k-ported Mutexes, so millions of keys share O(shards·ports)
// of NVRAM-modeled lock state. Keys hash onto shards; each shard is one
// k-ported Mutex plus a PortLeaser, so up to ports goroutines per shard
// can be engaged with its lock at once — one holding, the rest queued —
// and any worker goroutine can lock any key without owning a port
// identity for life.
//
// # Striping semantics
//
// Mutual exclusion is provided per key, implemented by striping: keys that
// hash to the same shard share one lock, so locking a key excludes every
// key of its stripe, never fewer than the key itself. The trade is the
// classic one — coarser contention, bounded state. String keys are hashed
// to 64 bits before striping; two strings colliding in all 64 bits would
// alias to one key, which (like striping itself) can only make exclusion
// coarser, never unsound.
//
// Striping also shapes what multi-key locking is allowed. A goroutine
// must never hold one key while locking another key of the same table:
// if the two keys share a stripe it deadlocks against itself (it queues
// behind its own tenancy — no crash, so no sweep can free it), and even
// across stripes, ordering acquisitions by key value does not prevent
// ABBA deadlock because key order does not imply stripe order. Goroutines
// that need several keys at once must order their acquisitions by
// ShardIndex, locking at most one key per stripe (same-stripe keys are
// already mutually excluded by the stripe itself).
//
// # Crash model and recovery
//
// A worker that dies (panics with a Crash) inside Lock or Unlock leaves
// its shard port orphaned: the deferred guard installed around every
// protocol step marks the lease in the dying goroutine, the runtime
// stand-in for the environment noticing a process death. An orphaned port
// still owns its protocol state — it may hold the stripe's critical
// section, or sit mid-queue stalling the keys behind it — so the
// supervisor that catches the Crash panic should run Reclaim promptly.
// Reclaim sweeps every shard, runs the recovery Lock on each orphaned
// port (retrying injected crashes), releases it, and returns the port to
// the pool; progress of the whole stripe depends on it, exactly as RME
// progress depends on crashed processes restarting.
//
// # Shard backends
//
// Each shard's lock is one of the library's three recoverable lock
// shapes, selected at construction by WithShardBackend (see
// ShardBackend): the flat k-ported Mutex, the arbitration-tree TreeMutex,
// the recoverable MCS queue lock MCSMutex, or an automatic choice by port
// count. Every keyed contract in this file — striping, orphan recovery,
// zero-allocation warm passages, async and batch acquisition — is
// backend-independent: all shapes satisfy the same portLock surface and
// the same crash-recovery story, and the test suite proves the invariants
// against each.
//
// A LockTable must be created with NewLockTable. All methods are safe for
// concurrent use; the per-key contract is the usual one (Unlock a key only
// while holding it).
type LockTable struct {
	shards  []lockShard
	seed    uint64
	ports   int
	backend ShardBackend // resolved to a concrete shape, never Auto

	// strat configures the stripes' lease and gate waits; exec is the
	// shared dispatcher runtime the async tier runs on — a bounded pool
	// of workers multiplexed over every stripe's delivery work (see
	// dispatch.go; WithDispatcherPool sizes it, WithDispatcherSpin sizes
	// each worker's spin window before an idle park).
	strat wait.Strategy
	exec  executor

	// freeMu guards the recycled Batch free list (request nodes recycle
	// through per-shard lists — see lockShard — so the async hot path
	// never crosses a table-wide lock).
	freeMu    sync.Mutex
	batchFree *Batch
	closed    atomic.Bool

	// noAbortFixup disables the cooperative abort fix-up (test hook): a
	// cancelled waiter's tenancy is parked as an orphan instead of
	// self-repairing, and a cancelled-but-granted async request leaks its
	// grant instead of auto-abandoning — the two hazards the abort design
	// exists to prevent, reproducible on demand by the regression tests.
	noAbortFixup atomic.Bool

	// Self-management state (see supervisor.go). sup is the background
	// supervisor, nil unless WithSupervisor was given; migMu serializes
	// stripe-shape migrations (and SetCrashFunc, so an installed hook can
	// never be lost across a backend swap); slack is the table-wide pool of
	// port quota freed by shrunk stripes, spent by grows and steals;
	// adaptive/minPorts mirror the supervisor's pool policy knobs onto the
	// acquire path (the work-stealing fallback); supc is the always-present
	// SupervisorStats counter block.
	sup      *supervisor
	migMu    sync.Mutex
	slack    atomic.Int64
	adaptive bool
	minPorts int
	supc     supCounters
}

// portLock is the contract a shard's lock backend satisfies: a k-ported
// recoverable lock whose identities are dense ints 0..Ports()-1, with
// wait-free critical-section re-entry after a crash (Lock on the dead
// identity's port recovers its passage), a Held probe for
// died-in-critical-section detection, and the labeled crash-injection
// hook. Mutex (ports), TreeMutex (process indices), and MCSMutex (queue
// nodes) all satisfy it; everything above the shard — leases, striping,
// reclaim sweeps, the async and batch pipelines — is written against this
// surface only, so the shapes are interchangeable per arena.
type portLock interface {
	Lock(port int)
	Unlock(port int)
	Held(port int) bool
	Ports() int
	SetCrashFunc(fn CrashFunc)
	// LockDone is the abortable acquire: Lock that gives up when done
	// closes, returning false with the port left exactly as if its worker
	// had crashed at the abandoned step — so the one recovery story (a
	// Lock/Unlock pair on the port) also settles aborts. Each backend
	// implements the fix-up it already owns: flat runs its queue repair,
	// tree re-climbs and unwinds under the phase cursor, MCS repairs the
	// O(1) neighborhood of the abandoned node.
	LockDone(port int, done <-chan struct{}) bool
	// freeHint reports whether an arrival at port would currently acquire
	// without queuing — the racy fast-reject probe TryLock uses to keep
	// ordinary misses free of protocol state.
	freeHint(port int) bool
	// quiesceExport is the stripe-migration hook: it verifies the lock is
	// fully idle — no passage in flight on any port, every queue and
	// descriptor retired — and exports the installed crash-injection hook
	// so a replacement backend can inherit it. A false report means some
	// port still carries protocol state and a swap would corrupt it; the
	// migration barrier only calls this after draining the stripe's lease
	// pool, so false is a bail-out signal, not an expected answer.
	quiesceExport() (CrashFunc, bool)
}

var (
	_ portLock = (*Mutex)(nil)
	_ portLock = (*TreeMutex)(nil)
)

// ShardBackend names the lock shape a LockTable's shards are built from;
// see WithShardBackend.
type ShardBackend int

const (
	// AutoBackend (the default) picks by port count — a three-way
	// decision among the shapes' cost structures: FlatBackend up to
	// autoFlatPortThreshold ports per shard, MCSBackend from there to
	// autoMCSPortThreshold, TreeBackend past that. See the two threshold
	// constants for the rationale at each crossover.
	AutoBackend ShardBackend = iota
	// FlatBackend builds each shard from one flat k-ported Mutex — O(1)
	// RMR crash-free passages, Θ(k) queue repair on recovery.
	FlatBackend
	// TreeBackend builds each shard from a k-process arbitration
	// TreeMutex — O(log k / log log k) RMR passages with every repair
	// confined to one Θ(log k / log log k)-ported node, the paper's
	// Section 3.3 trade for large process counts.
	TreeBackend
	// MCSBackend builds each shard from a recoverable MCS queue lock
	// (MCSMutex) — O(1) RMR local-spin passages like the flat lock, but
	// with crash recovery confined to the O(1) neighborhood of the dead
	// node (predecessor re-link plus successor grant) instead of the flat
	// lock's Θ(k) port-table scan. Arrivals pay one short locked-descriptor
	// section per enqueue; see MCSMutex for the correctness argument.
	MCSBackend
)

// AutoBackend's crossovers. The decision weighs three costs: per-passage
// RMR, per-crash repair, and the enqueue-path overhead a shape charges
// crash-free callers.
const (
	// autoFlatPortThreshold is where AutoBackend stops choosing flat
	// shards. Up to this many ports the flat Mutex wins on simplicity:
	// its crash-free passage is O(1) RMR with no per-arrival descriptor
	// tax, and its Θ(k) repair scan is cheap while k is small. Past it,
	// the repair scan — serialized against every other repair of the
	// stripe by the flat lock's k-sized tournament — starts to dominate
	// crashy workloads, and MCS's constant-cost repair takes over.
	autoFlatPortThreshold = 32
	// autoMCSPortThreshold is where AutoBackend stops choosing MCS shards.
	// MCS keeps both the passage and the repair O(1), but a crash inside
	// its enqueue descriptor stalls every arrival of the stripe until the
	// orphan is reclaimed, and the blast radius of that stall grows with
	// the port count. Past this many ports the tree's bounded-blast-radius
	// story wins: each crash is confined to one arity-sized node, so the
	// stripe keeps admitting arrivals through its other subtrees at the
	// price of O(log k / log log k) levels per passage.
	autoMCSPortThreshold = 256
)

func (b ShardBackend) String() string {
	switch b {
	case AutoBackend:
		return "auto"
	case FlatBackend:
		return "flat"
	case TreeBackend:
		return "tree"
	case MCSBackend:
		return "mcs"
	}
	return fmt.Sprintf("ShardBackend(%d)", int(b))
}

// resolve maps AutoBackend to the concrete shape for a port count.
func (b ShardBackend) resolve(ports int) ShardBackend {
	if b != AutoBackend {
		return b
	}
	switch {
	case ports <= autoFlatPortThreshold:
		return FlatBackend
	case ports <= autoMCSPortThreshold:
		return MCSBackend
	default:
		return TreeBackend
	}
}

// lockShard is one stripe: a k-ported recoverable lock (flat, tree, or
// MCS — see portLock), the lease pool multiplexing workers onto its ports,
// and the key each leased port is currently locking.
type lockShard struct {
	// lk holds the stripe's lock behind an atomic pointer so the
	// supervisor can swap the backend live (see LockTable.migrateShard).
	// Everything that touches the lock loads it through m(); the swap
	// protocol guarantees the pointer never moves while any tenancy of the
	// stripe is in flight, so a tenancy may re-load it freely — every load
	// between its lease acquisition and release returns the same backend.
	lk      atomic.Pointer[portLock]
	backend atomic.Int32 // the ShardBackend lk currently holds
	// mk rebuilds the stripe's lock in a given shape with the construction
	// -time options (same instrumented strategy, same stats block), so a
	// migration's replacement backend reports into the same counters.
	mk func(ShardBackend) portLock
	// strat is the stripe's effective (instrumented) wait strategy — the
	// one gate and lease waits park under.
	strat wait.Strategy
	// gateClosed + gate are the stripe's migration barrier: while closed,
	// new tenancies park on the gate chain instead of taking leases, so
	// the stripe drains to quiescence and the backend can be swapped.
	// gateOpen/leaseCond are the wait conditions, bound once so the gated
	// slow path does not allocate.
	gateClosed atomic.Bool
	gate       wait.Chain
	gateOpen   func() bool
	leaseCond  func() bool
	pool       *PortLeaser
	// key[p] is the key port p's current tenancy is about: stored between
	// lease acquisition and the port's Lock, read by Held/Unlock scans.
	// Only meaningful while the port's lease is not free.
	key []atomic.Uint64
	// stats collects the stripe's wait-engine events: the table wraps
	// every shard's wait strategy with wait.Instrumented at construction,
	// so Wakes here is the stripe's RMR proxy (see LockTable.Stats).
	stats *wait.Stats
	// acquires counts completed tenancy acquisitions of the stripe —
	// sync, async, and batch — the "ops" denominator of Stats' wakes/op.
	acquires atomic.Uint64
	// aborts / timeouts count acquisitions shed before completion —
	// cancelled contexts and expired deadlines respectively — across every
	// context-aware entry point (LockContext, LockBatchContext,
	// LockAsyncContext). TryLock misses are not counted: a miss abandons
	// nothing, it declines to start.
	aborts   atomic.Uint64
	timeouts atomic.Uint64
	// disp is the stripe's async service state — the request inbox plus
	// the runnable flag word the shared executor schedules the stripe by
	// (see locktable_async.go and dispatch.go; the stripe owns no
	// dispatcher goroutine). reqMu/reqFree are its recycled request
	// nodes, per shard so independent stripes' pipelines do not contend
	// on one table-wide free list.
	disp    dispatcher
	reqMu   sync.Mutex
	reqFree *asyncReq
}

// m returns the stripe's current lock backend. Safe to call at any time;
// see the lk field for why a tenancy can re-load it between protocol steps.
func (sh *lockShard) m() portLock { return *sh.lk.Load() }

// tableSeedClock differentiates the default seeds of successive tables.
var tableSeedClock atomic.Uint64

// NewLockTable creates a keyed lock service striped over shards stripes of
// ports ports each. Options are threaded through to every shard's lock
// (wait strategy, node pooling); WithShardBackend selects the lock shape
// each shard is built from (flat Mutex, arbitration TreeMutex, or the
// automatic port-count choice — the default), WithShardStrategy overrides
// the wait strategy per shard for heterogeneous arenas, and WithTableSeed
// pins the key-to-shard mapping for reproducibility.
//
// Sizing: shards bounds how many keys can be held concurrently (one holder
// per stripe), ports bounds how many workers can be queued on one stripe
// before further arrivals wait for a lease. shards × ports is the arena's
// total identity count and the size of its permanent state.
func NewLockTable(shards, ports int, opts ...Option) *LockTable {
	if shards <= 0 {
		panic("rme: NewLockTable needs at least one shard")
	}
	if ports <= 0 {
		panic("rme: NewLockTable needs at least one port per shard")
	}
	cfg := buildConfig(opts)
	seed := cfg.seed
	if !cfg.seedSet {
		seed = xrand.Mix64(tableSeedClock.Add(1) * 0x9e3779b97f4a7c15)
	}
	backend := cfg.backend.resolve(ports)
	t := newTableArena(shards, ports, seed, backend, cfg, opts, nil)
	t.finishInit(cfg, false)
	return t
}

// newTableArena builds a table's permanent state — the stripes, their
// locks, lease pools, and key registers — without starting any background
// machinery (no supervisor, no dispatchers). NewLockTable and RestoreTable
// share it: the restore path needs the arena fully built but still inert
// so it can adopt the checkpointed lease words and critical sections
// single-threaded, before finishInit makes the table live. stripeBackend,
// when non-nil, overrides the table-wide backend per stripe (a restored
// arena reproduces whatever shapes the supervisor had migrated stripes to
// by checkpoint time).
func newTableArena(shards, ports int, seed uint64, backend ShardBackend, cfg config, opts []Option, stripeBackend []ShardBackend) *LockTable {
	t := &LockTable{
		shards:  make([]lockShard, shards),
		seed:    seed,
		ports:   ports,
		backend: backend,
		strat:   cfg.strat,
	}
	t.exec.init(t, cfg.dispatcherPool(), cfg.dispSpin)
	for i := range t.shards {
		// Resolve the shard's effective strategy (table-wide, or the
		// WithShardStrategy override), then wrap it with the stripe's
		// stats collector — the counters LockTable.Stats reports. The
		// wrap is outermost, so a caller-instrumented strategy's own sink
		// is superseded per episode; read the table's Stats instead of
		// wrapping when the table is the thing being measured.
		eff := cfg.strat
		if cfg.shardStrat != nil {
			if s := cfg.shardStrat(i); s != nil {
				eff = s
			}
		}
		stats := &wait.Stats{}
		// Append after the caller's options so the instrumented strategy
		// wins over a table-wide WithWaitStrategy.
		shOpts := append(append(make([]Option, 0, len(opts)+1), opts...),
			WithWaitStrategy(wait.Instrumented(eff, stats)))
		instrumented := wait.Instrumented(eff, stats)
		mk := func(b ShardBackend) portLock {
			switch b {
			case TreeBackend:
				return NewTree(ports, shOpts...)
			case MCSBackend:
				return NewMCS(ports, shOpts...)
			default:
				return New(ports, shOpts...)
			}
		}
		sh := &t.shards[i]
		sh.mk = mk
		sh.strat = instrumented
		sh.pool = NewPortLeaser(ports, shOpts...)
		sh.key = make([]atomic.Uint64, ports)
		sh.stats = stats
		b := backend
		if stripeBackend != nil {
			b = stripeBackend[i]
		}
		m := mk(b)
		sh.lk.Store(&m)
		sh.backend.Store(int32(b))
		sh.gateOpen = func() bool { return !sh.gateClosed.Load() }
		sh.leaseCond = func() bool { return sh.pool.anyFree() || sh.gateClosed.Load() }
	}
	return t
}

// finishInit starts a built arena's background machinery — the supervisor
// (eager-sweeping when asked; see supervisor.eager) and the async
// prewarm's request nodes and worker pool — and is the last step of both
// construction paths.
func (t *LockTable) finishInit(cfg config, eagerSweep bool) {
	if cfg.sup != nil {
		t.startSupervisor(*cfg.sup, eagerSweep)
	}
	if cfg.asyncPrewarm > 0 {
		// Warm every shard: the prewarm promise is per stripe (a request
		// node free list is per shard), so each shard gets the full count;
		// the executor's pool is spawned eagerly so the submit side never
		// pays a worker spawn either — see WithAsyncPrewarm.
		for i := range t.shards {
			sh := &t.shards[i]
			for j := 0; j < cfg.asyncPrewarm; j++ {
				sh.putReq(&asyncReq{ch: make(chan Grant, 1)})
			}
		}
		t.exec.spawnAll()
	}
}

// Shards returns the number of stripes.
func (t *LockTable) Shards() int { return len(t.shards) }

// Ports returns the per-shard port count.
func (t *LockTable) Ports() int { return t.ports }

// Backend returns the lock shape the table's shards were built from:
// FlatBackend, TreeBackend, or MCSBackend (an AutoBackend request is
// resolved at construction and reported as whichever shape it chose).
func (t *LockTable) Backend() ShardBackend { return t.backend }

// ShardStats is one stripe's observability snapshot; see LockTable.Stats.
type ShardStats struct {
	// Acquires counts completed tenancy acquisitions of the stripe —
	// synchronous, asynchronous, and batch — the "ops" denominator.
	Acquires uint64
	// Publishes / Wakes / Sleeps / Parks / SpinRounds are the stripe's
	// wait-engine event counters (see WaitStats): every blocking wait of
	// the stripe — lock hand-offs, lease waits — reports here. Wakes is
	// the RMR proxy on a CC machine: each wake is one remote write to
	// another goroutine's spin word.
	Publishes  uint64
	Wakes      uint64
	Sleeps     uint64
	Parks      uint64
	SpinRounds uint64
	// Aborts / Timeouts count acquisitions shed before completion on the
	// context-aware entry points: Timeouts are sheds whose context died of
	// context.DeadlineExceeded, Aborts every other cancellation. Together
	// they are the stripe's shed-load signal — the thing a deadline-aware
	// service watches to know it is over capacity. TryLock misses count in
	// neither (a miss declines to start; nothing was abandoned).
	Aborts   uint64
	Timeouts uint64
	// Orphans counts ports whose lessee died and whose recovery has not
	// finished (the per-stripe slice of LockTable.Orphans).
	Orphans int
	// InboxDepth is the stripe's pending async backlog: requests
	// submitted whose delivery has not yet acquired its tenancy (or
	// shed). A request leaves the count only once it holds a lease, so
	// InboxDepth and the lease-pool gauges overlap rather than leaving a
	// window — the invariant Quiesced's reasoning rests on.
	InboxDepth int
	// Backend is the lock shape currently behind the stripe — under a
	// supervisor with migration enabled, stripes diverge from the
	// construction-time choice, and this is where the divergence shows.
	// Zero-valued (AutoBackend) in a Total() aggregate, where a single
	// shape is meaningless.
	Backend ShardBackend
	// ActivePorts is the stripe's current lease-pool bound (see
	// PortLeaser.Resize): how many of its capacity ports new tenancies are
	// drawn from. Equal to the construction port count unless the adaptive
	// pool policy has resized the stripe.
	ActivePorts int
}

// WakesPerOp returns the stripe's wake count per completed acquisition —
// the per-op RMR proxy Auto's thresholds are judged by. Zero when the
// stripe has completed no acquisitions.
func (s ShardStats) WakesPerOp() float64 {
	if s.Acquires == 0 {
		return 0
	}
	return float64(s.Wakes) / float64(s.Acquires)
}

// TableStats is the table-wide observability snapshot: one ShardStats per
// stripe, in shard order, plus the supervisor's own counters (all zero on
// a table without WithSupervisor, except Steals which the work-stealing
// fallback can also drive) and the shared dispatcher runtime's pool
// gauges.
type TableStats struct {
	Shards     []ShardStats
	Supervisor SupervisorStats
	Dispatcher DispatcherStats
}

// Total aggregates every stripe's counters into one ShardStats.
func (ts TableStats) Total() ShardStats {
	var sum ShardStats
	for _, s := range ts.Shards {
		sum.Acquires += s.Acquires
		sum.Publishes += s.Publishes
		sum.Wakes += s.Wakes
		sum.Sleeps += s.Sleeps
		sum.Parks += s.Parks
		sum.SpinRounds += s.SpinRounds
		sum.Aborts += s.Aborts
		sum.Timeouts += s.Timeouts
		sum.Orphans += s.Orphans
		sum.InboxDepth += s.InboxDepth
		sum.ActivePorts += s.ActivePorts
	}
	return sum
}

// Stats returns a racy snapshot of the table's per-stripe observability
// counters: completed acquisitions, wait-engine events (wakes per op is
// the RMR proxy), pending orphans, and async inbox depth. The counters
// are cheap enough to leave always on — wait events are counted only on
// blocking episodes, which crash-free uncontended passages never open —
// so Stats can be polled from a monitoring loop in production.
//
// Because the table instruments every shard's strategy itself (the wrap
// is outermost), wrapping a strategy with your own instrumentation before
// passing it to NewLockTable will not observe the table's waits; poll
// Stats instead.
func (t *LockTable) Stats() TableStats {
	ts := TableStats{Shards: make([]ShardStats, len(t.shards))}
	for i := range t.shards {
		sh := &t.shards[i]
		s := &ts.Shards[i]
		s.Acquires = sh.acquires.Load()
		s.Publishes = sh.stats.Publishes.Load()
		s.Wakes = sh.stats.Wakes.Load()
		s.Sleeps = sh.stats.Sleeps.Load()
		s.Parks = sh.stats.Parks.Load()
		s.SpinRounds = sh.stats.SpinRounds.Load()
		s.Aborts = sh.aborts.Load()
		s.Timeouts = sh.timeouts.Load()
		for p := 0; p < sh.pool.Ports(); p++ {
			switch sh.pool.State(p) {
			case LeaseOrphaned, LeaseReclaiming:
				s.Orphans++
			}
		}
		s.InboxDepth = int(sh.disp.depth.Load())
		s.Backend = ShardBackend(sh.backend.Load())
		s.ActivePorts = sh.pool.Active()
	}
	ts.Supervisor = t.supc.snapshot()
	ts.Dispatcher = t.exec.stats()
	return ts
}

// ShardIndex returns the stripe key maps to, computed as the seeded
// splitmix64 finalizer of key XOR the table's seed, reduced mod Shards().
// The contract this implies, stated here because multi-key code builds on
// it directly:
//
//   - Collisions are deliberate and benign for safety: any two keys with
//     equal ShardIndex share one lock, so colliding keys exclude each
//     other — exclusion can only get coarser, never unsound. But they are
//     load-bearing for liveness: a goroutine that tries to hold two
//     same-stripe keys at once deadlocks against itself (the self-deadlock
//     documented on Do applies to every acquisition path, Lock and
//     LockAsync included, because the hazard is created here, by the
//     hash, not by any particular entry point).
//   - The key-to-stripe map is an arbitrary full-avalanche permutation:
//     nothing about the order of two keys survives into the order of
//     their stripes. Multi-key acquisition ordered by key value therefore
//     does NOT prevent ABBA deadlock; order by ShardIndex (as LockBatch
//     does internally), locking at most one key per stripe.
//   - The map is pure per table: fixed by (seed, Shards()) alone, stable
//     for the table's lifetime, and reproducible across runs only when
//     WithTableSeed pinned the seed.
func (t *LockTable) ShardIndex(key uint64) int {
	return int(xrand.Mix64(key^t.seed) % uint64(len(t.shards)))
}

func (t *LockTable) shardOf(key uint64) *lockShard {
	return &t.shards[t.ShardIndex(key)]
}

// hashString folds a string key to 64 bits (FNV-1a); the result feeds the
// same seeded shard mixer as native uint64 keys, so every *String method
// is exactly its uint64 twin applied to this digest. Two consequences
// worth stating explicitly: a full 64-bit collision between two strings
// aliases them to one key (they then share not just a stripe but Held
// identity — coarser exclusion, never unsound), and the same-stripe
// self-deadlock rule documented on ShardIndex and Do applies to string
// keys through their digests — "different strings" is no defense, only
// different ShardIndex values are.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Lock acquires the lock for key, waiting while the key's stripe is held
// (for this or any aliased key) and while all of the stripe's ports are
// leased. Crash-free calls allocate nothing once the shard's node pools
// are warm.
//
// Do not call Lock while already holding another key of this table unless
// the acquisitions are ordered by ShardIndex with at most one key per
// stripe — a second key of an already-held stripe deadlocks the caller
// against itself (see the striping notes on LockTable).
func (t *LockTable) Lock(key uint64) {
	sh := t.shardOf(key)
	l := t.acquireLease(sh)
	sh.key[l.Port].Store(key)
	sh.lockPort(l)
}

// acquireLease is the table's gated lease acquisition: every tenancy
// start — sync, async dispatcher, batch walk — comes through here rather
// than PortLeaser.Acquire, because two table-level concerns wrap the
// pool's own wait. First the migration gate: while the stripe's barrier
// is closed, entrants park on the gate chain instead of taking leases, so
// the stripe drains and the backend can be swapped (see migrateShard).
// Second the work-stealing fallback: a stripe that exhausts its active
// ports under skew grows itself out of the table's slack quota instead of
// parking, when the adaptive-pool policy is on.
func (t *LockTable) acquireLease(sh *lockShard) PortLease {
	l, _ := t.acquireLeaseDone(sh, nil)
	return l
}

// acquireLeaseDone is acquireLease with a cancellation channel (nil =
// wait forever); ok is false only if done closed first.
func (t *LockTable) acquireLeaseDone(sh *lockShard, done <-chan struct{}) (PortLease, bool) {
	for {
		if sh.gateClosed.Load() {
			if done == nil {
				sh.gate.Wait(sh.strat, sh.gateOpen)
			} else if !sh.gate.WaitDone(sh.strat, sh.gateOpen, done) {
				return PortLease{}, false
			}
			continue
		}
		if l, ok := sh.pool.TryAcquire(); ok {
			// Post-acquire gate re-check, the barrier's closing half of the
			// Dekker handshake: this CAS (seq-cst) precedes this load, and
			// the migration waiter stores gateClosed before scanning the
			// lease words — so if the gate was already closed when we
			// acquired, either this load sees it (we hand the port back and
			// park) or our CAS landed before the waiter's scan and the
			// barrier waits for this tenancy. Either way no tenancy can
			// straddle the backend swap.
			if sh.gateClosed.Load() {
				sh.pool.Release(l)
				continue
			}
			return l, true
		}
		if t.steal(sh) {
			continue
		}
		if done == nil {
			sh.pool.chain.Wait(sh.strat, sh.leaseCond)
		} else if !sh.pool.chain.WaitDone(sh.strat, sh.leaseCond, done) {
			return PortLease{}, false
		}
	}
}

// steal is the adaptive pool's work-stealing fallback: an acquirer that
// found every active port of its stripe leased takes one unit of the
// table's slack quota (banked by stripes the supervisor shrank) and
// raises its own stripe's active bound with it, bounded by the stripe's
// capacity. It reports whether a port was gained (the caller retries its
// TryAcquire immediately). With the adaptive policy off — or no slack
// banked — it does nothing and the acquirer parks as before.
func (t *LockTable) steal(sh *lockShard) bool {
	if !t.adaptive {
		return false
	}
	for {
		s := t.slack.Load()
		if s <= 0 {
			return false
		}
		if t.slack.CompareAndSwap(s, s-1) {
			break
		}
	}
	if sh.pool.grow(1) == 0 {
		// The stripe was already at capacity; return the quota.
		t.slack.Add(1)
		return false
	}
	t.supc.steals.Add(1)
	return true
}

// LockString is Lock for a string key.
func (t *LockTable) LockString(key string) { t.Lock(hashString(key)) }

// lockPort runs the port's recoverable Lock under the orphan-on-crash
// guard (named methods so the defers are open-coded: the crash-free keyed
// passage must not allocate).
func (sh *lockShard) lockPort(l PortLease) {
	defer sh.pool.orphanGuard(l)
	sh.m().Lock(l.Port)
	sh.acquires.Add(1)
}

func (sh *lockShard) unlockPort(l PortLease) {
	defer sh.pool.orphanGuard(l)
	sh.m().Unlock(l.Port)
}

// closedChan is the pre-closed cancellation channel TryLock hands to
// LockDone: "give up immediately unless the hand-off is already yours".
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// TryLock acquires key's lock only if it is immediately available: a free
// port on the stripe and no live passage to queue behind. It returns
// whether the lock was acquired; a true return is exactly a Lock(key) and
// must be paired with Unlock(key). Misses touch no protocol state on the
// common paths (no free port, or the stripe's lock visibly busy) and are
// not counted as aborts — a miss declines to start, it abandons nothing.
//
// TryLock is best-effort under contention, as every try-lock is: a stripe
// that frees concurrently with the probe can still miss. In the narrow
// race where the stripe looked free but a passage slipped in before this
// caller's enqueue, the attempt is abandoned through the same cooperative
// fix-up as a cancelled LockContext (the port self-repairs in the
// background); the miss report is unaffected.
func (t *LockTable) TryLock(key uint64) bool {
	sh := t.shardOf(key)
	if sh.gateClosed.Load() {
		return false // stripe mid-migration: a try-lock declines, not parks
	}
	l, ok := sh.pool.TryAcquire()
	if !ok {
		return false
	}
	if sh.gateClosed.Load() {
		// The migration barrier closed between the probe and the CAS (the
		// same Dekker re-check as acquireLeaseDone); hand the port back.
		sh.pool.Release(l)
		return false
	}
	sh.key[l.Port].Store(key)
	if !sh.m().freeHint(l.Port) {
		sh.pool.Release(l)
		return false
	}
	if !sh.lockPortDone(l, closedChan) {
		sh.abortTenancy(t, l)
		return false
	}
	return true
}

// TryLockString is TryLock for a string key.
func (t *LockTable) TryLockString(key string) bool { return t.TryLock(hashString(key)) }

// LockContext acquires the lock for key like Lock, but gives up when ctx
// is cancelled or its deadline passes, returning ctx's error. A nil return
// always transfers ownership — the caller holds the key and owes an
// Unlock, even if ctx was cancelled concurrently with the grant (the
// hand-off won the race). A non-nil return guarantees the caller holds
// nothing.
//
// A cancelled acquisition never strands its stripe. The departing waiter's
// port is left as if it had crashed at the abandoned step, and the waiter
// itself — not a supervisor — schedules the standard crash repair on it
// (the cooperative-abort model of Jayanti–Jayanti's abortable mutex line):
// the stripe's queue is fixed up in the background and the port returns to
// the lease pool without any Reclaim call. Sheds are counted per stripe in
// ShardStats.Aborts/Timeouts. Contexts that cannot be cancelled (no
// deadline, no cancel) take the plain Lock path unchanged; abort-free
// passages allocate nothing once the shard's pools are warm.
func (t *LockTable) LockContext(ctx context.Context, key uint64) error {
	sh := t.shardOf(key)
	if err := ctx.Err(); err != nil {
		sh.noteShed(err)
		return err
	}
	done := ctx.Done()
	if done == nil {
		t.Lock(key)
		return nil
	}
	l, ok := t.acquireLeaseDone(sh, done)
	if !ok {
		return sh.shed(ctx)
	}
	sh.key[l.Port].Store(key)
	if !sh.lockPortDone(l, done) {
		sh.abortTenancy(t, l)
		return sh.shed(ctx)
	}
	return nil
}

// LockContextString is LockContext for a string key.
func (t *LockTable) LockContextString(ctx context.Context, key string) error {
	return t.LockContext(ctx, hashString(key))
}

// lockPortDone runs the port's abortable Lock under the orphan-on-crash
// guard, bumping the stripe's acquire counter only when the lock was won.
func (sh *lockShard) lockPortDone(l PortLease, done <-chan struct{}) bool {
	defer sh.pool.orphanGuard(l)
	if !sh.m().LockDone(l.Port, done) {
		return false
	}
	sh.acquires.Add(1)
	return true
}

// shed records a cancelled acquisition on the stripe and returns the error
// the caller reports (ctx's, defensively defaulting to Canceled).
func (sh *lockShard) shed(ctx context.Context) error {
	err := ctx.Err()
	if err == nil {
		err = context.Canceled
	}
	sh.noteShed(err)
	return err
}

// noteShed classifies one shed: deadline expiries and everything else.
func (sh *lockShard) noteShed(err error) {
	if err == context.DeadlineExceeded {
		sh.timeouts.Add(1)
	} else {
		sh.aborts.Add(1)
	}
}

// abortTenancy retires a tenancy whose acquisition was abandoned mid-wait
// (a cancelled LockDone): the port's protocol state is exactly a crash at
// the abandoned step, and the departing caller — not a reclaim sweep — owns
// the repair. The lease moves held→reclaiming directly, never through
// orphaned, so no concurrent sweep can claim it; the fix-up goroutine then
// runs the standard recovery (Lock resumes and finishes the abandoned
// passage, Unlock releases it, injected crashes retried throughout) and
// returns the port to the pool. This is the cooperative-crash model of the
// abortable-RME constructions: abort reuses the crash-repair machinery each
// backend already has, from the aborting process's own hands.
func (sh *lockShard) abortTenancy(t *LockTable, l PortLease) {
	if !sh.pool.transition(l, leaseHeld, leaseReclaiming) {
		panic(fmt.Sprintf("rme: abort of stale lease (port %d)", l.Port))
	}
	if t.noAbortFixup.Load() {
		// Hazard mode (test hook): park the abandoned passage as an
		// orphan instead of repairing it. Until a manual Reclaim runs, the
		// abandoned node stalls every later arrival of the stripe — the
		// stranded-stripe hazard the cooperative fix-up exists to prevent.
		if !sh.pool.transition(l, leaseReclaiming, leaseOrphaned) {
			panic(fmt.Sprintf("rme: aborted lease moved under hazard parking (port %d)", l.Port))
		}
		return
	}
	go sh.reclaimAborted(l)
}

// reclaimAborted is the abort fix-up: the same recovery loop a reclaim
// sweep runs on an orphan, applied to the aborting caller's own port.
func (sh *lockShard) reclaimAborted(l PortLease) {
	for {
		if crashes(func() { sh.m().Lock(l.Port) }) {
			continue
		}
		if !crashes(func() { sh.m().Unlock(l.Port) }) {
			break
		}
	}
	sh.pool.finishReclaim(l)
}

// holderOf locates the caller's tenancy: the port whose lease is held,
// whose registered key matches, and which owns the stripe's critical
// section. Under the Unlock contract (the caller holds key's lock) exactly
// the caller's port satisfies all three — other ports with the same
// registered key are queued waiters, and no other port can be in the CS.
func (sh *lockShard) holderOf(key uint64) (PortLease, bool) {
	for p := range sh.key {
		if sh.key[p].Load() != key {
			continue
		}
		w := sh.pool.words[p].Load()
		if w&leaseStateMask != leaseHeld {
			continue
		}
		if sh.m().Held(p) {
			return PortLease{Port: p, epoch: w >> leaseEpochShift}, true
		}
	}
	return PortLease{}, false
}

// Unlock releases the lock for key. It panics if the calling goroutine's
// tenancy cannot be found — key is not held, or is held by a tenancy that
// crashed (an orphan is released by Reclaim, not Unlock).
func (t *LockTable) Unlock(key uint64) {
	sh := t.shardOf(key)
	l, ok := sh.holderOf(key)
	if !ok {
		panic(fmt.Sprintf("rme: Unlock of key %#x which is not held", key))
	}
	sh.unlockPort(l)
	sh.pool.Release(l)
}

// UnlockString is Unlock for a string key.
func (t *LockTable) UnlockString(key string) { t.Unlock(hashString(key)) }

// Held reports whether key's lock is currently held for key itself —
// including by an orphaned tenancy whose holder died inside the critical
// section (recovery harnesses ask exactly that). A stripe held for a
// different key of the same stripe reports false. The answer is a racy
// snapshot, meaningful to the caller only under external ordering (e.g.
// the caller itself holds the key, or the system is quiesced).
func (t *LockTable) Held(key uint64) bool {
	sh := t.shardOf(key)
	for p := range sh.key {
		if sh.key[p].Load() != key {
			continue
		}
		if sh.pool.words[p].Load()&leaseStateMask == leaseFree {
			continue
		}
		if sh.m().Held(p) {
			return true
		}
	}
	return false
}

// HeldString is Held for a string key.
func (t *LockTable) HeldString(key string) bool { return t.Held(hashString(key)) }

// Orphans counts ports whose lessee died and whose recovery has not
// finished (orphaned or mid-reclaim), across all shards. Zero means no
// sweep work is pending.
func (t *LockTable) Orphans() int {
	n := 0
	for i := range t.shards {
		pool := t.shards[i].pool
		for p := 0; p < pool.Ports(); p++ {
			switch pool.State(p) {
			case LeaseOrphaned, LeaseReclaiming:
				n++
			}
		}
	}
	return n
}

// InUse counts tenancies across all shards — ports held, orphaned, or
// mid-reclaim — the table-level form of PortLeaser.InUse, with the same
// racy-snapshot caveat. A batch contributes one tenancy per distinct
// stripe it holds.
func (t *LockTable) InUse() int {
	n := 0
	for i := range t.shards {
		n += t.shards[i].pool.InUse()
	}
	return n
}

// Quiesced reports whether the table has no work in flight: every port of
// every shard free — no live tenancies, no orphans awaiting recovery —
// and no async request pending anywhere in the shared dispatcher
// runtime. The pending half is load-bearing and covers the whole async
// pipeline, not just unread inboxes: a request counts as pending from
// its submission until its delivery holds a lease, so a stripe sitting
// on the executor's run queue, or a batch a worker has swapped but not
// yet delivered (it may be parked at a migration gate, holding nothing),
// keeps the table non-quiescent — the two regressions that motivated the
// check (the PR 8 inbox-depth fix and TestDispatchQuiescedPendingDelivery),
// and the condition the migration barrier's drain relies on.
//
// Like all inspection methods it is a racy snapshot; it is exact once
// submitters have stopped. That exactness needs the reads ordered
// pending-then-InUse: a request's pending count is released only after
// its lease is acquired, so reading all depths as zero first proves
// every accepted request has reached a lease, and a zero InUse
// afterwards proves those leases have since settled. The reverse order
// would let an in-flight delivery slip between the two reads.
func (t *LockTable) Quiesced() bool {
	for i := range t.shards {
		if t.shards[i].disp.depth.Load() != 0 {
			return false
		}
	}
	return t.InUse() == 0
}

// Reclaim is ReclaimWith(nil).
func (t *LockTable) Reclaim() int { return t.ReclaimWith(nil) }

// ReclaimWith sweeps every shard for orphaned ports and recovers each:
// the recovery Lock is run on the port (wait-free re-entry if the dead
// worker held the critical section, queue repair or exit completion
// otherwise), the lock is released, and the port returns to the lease
// pool. Injected crashes during the recovery itself are retried until the
// port is clean. It returns the number of ports reclaimed.
//
// The sweep claims every shard's orphans before recovering any, then runs
// all recoveries in parallel, one goroutine each. Both halves of that
// discipline are load-bearing: orphans can be queued behind each other's
// dead nodes within a stripe (so serial recovery can deadlock), and a
// batch tenancy dies holding several stripes whose recoveries depend on
// each other through live waiters' hold-and-wait chains (so a sweep that
// finished one shard before claiming the next could block forever on a
// stripe whose drain needs a later shard's orphan recovered first).
//
// If fn is non-nil it is called for each orphan before its recovery runs,
// with the key the dead tenancy was locking (a batch tenancy reports its
// stripe's representative key) and whether the death was inside the
// critical section — the hook for application-level redo/undo of the
// resource the key names. Calls are made on the sweep's concurrent
// recovery goroutines: fn must be safe for concurrent use and must not
// panic — a panic there escapes on a goroutine the caller cannot recover
// from and aborts the process with the port still mid-reclaim.
//
// Run a sweep whenever a worker death is observed — e.g. from the
// supervisor that caught the Crash panic. An unreclaimed orphan can stall
// every key of its stripe.
func (t *LockTable) ReclaimWith(fn func(key uint64, inCS bool)) int {
	type claim struct {
		sh *lockShard
		l  PortLease
	}
	var claims []claim
	var scratch []PortLease
	for i := range t.shards {
		sh := &t.shards[i]
		scratch = sh.pool.claimOrphans(scratch[:0])
		for _, l := range scratch {
			claims = append(claims, claim{sh: sh, l: l})
		}
	}
	if len(claims) == 0 {
		return 0
	}
	var wg sync.WaitGroup
	for _, c := range claims {
		wg.Add(1)
		go func(c claim) {
			defer wg.Done()
			sh, port := c.sh, c.l.Port
			if fn != nil {
				fn(sh.key[port].Load(), sh.m().Held(port))
			}
			// Run the port's recovery to completion, absorbing injected
			// crashes: Lock recovers whatever the dead worker left (CS
			// re-entry, queue repair, exit completion), Unlock releases;
			// a crash during Unlock is in turn recovered by the next Lock.
			for {
				if crashes(func() { sh.m().Lock(port) }) {
					continue
				}
				if !crashes(func() { sh.m().Unlock(port) }) {
					break
				}
			}
			sh.pool.finishReclaim(c.l)
		}(c)
	}
	wg.Wait()
	return len(claims)
}

// Do runs fn while holding key's lock, surviving worker deaths in the
// lock protocol itself: a Crash panic out of the acquisition is absorbed,
// the orphaned tenancy reclaimed, and the acquisition retried; a Crash
// out of the release is absorbed and the reclaim sweep completes the
// release. Either way fn has run exactly once by the time Do returns —
// the packaged form of the supervisor pattern the tests and benchmarks
// drive (see examples/locktable for building the same loop by hand around
// ReclaimWith when application-level redo/undo is needed).
//
// fn must return normally: Do deliberately does not guard it, because a
// death inside the critical section is an application-recovery problem
// (the resource may be torn) that blanket retry would paper over — model
// that with the lower-level API and ReclaimWith instead.
//
// fn runs while holding key's stripe, so the striping rules apply inside
// it: nesting Do (or Lock) on a key of the same stripe self-deadlocks,
// while nesting on distinct stripes is safe only when every goroutine
// nests in ascending ShardIndex order. fn may call Reclaim — the sweep
// claims only orphaned ports, never fn's live tenancy — provided no
// orphan can be queued on fn's own stripe: the sweep waits for each
// orphan's recovery Lock to finish, and a recovery queued behind fn's
// held stripe cannot finish until fn returns. Sweep other stripes' deaths
// from inside; sweep your own stripe's only from outside the lock.
func (t *LockTable) Do(key uint64, fn func()) {
	for crashes(func() { t.Lock(key) }) {
		t.Reclaim()
	}
	fn()
	if crashes(func() { t.Unlock(key) }) {
		t.Reclaim()
	}
}

// DoString is Do for a string key.
func (t *LockTable) DoString(key string, fn func()) { t.Do(hashString(key), fn) }

// SetCrashFunc installs (or, with nil, removes) the crash-injection hook
// on every shard's lock. The hook's port argument is the shard-local
// port. Serialized against stripe migrations (a backend swap exports the
// old lock's hook onto its replacement, so an install racing a swap can
// never be lost).
func (t *LockTable) SetCrashFunc(fn CrashFunc) {
	t.migMu.Lock()
	defer t.migMu.Unlock()
	for i := range t.shards {
		t.shards[i].m().SetCrashFunc(fn)
	}
}

// crashes runs f and reports whether it panicked with an injected Crash
// (which is swallowed); any other panic propagates.
func crashes(f func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := AsCrash(r); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	f()
	return false
}
