package rme_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

// pollQuiesced waits for the table's background abort fix-ups to drain;
// the cooperative repair runs on its own goroutine, so quiescence after a
// shed is eventual, not immediate.
func pollQuiesced(t *testing.T, tbl *rme.LockTable) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !tbl.Quiesced() {
		if time.Now().After(deadline) {
			t.Fatalf("table did not quiesce: %d tenancies in use, %d orphans",
				tbl.InUse(), tbl.Orphans())
		}
		time.Sleep(time.Millisecond)
	}
}

// sameStripeKeys returns two distinct keys that map to the same stripe.
func sameStripeKeys(tbl *rme.LockTable) (uint64, uint64) {
	k1 := uint64(1)
	for k2 := uint64(2); ; k2++ {
		if tbl.ShardIndex(k2) == tbl.ShardIndex(k1) && k2 != k1 {
			return k1, k2
		}
	}
}

// TestAbortTryLock pins the TryLock contract on every backend: hit on a
// free stripe, miss (not block) on a held one, miss when the lease pool is
// exhausted, and misses counted in neither Aborts nor Timeouts.
func TestAbortTryLock(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		tbl := rme.NewLockTable(4, 2, rme.WithTableSeed(11), rme.WithShardBackend(backend))
		k1, k2 := sameStripeKeys(tbl)

		if !tbl.TryLock(k1) {
			t.Fatal("TryLock missed a free stripe")
		}
		if !tbl.Held(k1) {
			t.Fatal("Held false after a TryLock hit")
		}
		if tbl.TryLock(k2) {
			t.Fatal("TryLock hit a stripe whose lock is held")
		}
		tbl.Unlock(k1)
		pollQuiesced(t, tbl)

		if !tbl.TryLock(k2) {
			t.Fatal("TryLock missed the stripe after release")
		}
		tbl.Unlock(k2)

		if !tbl.TryLockString("order:42") {
			t.Fatal("TryLockString missed a free stripe")
		}
		tbl.UnlockString("order:42")

		if got := tbl.Stats().Total(); got.Aborts != 0 || got.Timeouts != 0 {
			t.Fatalf("TryLock misses were counted as sheds: aborts=%d timeouts=%d",
				got.Aborts, got.Timeouts)
		}
		pollQuiesced(t, tbl)
	})
}

// TestAbortLockContextDeadline pins LockContext on every backend: a
// blocked acquisition gives up at its deadline with DeadlineExceeded, a
// manual cancel reports Canceled, the sheds land in the right ShardStats
// counters, and — the tentpole invariant — the abandoned waiter never
// strands its stripe: after the holder releases, the stripe quiesces on
// its own and serves new passages.
func TestAbortLockContextDeadline(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		tbl := rme.NewLockTable(2, 2, rme.WithTableSeed(5), rme.WithShardBackend(backend))
		k1, k2 := sameStripeKeys(tbl)

		// Uncancellable context degrades to plain Lock.
		if err := tbl.LockContext(context.Background(), k1); err != nil {
			t.Fatalf("LockContext(Background) = %v", err)
		}

		// Deadline expiry while queued behind the holder.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		if err := tbl.LockContext(ctx, k2); err != context.DeadlineExceeded {
			t.Fatalf("blocked LockContext = %v, want DeadlineExceeded", err)
		}
		cancel()

		// Manual cancel while queued.
		ctx2, cancel2 := context.WithCancel(context.Background())
		time.AfterFunc(20*time.Millisecond, cancel2)
		if err := tbl.LockContext(ctx2, k2); err != context.Canceled {
			t.Fatalf("cancelled LockContext = %v, want Canceled", err)
		}

		// Pre-expired context: shed without touching the stripe.
		ctx3, cancel3 := context.WithDeadline(context.Background(), time.Unix(0, 0))
		defer cancel3()
		if err := tbl.LockContext(ctx3, k2); err != context.DeadlineExceeded {
			t.Fatalf("pre-expired LockContext = %v, want DeadlineExceeded", err)
		}

		sh := tbl.Stats().Shards[tbl.ShardIndex(k2)]
		if sh.Timeouts != 2 || sh.Aborts != 1 {
			t.Fatalf("stripe sheds = (timeouts %d, aborts %d), want (2, 1)",
				sh.Timeouts, sh.Aborts)
		}

		tbl.Unlock(k1)
		pollQuiesced(t, tbl) // the aborted waiters self-repair; no Reclaim call

		// The stripe serves new passages afterwards.
		if err := tbl.LockContextString(ctx3, "k"); err == nil {
			t.Fatal("pre-expired LockContextString returned nil")
		}
		tbl.Lock(k2)
		tbl.Unlock(k2)
		pollQuiesced(t, tbl)
	})
}

// TestAbortStrandedStripeHazard reproduces the hazard the cooperative
// abort fix-up exists to prevent, by disabling it: a cancelled waiter
// parked as a plain orphan leaves its dead node in the stripe's queue, so
// after the holder releases, the stripe is stranded — TryLock misses
// forever and the table never quiesces — until a manual Reclaim sweeps it.
// With the fix-up enabled the same sequence heals itself with no sweep.
func TestAbortStrandedStripeHazard(t *testing.T) {
	t.Run("hazard", func(t *testing.T) {
		tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(3))
		tbl.SetNoAbortFixup(true)
		k1, k2 := sameStripeKeys(tbl)

		tbl.Lock(k1)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		if err := tbl.LockContext(ctx, k2); err != context.DeadlineExceeded {
			t.Fatalf("LockContext = %v, want DeadlineExceeded", err)
		}
		if got := tbl.Orphans(); got != 1 {
			t.Fatalf("Orphans() = %d, want 1 (the stranded waiter)", got)
		}
		tbl.Unlock(k1)

		// The stripe is stranded: the dead node sits in the queue, so an
		// arrival cannot get through, and nothing repairs it on its own.
		time.Sleep(50 * time.Millisecond)
		if tbl.TryLock(k2) {
			t.Fatal("TryLock hit a stripe stranded by a cancelled waiter")
		}
		if tbl.Quiesced() {
			t.Fatal("stranded table reported quiesced")
		}

		// A manual sweep is the only way out in hazard mode.
		if got := tbl.Reclaim(); got != 1 {
			t.Fatalf("Reclaim() = %d, want 1", got)
		}
		if !tbl.TryLock(k2) {
			t.Fatal("TryLock missed the stripe after the sweep")
		}
		tbl.Unlock(k2)
		pollQuiesced(t, tbl)
	})

	t.Run("fixed", func(t *testing.T) {
		tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(3))
		k1, k2 := sameStripeKeys(tbl)

		tbl.Lock(k1)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		if err := tbl.LockContext(ctx, k2); err != context.DeadlineExceeded {
			t.Fatalf("LockContext = %v, want DeadlineExceeded", err)
		}
		tbl.Unlock(k1)

		// No Reclaim: the aborted waiter repairs its own passage.
		pollQuiesced(t, tbl)
		if !tbl.TryLock(k2) {
			t.Fatal("TryLock missed the stripe after the self-repair")
		}
		tbl.Unlock(k2)
		pollQuiesced(t, tbl)
	})
}

// TestAbortAsyncGrantRace pins LockAsyncContext's exactly-once settlement
// through each of its three race outcomes — shed before acquisition,
// grant delivered, and cancelled-after-granted (which must degrade to an
// auto-Abandon through the orphan machinery) — plus the leak that the
// auto-Abandon prevents, reproduced with the fix-up disabled.
func TestAbortAsyncGrantRace(t *testing.T) {
	t.Run("delivered", func(t *testing.T) {
		tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(9))
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		g, ok := <-tbl.LockAsyncContext(ctx, 7)
		if !ok {
			t.Fatal("grant channel closed on an uncancelled request")
		}
		g.Unlock()
		pollQuiesced(t, tbl)
	})

	t.Run("shed before acquisition", func(t *testing.T) {
		tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(9))
		k1, k2 := sameStripeKeys(tbl)
		tbl.Lock(k1)
		// The plain request blocks the dispatcher on the held stripe; the
		// cancellable one behind it is already dead when the dispatcher
		// reaches it and must shed without touching the stripe.
		ch1 := tbl.LockAsync(k1)
		ctx, cancel := context.WithCancel(context.Background())
		ch2 := tbl.LockAsyncContext(ctx, k2)
		cancel()
		tbl.Unlock(k1)
		g1, ok := <-ch1
		if !ok {
			t.Fatal("plain async grant lost")
		}
		g1.Unlock()
		if _, ok := <-ch2; ok {
			t.Fatal("cancelled request delivered a grant after its shed")
		}
		if got := tbl.Stats().Total().Aborts; got != 1 {
			t.Fatalf("Aborts = %d, want 1", got)
		}
		pollQuiesced(t, tbl)
	})

	t.Run("pre-expired", func(t *testing.T) {
		tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(9))
		ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
		defer cancel()
		if _, ok := <-tbl.LockAsyncContext(ctx, 7); ok {
			t.Fatal("pre-expired request delivered a grant")
		}
		if got := tbl.Stats().Total().Timeouts; got != 1 {
			t.Fatalf("Timeouts = %d, want 1", got)
		}
		pollQuiesced(t, tbl)
	})

	t.Run("cancelled after granted", func(t *testing.T) {
		tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(9))
		const k = 7
		ctx, cancel := context.WithCancel(context.Background())
		ch := tbl.LockAsyncContext(ctx, k)
		// Wait until the dispatcher holds the tenancy (the send is a
		// rendezvous we are deliberately not completing), then cancel: the
		// already-won grant must degrade to an auto-Abandon.
		deadline := time.Now().Add(10 * time.Second)
		for !tbl.Held(k) {
			if time.Now().After(deadline) {
				t.Fatal("dispatcher never acquired the tenancy")
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
		if _, ok := <-ch; ok {
			t.Fatal("cancelled-after-granted request delivered its grant")
		}
		// The tenancy went through the ordinary orphan machinery.
		deadline = time.Now().Add(10 * time.Second)
		for tbl.Orphans() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("auto-Abandon never orphaned the tenancy")
			}
			time.Sleep(time.Millisecond)
		}
		if got := tbl.Reclaim(); got != 1 {
			t.Fatalf("Reclaim() = %d, want 1", got)
		}
		pollQuiesced(t, tbl)
	})

	t.Run("cancelled after granted hazard", func(t *testing.T) {
		// With the fix-up disabled, the cancelled-but-granted race drops
		// the grant on the floor: the tenancy stays held with no holder —
		// invisible to Orphans(), unreachable by Reclaim — and the stripe
		// is leaked for good. This is the second hazard of the pair.
		tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(9))
		tbl.SetNoAbortFixup(true)
		const k = 7
		ctx, cancel := context.WithCancel(context.Background())
		ch := tbl.LockAsyncContext(ctx, k)
		deadline := time.Now().Add(10 * time.Second)
		for !tbl.Held(k) {
			if time.Now().After(deadline) {
				t.Fatal("dispatcher never acquired the tenancy")
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
		if _, ok := <-ch; ok {
			t.Fatal("cancelled-after-granted request delivered its grant")
		}
		time.Sleep(50 * time.Millisecond)
		if got := tbl.Orphans(); got != 0 {
			t.Fatalf("Orphans() = %d; the leak is invisible to the sweep by construction", got)
		}
		if got := tbl.Reclaim(); got != 0 {
			t.Fatalf("Reclaim() = %d, want 0 (nothing for the sweep to see)", got)
		}
		if got := tbl.InUse(); got != 1 {
			t.Fatalf("InUse() = %d, want 1 (the leaked tenancy)", got)
		}
	})
}

// TestAbortBatchContext pins LockBatchContext's all-or-nothing contract:
// a deadline mid-walk releases every stripe acquired before the shed,
// repairs the one it abandoned, and leaves the caller holding nothing; the
// same batch then succeeds once the blocker releases.
func TestAbortBatchContext(t *testing.T) {
	tbl := rme.NewLockTable(8, 2, rme.WithTableSeed(21))
	keys := []uint64{3, 17, 99, 256, 1024, 4096}
	blocker := keys[3]

	tbl.Lock(blocker)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	b, err := tbl.LockBatchContext(ctx, keys)
	if err != context.DeadlineExceeded || b != nil {
		t.Fatalf("LockBatchContext = (%v, %v), want (nil, DeadlineExceeded)", b, err)
	}
	for _, k := range keys {
		if k != blocker && tbl.Held(k) {
			t.Fatalf("key %d still held after the all-or-nothing unwind", k)
		}
	}
	if got := tbl.Stats().Total().Timeouts; got != 1 {
		t.Fatalf("Timeouts = %d, want 1 (one shed for the whole batch)", got)
	}

	tbl.Unlock(blocker)
	// Only the aborted stripe's self-repair is outstanding; once it drains
	// the identical batch must succeed.
	pollQuiesced(t, tbl)
	b2, err := tbl.LockBatchContext(context.Background(), keys)
	if err != nil {
		t.Fatalf("retry LockBatchContext = %v", err)
	}
	b2.Unlock()

	// Pre-expired context: shed before any stripe is touched.
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel2()
	if _, err := tbl.LockBatchContext(ctx2, keys); err != context.DeadlineExceeded {
		t.Fatalf("pre-expired LockBatchContext = %v", err)
	}
	pollQuiesced(t, tbl)
}

// TestAbortShardStatsCounters pins the shed accounting deltas: deadline
// deaths to Timeouts, every other cancellation to Aborts, and the
// aggregation through TableStats.Total.
func TestAbortShardStatsCounters(t *testing.T) {
	tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(1))
	base := tbl.Stats().Total()
	if base.Aborts != 0 || base.Timeouts != 0 {
		t.Fatalf("fresh table sheds = (%d, %d)", base.Aborts, base.Timeouts)
	}

	expired, cancelExp := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancelExp()
	cancelled, cancelNow := context.WithCancel(context.Background())
	cancelNow()

	_ = tbl.LockContext(expired, 1)   // timeout
	_ = tbl.LockContext(cancelled, 1) // abort
	_ = tbl.LockContext(expired, 2)   // timeout

	got := tbl.Stats().Total()
	if got.Timeouts != 2 || got.Aborts != 1 {
		t.Fatalf("sheds = (timeouts %d, aborts %d), want (2, 1)", got.Timeouts, got.Aborts)
	}
	pollQuiesced(t, tbl)
}

// TestLockAsyncAbandonAfterClose pins that Close stops intake only: an
// outstanding Grant survives Close, its Abandon still routes through the
// orphan machinery, and Orphans/Reclaim stay fully functional on the
// closed table.
func TestLockAsyncAbandonAfterClose(t *testing.T) {
	tbl := rme.NewLockTable(2, 2, rme.WithTableSeed(13))
	g, ok := <-tbl.LockAsync(77)
	if !ok {
		t.Fatal("async grant lost")
	}
	tbl.Close()
	g.Abandon() // the documented supervisor move during shutdown
	if got := tbl.Orphans(); got != 1 {
		t.Fatalf("Orphans() = %d, want 1 after post-Close Abandon", got)
	}
	if got := tbl.Reclaim(); got != 1 {
		t.Fatalf("Reclaim() = %d, want 1 on the closed table", got)
	}
	if !tbl.Quiesced() {
		t.Fatal("closed table did not quiesce after the sweep")
	}
}

// TestAbortStormZipf is the referee for the whole abort tier: every
// backend runs a zipf-keyed storm mixing crash-injected Do passages,
// short-deadline LockContext calls, TryLock probes, and cancellable async
// requests, while per-key occupancy counters check mutual exclusion on
// every successful entry. At the end the table must drain to quiescence —
// cancelled waiters self-repaired, crashed workers swept — proving no
// cancellation lost a wake or stranded a stripe under fire.
func TestAbortStormZipf(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		const workers = 32
		const keys = 1 << 10
		iters := 300
		if testing.Short() {
			iters = 60
		}
		tbl := rme.NewLockTable(8, 4, rme.WithTableSeed(71), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		var calls atomic.Uint64
		var crashCount atomic.Int64
		tbl.SetCrashFunc(func(port int, point string) bool {
			if xrand.Mix64(calls.Add(1))%1777 == 0 {
				crashCount.Add(1)
				return true
			}
			return false
		})

		inside := make([]atomic.Int32, keys)
		enter := func(k uint64) {
			if inside[k].Add(1) != 1 {
				t.Errorf("two holders of key %d", k)
			}
		}
		leave := func(k uint64) { inside[k].Add(-1) }
		// absorb runs op, absorbing an injected Crash like Do's supervisor
		// does (sweep and move on); it reports whether op completed.
		absorb := func(op func()) (completed bool) {
			defer func() {
				r := recover()
				if r == nil {
					completed = true
					return
				}
				if _, ok := rme.AsCrash(r); !ok {
					panic(r)
				}
				tbl.Reclaim()
			}()
			op()
			return
		}

		// Supervisor sweep, as production runs one: crash orphans and
		// auto-Abandoned grants (a cancelled-after-granted async request
		// routes its tenancy through the orphan machinery) both wait for a
		// reclaimer, and a stripe whose dispatcher queues behind such an
		// orphan stalls until the sweep frees it.
		stop := make(chan struct{})
		var sweeper sync.WaitGroup
		sweeper.Add(1)
		go func() {
			defer sweeper.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
					tbl.Reclaim()
				}
			}
		}()

		var wg sync.WaitGroup
		var granted, sheds atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				z := rand.NewZipf(rand.New(rand.NewSource(int64(w)+1)), 1.3, 1, keys-1)
				for i := 0; i < iters; i++ {
					k := z.Uint64()
					switch i % 4 {
					case 0: // crash-injected synchronous passage
						tbl.Do(k, func() { enter(k); leave(k) })
						granted.Add(1)
					case 1: // deadline-bounded acquisition
						ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
						absorb(func() {
							if err := tbl.LockContext(ctx, k); err != nil {
								sheds.Add(1)
								return
							}
							enter(k)
							leave(k)
							tbl.Unlock(k)
							granted.Add(1)
						})
						cancel()
					case 2: // opportunistic probe
						absorb(func() {
							if tbl.TryLock(k) {
								enter(k)
								leave(k)
								tbl.Unlock(k)
								granted.Add(1)
							}
						})
					case 3: // cancellable async acquisition
						ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
						if g, ok := <-tbl.LockAsyncContext(ctx, k); ok {
							enter(k)
							leave(k)
							absorb(g.Unlock)
							granted.Add(1)
						} else {
							sheds.Add(1)
						}
						cancel()
					}
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		sweeper.Wait()
		tbl.SetCrashFunc(nil)

		// Drain: background fix-ups finish on their own, crashed workers'
		// orphans need the sweep; poll until the table is fully clean.
		deadline := time.Now().Add(30 * time.Second)
		for !tbl.Quiesced() {
			if time.Now().After(deadline) {
				t.Fatalf("storm did not drain: %d in use, %d orphans", tbl.InUse(), tbl.Orphans())
			}
			tbl.Reclaim()
			time.Sleep(time.Millisecond)
		}
		if crashCount.Load() == 0 {
			t.Error("storm injected no crashes")
		}
		if sheds.Load() == 0 {
			t.Error("storm shed no acquisitions; the abort paths never ran")
		}
		if granted.Load() == 0 {
			t.Error("storm granted nothing")
		}
		total := tbl.Stats().Total()
		if total.Aborts+total.Timeouts == 0 {
			t.Error("stats recorded no sheds")
		}
	})
}
