package rme

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file is the asynchronous half of the keyed lock service: completion
// -based acquisition (LockAsync / LockAsyncFunc) through a shared
// dispatcher runtime, so callers enqueue and move on instead of parking a
// goroutine for the whole queue wait.
//
// # Why a dispatcher
//
// The synchronous Lock burns one blocked goroutine per waiting key — fine
// for tens of waiters, hostile at service scale where a hot stripe can
// have thousands of requests in flight. The dispatcher model inverts
// that: each stripe has (at most) one goroutine engaged with the lock
// protocol at a time, working through a lock-free inbox of requests in
// FIFO order and completing each by handing its Grant to the requester.
// The thousands of in-flight requests cost one inbox node each, not one
// goroutine stack each; the stripe's queue wait is paid by its dispatcher
// alone, parked on the same wait engine as every other wait in the stack.
//
// Who that dispatcher *is* changed with the shared runtime (dispatch.go).
// Originally every stripe owned a lazily-started dispatcher goroutine —
// one parked goroutine per stripe that had ever seen a LockAsync, which
// is exactly the footprint-tracks-capacity cost this library exists to
// avoid, and hostile at service scale where a table holds thousands of
// stripes. Now a bounded pool of WithDispatcherPool(n) workers serves
// every stripe: a submission marks its stripe runnable on a shared run
// queue, and whichever worker picks the stripe up becomes its dispatcher
// for one batch. The engagement protocol (dispatch.go's run-state word)
// preserves the at-most-one-dispatcher-per-stripe invariant, so every
// guarantee below — FIFO grant order, Grant ownership, crash absorption —
// is unchanged; goroutine cost now tracks actual delivery concurrency,
// min(n, active stripes), not the stripe count.
//
// The pool bound buys that footprint with one new liveness caveat. A
// worker delivering a grant blocks until the stripe's current holder
// settles, and a blocked worker occupies a pool slot; a workload whose
// grant-holders wait, in turn, for deliveries on *other* stripes can
// therefore exhaust the pool where per-stripe dispatchers could not
// (n cross-stripe dependency chains need n+1 workers to untangle). The
// multi-key rules already forbid the unordered hold-and-wait patterns
// that make such chains unbounded — see LockAsync's striping notes —
// but services that intentionally park many unreceived grants while
// issuing more async traffic should size WithDispatcherPool to that
// concurrency rather than to GOMAXPROCS.
//
// # Grant ownership
//
// A Grant is the stripe tenancy itself, and exactly one party owns it at
// any moment: the dispatcher until it delivers, then the channel buffer
// (or callback invocation), then whoever received it. The owner must
// eventually call Grant.Unlock (release the key) or Grant.Abandon (mark
// the tenancy orphaned for the next reclaim sweep — the move for a
// supervisor holding a grant whose intended consumer died). A grant parked
// in an unreceived channel still holds its stripe: the request is not
// cancellable, exactly as a synchronous Lock already past its enqueue is
// not.
//
// # Crash semantics
//
// Worker deaths keep their meaning under async acquisition:
//
//   - A crash injected while the dispatcher runs the lock protocol orphans
//     the lease (the same OrphanOnCrash guard as the synchronous path),
//     and the dispatcher — infrastructure, not a modeled process — absorbs
//     the Crash panic, sweeps, and retries, so the request is eventually
//     granted. This mirrors Do's reclaim-and-retry supervisor.
//   - A callback (LockAsyncFunc fn) that dies with a Crash panic orphans
//     its tenancy in place; the dispatcher absorbs the panic and keeps
//     serving. The orphan surfaces through Orphans() and is recovered by
//     the next Reclaim, exactly like a synchronous holder's death.
//   - A requester that dies before receiving leaves the Grant in the
//     channel — not lost: its supervisor drains the channel and calls
//     Abandon (or Unlock), routing the tenancy into the ordinary orphan
//     machinery.

// Grant is a completed asynchronous acquisition: the holder's capability
// for one key tenancy. The zero Grant is invalid; grants are delivered by
// LockAsync channels and LockAsyncFunc callbacks. A Grant must be settled
// exactly once, with Unlock or Abandon.
type Grant struct {
	sh  *lockShard
	key uint64
	l   PortLease
	req *asyncReq // recycled on settle; nil for callback-delivered grants
}

// Key returns the key this grant holds.
func (g Grant) Key() uint64 { return g.key }

// Unlock releases the granted key, like LockTable.Unlock on a
// synchronously acquired key. If the calling goroutine dies inside the
// release (a Crash panic), the tenancy is orphaned in its last breath and
// the panic propagates to the caller's supervisor, whose reclaim sweep
// completes the release.
func (g Grant) Unlock() {
	g.sh.unlockPort(g.l)
	g.sh.pool.Release(g.l)
	if g.req != nil {
		g.sh.putReq(g.req)
	}
}

// Abandon marks the grant's tenancy orphaned without releasing it — the
// supervisor's move when the intended grantee died after delivery but
// before taking ownership (e.g. a worker that crashed between LockAsync
// and the channel receive; its supervisor drains the channel and abandons
// the grant). The orphan surfaces through Orphans() and the next reclaim
// sweep recovers the stripe. Abandon, like Unlock, settles the grant:
// using it afterwards is a stale-lease panic.
//
// Abandon remains valid after LockTable.Close: Close stops intake, it does
// not revoke outstanding grants, and the supervisor draining a dead
// worker's channels typically runs during shutdown — exactly when the
// table is already closed. The orphaned tenancy surfaces through Orphans()
// and Reclaim recovers it as usual; both stay fully functional on a closed
// table.
func (g Grant) Abandon() {
	g.sh.pool.Orphan(g.l)
	if g.req != nil {
		g.sh.putReq(g.req)
	}
}

// asyncReq is one queued acquisition: an intrusive inbox node plus the
// completion (channel or callback). Nodes are recycled through their
// shard's free list (pre-filled by WithAsyncPrewarm); each node's channel
// is created once and reused, so a warm async passage allocates nothing.
type asyncReq struct {
	key  uint64
	ch   chan Grant  // cap 1; owned by the request until the grant is settled
	fn   func(Grant) // callback variant; nil for the channel variant
	next *asyncReq   // inbox / free-list link
	// ctx and cch are the cancellable variant's completion (LockAsyncContext);
	// both nil for plain LockAsync/LockAsyncFunc requests. cch is unbuffered —
	// the dispatcher's send is a rendezvous, so "delivered" and "cancelled"
	// are mutually exclusive outcomes of one select — and is reused across
	// requests like ch; a cch consumed by a cancellation (closed) is dropped
	// and recreated on the node's next cancellable request.
	ctx context.Context
	cch chan Grant
}

// dispatcher is one stripe's async service state: the request inbox plus
// the runnable flag word the shared executor schedules the stripe by.
// The stripe owns no goroutine — delivery is done by whichever pool
// worker engages the stripe (see dispatch.go).
type dispatcher struct {
	// inbox is a lock-free LIFO of submitted requests (reversed to FIFO by
	// the engaged worker when it drains).
	inbox atomic.Pointer[asyncReq]
	// deliverMu serializes every swap-and-deliver batch of the stripe —
	// the engaged worker's batches, exiting workers' final drains, and any
	// close-race drainer goroutines (see drainClosed). Because each batch
	// is swapped and fully delivered under the mutex, batches are
	// delivered in the temporal order of their swaps and requests in FIFO
	// order within each batch, which is what makes LockAsync's
	// per-submitter grant ordering hold unconditionally, Close races
	// included. Uncontended (the engagement protocol admits one worker
	// per stripe) outside those races, so the hot path pays one
	// uncontended lock per batch.
	deliverMu sync.Mutex
	// runState is the stripe's scheduling word — idle / queued / active /
	// active-dirty — the executor's at-most-once run-queue admission
	// protocol; see dispatch.go.
	runState atomic.Int32
	// depth tracks the stripe's pending async requests: submissions whose
	// delivery has not yet acquired a lease (or shed). Decremented only
	// once the tenancy is held — not at batch-swap time — so a request
	// is visible through depth or InUse at every instant; Quiesced's
	// correctness depends on that overlap (see LockTable.Quiesced).
	depth atomic.Int64
}

// LockAsync enqueues an acquisition of key and returns immediately; the
// Grant is delivered on the returned channel (capacity 1, so delivery
// never blocks the stripe's dispatcher) once the key's stripe is handed
// over. Requests on one stripe are granted in LockAsync call order as
// observed per submitting goroutine.
//
// The receiver owns the grant and must settle it (Grant.Unlock or
// Grant.Abandon); the channel is recycled at settle time and must not be
// received from again. Do not wait for a grant while holding another key
// of this table unless the waits are ordered by ShardIndex with at most
// one key per stripe — a grant request is a lock acquisition, and both
// the same-stripe self-deadlock and the ABBA rules on ShardIndex apply to
// it unchanged.
//
// Crash-free async passages allocate nothing once the request free list
// and the shard's node pools are warm (WithAsyncPrewarm warms the former
// at construction).
func (t *LockTable) LockAsync(key uint64) <-chan Grant {
	sh := t.shardOf(key)
	r := sh.getReq()
	r.key = key
	r.fn = nil
	t.submit(sh, r)
	return r.ch
}

// LockAsyncString is LockAsync for a string key.
func (t *LockTable) LockAsyncString(key string) <-chan Grant {
	return t.LockAsync(hashString(key))
}

// closedGrantChan is returned by LockAsyncContext for a request shed before
// submission: an already-closed channel, so the caller's receive completes
// immediately with ok == false and the pre-expired path allocates nothing.
var closedGrantChan = func() chan Grant {
	c := make(chan Grant)
	close(c)
	return c
}()

// LockAsyncContext is LockAsync with a cancellation budget. The returned
// channel settles exactly once: either a Grant is delivered (receive with
// ok == true; the receiver owns it and must settle it), or the channel is
// closed without one (ok == false; the request was shed — ctx was cancelled
// or expired before the stripe was handed over — and the caller holds
// nothing). Sheds are counted in the stripe's ShardStats.
//
// Cancellation races with the grant in three ways, and each settles exactly
// once. Cancelled before the dispatcher reaches the request: shed without
// touching the stripe. Cancelled while the dispatcher is acquiring: the
// acquisition itself is not interrupted (the dispatcher is mid-protocol on
// behalf of the whole stripe), but the grant is not deliverable — see next.
// Cancelled after the grant exists but before the caller receives it: the
// dispatcher's send and the cancellation race in one select; if the
// cancellation wins, the channel is closed and the already-won tenancy
// degrades to an auto-Abandon — it is routed into the ordinary orphan
// machinery and the next reclaim sweep releases the stripe, exactly as if
// the grantee had received it and died. A caller whose ctx fires must
// still complete the receive (the ok == false case) before discarding the
// channel; abandoning the receive leaves the race unobserved, not broken.
//
// A ctx that can never be cancelled degrades to plain LockAsync. Like
// LockAsync, the uncancelled path allocates nothing once the request free
// list is warm; cancellations may allocate (a replacement channel).
func (t *LockTable) LockAsyncContext(ctx context.Context, key uint64) <-chan Grant {
	if ctx == nil || ctx.Done() == nil {
		return t.LockAsync(key)
	}
	sh := t.shardOf(key)
	if err := ctx.Err(); err != nil {
		sh.noteShed(err)
		return closedGrantChan
	}
	r := sh.getReq()
	r.key = key
	r.fn = nil
	r.ctx = ctx
	if r.cch == nil {
		r.cch = make(chan Grant)
	}
	// Capture before submit: the dispatcher may complete (and recycle) the
	// node before submit returns.
	cch := r.cch
	t.submit(sh, r)
	return cch
}

// LockAsyncContextString is LockAsyncContext for a string key.
func (t *LockTable) LockAsyncContextString(ctx context.Context, key string) <-chan Grant {
	return t.LockAsyncContext(ctx, hashString(key))
}

// LockAsyncFunc enqueues an acquisition of key and returns immediately;
// fn is called with the Grant once the stripe is handed over. fn runs on
// the pool worker engaged with the stripe, so it serializes the stripe's
// grant pipeline — and occupies one of the table's WithDispatcherPool
// slots for its duration: keep it short, and never block it on another
// grant of the same stripe (self-deadlock: the worker that would deliver
// that grant is the goroutine being blocked; grants on other stripes are
// also suspect — see the pool-liveness note at the top of this file).
//
// fn owns the grant and must settle it (Unlock/Abandon) before
// returning. If fn panics with an injected Crash while still owning it,
// the tenancy is orphaned (surfacing via Orphans(), recovered by the
// next sweep) and the dispatcher absorbs the panic and keeps serving — a
// worker death must not take the stripe's service down with it. Any
// other panic is a bug and propagates, crashing the dispatcher loudly.
//
// Do NOT hand the grant from fn to another goroutine: died-holding is
// judged by the lease word alone, so a Crash panic out of fn after a
// hand-off would orphan the recipient's live tenancy and a subsequent
// sweep would re-enter a critical section that is still occupied.
// Workflows that move grants between goroutines must use LockAsync,
// whose channel is exactly that hand-off.
func (t *LockTable) LockAsyncFunc(key uint64, fn func(Grant)) {
	if fn == nil {
		panic("rme: LockAsyncFunc with nil callback")
	}
	sh := t.shardOf(key)
	r := sh.getReq()
	r.key = key
	r.fn = fn
	t.submit(sh, r)
}

// submit pushes r onto its stripe's inbox and marks the stripe runnable
// on the shared executor (which wakes a parked worker, or spawns one
// while the pool is under its bound — the spawn is the submit path's
// only possible allocation, and WithAsyncPrewarm's eager pool removes
// even that).
//
// The closed checks bracket the push, and both are load-bearing. The one
// before is the intake stop: a submission that observes closed panics and
// enqueues nothing. The one after closes the stranding race with Close():
// a submission whose first check passed while Close ran may have pushed
// onto an inbox the pool has already drained for the last time. If that
// happened, this submitter is guaranteed to observe closed here (every
// exiting worker's final drain starts only after Close's store, so a push
// the drains missed must follow the store — and this load follows the
// push), and it spawns a transient drainer that completes the stranded
// requests. The drainer must be its own goroutine, not an inline call:
// delivery blocks until the stripe's current holder releases, and the
// current holder can be this very submitter's earlier grant, parked in a
// channel it cannot receive from while stuck inside submit. All drainers
// and pool workers may drain concurrently; the inbox Swap hands each
// request to exactly one of them.
func (t *LockTable) submit(sh *lockShard, r *asyncReq) {
	if t.closed.Load() {
		panic("rme: async acquisition on a closed LockTable")
	}
	d := &sh.disp
	for {
		h := d.inbox.Load()
		r.next = h
		if d.inbox.CompareAndSwap(h, r) {
			break
		}
	}
	d.depth.Add(1)
	t.exec.schedule(sh)
	if t.closed.Load() {
		go t.drainClosed(sh)
	}
}

// drainClosed empties sh's inbox and completes every request found — the
// closed-table settlement path, run by every exiting worker as its final
// drain after observing closed and on a transient goroutine spawned by
// any submitter whose post-push re-check observed closed (see submit).
// Requests are delivered, not dropped: they passed the intake check
// before Close became visible to them, and an accepted request must end
// in a grant. Delivery goes through the same mutex-serialized batches as
// the workers' own engagements, so the per-submitter FIFO grant order
// holds even for the requests that raced Close.
func (t *LockTable) drainClosed(sh *lockShard) {
	for t.deliverBatch(sh) {
	}
}

// Close shuts the table's async tier down: subsequent LockAsync /
// LockAsyncFunc / batch calls panic, the executor's workers drain the
// stripes' inboxes and exit. Synchronous Lock/Unlock and reclaim sweeps
// are unaffected, and outstanding grants stay valid — Close stops
// intake, it does not revoke tenancies. Close is idempotent and safe to
// race with in-flight async submissions: a submission concurrent with
// Close either panics (it observed the closed table) or is completed
// normally — its grant is delivered by an exiting worker's final drain,
// or failing that by a transient drainer goroutine the submitter spawns
// on its way out, which in that narrow window delivers grants (and runs
// LockAsyncFunc callbacks) in place of the pool. No accepted request is
// ever stranded, and the per-submitter FIFO grant order survives the
// race (all deliveries of a stripe are serialized through one mutex).
//
// Close does not interrupt in-flight deliveries, and does not block on
// them either: it broadcasts the pool's idle chain and returns, and each
// worker exits once the run queue is empty, after completing the
// requests it already holds and running one last drain pass. A worker's
// goroutine therefore only winds down if the stripes' outstanding
// tenancies eventually settle (or a sweep reclaims their orphans) — the
// same liveness assumption every waiter in the table lives under. Close
// must not wait for that itself: the holder a worker is blocked behind
// can be a grant parked in Close's caller's own hands (see
// TestLockTableClose's close-then-settle pattern).
func (t *LockTable) Close() {
	if t.closed.Swap(true) {
		return
	}
	// Join the supervisor first: its loop must not start a migration or a
	// resize against a table that is winding down, and Close returning means
	// no supervisor work is still in flight (heal goroutines included).
	if t.sup != nil {
		t.sup.join()
	}
	// Wake the whole pool: parked workers re-check their condition (which
	// includes closed), run their final drains, and exit.
	t.exec.idle.Broadcast()
}

// deliverBatch swaps one inbox batch and delivers every request in it,
// FIFO, all under the stripe's delivery mutex; it reports whether there
// was a batch to deliver. Swapping inside the mutex is what makes grant
// order well-defined under concurrent drains: batches are delivered in
// the temporal order of their swaps, and a submitter's later push can
// only land in a later batch.
func (t *LockTable) deliverBatch(sh *lockShard) bool {
	d := &sh.disp
	d.deliverMu.Lock()
	defer d.deliverMu.Unlock()
	head := d.inbox.Swap(nil)
	if head == nil {
		return false
	}
	// The inbox is push-LIFO; reverse the drained burst to FIFO so
	// grants go out in submission order. The stripe's depth is NOT
	// decremented here: a swapped-but-undelivered request still owes a
	// grant while holding no lease, and decrementing at swap time opened
	// exactly the false-quiescent window TestDispatchQuiescedPendingDelivery
	// pins. Each request leaves the count inside deliver, once its
	// tenancy is held (or it sheds).
	var fifo *asyncReq
	for head != nil {
		next := head.next
		head.next = fifo
		fifo = head
		head = next
	}
	for fifo != nil {
		r := fifo
		fifo = r.next
		r.next = nil
		t.deliver(sh, r)
	}
	return true
}

// deliver acquires r's tenancy and completes the request. Injected
// crashes during the acquisition orphan the lease (the worker died) and
// are absorbed with a reclaim-and-retry, Do-style: the dispatcher is
// infrastructure and must outlive any number of modeled deaths.
func (t *LockTable) deliver(sh *lockShard, r *asyncReq) {
	// Pre-acquire shed: a cancellable request whose ctx already fired is
	// completed without touching the stripe — close the channel (the
	// caller's receive yields ok == false) and recycle the node with a
	// fresh-channel debt.
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			sh.noteShed(err)
			sh.disp.depth.Add(-1)
			close(r.cch)
			r.cch = nil
			r.ctx = nil
			sh.putReq(r)
			return
		}
	}
	var l PortLease
	for {
		crashed := crashes(func() {
			// The gated table acquisition, not pool.Acquire directly: a
			// worker delivering mid-migration parks on the stripe's gate
			// like any other entrant (it holds deliverMu, which the
			// migration never takes, so parking here cannot deadlock the
			// barrier — though it does occupy a pool slot for the drain's
			// duration; see the liveness note in the file comment).
			l = t.acquireLease(sh)
			sh.key[l.Port].Store(r.key)
			sh.lockPort(l)
		})
		if !crashed {
			break
		}
		t.Reclaim()
	}
	// The tenancy is held: the request's pending count hands over to
	// InUse. This ordering (lease first, decrement second) is what keeps
	// the request visible to Quiesced at every instant.
	sh.disp.depth.Add(-1)
	g := Grant{sh: sh, key: r.key, l: l, req: r}
	if fn := r.fn; fn != nil {
		// Callback delivery: the request node is done (its channel was
		// never involved) — recycle it before fn runs, since fn may never
		// return control of g to us.
		r.fn = nil
		g.req = nil
		sh.putReq(r)
		t.runCallback(g, fn)
		return
	}
	if r.ctx != nil {
		// Cancellable delivery: a rendezvous, so exactly one of the two
		// arms settles the request. If the cancellation wins after the
		// tenancy was already won, the grant degrades to an auto-Abandon —
		// into the same orphan machinery as a grantee that received and
		// died — and the closed channel tells the caller it holds nothing.
		ctx, cch := r.ctx, r.cch
		select {
		case cch <- g:
			// Delivered; the receiver settles g (recycling r through g.req).
		case <-ctx.Done():
			sh.noteShed(ctx.Err())
			close(cch)
			r.cch = nil
			r.ctx = nil
			if t.noAbortFixup.Load() {
				// Hazard mode (test hook): drop the grant on the floor. The
				// tenancy stays held with no holder — invisible to Orphans()
				// and unreclaimable — which is the leak the auto-Abandon
				// exists to prevent.
				sh.putReq(r)
				return
			}
			sh.pool.Orphan(g.l)
			sh.putReq(r)
		}
		return
	}
	// Channel delivery. Cap-1 and necessarily empty: the node is recycled
	// only after its previous grant was received and settled.
	r.ch <- g
}

// runCallback invokes a grant callback under the dispatcher's crash
// guard (split out so the defer is open-coded).
func (t *LockTable) runCallback(g Grant, fn func(Grant)) {
	defer t.callbackGuard(g)
	fn(g)
}

// callbackGuard converts a callback's Crash panic into an orphaned
// tenancy and absorbs it; see LockAsyncFunc. If the callback had already
// settled the grant when it died, there is no tenancy left to mark and
// the death needs no bookkeeping at all.
func (t *LockTable) callbackGuard(g Grant) {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := AsCrash(r); !ok {
		panic(r)
	}
	// Best-effort orphan: the CAS fails harmlessly if fn already settled
	// the grant (released, abandoned, or a later tenancy moved the word).
	g.sh.pool.transition(g.l, leaseHeld, leaseOrphaned)
}

// getReq pops a recycled request node from the shard's free list, or
// builds a fresh one (its grant channel is created here, once, and
// reused for every later request the node carries).
func (sh *lockShard) getReq() *asyncReq {
	sh.reqMu.Lock()
	r := sh.reqFree
	if r != nil {
		sh.reqFree = r.next
		r.next = nil
	}
	sh.reqMu.Unlock()
	if r == nil {
		r = &asyncReq{ch: make(chan Grant, 1)}
	}
	return r
}

// putReq recycles a settled request node onto the shard's free list.
func (sh *lockShard) putReq(r *asyncReq) {
	r.fn = nil
	r.ctx = nil // drop the context reference; cch (if still open) is reused
	sh.reqMu.Lock()
	r.next = sh.reqFree
	sh.reqFree = r
	sh.reqMu.Unlock()
}
