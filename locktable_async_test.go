package rme_test

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

// keysOnStripe returns n distinct keys all mapping to the given stripe.
func keysOnStripe(tbl *rme.LockTable, stripe, n int) []uint64 {
	out := make([]uint64, 0, n)
	for k := uint64(1); len(out) < n; k++ {
		if tbl.ShardIndex(k) == stripe {
			out = append(out, k)
		}
	}
	return out
}

// keysOnDistinctStripes returns n keys mapping to n distinct stripes, in
// ascending ShardIndex order.
func keysOnDistinctStripes(tbl *rme.LockTable, n int) []uint64 {
	byStripe := make(map[int]uint64)
	for k := uint64(1); len(byStripe) < n; k++ {
		s := tbl.ShardIndex(k)
		if _, ok := byStripe[s]; !ok {
			byStripe[s] = k
		}
	}
	out := make([]uint64, 0, n)
	for s := 0; len(out) < n; s++ {
		if k, ok := byStripe[s]; ok {
			out = append(out, k)
		}
	}
	return out
}

func TestLockAsyncBasic(t *testing.T) {
	tbl := rme.NewLockTable(4, 2, rme.WithTableSeed(1), rme.WithNodePool(true))
	defer tbl.Close()
	const key = 42
	g := <-tbl.LockAsync(key)
	if g.Key() != key {
		t.Fatalf("grant key = %d, want %d", g.Key(), key)
	}
	if !tbl.Held(key) {
		t.Fatal("key not held while granted")
	}
	g.Unlock()
	if tbl.Held(key) || !tbl.Quiesced() {
		t.Fatal("grant Unlock did not release the key")
	}

	gs := <-tbl.LockAsyncString("users/alice")
	if !tbl.HeldString("users/alice") {
		t.Fatal("string grant not held")
	}
	gs.Unlock()
	if !tbl.Quiesced() {
		t.Fatal("string grant left ports in use")
	}
}

// TestLockAsyncFIFO: grants on one stripe are delivered in submission
// order, and a grant is only delivered once the previous holder released.
func TestLockAsyncFIFO(t *testing.T) {
	tbl := rme.NewLockTable(1, 4, rme.WithTableSeed(1), rme.WithNodePool(true))
	defer tbl.Close()
	const n = 8
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Submit from one goroutine so the submission order is defined;
		// receive concurrently.
		ch := tbl.LockAsync(uint64(100 + i))
		wg.Add(1)
		go func(i int, ch <-chan rme.Grant) {
			defer wg.Done()
			g := <-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			g.Unlock()
		}(i, ch)
	}
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO", order)
		}
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced")
	}
}

func TestLockAsyncFunc(t *testing.T) {
	tbl := rme.NewLockTable(4, 2, rme.WithTableSeed(1), rme.WithNodePool(true))
	defer tbl.Close()
	done := make(chan uint64, 1)
	tbl.LockAsyncFunc(7, func(g rme.Grant) {
		held := tbl.Held(7)
		g.Unlock()
		if !held {
			t.Error("callback ran without holding the key")
		}
		done <- g.Key()
	})
	select {
	case k := <-done:
		if k != 7 {
			t.Fatalf("callback key = %d, want 7", k)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("callback never ran")
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced after callback")
	}
}

// TestLockAsyncMutualExclusionStress mixes async and sync acquirers over
// a small arena, against both shard backends; the per-key referee must
// never see two holders.
func TestLockAsyncMutualExclusionStress(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		const workers, iters, keys = 12, 200, 32
		tbl := rme.NewLockTable(4, 4, rme.WithTableSeed(7), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		defer tbl.Close()
		var inside [keys]atomic.Int32
		counters := [keys]int{} // guarded by the keyed lock
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := xrand.New(uint64(w) + 1)
				for i := 0; i < iters; i++ {
					k := rng.Uint64() % keys
					crit := func() {
						if inside[k].Add(1) != 1 {
							t.Errorf("two holders of key %d", k)
						}
						counters[k]++
						inside[k].Add(-1)
					}
					if w%2 == 0 {
						g := <-tbl.LockAsync(k)
						crit()
						g.Unlock()
					} else {
						tbl.Lock(k)
						crit()
						tbl.Unlock(k)
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for k := range counters {
			total += counters[k]
		}
		if total != workers*iters {
			t.Fatalf("counter sum = %d, want %d", total, workers*iters)
		}
		if !tbl.Quiesced() {
			t.Fatal("table not quiesced after the stress")
		}
	})
}

// TestLockAsyncGrantSurvivesGranteeCrash is the regression test for grant
// ownership under requester death: a worker that dies between LockAsync
// and the receive leaves the grant parked in the channel — not lost. Its
// supervisor drains the channel, abandons the grant, and the tenancy
// surfaces as an orphan for the ordinary reclaim sweep.
func TestLockAsyncGrantSurvivesGranteeCrash(t *testing.T) {
	tbl := rme.NewLockTable(2, 2, rme.WithTableSeed(3), rme.WithNodePool(true))
	defer tbl.Close()
	const key = 9001
	var ch <-chan rme.Grant
	// The worker: submits, then dies before receiving.
	func() {
		defer func() {
			if _, ok := rme.AsCrash(recover()); !ok {
				t.Fatal("worker death did not propagate as a Crash")
			}
		}()
		ch = tbl.LockAsync(key)
		panic(rme.Crash{Point: "worker died before receiving its grant"})
	}()
	// The grant is delivered regardless — the dispatcher does not know the
	// requester died — and holds the stripe.
	var g rme.Grant
	select {
	case g = <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("grant lost after requester crash")
	}
	if !tbl.Held(key) {
		t.Fatal("delivered grant does not hold the key")
	}
	if tbl.Orphans() != 0 {
		t.Fatal("orphan before the supervisor abandoned the grant")
	}
	// The supervisor's move: abandon the dead requester's grant. The
	// tenancy must surface via Orphans and be recoverable by Reclaim.
	g.Abandon()
	if got := tbl.Orphans(); got != 1 {
		t.Fatalf("Orphans = %d after Abandon, want 1", got)
	}
	if got := tbl.Reclaim(); got != 1 {
		t.Fatalf("Reclaim = %d, want 1", got)
	}
	if tbl.Held(key) || !tbl.Quiesced() {
		t.Fatal("stripe not recovered after abandon + reclaim")
	}
	tbl.Lock(key) // the stripe must be fully usable again
	tbl.Unlock(key)
}

// TestLockAsyncFuncCrashOrphans: a grant callback that dies with a Crash
// panic orphans its tenancy and the dispatcher survives to serve the next
// request.
func TestLockAsyncFuncCrashOrphans(t *testing.T) {
	tbl := rme.NewLockTable(2, 2, rme.WithTableSeed(3), rme.WithNodePool(true))
	defer tbl.Close()
	const key = 512
	delivered := make(chan struct{})
	tbl.LockAsyncFunc(key, func(g rme.Grant) {
		close(delivered)
		panic(rme.Crash{Point: "callback died holding its grant"})
	})
	<-delivered
	waitUntil(t, "orphan surfacing", func() bool { return tbl.Orphans() == 1 })
	if got := tbl.Reclaim(); got != 1 {
		t.Fatalf("Reclaim = %d, want 1", got)
	}
	// The dispatcher must still be alive: a fresh request on the same
	// stripe completes.
	g := <-tbl.LockAsync(key)
	g.Unlock()
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced")
	}
}

// TestLockAsyncSubmitCloseRace is the regression storm for the
// dispatcher-exit stranding race: a LockAsync whose closed check passes
// concurrently with Close() used to push onto an inbox the dispatcher had
// already drained for the last time, leaving the request granted never —
// no grant, no panic. Post-fix, every submission that survives the closed
// check must end in a delivered grant (the dispatcher's final drain or the
// submitter's own closed rescue completes it); submissions that observe
// closed panic as documented. Run under -race: the bug is a pure
// interleaving window.
func TestLockAsyncSubmitCloseRace(t *testing.T) {
	// The stranding window is a submitter preempted between its closed
	// check and its inbox push while Close and the dispatcher's exit land
	// in between; widen it with real parallelism and a hot single-stripe
	// inbox whose CAS contention stretches exactly that window.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rounds := 200
	if testing.Short() {
		rounds = 40
	}
	const workers = 16
	for round := 0; round < rounds; round++ {
		tbl := rme.NewLockTable(1, 4, rme.WithTableSeed(uint64(round)+1), rme.WithNodePool(true))
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					// The documented closed-table panic is the legal end of
					// each worker's storm; anything else is a real failure.
					if r := recover(); r != nil {
						if s, ok := r.(string); !ok || !strings.Contains(s, "closed LockTable") {
							panic(r)
						}
					}
				}()
				<-start
				// Submit continuously until Close stops intake. Receive in
				// the submitting goroutine: grants must be settled as they
				// arrive, because an unreceived grant legitimately holds its
				// stripe and would stall the requests queued behind it — the
				// stranding this test hunts is a request whose grant never
				// arrives at all.
				for i := 0; ; i++ {
					select {
					case g := <-tbl.LockAsync(uint64(w*1000 + i)):
						g.Unlock()
					case <-time.After(10 * time.Second):
						t.Errorf("round %d: worker %d request %d stranded after Close", round, w, i)
						return
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			// Let the storm get hot before pulling the plug, with a little
			// per-round variation so the close lands at different phases of
			// the submit/dispatch pipeline across rounds.
			time.Sleep(time.Duration(50+round%7*37) * time.Microsecond)
			tbl.Close()
		}()
		close(start)
		wg.Wait()
		if t.Failed() {
			return
		}
		if !tbl.Quiesced() {
			t.Fatalf("round %d: table not quiesced after the storm", round)
		}
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLockTableClose(t *testing.T) {
	tbl := rme.NewLockTable(2, 2, rme.WithTableSeed(1))
	g := <-tbl.LockAsync(1)
	tbl.Close()
	tbl.Close() // idempotent
	// Outstanding grants stay valid across Close.
	g.Unlock()
	// Sync paths unaffected.
	tbl.Lock(2)
	tbl.Unlock(2)
	for _, fn := range []func(){
		func() { tbl.LockAsync(1) },
		func() { tbl.LockAsyncFunc(1, func(rme.Grant) {}) },
		func() { tbl.LockBatch([]uint64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("async call on closed table did not panic")
				}
			}()
			fn()
		}()
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced")
	}
}

// TestLockAsyncZeroAlloc pins the tentpole's allocation claim for the
// async path on both shard backends: a warm crash-free LockAsync →
// receive → Unlock passage allocates nothing.
func TestLockAsyncZeroAlloc(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		tbl := rme.NewLockTable(4, 8, rme.WithTableSeed(5), rme.WithNodePool(true),
			rme.WithAsyncPrewarm(4), rme.WithShardBackend(backend))
		defer tbl.Close()
		const key = 77
		for i := 0; i < 8; i++ { // warm pools, dispatcher, park channels
			g := <-tbl.LockAsync(key)
			g.Unlock()
		}
		if avg := testing.AllocsPerRun(200, func() {
			g := <-tbl.LockAsync(key)
			g.Unlock()
		}); avg != 0 {
			t.Fatalf("async keyed passage allocs = %v, want 0", avg)
		}
	})
}

func TestLockBatchBasics(t *testing.T) {
	tbl := rme.NewLockTable(8, 2, rme.WithTableSeed(1), rme.WithNodePool(true))
	keys := keysOnDistinctStripes(tbl, 3)
	keys = append(keys, keysOnStripe(tbl, tbl.ShardIndex(keys[0]), 2)...) // same-stripe run
	b := tbl.LockBatch(keys)
	if b.Len() != len(keys) {
		t.Fatalf("batch Len = %d, want %d", b.Len(), len(keys))
	}
	// Keys come back sorted by stripe, and every distinct stripe is held
	// by exactly one tenancy: InUse over the table equals distinct stripes.
	stripes := map[int]bool{}
	for _, k := range keys {
		stripes[tbl.ShardIndex(k)] = true
	}
	held := 0
	for s := 0; s < tbl.Shards(); s++ {
		if stripes[s] {
			held++
		}
	}
	if got := tbl.InUse(); got != held {
		t.Fatalf("batch holds %d tenancies, want one per stripe = %d", got, held)
	}
	prev := -1
	for _, k := range b.Keys() {
		s := tbl.ShardIndex(k)
		if s < prev {
			t.Fatalf("batch keys not in ascending stripe order: %v", b.Keys())
		}
		prev = s
	}
	// A rival on a batched stripe must be excluded until Unlock.
	entered := make(chan struct{})
	go func() {
		tbl.Lock(keys[0])
		close(entered)
		tbl.Unlock(keys[0])
	}()
	select {
	case <-entered:
		t.Fatal("batch did not exclude a same-stripe rival")
	case <-time.After(50 * time.Millisecond):
	}
	b.Unlock()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("rival starved after batch release")
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced after batch")
	}
}

func TestLockBatchString(t *testing.T) {
	tbl := rme.NewLockTable(4, 2, rme.WithTableSeed(2), rme.WithNodePool(true))
	names := []string{"acct/a", "acct/b", "acct/c"}
	b := tbl.LockBatchString(names)
	// Each stripe's tenancy registers its run's first digest: exactly the
	// representative keys report Held (the documented batch Held
	// contract).
	prev := -1
	for _, k := range b.Keys() {
		if s := tbl.ShardIndex(k); s != prev {
			if !tbl.Held(k) {
				t.Errorf("representative key %#x of stripe %d not held", k, s)
			}
			prev = s
		}
	}
	// Every name's stripe is excluded regardless of which digest is
	// registered.
	entered := make(chan struct{})
	go func() {
		tbl.LockString(names[1])
		close(entered)
		tbl.UnlockString(names[1])
	}()
	select {
	case <-entered:
		t.Fatal("string batch did not exclude a batched name")
	case <-time.After(50 * time.Millisecond):
	}
	b.Unlock()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("rival starved after string batch release")
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced after string batch")
	}
}

// TestLockBatchSameStripeCoalesce pins the amortization structure: a
// batch of many same-stripe keys is one tenancy (one lease, one queue
// entry), not one per key.
func TestLockBatchSameStripeCoalesce(t *testing.T) {
	tbl := rme.NewLockTable(4, 2, rme.WithTableSeed(9), rme.WithNodePool(true))
	keys := keysOnStripe(tbl, 2, 8)
	b := tbl.LockBatch(keys)
	if got := tbl.InUse(); got != 1 {
		t.Fatalf("8 same-stripe keys hold %d tenancies, want 1", got)
	}
	b.Unlock()
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced")
	}
}

// TestLockBatchCrashMidAcquire: a worker that dies acquiring the Nth
// stripe of a batch orphans exactly the stripes it held — the earlier
// fully-acquired ones plus the one whose Lock was interrupted — and a
// sweep makes the table whole.
func TestLockBatchCrashMidAcquire(t *testing.T) {
	tbl := rme.NewLockTable(8, 2, rme.WithTableSeed(4), rme.WithNodePool(true))
	keys := keysOnDistinctStripes(tbl, 4)
	// Crash at the third stripe's enqueue: count fresh-passage L12 steps.
	var enqueues atomic.Int32
	tbl.SetCrashFunc(func(port int, point string) bool {
		return point == "L12" && enqueues.Add(1) == 3
	})
	func() {
		defer func() {
			if _, ok := rme.AsCrash(recover()); !ok {
				t.Fatal("expected the injected mid-batch crash")
			}
		}()
		tbl.LockBatch(keys)
	}()
	tbl.SetCrashFunc(nil)
	// Held stripes at death: #1 and #2 in their CS, #3 mid-Lock. #4 never
	// reached.
	if got := tbl.Orphans(); got != 3 {
		t.Fatalf("Orphans = %d after mid-batch crash, want exactly the 3 held stripes", got)
	}
	if got := tbl.Reclaim(); got != 3 {
		t.Fatalf("Reclaim = %d, want 3", got)
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced after the sweep")
	}
	b := tbl.LockBatch(keys) // every stripe must be fully usable again
	b.Unlock()
}

// TestLockBatchCrashMidRelease: a death inside Batch.Unlock orphans the
// interrupted stripe and every not-yet-released one; the sweep completes
// the releases.
func TestLockBatchCrashMidRelease(t *testing.T) {
	tbl := rme.NewLockTable(8, 2, rme.WithTableSeed(4), rme.WithNodePool(true))
	keys := keysOnDistinctStripes(tbl, 3)
	b := tbl.LockBatch(keys)
	var exits atomic.Int32
	tbl.SetCrashFunc(func(port int, point string) bool {
		return point == "L27" && exits.Add(1) == 2 // die starting the 2nd release
	})
	func() {
		defer func() {
			if _, ok := rme.AsCrash(recover()); !ok {
				t.Fatal("expected the injected mid-release crash")
			}
		}()
		b.Unlock()
	}()
	tbl.SetCrashFunc(nil)
	if got := tbl.Orphans(); got != 2 {
		t.Fatalf("Orphans = %d after mid-release crash, want the 2 unreleased stripes", got)
	}
	if got := tbl.Reclaim(); got != 2 {
		t.Fatalf("Reclaim = %d, want 2", got)
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced after the sweep")
	}
}

// TestDoBatchExactlyOnceUnderCrashStorm: DoBatch's supervisor loop keeps
// the exactly-once-per-key guarantee under random injected deaths,
// duplicates included — against both shard backends, since a batch death
// orphans several stripes whose parallel recovery must hold for each lock
// shape.
func TestDoBatchExactlyOnceUnderCrashStorm(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		const workers, iters, keys, batch = 8, 60, 64, 6
		tbl := rme.NewLockTable(4, 3, rme.WithTableSeed(11), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		var calls atomic.Uint64
		var crashed atomic.Int64
		tbl.SetCrashFunc(func(port int, point string) bool {
			if xrand.Mix64(calls.Add(1))%311 == 0 {
				crashed.Add(1)
				return true
			}
			return false
		})
		counters := make([]atomic.Int64, keys)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := xrand.New(uint64(w)*977 + 1)
				buf := make([]uint64, batch)
				for i := 0; i < iters; i++ {
					for j := range buf {
						buf[j] = rng.Uint64() % keys
					}
					buf[0] = buf[batch-1] // force a duplicate
					tbl.DoBatch(buf, func(k uint64) { counters[k].Add(1) })
				}
			}(w)
		}
		wg.Wait()
		tbl.SetCrashFunc(nil)
		tbl.Reclaim()
		if got := tbl.Orphans(); got != 0 {
			t.Fatalf("%d orphans left after the final sweep", got)
		}
		if !tbl.Quiesced() {
			t.Fatal("table not quiesced after the storm")
		}
		var total int64
		for k := range counters {
			total += counters[k].Load()
		}
		if want := int64(workers) * iters * batch; total != want {
			t.Fatalf("fn ran %d times, want exactly %d", total, want)
		}
		if crashed.Load() == 0 {
			t.Fatal("storm injected no crashes; recovery paths never exercised")
		}
	})
}

// TestDoBatchZeroAllocAmortized pins the acceptance claim on both shard
// backends: a warm crash-free batch passage allocates nothing, amortized
// over the batch.
func TestDoBatchZeroAllocAmortized(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		tbl := rme.NewLockTable(4, 8, rme.WithTableSeed(5), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		keys := keysOnStripe(tbl, 1, 8)
		nop := func(uint64) {}
		for i := 0; i < 8; i++ {
			tbl.DoBatch(keys, nop)
		}
		if avg := testing.AllocsPerRun(200, func() {
			tbl.DoBatch(keys, nop)
		}); avg != 0 {
			t.Fatalf("warm batch passage allocs = %v, want 0", avg)
		}
		b := tbl.LockBatch(keys)
		b.Unlock()
		if avg := testing.AllocsPerRun(200, func() {
			tbl.LockBatch(keys).Unlock()
		}); avg != 0 {
			t.Fatalf("warm LockBatch/Unlock allocs = %v, want 0", avg)
		}
	})
}

// TestLockBatchLarge exercises the heapsort path (batches past the
// insertion-sort threshold): keys must come back stripe-sorted with one
// tenancy per distinct stripe, and the exactly-once settlement holds.
func TestLockBatchLarge(t *testing.T) {
	tbl := rme.NewLockTable(8, 2, rme.WithTableSeed(13), rme.WithNodePool(true))
	rng := xrand.New(99)
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = rng.Uint64() % 1000
	}
	b := tbl.LockBatch(keys)
	if b.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(keys))
	}
	stripes := map[int]bool{}
	prev := -1
	prevKey := uint64(0)
	for _, k := range b.Keys() {
		s := tbl.ShardIndex(k)
		if s < prev || (s == prev && k < prevKey) {
			t.Fatalf("batch keys not sorted by (stripe, key)")
		}
		prev, prevKey = s, k
		stripes[s] = true
	}
	if got := tbl.InUse(); got != len(stripes) {
		t.Fatalf("InUse = %d, want one tenancy per stripe = %d", got, len(stripes))
	}
	b.Unlock()
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced after large batch")
	}
}

// TestLockTableDoReclaimInFn: fn may sweep other stripes' orphans from
// inside the critical section (the documented in-CS reclaim contract).
func TestLockTableDoReclaimInFn(t *testing.T) {
	tbl := rme.NewLockTable(8, 2, rme.WithTableSeed(6), rme.WithNodePool(true))
	keys := keysOnDistinctStripes(tbl, 2)
	orphanKey, doKey := keys[0], keys[1]
	// Manufacture an orphan on the first stripe: die inside Unlock.
	tbl.Lock(orphanKey)
	tbl.SetCrashFunc(func(port int, point string) bool { return point == "L27" })
	func() {
		defer func() {
			if _, ok := rme.AsCrash(recover()); !ok {
				t.Fatal("expected the injected crash")
			}
		}()
		tbl.Unlock(orphanKey)
	}()
	tbl.SetCrashFunc(nil)
	if tbl.Orphans() != 1 {
		t.Fatalf("Orphans = %d, want 1", tbl.Orphans())
	}
	ran := false
	tbl.Do(doKey, func() {
		ran = true
		if got := tbl.Reclaim(); got != 1 {
			t.Errorf("in-CS Reclaim = %d, want 1", got)
		}
	})
	if !ran {
		t.Fatal("fn never ran")
	}
	if tbl.Orphans() != 0 || !tbl.Quiesced() {
		t.Fatal("orphan not recovered by the in-CS sweep")
	}
	tbl.Lock(orphanKey) // the swept stripe must be fully usable
	tbl.Unlock(orphanKey)
}

// TestLockTableNestedDoDistinctStripes: nesting Do on distinct stripes in
// ascending ShardIndex order is the documented safe pattern.
func TestLockTableNestedDoDistinctStripes(t *testing.T) {
	tbl := rme.NewLockTable(8, 2, rme.WithTableSeed(6), rme.WithNodePool(true))
	keys := keysOnDistinctStripes(tbl, 3)
	depth := 0
	tbl.Do(keys[0], func() {
		tbl.Do(keys[1], func() {
			tbl.Do(keys[2], func() {
				depth = 3
				for _, k := range keys {
					if !tbl.Held(k) {
						t.Errorf("key %d not held at full nesting depth", k)
					}
				}
			})
		})
	})
	if depth != 3 {
		t.Fatal("nesting never reached depth 3")
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced after nested Do")
	}
}
