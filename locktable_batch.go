package rme

import "context"

// This file is the batched half of the keyed lock service: multi-key
// acquisition that coalesces same-stripe keys under one tenancy.
//
// Striping makes batching structurally cheap: keys of one stripe are
// mutually excluded by the stripe itself, so a run of them needs exactly
// one lease-acquire scan, one queue entry, and one handoff wake — not one
// of each per key. LockBatch sorts the keys by ShardIndex, walks the
// stripe runs in ascending order (the table's canonical multi-key order,
// so concurrent batches cannot ABBA-deadlock each other), and acquires
// one tenancy per distinct stripe. For b same-stripe keys that amortizes
// the entire per-acquisition overhead b-fold, which is the point: under
// hot-key traffic the per-key cost of a batch approaches the cost of the
// critical-section work alone.
//
// Crash semantics follow the lease layer's: a worker that dies mid-batch
// orphans exactly the stripes it holds at that moment — every stripe
// whose lease was acquired, including the one whose Lock was interrupted,
// and none it had not reached yet. The sweep then recovers each orphan
// independently, exactly as it would for the same deaths spread over
// single-key passages.

// Batch is a held multi-key acquisition, returned by LockBatch with every
// requested key's stripe locked. The holder releases everything with
// Unlock. Batches are recycled through the table; after Unlock the Batch
// must not be used again.
type Batch struct {
	t *LockTable
	// keys is the batch's key set, sorted by (ShardIndex, key); shard is
	// the parallel stripe index per key. Both are reused scratch.
	keys  []uint64
	shard []int
	// stripes records one entry per distinct stripe, in ascending stripe
	// order: the stripe and its acquired lease.
	stripes []batchStripe
	// released counts fully-released stripes during Unlock, so a crash
	// mid-release can orphan exactly the stripes still held.
	released int
	next     *Batch // table free-list link
}

type batchStripe struct {
	sh *lockShard
	l  PortLease
}

// Len returns the number of keys the batch holds (counting duplicates as
// submitted).
func (b *Batch) Len() int { return len(b.keys) }

// Keys returns the held keys, sorted by (ShardIndex, key) — the order fn
// sees in DoBatch. The slice is the batch's own scratch: read it, don't
// keep it past Unlock.
func (b *Batch) Keys() []uint64 { return b.keys }

// LockBatch acquires the locks for all keys and returns the held Batch.
// Keys are acquired one tenancy per distinct stripe in ascending
// ShardIndex order, so same-stripe runs cost a single lease and handoff
// and concurrent batches order their stripes identically (no ABBA).
// Duplicate keys are allowed and cost nothing beyond their slot.
//
// The caller must hold no key of this table when calling LockBatch (a
// held stripe would break the ascending-order argument, and a held key
// of any batched stripe self-deadlocks). The keys slice is read
// synchronously and not retained.
//
// Each stripe's tenancy registers the run's first key (in the batch's
// sorted order) as its key: Held answers true for those representative
// keys, false for the rest of the batch, and ReclaimWith reports the
// representative if the batch dies — the per-tenancy-key contract striping
// already has, applied to a tenancy that covers a run. Release a batch
// only through Batch.Unlock, never key-by-key through LockTable.Unlock.
//
// If the calling goroutine dies mid-batch (a Crash panic out of the lock
// protocol), every stripe acquired so far — and only those — is orphaned
// as the panic unwinds, surfacing via Orphans() for the supervisor's
// sweep; DoBatch packages the sweep-and-retry loop. Crash-free batches
// allocate nothing once the table's batch free list and node pools are
// warm, amortized over the batch.
func (t *LockTable) LockBatch(keys []uint64) *Batch {
	t.checkBatch(len(keys))
	b := t.getBatch()
	b.keys = append(b.keys[:0], keys...)
	return t.lockPrepared(b)
}

// LockBatchString is LockBatch over string keys, each hashed like every
// other *String method. The digests land in the batch's own scratch, so
// the string path stays allocation-free too.
func (t *LockTable) LockBatchString(keys []string) *Batch {
	t.checkBatch(len(keys))
	b := t.getBatch()
	b.keys = b.keys[:0]
	for _, s := range keys {
		b.keys = append(b.keys, hashString(s))
	}
	return t.lockPrepared(b)
}

// LockBatchContext is LockBatch with a cancellation budget: all-or-nothing.
// It returns the held Batch, or ctx's error with nothing held — if ctx is
// cancelled or expires mid-walk, every stripe already acquired is released
// (in the same ascending ShardIndex order a crash-free Unlock uses) and the
// stripe whose acquisition was interrupted repairs itself through the
// cooperative abort fix-up, exactly as in LockContext. One shed is counted,
// on the stripe where the walk gave up. A nil error always transfers the
// whole batch, even if ctx was cancelled concurrently with the final grant.
func (t *LockTable) LockBatchContext(ctx context.Context, keys []uint64) (*Batch, error) {
	t.checkBatch(len(keys))
	if err := ctx.Err(); err != nil {
		t.shardOf(keys[0]).noteShed(err)
		return nil, err
	}
	done := ctx.Done()
	if done == nil {
		return t.LockBatch(keys), nil
	}
	b := t.getBatch()
	b.keys = append(b.keys[:0], keys...)
	b.prepare()
	shedSh := b.lockAllDone(done)
	if shedSh == nil {
		return b, nil
	}
	err := ctx.Err()
	if err == nil {
		err = context.Canceled
	}
	shedSh.noteShed(err)
	b.Unlock() // releases the stripes acquired before the shed, recycles b
	return nil, err
}

func (t *LockTable) checkBatch(n int) {
	if t.closed.Load() {
		panic("rme: batch acquisition on a closed LockTable")
	}
	if n == 0 {
		panic("rme: LockBatch of no keys")
	}
}

// lockPrepared finishes an acquisition whose keys are already staged in
// b.keys: stripe mapping, (stripe, key) sort, and the guarded walk.
func (t *LockTable) lockPrepared(b *Batch) *Batch {
	b.prepare()
	b.lockAll()
	return b
}

// prepare maps staged keys to stripes, sorts, and resets the walk state.
func (b *Batch) prepare() {
	if cap(b.shard) < len(b.keys) {
		b.shard = make([]int, len(b.keys))
	}
	b.shard = b.shard[:len(b.keys)]
	for i, k := range b.keys {
		b.shard[i] = b.t.ShardIndex(k)
	}
	b.sortByStripe()
	b.stripes = b.stripes[:0]
	b.released = 0
}

// lockAll acquires one tenancy per stripe run, under a guard that orphans
// every held stripe if the worker dies mid-batch.
func (b *Batch) lockAll() {
	defer b.orphanHeldOnCrash()
	i := 0
	for i < len(b.keys) {
		j := i + 1
		for j < len(b.keys) && b.shard[j] == b.shard[i] {
			j++
		}
		sh := &b.t.shards[b.shard[i]]
		l := b.t.acquireLease(sh)
		// Register the run's first key as the tenancy's key: Held and
		// ReclaimWith report a stripe-representative key for batch
		// tenancies, the same way a striped Lock reports the key it was
		// called with rather than every key it excludes.
		sh.key[l.Port].Store(b.keys[i])
		// Record before locking: a crash inside Lock must find this
		// stripe in the held set.
		b.stripes = append(b.stripes, batchStripe{sh: sh, l: l})
		sh.m().Lock(l.Port)
		sh.acquires.Add(1)
		i = j
	}
}

// lockAllDone is lockAll with a cancellation channel. It returns nil once
// every stripe run is held, or the stripe on which the walk gave up (for
// the caller's shed accounting) with that stripe's tenancy already handed
// to the abort fix-up and removed from the held set; the caller owns
// releasing the stripes acquired before it. The crash guard covers the
// walk the same as lockAll's.
func (b *Batch) lockAllDone(done <-chan struct{}) *lockShard {
	defer b.orphanHeldOnCrash()
	i := 0
	for i < len(b.keys) {
		j := i + 1
		for j < len(b.keys) && b.shard[j] == b.shard[i] {
			j++
		}
		sh := &b.t.shards[b.shard[i]]
		l, ok := b.t.acquireLeaseDone(sh, done)
		if !ok {
			return sh
		}
		sh.key[l.Port].Store(b.keys[i])
		b.stripes = append(b.stripes, batchStripe{sh: sh, l: l})
		if !sh.m().LockDone(l.Port, done) {
			// The aborted stripe repairs itself; drop it from the held set
			// so neither the crash guard nor the caller's unwind touches
			// its (now reclaiming) lease.
			sh.abortTenancy(b.t, l)
			b.stripes = b.stripes[:len(b.stripes)-1]
			return sh
		}
		sh.acquires.Add(1)
		i = j
	}
	return nil
}

// orphanHeldOnCrash is lockAll's deferred crash guard: a Crash panic
// orphans exactly the stripes acquired so far (the batch-wide analogue of
// the per-passage OrphanOnCrash guard), recycles the batch — the caller
// will never see it — and lets the panic continue to the supervisor.
func (b *Batch) orphanHeldOnCrash() {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := AsCrash(r); ok {
		for i := range b.stripes {
			b.stripes[i].sh.pool.Orphan(b.stripes[i].l)
		}
		b.t.putBatch(b)
	}
	panic(r)
}

// Unlock releases every stripe of the batch and recycles it. If the
// calling goroutine dies inside a release, the interrupted stripe and
// every not-yet-released one are orphaned as the panic unwinds (their
// tenancies died holding the CS), and the supervisor's sweep completes
// the releases.
func (b *Batch) Unlock() {
	defer b.orphanUnreleasedOnCrash()
	for i := range b.stripes {
		st := &b.stripes[i]
		st.sh.m().Unlock(st.l.Port)
		st.sh.pool.Release(st.l)
		b.released = i + 1
	}
	b.t.putBatch(b)
}

// orphanUnreleasedOnCrash is Unlock's crash guard: stripes at and past
// the release cursor still hold their tenancies and are orphaned for the
// sweep.
func (b *Batch) orphanUnreleasedOnCrash() {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := AsCrash(r); ok {
		for i := b.released; i < len(b.stripes); i++ {
			b.stripes[i].sh.pool.Orphan(b.stripes[i].l)
		}
		b.t.putBatch(b)
	}
	panic(r)
}

// DoBatch runs fn once per key while the whole batch is held, surviving
// worker deaths in the lock protocol exactly as Do does for one key: a
// Crash out of the batch acquisition orphans the held stripes, which are
// reclaimed before the acquisition is retried; a Crash out of the release
// is absorbed and the reclaim sweep completes it. Either way fn has run
// exactly once per key by the time DoBatch returns.
//
// fn sees the keys in the batch's (ShardIndex, key) order, duplicates
// included, and must return normally (see Do for why deaths inside the
// critical section are deliberately not absorbed). An empty keys slice is
// a no-op. The self-deadlock and ordering rules of LockBatch apply.
func (t *LockTable) DoBatch(keys []uint64, fn func(key uint64)) {
	if len(keys) == 0 {
		return
	}
	var b *Batch
	for crashes(func() { b = t.LockBatch(keys) }) {
		t.Reclaim()
	}
	for _, k := range b.keys {
		fn(k)
	}
	if crashes(b.Unlock) {
		t.Reclaim()
	}
}

// sortByStripe orders the (keys, shard) pairs by (shard, key): insertion
// sort for the small batches the API is built for, a heapsort past that
// so a degenerate huge batch stays O(n log n) — both in place, neither
// allocating.
func (b *Batch) sortByStripe() {
	if len(b.keys) <= 32 {
		for i := 1; i < len(b.keys); i++ {
			k, s := b.keys[i], b.shard[i]
			j := i - 1
			for j >= 0 && (b.shard[j] > s || (b.shard[j] == s && b.keys[j] > k)) {
				b.keys[j+1], b.shard[j+1] = b.keys[j], b.shard[j]
				j--
			}
			b.keys[j+1], b.shard[j+1] = k, s
		}
		return
	}
	n := len(b.keys)
	for i := n/2 - 1; i >= 0; i-- {
		b.siftDown(i, n)
	}
	for i := n - 1; i > 0; i-- {
		b.swap(0, i)
		b.siftDown(0, i)
	}
}

func (b *Batch) less(i, j int) bool {
	return b.shard[i] < b.shard[j] || (b.shard[i] == b.shard[j] && b.keys[i] < b.keys[j])
}

func (b *Batch) swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.shard[i], b.shard[j] = b.shard[j], b.shard[i]
}

func (b *Batch) siftDown(root, hi int) {
	for {
		child := 2*root + 1
		if child >= hi {
			return
		}
		if child+1 < hi && b.less(child, child+1) {
			child++
		}
		if !b.less(root, child) {
			return
		}
		b.swap(root, child)
		root = child
	}
}

// getBatch pops a recycled Batch or builds a fresh one.
func (t *LockTable) getBatch() *Batch {
	t.freeMu.Lock()
	b := t.batchFree
	if b != nil {
		t.batchFree = b.next
		b.next = nil
	}
	t.freeMu.Unlock()
	if b == nil {
		b = &Batch{t: t}
	}
	return b
}

// putBatch recycles a released Batch.
func (t *LockTable) putBatch(b *Batch) {
	t.freeMu.Lock()
	b.next = t.batchFree
	t.batchFree = b
	t.freeMu.Unlock()
}
