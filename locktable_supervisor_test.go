package rme_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

// This file proves the self-managing table: the WithSupervisor background
// loop (orphan heals with no caller-driven Reclaim anywhere in these
// tests), the adaptive port-pool policy with its work-stealing fallback,
// and live stripe-shape migration — including the migration-under-fire
// referee. None of the supervised tests call Reclaim: healing crash
// orphans and abandoned grants is exactly the contract under test.

// waitQuiesced polls until the table drains or the deadline passes,
// without sweeping — on a supervised table the supervisor must do that.
func waitQuiesced(t *testing.T, tbl *rme.LockTable, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !tbl.Quiesced() {
		if time.Now().After(deadline) {
			t.Fatalf("table did not drain: %d in use, %d orphans",
				tbl.InUse(), tbl.Orphans())
		}
		time.Sleep(time.Millisecond)
	}
}

// absorbCrash runs op, swallowing an injected Crash panic (any other
// panic propagates); it reports whether op completed. Unlike the older
// storm tests' absorb helper it does NOT sweep — the supervisor owns that.
func absorbCrash(op func()) (completed bool) {
	defer func() {
		r := recover()
		if r == nil {
			completed = true
			return
		}
		if _, ok := rme.AsCrash(r); !ok {
			panic(r)
		}
	}()
	op()
	return
}

// TestSupervisorHealsStormNoManualReclaim is the supervised form of the
// abort/crash/async storm: crashes orphan ports, cancelled-after-granted
// async requests auto-Abandon into the orphan machinery, and some grants
// are explicitly Abandoned — and nothing in the test ever sweeps. The
// supervisor alone must keep every stripe live and drain the debris.
func TestSupervisorHealsStormNoManualReclaim(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		const workers = 24
		const keys = 1 << 9
		iters := 250
		if testing.Short() {
			iters = 50
		}
		tbl := rme.NewLockTable(8, 4, rme.WithTableSeed(83), rme.WithNodePool(true),
			rme.WithShardBackend(backend),
			rme.WithSupervisor(rme.SupervisorConfig{Interval: 500 * time.Microsecond}))
		defer tbl.Close()

		var calls atomic.Uint64
		var crashCount atomic.Int64
		tbl.SetCrashFunc(func(port int, point string) bool {
			if xrand.Mix64(calls.Add(1))%1901 == 0 {
				crashCount.Add(1)
				return true
			}
			return false
		})

		inside := make([]atomic.Int32, keys)
		enter := func(k uint64) {
			if inside[k].Add(1) != 1 {
				t.Errorf("two holders of key %d", k)
			}
		}
		leave := func(k uint64) { inside[k].Add(-1) }

		var wg sync.WaitGroup
		var granted, sheds, abandoned atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				z := rand.NewZipf(rand.New(rand.NewSource(int64(w)+1)), 1.3, 1, keys-1)
				for i := 0; i < iters; i++ {
					k := z.Uint64()
					switch i % 4 {
					case 0: // synchronous passage, crash retried (no sweep: the
						// supervisor heals while we re-acquire)
						for !absorbCrash(func() {
							tbl.Lock(k)
							enter(k)
							leave(k)
							tbl.Unlock(k)
						}) {
						}
						granted.Add(1)
					case 1: // deadline-bounded acquisition
						ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
						absorbCrash(func() {
							if err := tbl.LockContext(ctx, k); err != nil {
								sheds.Add(1)
								return
							}
							enter(k)
							leave(k)
							tbl.Unlock(k)
							granted.Add(1)
						})
						cancel()
					case 2: // async grant, sometimes abandoned like a dead grantee's
						if g, ok := <-tbl.LockAsync(k); ok {
							if i%16 == 2 {
								g.Abandon()
								abandoned.Add(1)
							} else {
								enter(k)
								leave(k)
								absorbCrash(g.Unlock)
								granted.Add(1)
							}
						}
					case 3: // cancellable async acquisition
						ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
						if g, ok := <-tbl.LockAsyncContext(ctx, k); ok {
							enter(k)
							leave(k)
							absorbCrash(g.Unlock)
							granted.Add(1)
						} else {
							sheds.Add(1)
						}
						cancel()
					}
				}
			}(w)
		}
		wg.Wait()
		tbl.SetCrashFunc(nil)

		waitQuiesced(t, tbl, 30*time.Second)
		if tbl.Orphans() != 0 {
			t.Errorf("orphans after drain: %d", tbl.Orphans())
		}
		if granted.Load() == 0 {
			t.Error("storm granted nothing")
		}
		if abandoned.Load() == 0 {
			t.Error("storm abandoned no grants")
		}
		st := tbl.Stats()
		if st.Supervisor.Sweeps == 0 {
			t.Error("supervisor ran no sweeps")
		}
		if crashCount.Load() > 0 && st.Supervisor.PortsHealed == 0 {
			t.Errorf("crashes injected (%d) but supervisor healed nothing", crashCount.Load())
		}
	})
}

// TestSupervisorQuiescedInboxDepth pins the Quiesced fix: a submitted but
// undispatched async request holds no lease, yet the table has not
// quiesced — the old InUse-only check reported true here, which would let
// a migration barrier swap under a request about to take a lease.
func TestSupervisorQuiescedInboxDepth(t *testing.T) {
	tbl := rme.NewLockTable(1, 1, rme.WithTableSeed(5))
	defer tbl.Close()

	entered := make(chan struct{})
	block := make(chan struct{})
	// The callback settles its grant immediately (InUse drops to zero),
	// then wedges the dispatcher goroutine.
	tbl.LockAsyncFunc(1, func(g rme.Grant) {
		g.Unlock()
		close(entered)
		<-block
	})
	<-entered

	// Second request: queued in the inbox, dispatcher wedged — no lease
	// in use, depth 1.
	ch := tbl.LockAsync(2)
	if tbl.InUse() != 0 {
		// The dispatcher settled before wedging; the premise holds anyway
		// (the second request is certainly undispatched).
		t.Logf("InUse = %d (expected 0)", tbl.InUse())
	}
	if tbl.Quiesced() {
		t.Error("Quiesced() true with a queued async request (inbox depth ignored)")
	}

	close(block)
	g := <-ch
	g.Unlock()
	waitQuiesced(t, tbl, 5*time.Second)
}

// TestSupervisorCloseJoins pins Close's supervisor join: after Close
// returns, the loop has fully stopped (its tick counter never advances
// again) and a second Close is a no-op.
func TestSupervisorCloseJoins(t *testing.T) {
	tbl := rme.NewLockTable(4, 2, rme.WithTableSeed(9),
		rme.WithSupervisor(rme.SupervisorConfig{Interval: 200 * time.Microsecond}))
	// Let it tick at least once.
	deadline := time.Now().Add(5 * time.Second)
	for tbl.Stats().Supervisor.Sweeps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	tbl.Close()
	before := tbl.Stats().Supervisor.Sweeps
	time.Sleep(5 * time.Millisecond)
	if after := tbl.Stats().Supervisor.Sweeps; after != before {
		t.Errorf("supervisor still ticking after Close: %d -> %d", before, after)
	}
	tbl.Close() // idempotent
}

// TestMigrateShapeChain walks one stripe through every shape transition
// on a quiet table and proves the tenancy surface is unbroken at each
// step — locks lock, Held answers, stats report the new shape — and that
// an installed crash hook survives every swap.
func TestMigrateShapeChain(t *testing.T) {
	tbl := rme.NewLockTable(2, 4, rme.WithTableSeed(17),
		rme.WithShardBackend(rme.FlatBackend))
	defer tbl.Close()

	var hookCalls atomic.Int64
	tbl.SetCrashFunc(func(port int, point string) bool {
		hookCalls.Add(1)
		return false
	})

	// A key on shard 0, found by probing.
	var key uint64
	for k := uint64(0); ; k++ {
		if tbl.ShardIndex(k) == 0 {
			key = k
			break
		}
	}

	chain := []rme.ShardBackend{rme.MCSBackend, rme.TreeBackend, rme.FlatBackend, rme.TreeBackend, rme.MCSBackend, rme.FlatBackend}
	for _, target := range chain {
		if !tbl.ForceMigrate(0, target, 5*time.Second) {
			t.Fatalf("migration to %v did not complete on a quiet stripe", target)
		}
		if got := tbl.ShardBackendOf(0); got != target {
			t.Fatalf("backend after migration = %v, want %v", got, target)
		}
		if got := tbl.Stats().Shards[0].Backend; got != target {
			t.Fatalf("Stats backend = %v, want %v", got, target)
		}
		before := hookCalls.Load()
		tbl.Lock(key)
		if !tbl.Held(key) {
			t.Fatalf("Held false on %v after migration", target)
		}
		tbl.Unlock(key)
		if hookCalls.Load() == before {
			t.Fatalf("crash hook silent after migration to %v: the swap dropped it", target)
		}
	}
	if got := tbl.Stats().Supervisor.Migrations(); got != uint64(len(chain)) {
		t.Errorf("Migrations() = %d, want %d", got, len(chain))
	}
	waitQuiesced(t, tbl, 5*time.Second)
}

// TestMigrateUnderFireReferee is the migration referee: zipf traffic with
// injected crashes and deadline aborts hammers a supervised table while
// every stripe is forcibly walked flat→MCS→tree→flat, repeatedly. The
// referee asserts mutual exclusion throughout, that no grant is lost,
// and that the table drains to zero orphans with no manual sweep.
func TestMigrateUnderFireReferee(t *testing.T) {
	const workers = 16
	const keys = 1 << 8
	iters := 400
	if testing.Short() {
		iters = 80
	}
	tbl := rme.NewLockTable(4, 8, rme.WithTableSeed(29), rme.WithNodePool(true),
		rme.WithShardBackend(rme.FlatBackend),
		rme.WithSupervisor(rme.SupervisorConfig{Interval: 500 * time.Microsecond}))
	defer tbl.Close()

	var calls atomic.Uint64
	var crashCount atomic.Int64
	tbl.SetCrashFunc(func(port int, point string) bool {
		if xrand.Mix64(calls.Add(1))%2503 == 0 {
			crashCount.Add(1)
			return true
		}
		return false
	})

	inside := make([]atomic.Int32, keys)
	enter := func(k uint64) {
		if inside[k].Add(1) != 1 {
			t.Errorf("two holders of key %d", k)
		}
	}
	leave := func(k uint64) { inside[k].Add(-1) }

	// The migrator: walk every stripe through the full shape cycle until
	// the traffic stops. Failed attempts (stripe would not drain in time
	// under fire) are fine — the stripe keeps its shape and the walk
	// retries; what the referee demands is that the successes are safe.
	stopMig := make(chan struct{})
	var migWG sync.WaitGroup
	var migrated atomic.Int64
	migWG.Add(1)
	go func() {
		defer migWG.Done()
		cycle := []rme.ShardBackend{rme.MCSBackend, rme.TreeBackend, rme.FlatBackend}
		for i := 0; ; i++ {
			for s := 0; s < tbl.Shards(); s++ {
				select {
				case <-stopMig:
					return
				default:
				}
				if tbl.ForceMigrate(s, cycle[i%len(cycle)], 300*time.Millisecond) {
					migrated.Add(1)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	var granted, sheds atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			z := rand.NewZipf(rand.New(rand.NewSource(int64(w)+11)), 1.2, 1, keys-1)
			for i := 0; i < iters; i++ {
				k := z.Uint64()
				switch i % 3 {
				case 0:
					for !absorbCrash(func() {
						tbl.Lock(k)
						enter(k)
						leave(k)
						tbl.Unlock(k)
					}) {
					}
					granted.Add(1)
				case 1:
					ctx, cancel := context.WithTimeout(context.Background(), 200*time.Microsecond)
					absorbCrash(func() {
						if err := tbl.LockContext(ctx, k); err != nil {
							sheds.Add(1)
							return
						}
						enter(k)
						leave(k)
						tbl.Unlock(k)
						granted.Add(1)
					})
					cancel()
				case 2:
					if g, ok := <-tbl.LockAsync(k); ok {
						enter(k)
						leave(k)
						absorbCrash(g.Unlock)
						granted.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopMig)
	migWG.Wait()
	tbl.SetCrashFunc(nil)

	waitQuiesced(t, tbl, 30*time.Second)
	if tbl.Orphans() != 0 {
		t.Errorf("orphans after final drain: %d", tbl.Orphans())
	}
	if granted.Load() == 0 {
		t.Error("referee granted nothing")
	}
	if migrated.Load() == 0 {
		t.Error("no migration completed under fire")
	}
	st := tbl.Stats()
	if st.Supervisor.Migrations() != uint64(migrated.Load()) {
		t.Errorf("Migrations() = %d, migrator observed %d", st.Supervisor.Migrations(), migrated.Load())
	}
	t.Logf("referee: %d grants, %d sheds, %d crashes, %d migrations",
		granted.Load(), sheds.Load(), crashCount.Load(), migrated.Load())
}

// TestSupervisorAdaptivePools drives the pool policy end to end: an idle
// supervised table shrinks its stripes to the floor and banks the quota;
// skewed load on one stripe then wins its ports back through the
// grow/steal path, and the table's port quota is conserved throughout.
func TestSupervisorAdaptivePools(t *testing.T) {
	const shards = 4
	const ports = 16
	tbl := rme.NewLockTable(shards, ports, rme.WithTableSeed(41),
		rme.WithSupervisor(rme.SupervisorConfig{
			Interval:      200 * time.Microsecond,
			AdaptivePorts: true,
			MinPorts:      2,
		}))
	defer tbl.Close()

	// Idle: every stripe should shrink to the floor.
	deadline := time.Now().Add(10 * time.Second)
	for {
		shrunk := true
		for s := 0; s < shards; s++ {
			if tbl.PoolActive(s) > 2 {
				shrunk = false
			}
		}
		if shrunk {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stripes did not shrink: active = %d %d %d %d, slack = %d",
				tbl.PoolActive(0), tbl.PoolActive(1), tbl.PoolActive(2), tbl.PoolActive(3),
				tbl.SlackPorts())
		}
		time.Sleep(time.Millisecond)
	}
	if tbl.SlackPorts() == 0 {
		t.Error("shrink banked no slack")
	}

	// Skew: hammer one key with far more workers than the shrunken bound,
	// holding each passage briefly so the workers genuinely overlap in the
	// acquire path (on GOMAXPROCS=1 a zero-length critical section lets
	// each worker complete its whole passage per quantum and the stripe
	// never exhausts). The stripe must win ports back — steal on
	// exhaustion, supervisor grow on parked waiters.
	key := uint64(7)
	hot := tbl.ShardIndex(key)
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tbl.Lock(key)
				time.Sleep(20 * time.Microsecond)
				tbl.Unlock(key)
			}
		}()
	}
	wg.Wait()

	st := tbl.Stats()
	if st.Supervisor.Shrinks == 0 {
		t.Error("no shrinks recorded")
	}
	if got := tbl.PoolActive(hot); got <= 2 && st.Supervisor.Steals == 0 && st.Supervisor.Grows == 0 {
		t.Errorf("hot stripe never grew: active=%d, steals=%d, grows=%d",
			got, st.Supervisor.Steals, st.Supervisor.Grows)
	}
	// Quota conservation: active bounds plus banked slack never exceed
	// the construction arena (racy reads, so allow the sum to be under
	// while a steal is mid-flight, never over).
	sum := tbl.SlackPorts()
	for s := 0; s < shards; s++ {
		sum += tbl.PoolActive(s)
	}
	if sum > shards*ports {
		t.Errorf("port quota inflated: sum(active)+slack = %d > %d", sum, shards*ports)
	}
	waitQuiesced(t, tbl, 10*time.Second)
}

// TestSupervisorStealFallback isolates the acquire-path steal: a stripe
// pinned at 1 active port with slack banked must widen itself from the
// acquire path the moment concurrent holders exhaust it — no supervisor
// involved.
func TestSupervisorStealFallback(t *testing.T) {
	tbl := rme.NewLockTable(1, 8, rme.WithTableSeed(3))
	defer tbl.Close()
	tbl.PoolResize(0, 1)
	tbl.SetAdaptive(true, 7)

	const holders = 4
	var wg sync.WaitGroup
	held := make(chan uint64, holders)
	release := make(chan struct{})
	for w := 0; w < holders; w++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			tbl.Lock(k)
			held <- k
			<-release
			tbl.Unlock(k)
		}(uint64(100 + w*64)) // distinct keys, same (only) stripe
	}
	// All four must end up holding leases concurrently: only steals can
	// widen the 1-port bound. (They hold distinct keys of one stripe, so
	// only one holds the lock — the rest are queued on ports, which is
	// what needs the width.)
	got := 0
	deadline := time.After(10 * time.Second)
	for got < 1 { // at least the first passes even without steal
		select {
		case <-held:
			got++
		case <-deadline:
			t.Fatalf("no holder after 10s; active=%d", tbl.PoolActive(0))
		}
	}
	// The remaining holders are queued or waiting; the steal path must
	// have widened the pool for them to even enqueue. Wait for the width.
	wait := time.Now().Add(10 * time.Second)
	for tbl.PoolActive(0) < 2 {
		if time.Now().After(wait) {
			t.Fatalf("steal never widened the pool: active=%d, slack=%d",
				tbl.PoolActive(0), tbl.SlackPorts())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if tbl.Stats().Supervisor.Steals == 0 {
		t.Error("no steals recorded")
	}
	waitQuiesced(t, tbl, 5*time.Second)
}

// TestSupervisorStatsJSON pins the MarshalJSON surface: stable snake_case
// keys, backends by name, and the derived ratios inlined.
func TestSupervisorStatsJSON(t *testing.T) {
	tbl := rme.NewLockTable(2, 4, rme.WithTableSeed(13),
		rme.WithShardBackend(rme.MCSBackend))
	defer tbl.Close()
	tbl.Lock(1)
	tbl.Unlock(1)

	raw, err := json.Marshal(tbl.Stats())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s := string(raw)
	for _, want := range []string{
		`"shards"`, `"total"`, `"supervisor"`,
		`"acquires"`, `"wakes_per_op"`, `"backend":"mcs"`,
		`"active_ports"`, `"sweeps"`, `"migrations_to_tree"`, `"steals"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("stats JSON missing %s in %s", want, s)
		}
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("stats JSON does not round-trip: %v", err)
	}
}
