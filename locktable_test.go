package rme_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

// backendMatrix runs f once per shard-lock backend, so every keyed
// invariant the suite pins — mutual exclusion, crash recovery,
// zero-allocation warm passages, async and batch semantics — is proven
// against all three lock shapes rather than assumed to transfer.
func backendMatrix(t *testing.T, f func(t *testing.T, backend rme.ShardBackend)) {
	for _, b := range []rme.ShardBackend{rme.FlatBackend, rme.TreeBackend, rme.MCSBackend} {
		t.Run(b.String(), func(t *testing.T) { f(t, b) })
	}
}

// TestLockTableBackendResolution pins WithShardBackend's contract: the
// explicit shapes are honored at any port count, and Auto (the default)
// makes its three-way choice at the documented thresholds — flat up to
// 32 ports, MCS from 33 to 256, tree past 256.
func TestLockTableBackendResolution(t *testing.T) {
	tests := []struct {
		name  string
		ports int
		opts  []rme.Option
		want  rme.ShardBackend
	}{
		{"default small is flat", 4, nil, rme.FlatBackend},
		{"auto small is flat", 32, []rme.Option{rme.WithShardBackend(rme.AutoBackend)}, rme.FlatBackend},
		{"auto mid is mcs", 33, []rme.Option{rme.WithShardBackend(rme.AutoBackend)}, rme.MCSBackend},
		{"auto mid upper is mcs", 256, []rme.Option{rme.WithShardBackend(rme.AutoBackend)}, rme.MCSBackend},
		{"auto large is tree", 257, []rme.Option{rme.WithShardBackend(rme.AutoBackend)}, rme.TreeBackend},
		{"explicit flat at any size", 64, []rme.Option{rme.WithShardBackend(rme.FlatBackend)}, rme.FlatBackend},
		{"explicit tree at any size", 2, []rme.Option{rme.WithShardBackend(rme.TreeBackend)}, rme.TreeBackend},
		{"explicit mcs at any size", 2, []rme.Option{rme.WithShardBackend(rme.MCSBackend)}, rme.MCSBackend},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tbl := rme.NewLockTable(2, tt.ports, tt.opts...)
			if got := tbl.Backend(); got != tt.want {
				t.Fatalf("Backend() = %v, want %v", got, tt.want)
			}
			// Whatever the shape, a basic passage must work.
			tbl.Lock(7)
			if !tbl.Held(7) {
				t.Fatal("Held false while locked")
			}
			tbl.Unlock(7)
			if !tbl.Quiesced() {
				t.Fatal("not quiesced after the passage")
			}
		})
	}
}

func TestLockTableBasics(t *testing.T) {
	tbl := rme.NewLockTable(8, 2, rme.WithTableSeed(1))
	if tbl.Shards() != 8 || tbl.Ports() != 2 {
		t.Fatalf("shape = %d×%d, want 8×2", tbl.Shards(), tbl.Ports())
	}
	tbl.Lock(42)
	if !tbl.Held(42) {
		t.Fatal("Held(42) false while locked")
	}
	if tbl.Held(43) {
		t.Fatal("Held(43) true without a holder")
	}
	tbl.Unlock(42)
	if tbl.Held(42) || !tbl.Quiesced() {
		t.Fatal("lock not fully released")
	}

	for _, k := range []uint64{0, 42, 1 << 40} {
		idx := tbl.ShardIndex(k)
		if idx < 0 || idx >= tbl.Shards() {
			t.Fatalf("ShardIndex(%d) = %d, out of [0,%d)", k, idx, tbl.Shards())
		}
		if idx != tbl.ShardIndex(k) {
			t.Fatalf("ShardIndex(%d) not deterministic", k)
		}
	}

	tbl.LockString("users/alice")
	if !tbl.HeldString("users/alice") {
		t.Fatal("HeldString false while locked")
	}
	tbl.UnlockString("users/alice")
	if !tbl.Quiesced() {
		t.Fatal("string passage left ports in use")
	}
}

func TestLockTableMisusePanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"zero shards", func() { rme.NewLockTable(0, 1) }},
		{"zero ports", func() { rme.NewLockTable(1, 0) }},
		{"unlock unheld key", func() { rme.NewLockTable(2, 2).Unlock(7) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tt.fn()
		})
	}
}

// TestLockTableStripeSemantics pins the striping contract on a one-shard
// table: two distinct keys of the same stripe exclude each other, and Held
// answers per key, not per stripe.
func TestLockTableStripeSemantics(t *testing.T) {
	tbl := rme.NewLockTable(1, 2, rme.WithTableSeed(1))
	tbl.Lock(1)
	if tbl.Held(2) {
		t.Fatal("Held(2) true while the stripe is held for key 1")
	}
	entered := make(chan struct{})
	go func() {
		tbl.Lock(2) // same stripe: must wait for key 1's release
		close(entered)
		tbl.Unlock(2)
	}()
	// Give the rival a real scheduling window before asserting it is still
	// excluded — an immediate probe would pass even without exclusion.
	select {
	case <-entered:
		t.Fatal("stripe exclusion violated")
	case <-time.After(50 * time.Millisecond):
	}
	tbl.Unlock(1)
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("rival starved after the stripe was released")
	}
}

// TestLockTableMutualExclusionStress: many workers over a small arena and
// a modest keyspace, per-key referees, against both shard backends. Key
// traffic is uniform; the zipf crash storm below covers the skewed case.
func TestLockTableMutualExclusionStress(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		const workers, iters, keys = 16, 300, 64
		tbl := rme.NewLockTable(4, 4, rme.WithTableSeed(7), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		var inside [keys]atomic.Int32
		var counters [keys]int // race-detector referees, guarded by the keyed lock
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := xrand.New(uint64(w) + 1)
				for i := 0; i < iters; i++ {
					k := rng.Uint64() % keys
					tbl.Lock(k)
					if inside[k].Add(1) != 1 {
						t.Errorf("two holders of key %d", k)
					}
					counters[k]++
					inside[k].Add(-1)
					tbl.Unlock(k)
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for k := range counters {
			total += counters[k]
		}
		if total != workers*iters {
			t.Fatalf("counter sum = %d, want %d", total, workers*iters)
		}
		if !tbl.Quiesced() {
			t.Fatal("table not quiesced after the stress")
		}
	})
}

// TestLockTableZipfCrashStress is the acceptance workload: 64 goroutines
// over a 1M-key zipf distribution with crash injection, each passage run
// through Do (the packaged reclaim-and-retry supervisor), against both
// shard backends — the injected-crash sweep must prove the recovery
// invariants per lock shape, not assume they transfer. Referees: per-key
// holder exclusivity (atomic) and a per-key counter written only while
// holding (race detector), plus full orphan reclamation at the end.
func TestLockTableZipfCrashStress(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		const workers = 64
		const keys = 1 << 20
		iters := 200
		if testing.Short() {
			iters = 40
		}
		tbl := rme.NewLockTable(16, 4, rme.WithTableSeed(99), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		var calls atomic.Uint64
		var crashes atomic.Int64
		tbl.SetCrashFunc(func(port int, point string) bool {
			if xrand.Mix64(calls.Add(1))%1777 == 0 {
				crashes.Add(1)
				return true
			}
			return false
		})
		inside := make([]atomic.Int32, keys)
		counters := make([]int32, keys) // guarded by the keyed lock
		var wg sync.WaitGroup
		var passages atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				z := rand.NewZipf(rand.New(rand.NewSource(int64(w)+1)), 1.3, 1, keys-1)
				for i := 0; i < iters; i++ {
					k := z.Uint64()
					tbl.Do(k, func() {
						if inside[k].Add(1) != 1 {
							t.Errorf("two holders of key %d", k)
						}
						counters[k]++
						inside[k].Add(-1)
					})
					passages.Add(1)
				}
			}(w)
		}
		wg.Wait()
		tbl.SetCrashFunc(nil)
		tbl.Reclaim() // final sweep for orphans whose worker finished its loop
		if got := tbl.Orphans(); got != 0 {
			t.Fatalf("%d orphaned ports left after the final sweep", got)
		}
		if !tbl.Quiesced() {
			t.Fatal("table not quiesced after the storm")
		}
		var total int64
		for k := range counters {
			total += int64(counters[k])
		}
		if total != passages.Load() || total != int64(workers)*int64(iters) {
			t.Fatalf("counter sum %d, passages %d, want %d", total, passages.Load(), int64(workers)*int64(iters))
		}
		if crashes.Load() == 0 {
			t.Fatal("storm injected no crashes; the recovery paths were never exercised")
		}
	})
}

// TestLockTableTreeBackendReclaimWith is the tree-shard counterpart of
// TestLockTableReclaimWith: the flat variant dies at L27 (still inside
// the CS, Held true); the tree's release publishes its phase word first,
// so dying at the tree-level T.down point models a worker that left the
// CS but crashed with the whole release replay outstanding — every level
// still held, Held already false. The sweep must report inCS=false, run
// the replay, and leave the stripe fully usable.
func TestLockTableTreeBackendReclaimWith(t *testing.T) {
	tbl := rme.NewLockTable(2, 8, rme.WithTableSeed(3), rme.WithShardBackend(rme.TreeBackend))
	const key = 1234
	tbl.Lock(key)
	tbl.SetCrashFunc(func(port int, point string) bool { return point == "T.down" })
	func() {
		defer func() {
			if _, ok := rme.AsCrash(recover()); !ok {
				t.Fatal("expected an injected crash during Unlock")
			}
		}()
		tbl.Unlock(key)
	}()
	tbl.SetCrashFunc(nil)
	if tbl.Held(key) {
		t.Fatal("tree tenancy past T.down must not report Held (phase already left the CS)")
	}
	var gotKey uint64
	var gotInCS bool
	if n := tbl.ReclaimWith(func(k uint64, inCS bool) { gotKey, gotInCS = k, inCS }); n != 1 {
		t.Fatalf("ReclaimWith = %d, want 1", n)
	}
	if gotKey != key || gotInCS {
		t.Fatalf("callback saw (key=%d, inCS=%v), want (%d, false)", gotKey, gotInCS, key)
	}
	if tbl.Held(key) || !tbl.Quiesced() {
		t.Fatal("key not free after the sweep")
	}
	tbl.Lock(key) // the reclaimed stripe must be fully usable
	tbl.Unlock(key)
}

// TestLockTableReclaimWith pins the application-recovery hook: a worker
// that dies inside the critical section leaves its key reported to the
// sweep callback with inCS=true, and the key is free afterwards.
func TestLockTableReclaimWith(t *testing.T) {
	tbl := rme.NewLockTable(2, 2, rme.WithTableSeed(3))
	const key = 1234
	tbl.Lock(key)
	// Die at the first step of Unlock, before the exit is published: the
	// tenancy is still inside the CS.
	tbl.SetCrashFunc(func(port int, point string) bool { return point == "L27" })
	func() {
		defer func() {
			if _, ok := rme.AsCrash(recover()); !ok {
				t.Fatal("expected an injected crash during Unlock")
			}
		}()
		tbl.Unlock(key)
	}()
	tbl.SetCrashFunc(nil)
	if !tbl.Held(key) {
		t.Fatal("orphaned-in-CS key must still report Held")
	}
	var gotKey uint64
	var gotInCS bool
	if n := tbl.ReclaimWith(func(k uint64, inCS bool) { gotKey, gotInCS = k, inCS }); n != 1 {
		t.Fatalf("ReclaimWith = %d, want 1", n)
	}
	if gotKey != key || !gotInCS {
		t.Fatalf("callback saw (key=%d, inCS=%v), want (%d, true)", gotKey, gotInCS, key)
	}
	if tbl.Held(key) || !tbl.Quiesced() {
		t.Fatal("key not free after the sweep")
	}
	tbl.Lock(key) // the reclaimed stripe must be fully usable
	tbl.Unlock(key)
}

// TestLockTableZeroAllocPassage pins the acceptance claim: with the node
// pool on, a warm crash-free keyed passage allocates nothing — lease
// acquisition, key hashing (uint64 and string), locking, and release
// included — on both shard backends (the tree shape threads the same node
// pools through every level, so a multi-level passage is as allocation-
// free as a flat one; 8 ports gives the tree real depth here).
func TestLockTableZeroAllocPassage(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		tbl := rme.NewLockTable(4, 8, rme.WithTableSeed(5), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		const key = 77
		for i := 0; i < 8; i++ { // warm the node pools past their consume lag
			tbl.Lock(key)
			tbl.Unlock(key)
		}
		if avg := testing.AllocsPerRun(200, func() {
			tbl.Lock(key)
			tbl.Unlock(key)
		}); avg != 0 {
			t.Fatalf("uint64 keyed passage allocs = %v, want 0", avg)
		}
		for i := 0; i < 8; i++ {
			tbl.LockString("warm/key")
			tbl.UnlockString("warm/key")
		}
		if avg := testing.AllocsPerRun(200, func() {
			tbl.LockString("warm/key")
			tbl.UnlockString("warm/key")
		}); avg != 0 {
			t.Fatalf("string keyed passage allocs = %v, want 0", avg)
		}
	})
}
