package rme

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"

	"github.com/rmelib/rme/internal/wait"
)

// This file is the third shard backend: a recoverable MCS queue lock.
// Where the flat Mutex pays a Θ(k) port-table scan (under one serialized
// repair lock) to recover from a crash, and the TreeMutex pays
// O(log k / log log k) extra hand-off levels on every passage to confine
// repairs, the MCS shape keeps both costs constant: crash-free passages
// are O(1) RMR with every waiter spinning on its own cache-line-padded
// node, and crash recovery touches only the O(1) neighborhood of the dead
// node — its predecessor's next link and its successor's grant — never a
// k-wide scan.

// MCS word layouts. A node reference ("ref") names one passage of one
// port: the port index (plus one, so a ref is never zero) in the low
// mcsRefPortBits bits and the passage epoch above them. The per-port state
// word packs the same epoch over a 3-bit phase. Epochs are bumped once per
// fresh passage; 48 bits of epoch outlast any realistic run, and (as with
// the lease words and the wait engine's generations) only equality is ever
// compared, so even wraparound would need a ref to survive exactly 2^48
// passages of one port to be confused.
const (
	mcsRefPortBits = 16
	mcsMaxPorts    = 1<<mcsRefPortBits - 1

	mcsPhaseBits = 3
	mcsPhaseMask = 1<<mcsPhaseBits - 1
)

// Passage phases, held in the low bits of a node's state word. The word
// advances Idle→Enq→(Wait→)CS→Rel→Idle over one passage; every transition
// is written before the action it licenses, so a replacement caller after
// a crash reads exactly how far the dead passage got.
const (
	mcsIdle uint64 = iota // no passage in flight
	mcsEnq                // enqueue begun; committed iff tail reached the ref
	mcsWait               // enqueued behind pred, waiting for the grant
	mcsCS                 // owns the critical section
	mcsRel                // release begun
)

func mcsRef(port int, epoch uint64) uint64 {
	return epoch<<mcsRefPortBits | uint64(port+1)
}

func mcsRefPort(ref uint64) int     { return int(ref&(1<<mcsRefPortBits-1)) - 1 }
func mcsRefEpoch(ref uint64) uint64 { return ref >> mcsRefPortBits }

func mcsWord(epoch, phase uint64) uint64 { return epoch<<mcsPhaseBits | phase }

// mcsNode is one port's queue node — permanent, epoch-stamped state rather
// than a per-passage allocation, so a replacement caller on the same port
// finds the dead passage's node exactly where the protocol left it. Padded
// so each port's spin state owns its cache lines.
type mcsNode struct {
	// word packs (epoch << mcsPhaseBits | phase): the passage's progress
	// record, and the grant word — the releaser CASes its successor's word
	// Wait→CS, making the hand-off a single epoch-guarded step.
	word atomic.Uint64
	// pred is the ref of the passage's predecessor (0 = the queue was
	// empty). Written only under the enqueue descriptor; trustworthy once
	// word has advanced past mcsEnq, or while tail holds this node's ref.
	pred atomic.Uint64
	// next is the ref of the passage's successor, linked by the successor
	// itself (CAS from 0) after its enqueue commits. Reset by the owner at
	// the start of each passage, before its ref can reach tail.
	next atomic.Uint64
	// cell is where the passage's waiter spins (locally) for the grant;
	// the generation stamp kills wakes aimed at a crashed passage's
	// abandoned episode.
	cell wait.Cell

	_ [cacheLineSize - (3*unsafe.Sizeof(atomic.Uint64{})+unsafe.Sizeof(wait.Cell{}))%cacheLineSize]byte
}

// MCSMutex is a k-ported recoverable MCS queue lock: the library's third
// lock shape, after the flat Mutex and the arbitration TreeMutex. Arrivals
// append to a single-word tail; each waiter spins on its own padded node;
// release hands the critical section to the linked successor with one CAS
// and one wake. All shared state lives on the heap owned by the MCSMutex
// (the stand-in for non-volatile memory), so any goroutine can replace a
// crashed one by calling Lock on the same port.
//
// # Recoverability: epochs plus a locked-descriptor enqueue
//
// The classic recoverable-MCS constructions (e.g. the pmwcas RecoverMutex)
// lean on FASAS — an atomic fetch-and-store that also stores the fetched
// value to a second location — so that "swing tail, learn my predecessor"
// leaves no crash window in which the predecessor is known only to a dead
// register. Go's single-word atomics cannot express FASAS, and no packing
// of (node, epoch, linked-bit) into one uint64 can either: the two words
// involved (the shared tail and the enqueuer's private pred record) belong
// to different owners. This type therefore uses the sanctioned fallback: a
// short locked descriptor. One word (enq) names the port-passage currently
// allowed to move tail; the three-step enqueue (read tail, record pred,
// store tail) and the empty-queue release (verify tail, clear it) run
// under it.
//
// The correctness argument, in full, because the descriptor is what makes
// every crash window O(1)-recoverable:
//
//  1. tail is written only under the descriptor. Hence, while a passage
//     holds it, tail is frozen to everyone else, and "tail == my ref"
//     decides exactly whether my enqueue committed — once my ref is in
//     tail it can only leave under the descriptor I am holding.
//  2. The holder's identity (port and epoch) is the descriptor's value,
//     so a crashed holder is detectable: its replacement finds enq still
//     carrying its own passage's ref and resumes the descriptor section
//     idempotently (every step is a re-runnable store whose completion is
//     observable: pred re-derives from the frozen tail, the phase word
//     records whether the section finished). Other arrivals spin until
//     the orphan is reclaimed — the same stripe-stalls-until-Reclaim
//     liveness model as every other orphan in this package.
//  3. The phase word advances to mcsWait/mcsCS before the descriptor is
//     released, so a passage seen in mcsEnq without holding the
//     descriptor has provably not committed and may restart its enqueue
//     from scratch; one seen in mcsWait/mcsCS has provably committed.
//     There is no ambiguous state, which is what lets recovery decide
//     membership of the queue without walking it.
//  4. A committed passage's predecessor cannot finish releasing — and so
//     cannot start a new passage, recycling its node — until this passage
//     links pred.next (the releaser waits for the link whenever its
//     tail-CAS view shows a successor committed). Hence the link CAS
//     (next: 0 → my ref) never lands in a later passage of the
//     predecessor, and needs no epoch guard of its own.
//
// The cost of the fallback is one uncontended CAS-acquire/store-release
// pair per enqueue and per empty-queue release, on the arrival path only;
// the contended hand-off path — the part that dominates a loaded stripe —
// is untouched MCS: local spin, one remote CAS plus one wake per passage.
//
// An MCSMutex must be created with NewMCS. Methods are safe for concurrent
// use under the package's port discipline (at most one goroutine per port
// at a time).
type MCSMutex struct {
	ports int
	strat wait.Strategy

	// tail is the queue's single shared word: the ref of the last enqueued
	// passage, 0 when empty. Read freely, written only under enq.
	tail atomic.Uint64
	// enq is the locked descriptor (see the type comment): 0 when free,
	// else the ref of the passage currently moving tail.
	enq atomic.Uint64

	nodes   []mcsNode
	crashFn atomic.Pointer[CrashFunc]
}

var _ portLock = (*MCSMutex)(nil)

// NewMCS creates a recoverable MCS queue lock with the given number of
// ports (the maximum number of concurrent passages, usually the worker
// count). Options are the same as New's: WithWaitStrategy tunes how
// waiters spin on their nodes; WithNodePool is accepted and ignored (MCS
// nodes are permanent per-port state — every passage is allocation-free
// by construction).
func NewMCS(ports int, opts ...Option) *MCSMutex {
	if ports <= 0 {
		panic("rme: NewMCS needs at least one port")
	}
	if ports > mcsMaxPorts {
		panic(fmt.Sprintf("rme: NewMCS supports at most %d ports", mcsMaxPorts))
	}
	cfg := buildConfig(opts)
	return &MCSMutex{
		ports: ports,
		strat: cfg.strat,
		nodes: make([]mcsNode, ports),
	}
}

// Ports returns the number of ports the lock was created with.
func (m *MCSMutex) Ports() int { return m.ports }

func (m *MCSMutex) checkPort(port int) {
	if port < 0 || port >= m.ports {
		panic(fmt.Sprintf("rme: port %d out of range [0,%d)", port, m.ports))
	}
}

// Held reports whether port currently owns the critical section — true
// also for an orphaned passage whose owner died inside it, which is what
// recovery harnesses ask.
func (m *MCSMutex) Held(port int) bool {
	m.checkPort(port)
	return m.nodes[port].word.Load()&mcsPhaseMask == mcsCS
}

// SetCrashFunc installs (or, with nil, removes) the crash-injection hook.
// MCS-specific step labels are "M."-prefixed: M.enq (enqueue announced,
// descriptor not yet taken), M.swap (tail swung under the descriptor,
// phase not yet committed), M.link (enqueue committed, pred.next not yet
// linked), M.wait (linked, spin not yet begun), M.cs (inside the critical
// section, release not yet announced), M.rel (release announced), M.empty
// (tail cleared under the descriptor, phase not yet retired), M.succwait
// (release saw a committed but unlinked successor), M.grant (successor
// known, not yet signalled). Abort windows get their own points, hit only
// when a cancellable acquire is abandoned: M.abort.enq (cancelled spinning
// for the descriptor, enqueue uncommitted) and M.abort.wait (cancelled in
// the grant wait, node left linked).
func (m *MCSMutex) SetCrashFunc(fn CrashFunc) {
	if fn == nil {
		m.crashFn.Store(nil)
		return
	}
	m.crashFn.Store(&fn)
}

func (m *MCSMutex) cp(port int, point string) {
	if fn := m.crashFn.Load(); fn != nil {
		if (*fn)(port, point) {
			panic(Crash{Port: port, Point: point})
		}
	}
}

// CrashPoint exposes the injection hook for application-labeled points,
// like Mutex.CrashPoint.
func (m *MCSMutex) CrashPoint(port int, point string) { m.cp(port, point) }

// lockDesc acquires the enqueue descriptor for the passage (port, epoch).
// A plain test-and-set spin: the descriptor's critical sections are three
// or four stores long, so the wait is momentary unless the holder died —
// in which case the spinner is waiting for a reclaim sweep, exactly as a
// queued waiter behind a dead node is.
func (m *MCSMutex) lockDesc(port int, epoch uint64) {
	m.lockDescDone(port, epoch, nil)
}

// lockDescDone is lockDesc with a cancellation channel (nil = wait
// forever): it reports whether the descriptor was acquired. A false return
// leaves nothing engaged — the CAS never landed — so the caller's enqueue
// provably never committed.
func (m *MCSMutex) lockDescDone(port int, epoch uint64, done <-chan struct{}) bool {
	ref := mcsRef(port, epoch)
	for i := 0; !m.enq.CompareAndSwap(0, ref); i++ {
		if done != nil {
			select {
			case <-done:
				return false
			default:
			}
		}
		if i >= 64 {
			runtime.Gosched()
		}
	}
	return true
}

func (m *MCSMutex) unlockDesc() { m.enq.Store(0) }

// Lock acquires the critical section for port. Like Mutex.Lock it doubles
// as the recovery entry point: called on a port whose previous passage
// crashed, it resumes that passage — wait-free return if the dead owner
// held the critical section, O(1) neighborhood repair otherwise — instead
// of starting a fresh one.
func (m *MCSMutex) Lock(port int) {
	m.checkPort(port)
	n := &m.nodes[port]
	w := n.word.Load()
	epoch := w >> mcsPhaseBits
	// Every descriptor section ends with a phase store and then the
	// descriptor release. A crash between those two leaves enq carrying
	// this port's passage ref with the section's work fully committed; free
	// it here so the recovery below (and every other port) can proceed. A
	// ref found while the phase still reads mid-section (mcsEnq, mcsRel) is
	// not a leak — the section itself is unfinished, and its recovery
	// resumes it while still holding the descriptor.
	if ph := w & mcsPhaseMask; ph != mcsEnq && ph != mcsRel &&
		m.enq.Load() == mcsRef(port, epoch) {
		m.unlockDesc()
	}
	switch w & mcsPhaseMask {
	case mcsIdle:
		m.acquire(port, epoch+1)
	case mcsEnq:
		m.recoverEnqueue(port, epoch)
	case mcsWait:
		m.recoverWait(port, epoch)
	case mcsCS:
		// Died (or re-entered) inside the critical section: wait-free
		// re-entry, the paper's defining recovery guarantee.
	case mcsRel:
		// Died mid-release: finish handing the old passage off, then run a
		// fresh acquisition so Lock returns holding the critical section
		// (the contract ReclaimWith's Lock-then-Unlock loop relies on).
		m.completeRelease(port, epoch)
		m.acquire(port, epoch+1)
	}
}

// LockDone is Lock with a cancellation channel: it returns true once port
// holds the critical section, or false if done closed first. Cancellation
// can land in two windows, each left exactly as the matching crash:
//
//   - Spinning for the enqueue descriptor: the attempt never engaged the
//     queue. The phase word stays at the uncommitted mcsEnq, and recovery
//     (recoverEnqueue, not holding the descriptor) restarts the enqueue
//     from scratch — the descriptor-holder-death invariants extend to a
//     holder that aborts because an aborting spinner never held it at all.
//   - Waiting for the grant: the passage stays linked in mcsWait (a crash
//     at M.wait), and recovery is the O(1) neighborhood repair. A grant
//     racing the cancellation is taken, not dropped (see linkAndWaitDone).
//
// Either way the port owes the standard recovery Lock (the LockTable's
// abort path runs it from the departing caller) before any fresh passage.
// Recovery passages themselves are not cancellable and return true.
func (m *MCSMutex) LockDone(port int, done <-chan struct{}) bool {
	m.checkPort(port)
	n := &m.nodes[port]
	w := n.word.Load()
	if w&mcsPhaseMask != mcsIdle {
		m.Lock(port) // recovery: run the interrupted passage to completion
		return true
	}
	epoch := w >> mcsPhaseBits
	// Same stale-descriptor release as Lock's entry: a previous execution
	// that died between its final phase store and its descriptor release
	// left enq carrying this port's committed section; free it before the
	// fresh enqueue spins on it.
	if m.enq.Load() == mcsRef(port, epoch) {
		m.unlockDesc()
	}
	return m.acquireDone(port, epoch+1, done)
}

// freeHint reports whether an arrival at port would currently acquire
// without queuing: the queue is empty and the enqueue descriptor free.
// Racy — a hint for TryLock, not a reservation.
func (m *MCSMutex) freeHint(int) bool {
	return m.tail.Load() == 0 && m.enq.Load() == 0
}

// quiesceExport reports whether the lock is fully idle — every port's
// phase word retired, queue empty, enqueue descriptor free — and, when it
// is, exports the installed crash hook for a migration to carry onto the
// replacement backend. Exact under the caller's quiesce barrier: a
// non-idle phase word is a passage in flight or an unswept orphan, and a
// non-zero tail/descriptor is a queue entry whose owner still exists.
func (m *MCSMutex) quiesceExport() (CrashFunc, bool) {
	if m.tail.Load() != 0 || m.enq.Load() != 0 {
		return nil, false
	}
	for i := range m.nodes {
		if m.nodes[i].word.Load()&mcsPhaseMask != mcsIdle {
			return nil, false
		}
	}
	var fn CrashFunc
	if pf := m.crashFn.Load(); pf != nil {
		fn = *pf
	}
	return fn, true
}

// acquire runs a fresh passage with the given (new) epoch.
func (m *MCSMutex) acquire(port int, epoch uint64) {
	m.acquireDone(port, epoch, nil)
}

// acquireDone runs a fresh passage with the given (new) epoch, cancellable
// through done (nil = wait forever).
func (m *MCSMutex) acquireDone(port int, epoch uint64, done <-chan struct{}) bool {
	n := &m.nodes[port]
	// Reset the successor link before this passage's ref can reach tail.
	// No stale linker can race this store: a successor of the previous
	// passage that committed before its release either linked (the release
	// observed it) or the release waited for it (see invariant 4 on the
	// type) — either way the link preceded the passage's end.
	n.next.Store(0)
	n.word.Store(mcsWord(epoch, mcsEnq))
	m.cp(port, "M.enq")
	if !m.lockDescDone(port, epoch, done) {
		// Cancelled spinning for the descriptor: the enqueue never
		// committed (the phase reads mcsEnq, the descriptor was never
		// ours), which is exactly a crash at M.enq.
		m.cp(port, "M.abort.enq")
		return false
	}
	return m.enqCommitDone(port, epoch, done)
}

// enqCommit runs the descriptor section of an enqueue — record pred, swing
// tail, commit the phase — and then the post-descriptor half of the
// passage. Entered with the descriptor held; shared verbatim by the live
// path and descriptor-holder crash recovery because every step is
// idempotent under the frozen tail (see the type comment).
func (m *MCSMutex) enqCommit(port int, epoch uint64) {
	m.enqCommitDone(port, epoch, nil)
}

// enqCommitDone is enqCommit with a cancellation channel (nil = wait
// forever). The descriptor section itself always runs to completion — its
// steps are momentary stores, and committing the phase before releasing
// the descriptor is what keeps every crash window decidable — so
// cancellation can only land in the post-descriptor grant wait.
func (m *MCSMutex) enqCommitDone(port int, epoch uint64, done <-chan struct{}) bool {
	n := &m.nodes[port]
	ref := mcsRef(port, epoch)
	if m.tail.Load() != ref {
		pred := m.tail.Load()
		n.pred.Store(pred)
		m.tail.Store(ref)
	}
	m.cp(port, "M.swap")
	pred := n.pred.Load()
	if pred == 0 {
		// Empty queue: the passage acquires immediately.
		n.word.Store(mcsWord(epoch, mcsCS))
		m.unlockDesc()
		return true
	}
	n.word.Store(mcsWord(epoch, mcsWait))
	m.unlockDesc()
	m.cp(port, "M.link")
	return m.linkAndWaitDone(port, epoch, pred, done)
}

// recoverEnqueue resumes a passage that died in mcsEnq. Phase mcsEnq
// commits to mcsWait/mcsCS before the descriptor is released, so the case
// split is exact: holding the descriptor means the tail swing may or may
// not have landed (decidable, because tail is frozen for us); not holding
// it means the enqueue provably never committed and restarts from scratch
// under the same epoch (the ref never became reachable, so the identity is
// still fresh).
func (m *MCSMutex) recoverEnqueue(port int, epoch uint64) {
	if m.enq.Load() == mcsRef(port, epoch) {
		// Died holding the descriptor: resume its section. enqCommit
		// re-derives every intermediate from the frozen tail, so it does
		// not matter which store the dead goroutine got to.
		m.enqCommit(port, epoch)
		return
	}
	// Never committed: restart the enqueue. The node's next was already
	// reset by the dead attempt (or is about to be re-reset, harmlessly —
	// nothing referenced this passage yet).
	m.acquire(port, epoch)
}

// linkAndWait links this passage as pred's successor and spins — locally,
// on this node's cell — until the grant arrives. Re-run after a crash it
// is idempotent: the link CAS fails benignly once the link exists, and the
// wait condition is the persistent phase word, so a grant delivered while
// the port was dead is simply observed.
func (m *MCSMutex) linkAndWait(port int, epoch, pred uint64) {
	m.linkAndWaitDone(port, epoch, pred, nil)
}

// linkAndWaitDone is linkAndWait with a cancellation channel (nil = wait
// forever): it reports whether the grant arrived. A cancelled wait leaves
// the passage linked in mcsWait — precisely a crash at M.wait — and the
// final condition re-check inside the cancelled episode means a grant that
// raced the cancellation is taken, not dropped: the passage ends granted or
// abandoned, never both. The abandoned node's repair is the existing O(1)
// neighborhood recovery (recoverWait re-links and re-waits), run by the
// departing caller's fix-up Lock.
func (m *MCSMutex) linkAndWaitDone(port int, epoch, pred uint64, done <-chan struct{}) bool {
	n := &m.nodes[port]
	m.nodes[mcsRefPort(pred)].next.CompareAndSwap(0, mcsRef(port, epoch))
	m.cp(port, "M.wait")
	granted := mcsWord(epoch, mcsCS)
	if n.word.Load() == granted {
		return true
	}
	cond := func() bool { return n.word.Load() == granted }
	if done == nil {
		n.cell.Await(m.strat, cond)
		return true
	}
	if n.cell.AwaitDone(m.strat, cond, done) {
		return true
	}
	m.cp(port, "M.abort.wait")
	return false
}

// recoverWait resumes a passage that died in mcsWait: enqueue committed,
// link possibly not yet made, grant possibly delivered to the dead
// episode. Only the O(1) neighborhood is touched — the predecessor's next
// word and this node's own state.
func (m *MCSMutex) recoverWait(port int, epoch uint64) {
	n := &m.nodes[port]
	if n.word.Load() == mcsWord(epoch, mcsCS) {
		return // granted while dead: wait-free re-entry
	}
	// In mcsWait the pred record is committed and non-zero (an empty-queue
	// enqueue goes straight to mcsCS), and the predecessor cannot have
	// advanced past its grant to us (invariant 4 on the type), so the
	// re-link targets the same passage of the same port.
	m.linkAndWait(port, epoch, n.pred.Load())
}

// Unlock releases the critical section held by port. Like Mutex.Unlock it
// must only be called while port holds the lock (Lock returned, or a
// recovery harness observed Held).
func (m *MCSMutex) Unlock(port int) {
	m.checkPort(port)
	n := &m.nodes[port]
	w := n.word.Load()
	if w&mcsPhaseMask != mcsCS {
		panic(fmt.Sprintf("rme: Unlock of port %d which does not hold the lock", port))
	}
	epoch := w >> mcsPhaseBits
	// M.cs is the died-inside-the-critical-section window (the flat lock's
	// L27 analogue): the release has not been announced, so Held still
	// reports true and a sweep reports inCS to its callback.
	m.cp(port, "M.cs")
	n.word.Store(mcsWord(epoch, mcsRel))
	m.cp(port, "M.rel")
	m.completeRelease(port, epoch)
}

// completeRelease finishes a release from phase mcsRel, from any point a
// previous execution died at. The case analysis (all under "I hold the
// critical section, so my ref is in the queue"):
//
//   - next linked: hand off to the successor. Idempotent — the grant CAS
//     is epoch-guarded, so a re-run after the successor already took (or
//     even finished) the critical section changes nothing.
//   - next unlinked, tail == my ref: no successor committed; clear tail
//     under the descriptor and leave. A crash between the tail store and
//     the phase store re-enters with tail == 0, which is unambiguous: a
//     holder's tail cannot be empty unless its own release emptied it.
//   - next unlinked, tail != my ref and != 0: a successor committed but
//     has not linked yet; wait for the link (its owner is live mid-step,
//     or dead and will be re-linked by its own recovery), then hand off.
func (m *MCSMutex) completeRelease(port int, epoch uint64) {
	n := &m.nodes[port]
	ref := mcsRef(port, epoch)
	// Recovery may find the descriptor still ours from an execution that
	// died inside this very section; resume it rather than re-acquire —
	// and in that case skip the lock-free fast path below, because the
	// descriptor must be the thing released first.
	if m.enq.Load() != ref {
		if succ := n.next.Load(); succ != 0 {
			m.grant(port, epoch, succ)
			return
		}
		m.lockDesc(port, epoch)
	}
	if succ := n.next.Load(); succ != 0 {
		// The successor linked after the fast-path check (or while the
		// crashed execution held the descriptor).
		m.unlockDesc()
		m.grant(port, epoch, succ)
		return
	}
	switch t := m.tail.Load(); t {
	case ref:
		m.tail.Store(0)
		m.cp(port, "M.empty")
		n.word.Store(mcsWord(epoch, mcsIdle))
		m.unlockDesc()
	case 0:
		// A crashed earlier execution already emptied the queue; only the
		// phase store remained.
		n.word.Store(mcsWord(epoch, mcsIdle))
		m.unlockDesc()
	default:
		m.unlockDesc()
		m.cp(port, "M.succwait")
		for n.next.Load() == 0 {
			runtime.Gosched()
		}
		m.grant(port, epoch, n.next.Load())
	}
}

// grant hands the critical section to successor succ and retires this
// passage. The grant is one epoch-guarded CAS (Wait→CS on the successor's
// word) plus one wake; both are safe to re-run — a stale CAS misses (the
// successor's word moved on), a stale wake dies on the cell's generation.
func (m *MCSMutex) grant(port int, epoch, succ uint64) {
	m.cp(port, "M.grant")
	sn := &m.nodes[mcsRefPort(succ)]
	se := mcsRefEpoch(succ)
	sn.word.CompareAndSwap(mcsWord(se, mcsWait), mcsWord(se, mcsCS))
	sn.cell.Wake()
	m.nodes[port].word.Store(mcsWord(epoch, mcsIdle))
}
