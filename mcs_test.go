package rme_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

// TestMCSMutexMutualExclusion drives the MCS lock directly (one goroutine
// per port, the package's port discipline) with a shared-counter referee.
func TestMCSMutexMutualExclusion(t *testing.T) {
	const ports, iters = 8, 2000
	m := rme.NewMCS(ports)
	var inside atomic.Int32
	counter := 0 // guarded by m
	var wg sync.WaitGroup
	for p := 0; p < ports; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock(p)
				if inside.Add(1) != 1 {
					t.Errorf("two holders (port %d)", p)
				}
				counter++
				inside.Add(-1)
				m.Unlock(p)
			}
		}(p)
	}
	wg.Wait()
	if counter != ports*iters {
		t.Fatalf("counter = %d, want %d", counter, ports*iters)
	}
}

// TestMCSMutexMisusePanics pins the constructor and call-contract panics.
func TestMCSMutexMisusePanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"zero ports", func() { rme.NewMCS(0) }},
		{"too many ports", func() { rme.NewMCS(1 << 16) }},
		{"port out of range", func() { rme.NewMCS(2).Lock(2) }},
		{"unlock without lock", func() { rme.NewMCS(2).Unlock(0) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tt.fn()
		})
	}
}

// TestMCSMutexCrashReentry pins the defining RME guarantee on the MCS
// shape: a replacement caller on a port whose owner died inside the
// critical section re-enters wait-free, and the lock stays usable.
func TestMCSMutexCrashReentry(t *testing.T) {
	m := rme.NewMCS(4)
	m.Lock(1)
	if !m.Held(1) {
		t.Fatal("Held(1) false while locked")
	}
	// The "crashed" owner's replacement re-enters without waiting.
	m.Lock(1)
	if !m.Held(1) {
		t.Fatal("re-entry lost the critical section")
	}
	m.Unlock(1)
	if m.Held(1) {
		t.Fatal("Held(1) true after Unlock")
	}
	m.Lock(2)
	m.Unlock(2)
}

// crashOnceAt returns a CrashFunc that fires exactly once, at the given
// step label.
func crashOnceAt(point string) rme.CrashFunc {
	var fired atomic.Bool
	return func(port int, p string) bool {
		return p == point && fired.CompareAndSwap(false, true)
	}
}

// expectCrash runs fn and fails the test unless it panicked with an
// injected Crash.
func expectCrash(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		t.Helper()
		if _, ok := rme.AsCrash(recover()); !ok {
			t.Fatal("expected an injected crash")
		}
	}()
	fn()
}

// TestLockTableMCSAcquireCrashWindows kills an uncontended acquisition at
// each of the enqueue-side crash points — before the descriptor (M.enq),
// inside it with tail already swung (M.swap), and after the phase commit
// (M.link, M.wait) — and proves the sweep reclaims the orphan and leaves
// the stripe fully usable. M.swap is the window the locked-descriptor
// design exists for: the dead worker holds the enqueue descriptor, so
// every other arrival of the stripe is stalled until the sweep runs.
func TestLockTableMCSAcquireCrashWindows(t *testing.T) {
	for _, point := range []string{"M.enq", "M.swap", "M.link", "M.wait"} {
		t.Run(point, func(t *testing.T) {
			tbl := rme.NewLockTable(2, 4, rme.WithTableSeed(11),
				rme.WithShardBackend(rme.MCSBackend))
			const key = 42
			// M.link and M.wait need a predecessor in the queue, or the
			// empty-queue enqueue skips them.
			contended := point == "M.link" || point == "M.wait"
			if contended {
				tbl.Lock(key)
			}
			tbl.SetCrashFunc(crashOnceAt(point))
			expectCrash(t, func() { tbl.Lock(key) })
			tbl.SetCrashFunc(nil)
			if got := tbl.Orphans(); got != 1 {
				t.Fatalf("Orphans = %d, want 1", got)
			}
			if contended {
				// The orphan is queued behind a live holder: its recovery
				// blocks until the holder releases, so release concurrently
				// with the sweep (the supervisor pattern ReclaimWith
				// documents).
				done := make(chan struct{})
				go func() {
					time.Sleep(20 * time.Millisecond)
					tbl.Unlock(key)
					close(done)
				}()
				if n := tbl.Reclaim(); n != 1 {
					t.Fatalf("Reclaim = %d, want 1", n)
				}
				<-done
			} else if n := tbl.Reclaim(); n != 1 {
				t.Fatalf("Reclaim = %d, want 1", n)
			}
			if !tbl.Quiesced() {
				t.Fatal("table not quiesced after the sweep")
			}
			tbl.Lock(key) // the stripe must be fully usable again
			tbl.Unlock(key)
		})
	}
}

// TestLockTableMCSReclaimWith is the MCS died-in-CS counterpart of
// TestLockTableReclaimWith: a worker killed at M.cs (release not yet
// announced) leaves Held true and is reported to the sweep callback with
// inCS=true.
func TestLockTableMCSReclaimWith(t *testing.T) {
	tbl := rme.NewLockTable(2, 4, rme.WithTableSeed(3),
		rme.WithShardBackend(rme.MCSBackend))
	const key = 1234
	tbl.Lock(key)
	tbl.SetCrashFunc(func(port int, point string) bool { return point == "M.cs" })
	expectCrash(t, func() { tbl.Unlock(key) })
	tbl.SetCrashFunc(nil)
	if !tbl.Held(key) {
		t.Fatal("orphaned-in-CS key must still report Held")
	}
	var gotKey uint64
	var gotInCS bool
	if n := tbl.ReclaimWith(func(k uint64, inCS bool) { gotKey, gotInCS = k, inCS }); n != 1 {
		t.Fatalf("ReclaimWith = %d, want 1", n)
	}
	if gotKey != key || !gotInCS {
		t.Fatalf("callback saw (key=%d, inCS=%v), want (%d, true)", gotKey, gotInCS, key)
	}
	if tbl.Held(key) || !tbl.Quiesced() {
		t.Fatal("key not free after the sweep")
	}
	tbl.Lock(key)
	tbl.Unlock(key)
}

// TestLockTableMCSReleaseCrashWindows kills a release at each of its
// crash points — announced but nothing done (M.rel), queue emptied under
// the descriptor but the passage not retired (M.empty), successor known
// but not yet signalled (M.grant) — and proves the sweep completes the
// hand-off: the waiting successor gets the critical section, mutual
// exclusion holds throughout, and the stripe drains clean. This is the
// tree's died-mid-release test rebuilt on the MCS windows.
func TestLockTableMCSReleaseCrashWindows(t *testing.T) {
	for _, tt := range []struct {
		point     string
		contended bool
	}{
		{"M.rel", false},
		{"M.empty", false},
		{"M.rel", true},
		{"M.grant", true},
	} {
		name := tt.point
		if tt.contended {
			name += "/contended"
		}
		t.Run(name, func(t *testing.T) {
			tbl := rme.NewLockTable(2, 4, rme.WithTableSeed(9),
				rme.WithShardBackend(rme.MCSBackend))
			const key = 7
			tbl.Lock(key)
			var waiter sync.WaitGroup
			var waiterIn atomic.Bool
			if tt.contended {
				// Queue a live successor, and give it time to link.
				waiter.Add(1)
				go func() {
					defer waiter.Done()
					tbl.Lock(key)
					waiterIn.Store(true)
					tbl.Unlock(key)
				}()
				time.Sleep(30 * time.Millisecond)
			}
			tbl.SetCrashFunc(crashOnceAt(tt.point))
			expectCrash(t, func() { tbl.Unlock(key) })
			tbl.SetCrashFunc(nil)
			if tbl.Held(key) {
				t.Fatal("release-announced tenancy must not report Held")
			}
			if tt.contended && waiterIn.Load() {
				t.Fatal("successor entered before the orphaned release was reclaimed")
			}
			if n := tbl.Reclaim(); n != 1 {
				t.Fatalf("Reclaim = %d, want 1", n)
			}
			waiter.Wait()
			if tt.contended && !waiterIn.Load() {
				t.Fatal("successor never got the critical section")
			}
			if !tbl.Quiesced() {
				t.Fatal("table not quiesced after the sweep")
			}
			tbl.Lock(key)
			tbl.Unlock(key)
		})
	}
}

// TestLockTableMCSDescriptorStall pins the documented liveness model of
// the locked-descriptor fallback: a worker dead inside the descriptor
// section stalls other arrivals of the stripe (they spin, they do not
// err), and a reclaim sweep unsticks them.
func TestLockTableMCSDescriptorStall(t *testing.T) {
	tbl := rme.NewLockTable(1, 4, rme.WithTableSeed(17),
		rme.WithShardBackend(rme.MCSBackend))
	const key = 5
	tbl.SetCrashFunc(crashOnceAt("M.swap"))
	expectCrash(t, func() { tbl.Lock(key) })
	tbl.SetCrashFunc(nil)
	entered := make(chan struct{})
	go func() {
		tbl.Lock(key + 1) // same (only) stripe; must stall on the descriptor
		close(entered)
		tbl.Unlock(key + 1)
	}()
	select {
	case <-entered:
		t.Fatal("arrival got past a dead descriptor holder without a sweep")
	case <-time.After(50 * time.Millisecond):
	}
	if n := tbl.Reclaim(); n != 1 {
		t.Fatalf("Reclaim = %d, want 1", n)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("arrival still stalled after the sweep")
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced")
	}
}

// TestLockTableMCSHandoffStorm hammers one MCS stripe with more workers
// than ports plus injected crashes at every M-point in rotation, the
// queue-shape-specific storm the CI race job runs: it exercises enqueue,
// hand-off, and release recovery under real interleavings rather than
// choreographed ones.
func TestLockTableMCSHandoffStorm(t *testing.T) {
	const workers = 24
	iters := 150
	if testing.Short() {
		iters = 30
	}
	tbl := rme.NewLockTable(2, 8, rme.WithTableSeed(23), rme.WithNodePool(true),
		rme.WithShardBackend(rme.MCSBackend))
	var calls atomic.Uint64
	var crashed atomic.Int64
	tbl.SetCrashFunc(func(port int, point string) bool {
		if xrand.Mix64(calls.Add(1))%977 == 0 {
			crashed.Add(1)
			return true
		}
		return false
	})
	const keys = 16
	var inside [keys]atomic.Int32
	var counters [keys]int32 // guarded by the keyed lock
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < iters; i++ {
				k := rng.Uint64() % keys
				tbl.Do(k, func() {
					if inside[k].Add(1) != 1 {
						t.Errorf("two holders of key %d", k)
					}
					counters[k]++
					inside[k].Add(-1)
				})
			}
		}(w)
	}
	wg.Wait()
	tbl.SetCrashFunc(nil)
	tbl.Reclaim()
	if got := tbl.Orphans(); got != 0 {
		t.Fatalf("%d orphans left after the final sweep", got)
	}
	if !tbl.Quiesced() {
		t.Fatal("table not quiesced after the storm")
	}
	var total int64
	for k := range counters {
		total += int64(counters[k])
	}
	if total != int64(workers)*int64(iters) {
		t.Fatalf("counter sum %d, want %d", total, int64(workers)*int64(iters))
	}
	if crashed.Load() == 0 {
		t.Fatal("storm injected no crashes")
	}
}

// TestLockTableStats pins the observability snapshot: acquisitions are
// counted per stripe across the sync and async paths, wakes appear once
// there is real contention, orphans and quiescence agree with the
// dedicated probes, and the totals add up.
func TestLockTableStats(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		tbl := rme.NewLockTable(4, 4, rme.WithTableSeed(29),
			rme.WithShardBackend(backend))
		defer tbl.Close()
		if got := tbl.Stats().Total(); got.Acquires != 0 || got.Wakes != 0 {
			t.Fatalf("fresh table stats = %+v, want zeroes", got)
		}
		// All workers hammer one key, yielding inside the critical section
		// so passages genuinely overlap and hand-offs (wakes) must happen.
		const workers, iters = 8, 100
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					tbl.Lock(77)
					runtime.Gosched()
					tbl.Unlock(77)
				}
			}(w)
		}
		wg.Wait()
		g := <-tbl.LockAsync(999)
		g.Unlock()
		st := tbl.Stats()
		if len(st.Shards) != tbl.Shards() {
			t.Fatalf("Stats has %d shards, want %d", len(st.Shards), tbl.Shards())
		}
		total := st.Total()
		if want := uint64(workers*iters + 1); total.Acquires != want {
			t.Fatalf("total acquires = %d, want %d", total.Acquires, want)
		}
		var sum uint64
		for _, s := range st.Shards {
			sum += s.Acquires
		}
		if sum != total.Acquires {
			t.Fatalf("per-shard acquires sum %d != total %d", sum, total.Acquires)
		}
		if total.Wakes == 0 {
			t.Fatal("8 workers on 4 stripes produced zero wakes — instrumentation dead")
		}
		if total.Orphans != 0 || total.InboxDepth != 0 {
			t.Fatalf("idle table reports orphans=%d inbox=%d", total.Orphans, total.InboxDepth)
		}
		if wpo := total.WakesPerOp(); wpo <= 0 {
			t.Fatalf("WakesPerOp = %v, want > 0", wpo)
		}
	})
}

// TestLockTableStatsOrphans pins the Stats orphan column against the
// dedicated Orphans() probe through a crash-and-sweep cycle.
func TestLockTableStatsOrphans(t *testing.T) {
	tbl := rme.NewLockTable(2, 4, rme.WithTableSeed(31),
		rme.WithShardBackend(rme.MCSBackend))
	tbl.Lock(1)
	tbl.SetCrashFunc(func(port int, point string) bool { return point == "M.cs" })
	expectCrash(t, func() { tbl.Unlock(1) })
	tbl.SetCrashFunc(nil)
	if got := tbl.Stats().Total().Orphans; got != 1 {
		t.Fatalf("Stats orphans = %d, want 1", got)
	}
	tbl.Reclaim()
	if got := tbl.Stats().Total().Orphans; got != 0 {
		t.Fatalf("Stats orphans after sweep = %d, want 0", got)
	}
}
