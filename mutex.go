package rme

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"github.com/rmelib/rme/internal/wait"
)

// qnode is a queue node (the paper's QNode): one per passage, holding the
// predecessor pointer and the two hand-off signals. Each signal's cell owns
// a reusable generation-stamped spin word (internal/wait), so waiting on a
// node never allocates. With pooling enabled the node itself is recycled
// for a later passage of the same port once its successor has consumed cs
// (see consumed), making the whole crash-free passage — contended or not —
// allocation-free.
type qnode struct {
	pred   atomic.Pointer[qnode]
	nonNil signal // set once pred is non-nil (used by repairs)
	cs     signal // set when the owner leaves the CS (releases the successor)

	// consumed is set by the node's unique successor right after it
	// overwrites its own pred pointer with the InCS sentinel: from that
	// point no live protocol path leads to this node (the successor never
	// revisits it, Tail moved past it when the successor appeared, and the
	// owner's port-table slot was cleared at exit), so the owner may
	// recycle it for a fresh passage.
	consumed atomic.Bool
}

// poolCap is the per-port free-list capacity. Crash-free steady state
// oscillates between one and two retired nodes per port; the slack absorbs
// retire/consume skew before the pool starts leaking nodes to the GC.
const poolCap = 4

// portFree is a port's node free list. Only the port's (single, by the
// port discipline) goroutine touches it, so the fields need no atomics;
// the padding keeps neighboring ports' lists off each other's cache lines.
type portFree struct {
	nodes [poolCap]*qnode
	n     int
	_     [cacheLineSize - (unsafe.Sizeof([poolCap]*qnode{})+unsafe.Sizeof(int(0)))%cacheLineSize]byte
}

// Mutex is a k-ported recoverable mutual-exclusion lock: the runtime port
// of the paper's Figures 3–4 algorithm. All shared state lives on the heap
// owned by the Mutex (the stand-in for non-volatile memory); goroutines
// participating in the protocol keep no state of their own that matters,
// so any of them can be replaced after a crash by calling Lock on the same
// port.
//
// A Mutex must be created with New. Methods are safe for concurrent use,
// under the port discipline documented in the package comment.
type Mutex struct {
	ports int
	strat wait.Strategy
	pool  bool

	// Sentinels (Figure 3): distinct nodes whose Pred points to themselves;
	// special is the pre-completed node the first queue entry hangs off.
	crashN, incsN, exitN, specialN *qnode

	tail    atomic.Pointer[qnode]
	node    []paddedQnodePtr
	rl      *rlock
	crashFn atomic.Pointer[CrashFunc]

	free []portFree

	// repairStarts/repairEnds fence node recycling against queue repairs:
	// starts is bumped by a repairer after winning the repair lock and
	// before scanning the port table, ends is set back to starts when its
	// repair section completes (both while still holding the repair lock,
	// so they are totally ordered). A free-list pop refuses to recycle
	// unless starts == ends — i.e. no repair is mid-flight whose private
	// scan snapshot could still reference the retired node. A repair that
	// begins after the pop's check can only find the node through live
	// pointers, which the consumed protocol already guarantees are gone.
	repairStarts atomic.Uint64
	repairEnds   atomic.Uint64

	// scratch holds the fragment-graph containers for repair, reused
	// across repairs; repair runs inside the repair lock's CS, so a single
	// set per Mutex suffices. Cleared at the start of every repair (not
	// the end) so a crash mid-repair cannot leave the next repair reading
	// a predecessor's leftovers.
	scratch repairScratch
}

// New creates a recoverable mutex with the given number of ports (the
// maximum number of concurrent super-passages, usually the worker count).
func New(ports int, opts ...Option) *Mutex {
	if ports <= 0 {
		panic("rme: New needs at least one port")
	}
	cfg := buildConfig(opts)
	m := &Mutex{
		ports:    ports,
		strat:    cfg.strat,
		pool:     cfg.pool,
		crashN:   new(qnode),
		incsN:    new(qnode),
		exitN:    new(qnode),
		specialN: new(qnode),
		node:     make([]paddedQnodePtr, ports),
		free:     make([]portFree, ports),
		scratch:  newRepairScratch(ports),
	}
	m.rl = newRLock(ports, cfg.strat)
	m.crashN.pred.Store(m.crashN)
	m.incsN.pred.Store(m.incsN)
	m.exitN.pred.Store(m.exitN)
	m.specialN.pred.Store(m.exitN)
	m.specialN.nonNil.forceSet()
	m.specialN.cs.forceSet()
	m.tail.Store(m.specialN)
	return m
}

// Ports returns the number of ports the mutex was created with.
func (m *Mutex) Ports() int { return m.ports }

func (m *Mutex) checkPort(port int) {
	if port < 0 || port >= m.ports {
		panic(fmt.Sprintf("rme: port %d out of range [0,%d)", port, m.ports))
	}
}

func (m *Mutex) isSentinel(n *qnode) bool {
	return n == m.crashN || n == m.incsN || n == m.exitN
}

// Held reports whether port currently owns the critical section. It is
// intended for recovery harnesses deciding whether a crashed worker died
// inside its critical section (in which case the replacement's Lock call
// returns immediately and application-level redo/undo may be needed).
func (m *Mutex) Held(port int) bool {
	m.checkPort(port)
	n := m.node[port].Load()
	return n != nil && n.pred.Load() == m.incsN
}

// getNode supplies the node for a fresh passage: recycled from the port's
// free list when pooling is on and a retired node is provably reusable,
// freshly allocated otherwise.
func (m *Mutex) getNode(port int) *qnode {
	if m.pool {
		if n := m.popFree(port); n != nil {
			return n
		}
	}
	return new(qnode)
}

// popFree returns a reusable retired node of port, or nil. Reuse is safe
// only when (a) the node's successor has consumed it and (b) no queue
// repair is in flight whose scan snapshot predates the consumption (see
// repairStarts/repairEnds). Unusable entries stay listed — they may
// become usable once the consumer or repairer finishes.
//
// The check order is load-bearing: consumed MUST be read before the
// fence. A repairer that captured a stale pred-edge to n scanned it
// before the successor's overwrite, hence (program order) its
// repairStarts.Add also precedes the overwrite, which precedes the
// consumed store this pop observed — so by the time the fence loads run,
// that repair is visible in repairStarts and, if still undecided, in
// starts != ends. Fence-first reverses that chain: a repair can begin
// between the fence loads and the consumed load, scan the successor's
// pred just before the overwrite lands, and still satisfy every check —
// leaving it holding the node in its fragment graph while we recycle it.
func (m *Mutex) popFree(port int) *qnode {
	f := &m.free[port]
	for i := 0; i < f.n; i++ {
		n := f.nodes[i]
		if !n.consumed.Load() {
			continue
		}
		starts := m.repairStarts.Load()
		if m.repairEnds.Load() != starts {
			return nil
		}
		// Unlist before touching the node: a crash between here and the
		// publication at L12 merely leaks the node to the GC.
		f.n--
		f.nodes[i] = f.nodes[f.n]
		f.nodes[f.n] = nil
		n.recycle()
		return n
	}
	return nil
}

// pushFree retires a node whose exit completed (line 29). If the list is
// full the oldest entry is dropped for the GC to collect.
func (m *Mutex) pushFree(port int, n *qnode) {
	if !m.pool {
		return
	}
	f := &m.free[port]
	if f.n == poolCap {
		copy(f.nodes[:], f.nodes[1:])
		f.n--
	}
	f.nodes[f.n] = n
	f.n++
}

// recycle returns a consumed node to its zero state for a fresh passage.
// The node is unreachable from the protocol here (successor consumed it,
// the port-table slot was cleared, Tail moved past it), so these stores
// cannot race live readers; the port-table publication at line 12 is what
// re-releases the node to the world.
func (n *qnode) recycle() {
	n.pred.Store(nil)
	n.nonNil.reset()
	n.cs.reset()
	n.consumed.Store(false)
}

// Lock acquires the critical section through port (the paper's Try
// section, lines 10–26). If the port's previous passage was interrupted by
// a crash, Lock performs the recovery: wait-free re-entry if the crash was
// inside the CS, queue repair if it broke the queue, completion of an
// interrupted Unlock otherwise.
func (m *Mutex) Lock(port int) {
	m.checkPort(port)
	for {
		m.cp(port, "L10")
		n := m.node[port].Load()
		if n == nil {
			// Fresh passage: enqueue with one FAS.
			m.cp(port, "L11")
			n = m.getNode(port)
			m.cp(port, "L12")
			m.node[port].Store(n)
			m.cp(port, "L13")
			pred := m.tail.Swap(n)
			m.cp(port, "L14")
			n.pred.Store(pred)
			m.cp(port, "L15")
			n.nonNil.set()
			m.cp(port, "L25")
			pred.cs.wait(m.strat)
			m.cp(port, "L26")
			n.pred.Store(m.incsN)
			pred.consumed.Store(true)
			return
		}

		// Recovery (lines 17–24).
		m.cp(port, "L18")
		if n.pred.Load() == nil {
			n.pred.Store(m.crashN)
		}
		m.cp(port, "L19")
		pred := n.pred.Load()
		switch pred {
		case m.incsN: // line 20: crashed inside the CS
			return
		case m.exitN: // lines 21–22: finish the interrupted exit, retry
			m.cp(port, "L28")
			n.cs.set()
			m.cp(port, "L29")
			m.node[port].Store(nil)
			m.pushFree(port, n)
			continue
		}
		m.cp(port, "L23")
		n.nonNil.set()
		m.cp(port, "L24")
		m.rl.lock(m, port)
		seq := m.repairStarts.Add(1)
		pred = m.repair(port, n, pred)
		m.repairEnds.Store(seq)
		m.rl.unlock(m, port)
		m.cp(port, "L25")
		pred.cs.wait(m.strat)
		m.cp(port, "L26")
		n.pred.Store(m.incsN)
		pred.consumed.Store(true)
		return
	}
}

// LockDone is Lock with a cancellation channel: it returns true once port
// holds the critical section, or false if done closed while the passage was
// still queued. An abandoned attempt leaves the port exactly as if its
// goroutine had crashed at the queue wait (the node stays linked, its
// predecessor edge intact — the paper's crash-at-line-25 state), and the
// port owes the standard recovery before any fresh passage: a Lock on the
// same port resumes the abandoned passage, acquires, and a following Unlock
// releases it. That cooperative crash-and-repair is the whole abort design
// (the LockTable's abort path runs exactly that from the departing caller);
// until it runs, successors queued behind the node wait just as they wait
// behind any crashed port.
//
// A wake that races the cancellation counts as acquired: LockDone re-checks
// the predecessor's exit signal after a cancelled sleep and returns true if
// the hand-off landed, so a passage is granted or abandoned, never both.
// Recovery passages are not cancellable — a port whose previous passage
// crashed runs that recovery to completion and returns true.
func (m *Mutex) LockDone(port int, done <-chan struct{}) bool {
	m.checkPort(port)
	if m.node[port].Load() != nil {
		m.Lock(port) // recovery: run the interrupted passage to completion
		return true
	}
	m.cp(port, "L11")
	n := m.getNode(port)
	m.cp(port, "L12")
	m.node[port].Store(n)
	m.cp(port, "L13")
	pred := m.tail.Swap(n)
	m.cp(port, "L14")
	n.pred.Store(pred)
	m.cp(port, "L15")
	n.nonNil.set()
	m.cp(port, "L25")
	if !pred.cs.waitDone(m.strat, done) {
		m.cp(port, "A.wait")
		return false
	}
	m.cp(port, "L26")
	n.pred.Store(m.incsN)
	pred.consumed.Store(true)
	return true
}

// freeHint reports whether an arrival at port would currently acquire
// without queuing behind a live passage: true iff the tail node's exit
// signal is already set, so a fresh enqueue's hand-off wait is immediate.
// Racy by nature — a hint, not a reservation; TryLock callers that act on a
// stale true fall into the abort path.
func (m *Mutex) freeHint(int) bool {
	return m.tail.Load().cs.isSet()
}

// quiesceExport reports whether the lock is fully idle — no port has a
// passage in flight, so the instance can be replaced wholesale — and, when
// it is, exports the installed crash hook so a migration can carry it onto
// the replacement backend. The check is exact under the caller's quiesce
// barrier (no new Lock can start concurrently): a port with any published
// node still has a passage or an unswept orphan.
func (m *Mutex) quiesceExport() (CrashFunc, bool) {
	for p := range m.node {
		if m.node[p].Load() != nil {
			return nil, false
		}
	}
	var fn CrashFunc
	if pf := m.crashFn.Load(); pf != nil {
		fn = *pf
	}
	return fn, true
}

// Unlock releases the critical section (the paper's wait-free Exit,
// lines 27–29). If the calling goroutine crashes part-way through, the
// port's next Lock call completes the release before acquiring again.
func (m *Mutex) Unlock(port int) {
	m.checkPort(port)
	n := m.node[port].Load()
	if n == nil || n.pred.Load() != m.incsN {
		panic(fmt.Sprintf("rme: Unlock of port %d which does not hold the lock", port))
	}
	m.cp(port, "L27")
	n.pred.Store(m.exitN)
	m.cp(port, "L28")
	n.cs.set()
	m.cp(port, "L29")
	m.node[port].Store(nil)
	m.pushFree(port, n)
}

// repairScratch holds the fragment-graph containers repair needs, pre-sized
// to the port count and reused across repairs. Repairs are serialized by
// the repair lock, so one scratch per Mutex is enough; every use clears
// the containers first, which also makes a crash mid-repair harmless.
type repairScratch struct {
	vertices map[*qnode]struct{}
	out      map[*qnode]*qnode
	indeg    map[*qnode]int
	paths    [][]*qnode
}

func newRepairScratch(ports int) repairScratch {
	// Each of the k scanned nodes contributes itself and at most one
	// predecessor, so 2k bounds every container.
	return repairScratch{
		vertices: make(map[*qnode]struct{}, 2*ports),
		out:      make(map[*qnode]*qnode, 2*ports),
		indeg:    make(map[*qnode]int, 2*ports),
		paths:    make([][]*qnode, 0, 2*ports),
	}
}

func (sc *repairScratch) reset() {
	clear(sc.vertices)
	clear(sc.out)
	clear(sc.indeg)
	sc.paths = sc.paths[:0]
}

// maximalPaths computes the maximal paths of the fragment graph (line 39).
// In every reachable state the graph is a union of disjoint simple paths
// (the paper's invariant C23), so indegree-zero starts cover all vertices.
// The vertex map's iteration order only permutes the order of the returned
// paths; since the paths partition the vertices, nothing downstream can
// depend on it (see the uniqueness notes in repair).
func (sc *repairScratch) maximalPaths() [][]*qnode {
	for _, v := range sc.out {
		sc.indeg[v]++
	}
	for v := range sc.vertices {
		if sc.indeg[v] != 0 {
			continue
		}
		p := []*qnode{v}
		for cur := v; ; {
			next, ok := sc.out[cur]
			if !ok {
				break
			}
			p = append(p, next)
			cur = next
		}
		sc.paths = append(sc.paths, p)
	}
	return sc.paths
}

// repair is the critical section of RLock (Figure 4, lines 30–49): scan
// the port table, model the broken queue as a graph, and re-attach this
// port's fragment — by a fresh FAS on Tail if the tail fragment already
// reaches the CS, by adopting the head fragment's start otherwise, or by
// adopting the SpecialNode when the whole queue is down.
//
// The fragment graph lives in map containers, but no outcome depends on
// their iteration order: the paths are vertex-disjoint (invariant C23), so
// mynode and the scanned Tail value each lie in exactly one path, and at
// most one path can qualify as the head fragment — it must reach the CS at
// its old end (last node's pred ∈ {InCS, Exit}) without having exited at
// its new end (first node's pred ≠ Exit), and the queue invariants admit
// only one such fragment. First-match or last-match, the loops below pick
// the same paths on every iteration order.
func (m *Mutex) repair(port int, mynode, mypred *qnode) *qnode {
	m.cp(port, "L30")
	if mypred != m.crashN {
		return mypred // already queued before the crash: nothing to fix
	}
	m.cp(port, "L31")
	tail := m.tail.Load()
	sc := &m.scratch
	sc.reset()
	for i := 0; i < m.ports; i++ {
		m.cp(port, "L33")
		cur := m.node[i].Load()
		if cur == nil {
			continue
		}
		m.cp(port, "L35")
		cur.nonNil.wait(m.strat)
		m.cp(port, "L36")
		curpred := cur.pred.Load()
		if m.isSentinel(curpred) {
			sc.vertices[cur] = struct{}{}
		} else {
			sc.vertices[cur] = struct{}{}
			sc.vertices[curpred] = struct{}{}
			sc.out[cur] = curpred
		}
	}
	paths := sc.maximalPaths()

	var mypath, tailpath, headpath []*qnode
	for _, sigma := range paths {
		if contains(sigma, mynode) {
			mypath = sigma
			break
		}
	}
	if mypath == nil {
		panic("rme: repairing node not in any fragment (corrupted state)")
	}
	if _, ok := sc.vertices[tail]; ok {
		for _, sigma := range paths {
			if contains(sigma, tail) {
				tailpath = sigma
				break
			}
		}
	}
	for _, sigma := range paths { // lines 42–45
		m.cp(port, "L43")
		endPred := sigma[len(sigma)-1].pred.Load()
		if endPred != m.incsN && endPred != m.exitN {
			continue
		}
		m.cp(port, "L44")
		if sigma[0].pred.Load() != m.exitN {
			headpath = sigma
		}
	}

	// Line 46: is the queue already partially repaired at the tail?
	useFAS := tailpath == nil
	if !useFAS {
		m.cp(port, "L46")
		ep := tailpath[len(tailpath)-1].pred.Load()
		useFAS = ep == m.incsN || ep == m.exitN
	}
	switch {
	case useFAS:
		m.cp(port, "L47")
		mypred = m.tail.Swap(mypath[0])
	case headpath != nil: // line 48
		mypred = headpath[0]
	default: // line 48: the whole queue is down
		mypred = m.specialN
	}
	m.cp(port, "L49")
	mynode.pred.Store(mypred)
	return mypred
}

func contains(path []*qnode, n *qnode) bool {
	for _, x := range path {
		if x == n {
			return true
		}
	}
	return false
}
