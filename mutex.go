package rme

import (
	"fmt"
	"sync/atomic"
)

// qnode is a queue node (the paper's QNode): one per passage, holding the
// predecessor pointer and the two hand-off signals.
type qnode struct {
	pred   atomic.Pointer[qnode]
	nonNil signal // set once pred is non-nil (used by repairs)
	cs     signal // set when the owner leaves the CS (releases the successor)
}

// Mutex is a k-ported recoverable mutual-exclusion lock: the runtime port
// of the paper's Figures 3–4 algorithm. All shared state lives on the heap
// owned by the Mutex (the stand-in for non-volatile memory); goroutines
// participating in the protocol keep no state of their own that matters,
// so any of them can be replaced after a crash by calling Lock on the same
// port.
//
// A Mutex must be created with New. Methods are safe for concurrent use,
// under the port discipline documented in the package comment.
type Mutex struct {
	ports int

	// Sentinels (Figure 3): distinct nodes whose Pred points to themselves;
	// special is the pre-completed node the first queue entry hangs off.
	crashN, incsN, exitN, specialN *qnode

	tail    atomic.Pointer[qnode]
	node    []atomic.Pointer[qnode]
	rl      *rlock
	crashFn atomic.Pointer[CrashFunc]
}

// New creates a recoverable mutex with the given number of ports (the
// maximum number of concurrent super-passages, usually the worker count).
func New(ports int) *Mutex {
	if ports <= 0 {
		panic("rme: New needs at least one port")
	}
	m := &Mutex{
		ports:    ports,
		crashN:   new(qnode),
		incsN:    new(qnode),
		exitN:    new(qnode),
		specialN: new(qnode),
		node:     make([]atomic.Pointer[qnode], ports),
		rl:       newRLock(ports),
	}
	m.crashN.pred.Store(m.crashN)
	m.incsN.pred.Store(m.incsN)
	m.exitN.pred.Store(m.exitN)
	m.specialN.pred.Store(m.exitN)
	m.specialN.nonNil.forceSet()
	m.specialN.cs.forceSet()
	m.tail.Store(m.specialN)
	return m
}

// Ports returns the number of ports the mutex was created with.
func (m *Mutex) Ports() int { return m.ports }

func (m *Mutex) checkPort(port int) {
	if port < 0 || port >= m.ports {
		panic(fmt.Sprintf("rme: port %d out of range [0,%d)", port, m.ports))
	}
}

func (m *Mutex) isSentinel(n *qnode) bool {
	return n == m.crashN || n == m.incsN || n == m.exitN
}

// Held reports whether port currently owns the critical section. It is
// intended for recovery harnesses deciding whether a crashed worker died
// inside its critical section (in which case the replacement's Lock call
// returns immediately and application-level redo/undo may be needed).
func (m *Mutex) Held(port int) bool {
	m.checkPort(port)
	n := m.node[port].Load()
	return n != nil && n.pred.Load() == m.incsN
}

// Lock acquires the critical section through port (the paper's Try
// section, lines 10–26). If the port's previous passage was interrupted by
// a crash, Lock performs the recovery: wait-free re-entry if the crash was
// inside the CS, queue repair if it broke the queue, completion of an
// interrupted Unlock otherwise.
func (m *Mutex) Lock(port int) {
	m.checkPort(port)
	for {
		m.cp(port, "L10")
		n := m.node[port].Load()
		if n == nil {
			// Fresh passage: enqueue with one FAS.
			m.cp(port, "L11")
			n = new(qnode)
			m.cp(port, "L12")
			m.node[port].Store(n)
			m.cp(port, "L13")
			pred := m.tail.Swap(n)
			m.cp(port, "L14")
			n.pred.Store(pred)
			m.cp(port, "L15")
			n.nonNil.set()
			m.cp(port, "L25")
			pred.cs.wait()
			m.cp(port, "L26")
			n.pred.Store(m.incsN)
			return
		}

		// Recovery (lines 17–24).
		m.cp(port, "L18")
		if n.pred.Load() == nil {
			n.pred.Store(m.crashN)
		}
		m.cp(port, "L19")
		pred := n.pred.Load()
		switch pred {
		case m.incsN: // line 20: crashed inside the CS
			return
		case m.exitN: // lines 21–22: finish the interrupted exit, retry
			m.cp(port, "L28")
			n.cs.set()
			m.cp(port, "L29")
			m.node[port].Store(nil)
			continue
		}
		m.cp(port, "L23")
		n.nonNil.set()
		m.cp(port, "L24")
		m.rl.lock(m, port)
		pred = m.repair(port, n, pred)
		m.rl.unlock(m, port)
		m.cp(port, "L25")
		pred.cs.wait()
		m.cp(port, "L26")
		n.pred.Store(m.incsN)
		return
	}
}

// Unlock releases the critical section (the paper's wait-free Exit,
// lines 27–29). If the calling goroutine crashes part-way through, the
// port's next Lock call completes the release before acquiring again.
func (m *Mutex) Unlock(port int) {
	m.checkPort(port)
	n := m.node[port].Load()
	if n == nil || n.pred.Load() != m.incsN {
		panic(fmt.Sprintf("rme: Unlock of port %d which does not hold the lock", port))
	}
	m.cp(port, "L27")
	n.pred.Store(m.exitN)
	m.cp(port, "L28")
	n.cs.set()
	m.cp(port, "L29")
	m.node[port].Store(nil)
}

// repair is the critical section of RLock (Figure 4, lines 30–49): scan
// the port table, model the broken queue as a graph, and re-attach this
// port's fragment — by a fresh FAS on Tail if the tail fragment already
// reaches the CS, by adopting the head fragment's start otherwise, or by
// adopting the SpecialNode when the whole queue is down.
func (m *Mutex) repair(port int, mynode, mypred *qnode) *qnode {
	m.cp(port, "L30")
	if mypred != m.crashN {
		return mypred // already queued before the crash: nothing to fix
	}
	m.cp(port, "L31")
	tail := m.tail.Load()
	vertices := make(map[*qnode]struct{}, m.ports)
	out := make(map[*qnode]*qnode, m.ports)
	for i := 0; i < m.ports; i++ {
		m.cp(port, "L33")
		cur := m.node[i].Load()
		if cur == nil {
			continue
		}
		m.cp(port, "L35")
		cur.nonNil.wait()
		m.cp(port, "L36")
		curpred := cur.pred.Load()
		if m.isSentinel(curpred) {
			vertices[cur] = struct{}{}
		} else {
			vertices[cur] = struct{}{}
			vertices[curpred] = struct{}{}
			out[cur] = curpred
		}
	}
	paths := maximalQPaths(vertices, out)

	var mypath, tailpath, headpath []*qnode
	for _, sigma := range paths {
		if sigma[0] == mynode || contains(sigma, mynode) {
			mypath = sigma
			break
		}
	}
	if mypath == nil {
		panic("rme: repairing node not in any fragment (corrupted state)")
	}
	if _, ok := vertices[tail]; ok {
		for _, sigma := range paths {
			if contains(sigma, tail) {
				tailpath = sigma
				break
			}
		}
	}
	for _, sigma := range paths { // lines 42–45
		m.cp(port, "L43")
		endPred := sigma[len(sigma)-1].pred.Load()
		if endPred != m.incsN && endPred != m.exitN {
			continue
		}
		m.cp(port, "L44")
		if sigma[0].pred.Load() != m.exitN {
			headpath = sigma
		}
	}

	// Line 46: is the queue already partially repaired at the tail?
	useFAS := tailpath == nil
	if !useFAS {
		m.cp(port, "L46")
		ep := tailpath[len(tailpath)-1].pred.Load()
		useFAS = ep == m.incsN || ep == m.exitN
	}
	switch {
	case useFAS:
		m.cp(port, "L47")
		mypred = m.tail.Swap(mypath[0])
	case headpath != nil: // line 48
		mypred = headpath[0]
	default: // line 48: the whole queue is down
		mypred = m.specialN
	}
	m.cp(port, "L49")
	mynode.pred.Store(mypred)
	return mypred
}

func contains(path []*qnode, n *qnode) bool {
	for _, x := range path {
		if x == n {
			return true
		}
	}
	return false
}

// maximalQPaths computes the maximal paths of the fragment graph (line 39).
// In every reachable state the graph is a union of disjoint simple paths
// (the paper's invariant C23), so indegree-zero starts cover all vertices.
func maximalQPaths(vertices map[*qnode]struct{}, out map[*qnode]*qnode) [][]*qnode {
	indeg := make(map[*qnode]int, len(vertices))
	for _, v := range out {
		indeg[v]++
	}
	paths := make([][]*qnode, 0, len(vertices))
	for v := range vertices {
		if indeg[v] != 0 {
			continue
		}
		p := []*qnode{v}
		for cur := v; ; {
			next, ok := out[cur]
			if !ok {
				break
			}
			p = append(p, next)
			cur = next
		}
		paths = append(paths, p)
	}
	return paths
}
