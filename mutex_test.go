package rme_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

// lockRetry acquires the lock through port, recovering from injected
// crashes by re-calling Lock — the library's prescribed recovery protocol.
// It returns the number of crashes survived.
func lockRetry(t *testing.T, m *rme.Mutex, port int) int {
	t.Helper()
	crashes := 0
	for {
		ok := func() (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, isCrash := rme.AsCrash(r); !isCrash {
						panic(r)
					}
					ok = false
				}
			}()
			m.Lock(port)
			return true
		}()
		if ok {
			return crashes
		}
		crashes++
	}
}

// unlockRetry releases the lock, recovering from injected crashes: a crash
// during Unlock means the passage did not complete, so recovery re-acquires
// through Lock (possibly after others took their turns) and retries.
func unlockRetry(t *testing.T, m *rme.Mutex, port int) int {
	t.Helper()
	crashes := 0
	for {
		ok := func() (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, isCrash := rme.AsCrash(r); !isCrash {
						panic(r)
					}
					ok = false
				}
			}()
			m.Unlock(port)
			return true
		}()
		if ok {
			return crashes
		}
		crashes++
		crashes += lockRetry(t, m, port)
	}
}

func TestSingleLockUnlock(t *testing.T) {
	m := rme.New(1)
	for i := 0; i < 100; i++ {
		m.Lock(0)
		if !m.Held(0) {
			t.Fatal("Held(0) false inside the CS")
		}
		m.Unlock(0)
		if m.Held(0) {
			t.Fatal("Held(0) true after Unlock")
		}
	}
}

func TestMutualExclusionStress(t *testing.T) {
	// The race detector is the referee: counter is an unsynchronized int,
	// legal only if the lock truly serializes the critical sections.
	const workers, iters = 8, 400
	m := rme.New(workers)
	counter := 0
	var inside atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock(port)
				if inside.Add(1) != 1 {
					t.Errorf("two goroutines inside the CS")
				}
				counter++
				inside.Add(-1)
				m.Unlock(port)
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestFIFOHandoff(t *testing.T) {
	// With a held lock and two queued waiters, releases proceed in queue
	// order (MCS inheritance).
	m := rme.New(3)
	m.Lock(0)

	var order []int
	var mu sync.Mutex
	ready := make(chan int, 2)
	done := make(chan struct{})
	for _, port := range []int{1, 2} {
		go func(p int) {
			ready <- p
			m.Lock(p)
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
			m.Unlock(p)
			done <- struct{}{}
		}(port)
		<-ready
		time.Sleep(20 * time.Millisecond) // let the FAS land in order
	}
	m.Unlock(0)
	<-done
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("service order %v, want [1 2]", order)
	}
}

func TestCSRAfterWorkerDeath(t *testing.T) {
	// A worker "dies" inside the CS (its goroutine simply stops). The
	// replacement's Lock on the same port returns immediately; nobody else
	// can get in before that.
	m := rme.New(2)
	func() { m.Lock(0) }() // the deceased; its locals are gone

	if !m.Held(0) {
		t.Fatal("Held(0) should be true after the death in the CS")
	}

	entered := make(chan struct{})
	go func() {
		m.Lock(1)
		close(entered)
		m.Unlock(1)
	}()
	select {
	case <-entered:
		t.Fatal("CSR violated: port 1 entered while the dead port 0 held the CS")
	case <-time.After(50 * time.Millisecond):
	}

	start := time.Now()
	m.Lock(0) // the replacement recovers
	if d := time.Since(start); d > time.Second {
		t.Fatalf("recovery Lock took %v, want near-immediate (wait-free CSR)", d)
	}
	m.Unlock(0)
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("port 1 never entered after the recovery completed")
	}
}

func TestCrashDuringUnlockIsRecovered(t *testing.T) {
	m := rme.New(2)
	var arm atomic.Bool
	m.SetCrashFunc(func(port int, point string) bool {
		return port == 0 && point == "L28" && arm.Swap(false)
	})

	m.Lock(0)
	arm.Store(true)
	func() {
		defer func() {
			if _, ok := rme.AsCrash(recover()); !ok {
				t.Error("expected an injected crash during Unlock")
			}
		}()
		m.Unlock(0)
	}()
	// Recovery: Lock completes the interrupted exit and re-acquires.
	m.Lock(0)
	if !m.Held(0) {
		t.Fatal("not holding after recovery Lock")
	}
	m.Unlock(0)
}

// TestCrashSweepEveryPoint injects one crash at every labeled point of the
// protocol, one run per point, and requires full recovery and continued
// mutual exclusion afterwards.
func TestCrashSweepEveryPoint(t *testing.T) {
	points := []string{
		"L10", "L11", "L12", "L13", "L14", "L15", "L18", "L19", "L23",
		"L24", "L25", "L26", "L27", "L28", "L29",
		"L30", "L31", "L33", "L35", "L36", "L43", "L44", "L46", "L47", "L49",
		"R.stage", "R.trying", "R.e0", "R.e1", "R.e2", "R.e3", "R.e5",
		"R.incs", "R.exiting", "R.x0", "R.x1", "R.x2", "R.x4", "R.idle",
	}
	for _, point := range points {
		point := point
		t.Run(point, func(t *testing.T) {
			const workers, iters = 4, 60
			m := rme.New(workers)
			var remaining atomic.Int32
			remaining.Store(3) // up to three injected crashes at this point
			m.SetCrashFunc(func(port int, pt string) bool {
				if pt != point || port != 0 {
					return false
				}
				return remaining.Add(-1) >= 0
			})
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(port int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						lockRetry(t, m, port)
						counter++
						unlockRetry(t, m, port)
					}
				}(w)
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("counter = %d, want %d", counter, workers*iters)
			}
		})
	}
}

func TestRandomCrashStorm(t *testing.T) {
	// Randomized crash injection across all ports and points, counter
	// checked under the race detector.
	const workers, iters = 6, 150
	m := rme.New(workers)
	var calls atomic.Uint64
	m.SetCrashFunc(func(port int, point string) bool {
		return xrand.Mix64(calls.Add(1))%997 == 0
	})
	counter := 0
	totalCrashes := int64(0)
	var crashCount atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				crashCount.Add(int64(lockRetry(t, m, port)))
				counter++
				crashCount.Add(int64(unlockRetry(t, m, port)))
			}
		}(w)
	}
	wg.Wait()
	totalCrashes = crashCount.Load()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (crashes survived: %d)", counter, workers*iters, totalCrashes)
	}
	t.Logf("survived %d injected crashes", totalCrashes)
}

func TestPanicsOnMisuse(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"zero ports", func() { rme.New(0) }},
		{"bad port lock", func() { rme.New(1).Lock(3) }},
		{"bad port unlock", func() { rme.New(1).Unlock(-1) }},
		{"unlock without lock", func() { rme.New(1).Unlock(0) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestHeldOnFreshMutex(t *testing.T) {
	m := rme.New(2)
	if m.Held(0) || m.Held(1) {
		t.Fatal("fresh mutex reports a holder")
	}
}
