package rme

import (
	"runtime"

	"github.com/rmelib/rme/internal/wait"
)

// WaitStrategy selects how a waiter in the lock stack passes the time
// between opening its wait episode and being woken: every busy-wait in the
// runtime port — the Signal object's wait, the repair lock's tournament
// entry — goes through the same internal/wait engine, and the strategy is
// its tuning knob. The engine's spin words are generation-stamped and
// reusable, so no strategy allocates on the steady-state blocking path.
// Construct one with YieldWaitStrategy, SpinWaitStrategy, or
// SpinParkWaitStrategy.
type WaitStrategy = wait.Strategy

// WaitStats is the wait engine's event-counter block (publishes, sleeps,
// wakes, parks, spin rounds). Wakes is the RMR proxy on a CC machine: each
// wake is one remote write to another process's spin word. TreeMutex hands
// out one per level via LevelStats when built with
// WithTreeInstrumentation.
type WaitStats = wait.Stats

// YieldWaitStrategy probes the spin word and yields to the Go scheduler
// between probes. This is the default: it behaves reasonably at any ratio
// of ports to GOMAXPROCS, at the cost of scheduler round-trips on every
// handoff.
func YieldWaitStrategy() WaitStrategy { return wait.Yield() }

// SpinWaitStrategy spins with procyield-style exponential backoff and no
// scheduler interaction until a generous budget is exhausted. It has the
// lowest handoff latency when every waiter owns a core; do not use it when
// runnable waiters can exceed GOMAXPROCS.
func SpinWaitStrategy() WaitStrategy { return wait.Spin() }

// SpinParkWaitStrategy spins for spinRounds backoff rounds, then parks the
// goroutine on a channel until the wake arrives. This is the strategy for
// oversubscribed workloads (ports ≫ GOMAXPROCS), where spinning waiters
// would otherwise starve the one goroutine able to make progress.
// spinRounds <= 0 selects a small default.
func SpinParkWaitStrategy(spinRounds int) WaitStrategy { return wait.SpinThenPark(spinRounds) }

// Option configures a Mutex or TreeMutex at construction.
type Option func(*config)

type config struct {
	strat        wait.Strategy
	pool         bool
	treeStats    bool
	seed         uint64
	seedSet      bool
	dispSpin     int
	dispPool     int
	asyncPrewarm int
	backend      ShardBackend
	backendSet   bool
	shardStrat   func(shard int) WaitStrategy
	sup          *SupervisorConfig
}

// dispatcherPool resolves the executor's worker bound: the explicit
// WithDispatcherPool value, or the default — GOMAXPROCS, floored at 4.
// GOMAXPROCS is the natural ceiling on useful delivery parallelism (a
// worker is CPU-bound between blocking waits); the floor keeps a small
// reserve of workers on low-core hosts so a delivery blocked behind an
// unsettled grant does not single-handedly stall every other stripe's
// async pipeline (see the pool-liveness note in locktable_async.go).
func (c config) dispatcherPool() int {
	if c.dispPool > 0 {
		return c.dispPool
	}
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

func buildConfig(opts []Option) config {
	c := config{strat: wait.Yield()}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithWaitStrategy selects the busy-wait discipline for every wait in the
// lock (and, on a TreeMutex, in every tree node). A nil strategy keeps the
// default (YieldWaitStrategy).
func WithWaitStrategy(s WaitStrategy) Option {
	return func(c *config) {
		if s != nil {
			c.strat = s
		}
	}
}

// WithNodePool recycles queue nodes through a small per-port free list
// once their successor is provably done with them, making the crash-free
// Lock/Unlock fast path allocation-free. Nodes whose reuse cannot be
// proven safe (a queue repair was in flight) are conservatively leaked to
// the garbage collector, so crash recovery is unaffected.
func WithNodePool(enabled bool) Option {
	return func(c *config) { c.pool = enabled }
}

// WithTableSeed fixes a LockTable's key-hashing seed, making the
// key-to-shard mapping reproducible across runs — deterministic tests and
// benchmarks want this. By default each table draws a distinct seed so
// that two tables over the same keys do not share hot shards. New and
// NewTree ignore the option.
func WithTableSeed(seed uint64) Option {
	return func(c *config) {
		c.seed = seed
		c.seedSet = true
	}
}

// WithDispatcherSpin sets how many backoff rounds each of a LockTable's
// shared dispatcher workers spins for the next runnable stripe after the
// run queue empties, before parking on the pool's idle chain. An idle
// pool always ends at a real park — never a yield loop — whatever the
// table's worker-side wait strategy; this knob only sizes the spin
// window that lets a loaded pipeline catch the next burst's wake without
// paying the park/unpark round trip. Values <= 0 select the engine's
// small default. New and NewTree ignore the option.
func WithDispatcherSpin(rounds int) Option {
	return func(c *config) { c.dispSpin = rounds }
}

// WithDispatcherPool bounds the shared dispatcher runtime: at most n
// worker goroutines serve every stripe's async deliveries, spawned
// lazily as traffic demands and parked on one idle chain when the run
// queue is empty (see dispatch.go). The bound is the async tier's whole
// goroutine footprint — an idle table holds at most n dispatcher
// goroutines however many stripes have seen traffic, and
// TableStats.Dispatcher reports the pool's live/engaged/backlog gauges.
//
// n trades footprint against delivery parallelism and, at the extreme,
// liveness: a worker delivering a grant blocks until the stripe's
// current holder settles, so workloads that deliberately park many
// unreceived grants while issuing more async traffic should size n to
// that concurrency (see the pool-liveness note in locktable_async.go).
// Values <= 0 select the default: GOMAXPROCS, floored at 4. New and
// NewTree ignore the option.
func WithDispatcherPool(n int) Option {
	return func(c *config) { c.dispPool = n }
}

// WithAsyncPrewarm pre-builds n async request nodes (each owning its
// reusable grant channel) on every shard's free list at construction,
// and spawns the dispatcher pool's full complement of workers eagerly —
// for callers that pin allocation budgets from the first request rather
// than steady state. Request free lists are per shard, so the guarantee
// must be too: with the prewarm in place, the calling side of LockAsync
// / LockAsyncFunc allocates nothing even for a stripe's very first
// request (up to n in flight per stripe) — without it, a cold table's
// early submissions may pay the pool's lazy worker spawns. The lock
// protocol behind the delivery still fills its own node pools over each
// stripe's first few passages, on the engaged worker, exactly as any
// cold lock does.
//
// The up-front cost is Shards()×n request nodes plus the
// WithDispatcherPool(n) workers, idle-parked (they would otherwise spawn
// lazily as traffic demands); Close winds the pool down. The steady-state
// behavior is unaffected: nodes are recycled and each free list grows to
// its stripe's in-flight high-water mark either way. New and NewTree
// ignore the option.
func WithAsyncPrewarm(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.asyncPrewarm = n
		}
	}
}

// WithShardBackend selects the lock shape a LockTable builds its shards
// from: the flat k-ported Mutex, the k-process arbitration TreeMutex, the
// recoverable MCS queue lock MCSMutex, or an automatic choice by port
// count. See ShardBackend for when each wins. The default is AutoBackend.
// New, NewTree, and NewMCS ignore the option.
// RestoreTable treats an explicit WithShardBackend as an assertion about
// the checkpoint being restored: the resolved shape must match the
// checkpointed table's, or the restore errors (a silent shape change would
// invalidate the committed baselines' comparability and the caller's
// sizing assumptions). Omit the option to inherit the checkpoint's shape.
func WithShardBackend(b ShardBackend) Option {
	return func(c *config) {
		c.backend = b
		c.backendSet = true
	}
}

// WithShardStrategy installs a per-shard wait-strategy hook on a
// LockTable: fn is called once per shard at construction, and a non-nil
// result overrides WithWaitStrategy for that shard's lock and lease pool
// (a nil result keeps the table-wide strategy). This is how heterogeneous
// arenas are built — e.g. the shards a load model says will be hot on
// SpinWaitStrategy for the lowest handoff latency, the long cold tail on
// SpinParkWaitStrategy so idle stripes cost parked goroutines rather than
// burned quanta:
//
//	rme.NewLockTable(shards, ports, rme.WithShardStrategy(func(s int) rme.WaitStrategy {
//		if hot(s) {
//			return rme.SpinWaitStrategy()
//		}
//		return rme.SpinParkWaitStrategy(64)
//	}))
//
// The hook shapes only how waiters pass the time; correctness (mutual
// exclusion, crash recovery, the striping contracts) is identical across
// strategies, so mixing them within one table is safe. The dispatcher
// pool's idle parking is not affected (it is always spin-then-park; see
// WithDispatcherSpin). New and NewTree ignore the option.
func WithShardStrategy(fn func(shard int) WaitStrategy) Option {
	return func(c *config) { c.shardStrat = fn }
}

// WithSupervisor attaches a background supervisor goroutine to a
// LockTable: a policy loop that periodically snapshots the table's
// counters and acts on them — sweeping orphaned ports (and abandoned
// async grants, which park in the same orphan state) under a liveness
// budget, resizing per-stripe port pools toward the observed load, and
// migrating stripes between the flat, MCS, and tree lock shapes as their
// contention profile shifts. A supervised table needs no caller-driven
// Reclaim pattern: crash, cancel-after-grant, and abandoned-grant debris
// all heal in the background. Close() stops the supervisor and joins it
// before winding down the dispatchers.
//
// The zero SupervisorConfig is valid and selects reclaim-only supervision
// with default cadence; see SupervisorConfig for the adaptive knobs. New,
// NewTree, and NewMCS ignore the option.
func WithSupervisor(sc SupervisorConfig) Option {
	return func(c *config) { c.sup = &sc }
}

// WithTreeInstrumentation makes NewTree attach a WaitStats counter block
// to every tree level (retrievable with TreeMutex.LevelStats), so the
// hand-off cost of each level of the arbitration tree — the per-level RMR
// proxy — can be reported, as cmd/rmebench's tree scenario does. It costs
// a few atomic increments per wait event and is therefore off by default;
// New ignores it (the flat lock's single level is instrumented by wrapping
// the strategy with wait.Instrumented instead).
func WithTreeInstrumentation(enabled bool) Option {
	return func(c *config) { c.treeStats = enabled }
}
