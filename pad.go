package rme

import (
	"sync/atomic"
	"unsafe"
)

// cacheLineSize is the padding granularity for hot shared arrays: 128
// bytes covers the usual 64-byte line plus the adjacent-line spatial
// prefetcher on common x86 parts, so two neighboring array slots never
// ping-pong a line (or a prefetched pair) between writers.
//
// Pads are computed from unsafe.Sizeof (a constant expression) rather
// than literal word sizes so the layouts hold on 32-bit targets too;
// TestPaddedLayout pins the invariant.
const cacheLineSize = 128

// paddedInt32 is an atomic.Int32 alone on its cache line(s). Used for
// per-port words that different ports write concurrently (rlock stages).
type paddedInt32 struct {
	atomic.Int32
	_ [cacheLineSize - unsafe.Sizeof(atomic.Int32{})%cacheLineSize]byte
}

// paddedInt64 is an atomic.Int64 alone on its cache line(s). Used for the
// tree's per-process phase words, which each process writes on every
// passage while its neighbors do the same.
type paddedInt64 struct {
	atomic.Int64
	_ [cacheLineSize - unsafe.Sizeof(atomic.Int64{})%cacheLineSize]byte
}

// paddedUint64 is an atomic.Uint64 alone on its cache line(s). Used for
// the lease table's per-port ownership words, which unrelated workers CAS
// concurrently while hunting for a free port.
type paddedUint64 struct {
	atomic.Uint64
	_ [cacheLineSize - unsafe.Sizeof(atomic.Uint64{})%cacheLineSize]byte
}

// paddedQnodePtr is an atomic.Pointer[qnode] alone on its cache line(s).
// Used for the port table Node[p], which every repair scans while owners
// store to their own slot.
type paddedQnodePtr struct {
	atomic.Pointer[qnode]
	_ [cacheLineSize - unsafe.Sizeof(atomic.Pointer[qnode]{})%cacheLineSize]byte
}
