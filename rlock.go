package rme

import (
	"sync/atomic"
	"unsafe"

	"github.com/rmelib/rme/internal/wait"
)

// rlock is the runtime port of internal/rlock: the k-ported recoverable
// tournament lock that serializes queue repairs (the paper's RLock). See
// the package documentation of internal/rlock for the design and the
// model-checking evidence; this file is a mechanical translation of the
// verified step machine onto sync/atomic, with all waiting delegated to
// the internal/wait engine.
//
// Per-port NVRAM state is the stage word; everything else a process needs
// is reconstructed by re-running the protocol, whose entry is made
// re-executable by the entry-wake + re-check discipline and whose exit is
// idempotent via conditional clears replayed top-down.
type rlock struct {
	ports  int
	levels int
	// nodes[l][g]: tournament node g at level l.
	nodes [][]rlockNode
	// spinPub[p][l]: port p's publication cell at level l, owning the
	// reusable generation-stamped spin word for that (port, level) slot.
	spinPub [][]wait.Cell
	// stage[p]: per-port recovery stage, one cache line each.
	stage []paddedInt32
	// strat is the wait strategy shared with the owning Mutex.
	strat wait.Strategy
}

// rlockNode is one Peterson tournament node. Both fields are stormed by the
// two subtree rivals, so each node gets its own cache line (and padding
// against the adjacent-line prefetcher) to keep rival pairs from false
// sharing with their neighbors in the level array.
type rlockNode struct {
	flag [2]atomic.Int32 // claimant port + 1, or 0
	turn atomic.Int32    // side that must yield (Peterson)
	_    [cacheLineSize - (unsafe.Sizeof([2]atomic.Int32{})+unsafe.Sizeof(atomic.Int32{}))%cacheLineSize]byte
}

// Stage values (same meaning as internal/rlock).
const (
	rlIdle int32 = iota
	rlTrying
	rlInCS
	rlExiting
)

func newRLock(ports int, strat wait.Strategy) *rlock {
	levels := 0
	for 1<<levels < ports {
		levels++
	}
	l := &rlock{ports: ports, levels: levels, strat: strat}
	l.nodes = make([][]rlockNode, levels)
	for lvl := 0; lvl < levels; lvl++ {
		l.nodes[lvl] = make([]rlockNode, 1<<(levels-lvl-1))
	}
	l.spinPub = make([][]wait.Cell, ports)
	for p := range l.spinPub {
		l.spinPub[p] = make([]wait.Cell, levels)
	}
	l.stage = make([]paddedInt32, ports)
	return l
}

func (l *rlock) node(port, lvl int) *rlockNode {
	return &l.nodes[lvl][port>>(lvl+1)]
}

func side(port, lvl int) int { return (port >> lvl) & 1 }

// lock acquires the repair lock through port, recovering per the stage
// word. m supplies the crash-injection hook.
func (l *rlock) lock(m *Mutex, port int) {
	m.cp(port, "R.stage")
	switch l.stage[port].Load() {
	case rlInCS:
		return // wait-free CSR: we crashed holding the repair lock
	case rlExiting:
		l.replayExit(m, port) // finish the interrupted release, then climb
	}
	m.cp(port, "R.trying")
	l.stage[port].Store(rlTrying)
	for lvl := 0; lvl < l.levels; lvl++ {
		l.entry(m, port, lvl)
	}
	m.cp(port, "R.incs")
	l.stage[port].Store(rlInCS)
}

// unlock releases the repair lock (wait-free).
func (l *rlock) unlock(m *Mutex, port int) {
	m.cp(port, "R.exiting")
	l.stage[port].Store(rlExiting)
	l.replayExit(m, port)
	m.cp(port, "R.idle")
	l.stage[port].Store(rlIdle)
}

// entry wins one tournament node: Peterson with a published local spin
// word, an entry wake for possibly-stale rivals, and a re-check after every
// wake (which is what makes blind re-execution after a crash safe — a
// crash abandons the published episode, whose stale generation makes
// wait.Cell lose wakes aimed at it).
//
// The episode is opened lazily, only once the first Peterson check loses:
// the uncontended path (no rival flag, or the rival must yield) touches
// nothing but the tournament node. A wake the rival issued before our
// Begin is lost with the old generation, but any such wake's cause — the
// rival's flag clear or turn hand-over — precedes the Begin too, so the
// mandatory post-Begin re-check observes it before we ever sleep.
func (l *rlock) entry(m *Mutex, port, lvl int) {
	n := l.node(port, lvl)
	s := side(port, lvl)
	m.cp(port, "R.e0")
	n.flag[s].Store(int32(port + 1))
	m.cp(port, "R.e1")
	n.turn.Store(int32(1 - s))
	var w *wait.Waiter
	for {
		m.cp(port, "R.e3")
		r := n.flag[1-s].Load()
		if r == 0 {
			return
		}
		if n.turn.Load() != int32(1-s) {
			return
		}
		if w == nil {
			// First lost check: open the episode, then loop to re-check
			// before sleeping so a rival state change that raced ahead of
			// the Begin is never a lost wake.
			m.cp(port, "R.e2")
			w = l.spinPub[port][lvl].Begin(l.strat)
			continue
		}
		// About to wait: the rival has priority; wake it in case it was
		// left spinning by an earlier crash of ours (it re-checks, so a
		// spurious wake is harmless).
		m.cp(port, "R.e5")
		l.spinPub[r-1][lvl].Wake()
		l.strat.Sleep(w)
		w.Consume() // consume the wake, then re-check
	}
}

// replayExit releases the held nodes from the root downward. The
// conditional clear makes it idempotent, and the top-down order makes the
// conditional race-free (a same-side successor cannot reach level l while
// the levels below are still held).
func (l *rlock) replayExit(m *Mutex, port int) {
	for lvl := l.levels - 1; lvl >= 0; lvl-- {
		n := l.node(port, lvl)
		s := side(port, lvl)
		m.cp(port, "R.x0")
		if n.flag[s].Load() != int32(port+1) {
			continue // already released before the crash being replayed
		}
		m.cp(port, "R.x1")
		n.flag[s].Store(0)
		m.cp(port, "R.x2")
		r := n.flag[1-s].Load()
		if r == 0 {
			continue
		}
		m.cp(port, "R.x4")
		l.spinPub[r-1][lvl].Wake()
	}
}
