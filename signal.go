package rme

import (
	"sync/atomic"

	"github.com/rmelib/rme/internal/wait"
)

// signal is the runtime port of the paper's Signal object (Figure 2): a
// single-shot flag with set and wait, where the waiter spins on a word it
// allocated itself. On the paper's DSM machine that placement makes the
// busy-wait local; at runtime it additionally keeps each waiter on its own
// cache line most of the time.
//
// All waiting is delegated to the internal/wait engine: the signal holds
// the persistent bit and the publication Cell (Figure 2's GoAddr), which
// owns the reusable generation-stamped spin word every wait on this signal
// runs on; how the waiter passes the time is the mutex's wait.Strategy.
//
// The algorithm guarantees no two wait executions are ever concurrent on
// the same signal (a node's CS_Signal is awaited only by its unique
// successor; NonNil_Signal only under the repair lock).
type signal struct {
	// bit is the persistent state: 1 once set() has happened (Figure 2's
	// Bit).
	bit atomic.Bool
	// cell is the publication slot of the current waiter's spin word
	// (Figure 2's GoAddr).
	cell wait.Cell
}

// set makes the signal's state 1 and wakes the published waiter, if any
// (Figure 2 lines 1–4).
func (s *signal) set() {
	s.bit.Store(true)
	s.cell.Wake()
}

// wait returns once the signal's state is 1 (Figure 2 lines 5–9). Each
// blocking call opens a fresh generation-stamped episode on the cell's
// reusable waiter — the zero-allocation equivalent of the paper's
// fresh-spin-word-per-wait (line 5), and what makes re-execution after a
// crash safe: a stale wake directed at an abandoned episode carries the
// old generation and is simply lost (see internal/wait's package comment
// for the equivalence argument). An already-set signal returns before
// opening an episode, so neither path allocates.
func (s *signal) wait(st wait.Strategy) {
	if s.bit.Load() {
		return
	}
	s.cell.Await(st, s.bit.Load)
}

// waitDone is wait with a cancellation channel: it reports whether the
// signal was set by the time it returned. Signal wakes are hints over the
// persistent bit, so a wake lost to a cancelled (and retired) episode is
// harmless — the bit stays set, and any later wait on the signal returns
// immediately off the fast path.
func (s *signal) waitDone(st wait.Strategy, done <-chan struct{}) bool {
	if s.bit.Load() {
		return true
	}
	return s.cell.AwaitDone(st, s.bit.Load, done)
}

// isSet reports the state without side effects (used by tests).
func (s *signal) isSet() bool { return s.bit.Load() }

// forceSet initializes a pre-set signal (the SpecialNode's).
func (s *signal) forceSet() { s.bit.Store(true) }

// reset returns the signal to a fresh state for a recycled qnode life:
// the bit is cleared and the cell's generation bumped, so in-flight wakes
// aimed at the previous life die on their CAS. Only called while the
// enclosing node is unreachable from the protocol.
func (s *signal) reset() {
	s.bit.Store(false)
	s.cell.Reset()
}
