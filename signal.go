package rme

import "sync/atomic"

// signal is the runtime port of the paper's Signal object (Figure 2): a
// single-shot flag with set and wait, where the waiter spins on a boolean
// it allocated itself. On the paper's DSM machine that placement makes the
// busy-wait local; at runtime it additionally keeps each waiter on its own
// cache line most of the time.
//
// The algorithm guarantees no two wait executions are ever concurrent on
// the same signal (a node's CS_Signal is awaited only by its unique
// successor; NonNil_Signal only under the repair lock).
type signal struct {
	// bit is the persistent state: 1 once set() has happened (Figure 2's
	// Bit).
	bit atomic.Bool
	// goAddr is the published spin variable of the current waiter
	// (Figure 2's GoAddr).
	goAddr atomic.Pointer[atomic.Bool]
}

// set makes the signal's state 1 and wakes the published waiter, if any
// (Figure 2 lines 1–4).
func (s *signal) set() {
	s.bit.Store(true)
	if addr := s.goAddr.Load(); addr != nil {
		addr.Store(true)
	}
}

// wait returns once the signal's state is 1 (Figure 2 lines 5–9). A fresh
// spin boolean is allocated per call — exactly the paper's line 5 — which
// is also what makes re-execution after a crash safe: a stale wake directed
// at an abandoned boolean is simply lost.
func (s *signal) wait() {
	g := new(atomic.Bool)
	s.goAddr.Store(g)
	if s.bit.Load() {
		return
	}
	for !g.Load() {
		spinWait()
	}
}

// isSet reports the state without side effects (used by tests).
func (s *signal) isSet() bool { return s.bit.Load() }

// forceSet initializes a pre-set signal (the SpecialNode's).
func (s *signal) forceSet() { s.bit.Store(true) }
