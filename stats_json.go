package rme

import "encoding/json"

// JSON shapes for the observability snapshots, so a monitoring pipeline
// (or rmebench's -stats flag) can dump a table's state without writing
// its own adapters. The encodings are explicit rather than the default
// struct reflection: field names are stable snake_case (safe to rename Go
// fields later), backends marshal as their String() names rather than
// bare ints, and the derived wakes-per-op ratio is included so dashboards
// need no client-side arithmetic.

// MarshalJSON encodes the backend as its String() name ("flat", "tree",
// "mcs", "auto").
func (b ShardBackend) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.String())
}

type shardStatsJSON struct {
	Acquires    uint64  `json:"acquires"`
	Publishes   uint64  `json:"publishes"`
	Wakes       uint64  `json:"wakes"`
	Sleeps      uint64  `json:"sleeps"`
	Parks       uint64  `json:"parks"`
	SpinRounds  uint64  `json:"spin_rounds"`
	Aborts      uint64  `json:"aborts"`
	Timeouts    uint64  `json:"timeouts"`
	Orphans     int     `json:"orphans"`
	InboxDepth  int     `json:"inbox_depth"`
	Backend     string  `json:"backend"`
	ActivePorts int     `json:"active_ports"`
	WakesPerOp  float64 `json:"wakes_per_op"`
}

// MarshalJSON encodes the stripe snapshot with stable snake_case keys,
// the backend by name, and the derived wakes-per-op ratio inlined.
func (s ShardStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(shardStatsJSON{
		Acquires:    s.Acquires,
		Publishes:   s.Publishes,
		Wakes:       s.Wakes,
		Sleeps:      s.Sleeps,
		Parks:       s.Parks,
		SpinRounds:  s.SpinRounds,
		Aborts:      s.Aborts,
		Timeouts:    s.Timeouts,
		Orphans:     s.Orphans,
		InboxDepth:  s.InboxDepth,
		Backend:     s.Backend.String(),
		ActivePorts: s.ActivePorts,
		WakesPerOp:  s.WakesPerOp(),
	})
}

type supervisorStatsJSON struct {
	Sweeps           uint64 `json:"sweeps"`
	StripesHealed    uint64 `json:"stripes_healed"`
	PortsHealed      uint64 `json:"ports_healed"`
	MigrationsToFlat uint64 `json:"migrations_to_flat"`
	MigrationsToMCS  uint64 `json:"migrations_to_mcs"`
	MigrationsToTree uint64 `json:"migrations_to_tree"`
	Migrations       uint64 `json:"migrations"`
	Grows            uint64 `json:"grows"`
	Shrinks          uint64 `json:"shrinks"`
	Steals           uint64 `json:"steals"`
}

// MarshalJSON encodes the supervisor snapshot with stable snake_case keys
// and the total migration count inlined alongside the by-direction split.
func (s SupervisorStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(supervisorStatsJSON{
		Sweeps:           s.Sweeps,
		StripesHealed:    s.StripesHealed,
		PortsHealed:      s.PortsHealed,
		MigrationsToFlat: s.MigrationsToFlat,
		MigrationsToMCS:  s.MigrationsToMCS,
		MigrationsToTree: s.MigrationsToTree,
		Migrations:       s.Migrations(),
		Grows:            s.Grows,
		Shrinks:          s.Shrinks,
		Steals:           s.Steals,
	})
}

type dispatcherStatsJSON struct {
	PoolSize      int    `json:"pool_size"`
	Workers       int    `json:"workers"`
	Engaged       int    `json:"engaged"`
	RunQueueDepth int    `json:"run_queue_depth"`
	Batches       uint64 `json:"batches"`
	Steals        uint64 `json:"steals"`
}

// MarshalJSON encodes the shared dispatcher runtime's pool gauges with
// stable snake_case keys.
func (s DispatcherStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(dispatcherStatsJSON{
		PoolSize:      s.PoolSize,
		Workers:       s.Workers,
		Engaged:       s.Engaged,
		RunQueueDepth: s.RunQueueDepth,
		Batches:       s.Batches,
		Steals:        s.Steals,
	})
}

type tableStatsJSON struct {
	Shards     []ShardStats    `json:"shards"`
	Total      ShardStats      `json:"total"`
	Supervisor SupervisorStats `json:"supervisor"`
	Dispatcher DispatcherStats `json:"dispatcher"`
}

// MarshalJSON encodes the whole table snapshot: the per-stripe array, the
// Total() aggregate, the supervisor's counters, and the dispatcher
// pool's gauges.
func (ts TableStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableStatsJSON{
		Shards:     ts.Shards,
		Total:      ts.Total(),
		Supervisor: ts.Supervisor,
		Dispatcher: ts.Dispatcher,
	})
}
