package rme_test

// Tests for the wait-strategy and node-pool dimensions of the runtime
// lock: every strategy must preserve mutual exclusion and crash recovery,
// the parking strategy must survive heavy oversubscription (ports ≫
// GOMAXPROCS), and pooling must make the crash-free fast path
// allocation-free without breaking queue repair.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

type namedStrategy struct {
	name string
	st   rme.WaitStrategy
}

func allStrategies() []namedStrategy {
	return []namedStrategy{
		{"yield", rme.YieldWaitStrategy()},
		{"spin", rme.SpinWaitStrategy()},
		{"spinpark", rme.SpinParkWaitStrategy(32)},
	}
}

// TestMutualExclusionAllStrategies is the core stress test across the
// strategy × pooling matrix, refereed by the race detector through the
// unsynchronized counter.
func TestMutualExclusionAllStrategies(t *testing.T) {
	for _, s := range allStrategies() {
		for _, pool := range []bool{false, true} {
			s, pool := s, pool
			t.Run(fmt.Sprintf("%s/pool=%v", s.name, pool), func(t *testing.T) {
				t.Parallel()
				const workers, iters = 8, 300
				m := rme.New(workers, rme.WithWaitStrategy(s.st), rme.WithNodePool(pool))
				counter := 0
				var inside atomic.Int32
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(port int) {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							m.Lock(port)
							if inside.Add(1) != 1 {
								t.Errorf("two goroutines inside the CS")
							}
							counter++
							inside.Add(-1)
							m.Unlock(port)
						}
					}(w)
				}
				wg.Wait()
				if counter != workers*iters {
					t.Fatalf("counter = %d, want %d", counter, workers*iters)
				}
			})
		}
	}
}

// TestOversubscribedAllStrategies runs ports ≫ GOMAXPROCS — the workload
// the parking strategy exists for. Every strategy must finish (the pure
// spinner is allowed to be slow, not to livelock: its backoff concedes
// scheduler yields once the budget is burnt).
func TestOversubscribedAllStrategies(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	ports := 32 * procs
	iters := 5
	for _, s := range allStrategies() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			m := rme.New(ports, rme.WithWaitStrategy(s.st), rme.WithNodePool(true))
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < ports; w++ {
				wg.Add(1)
				go func(port int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						m.Lock(port)
						counter++
						m.Unlock(port)
					}
				}(w)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				t.Fatalf("oversubscribed run (%d ports on %d procs) stalled", ports, procs)
			}
			if counter != ports*iters {
				t.Fatalf("counter = %d, want %d", counter, ports*iters)
			}
		})
	}
}

// TestOversubscribedCrashStormSpinPark injects random crashes while the
// lock is heavily oversubscribed under the parking strategy with pooling
// on: crashes abandon published waiters whose stale wakes may target
// parked goroutines, and recovery repairs must refuse unsafe node reuse.
func TestOversubscribedCrashStormSpinPark(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	ports := 16 * procs
	const iters = 8
	m := rme.New(ports,
		rme.WithWaitStrategy(rme.SpinParkWaitStrategy(4)), // park almost immediately
		rme.WithNodePool(true))
	var calls atomic.Uint64
	m.SetCrashFunc(func(port int, point string) bool {
		return xrand.Mix64(calls.Add(1))%1499 == 0
	})
	counter := 0
	var crashes atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < ports; w++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				crashes.Add(int64(lockRetry(t, m, port)))
				counter++
				crashes.Add(int64(unlockRetry(t, m, port)))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		t.Fatalf("oversubscribed crash storm stalled (%d crashes so far)", crashes.Load())
	}
	if counter != ports*iters {
		t.Fatalf("counter = %d, want %d", counter, ports*iters)
	}
	t.Logf("survived %d injected crashes with %d ports on %d procs", crashes.Load(), ports, procs)
}

// TestCrashStormWithPooling re-runs the random crash storm with node
// pooling enabled: recycled nodes must never leak a stale pred, signal
// bit, or published waiter into a later passage, and repair must never
// adopt a node that was recycled under it.
func TestCrashStormWithPooling(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			const workers, iters = 6, 120
			m := rme.New(workers, rme.WithWaitStrategy(s.st), rme.WithNodePool(true))
			var calls atomic.Uint64
			m.SetCrashFunc(func(port int, point string) bool {
				return xrand.Mix64(calls.Add(1))%997 == 0
			})
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(port int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						lockRetry(t, m, port)
						counter++
						unlockRetry(t, m, port)
					}
				}(w)
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("counter = %d, want %d", counter, workers*iters)
			}
		})
	}
}

// TestTreeWithOptions drives the arbitration tree with the options
// threaded through to every node, under contention and injected crashes.
func TestTreeWithOptions(t *testing.T) {
	const n, iters = 9, 40
	tm := rme.NewTree(n,
		rme.WithWaitStrategy(rme.SpinParkWaitStrategy(16)),
		rme.WithNodePool(true))
	var calls atomic.Uint64
	tm.SetCrashFunc(func(port int, point string) bool {
		return xrand.Mix64(calls.Add(1))%1999 == 0
	})
	counter := 0
	var inside atomic.Int32
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				treeLockRetry(tm, proc)
				if inside.Add(1) != 1 {
					t.Errorf("two processes inside the tree CS")
				}
				counter++
				inside.Add(-1)
				treeUnlockRetry(tm, proc)
			}
		}(p)
	}
	wg.Wait()
	if counter != n*iters {
		t.Fatalf("counter = %d, want %d", counter, n*iters)
	}
}

// TestFastPathZeroAllocs is the pooling acceptance check: once the
// per-port free list is warm, a crash-free uncontended Lock/Unlock passage
// allocates nothing — the queue node is recycled and an already-set
// cs signal short-circuits before publishing a spin word.
func TestFastPathZeroAllocs(t *testing.T) {
	m := rme.New(1, rme.WithNodePool(true))
	for i := 0; i < 2*4; i++ { // warm the free list past its consume lag
		m.Lock(0)
		m.Unlock(0)
	}
	avg := testing.AllocsPerRun(200, func() {
		m.Lock(0)
		m.Unlock(0)
	})
	if avg != 0 {
		t.Fatalf("allocs per passage = %v, want 0", avg)
	}
}

// TestContendedZeroAllocs is the tentpole acceptance check: with the node
// pool warm, the contended crash-free hand-off path allocates nothing
// under any strategy — the queue node is recycled, the blocking wait runs
// on the cell's reusable generation-stamped waiter, and the park channel
// (spinpark) was created once during warm-up. Worker-goroutine spawns are
// the only allocations left and amortize far below the threshold.
func TestContendedZeroAllocs(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			ports := 2
			iters := 1500
			if s.name != "spin" && runtime.GOMAXPROCS(0) > 1 {
				ports = 4
			}
			m := rme.New(ports, rme.WithWaitStrategy(s.st), rme.WithNodePool(true))
			run := func(total int) {
				var wg sync.WaitGroup
				per := total / ports
				for w := 0; w < ports; w++ {
					wg.Add(1)
					go func(port int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							m.Lock(port)
							runtime.Gosched() // CS work: force real blocking
							m.Unlock(port)
							runtime.Gosched()
						}
					}(w)
				}
				wg.Wait()
			}
			run(16 * ports) // warm pools and park channels
			runtime.GC()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			run(iters)
			runtime.ReadMemStats(&ms1)
			perOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
			if perOp > 0.05 {
				t.Fatalf("contended allocs/op = %.4f, want ~0", perOp)
			}
		})
	}
}

// TestPoolRefusesReuseDuringRepair pins the recycling fence: while a
// repair is mid-flight (between its port-table scan and its decision), a
// retired node must not be handed out again. The crash hook parks a
// repairing port inside its repair CS while the victim port runs passages.
func TestPoolRefusesReuseDuringRepair(t *testing.T) {
	m := rme.New(3, rme.WithNodePool(true))

	// Port 2 crashes at L13 (node published, FAS not yet executed) so its
	// next Lock must run a queue repair — and its node is not in the tail
	// chain, so other ports never queue behind the parked repairer.
	var armed atomic.Bool
	armed.Store(true)
	m.SetCrashFunc(func(port int, point string) bool {
		return port == 2 && point == "L13" && armed.Swap(false)
	})
	func() {
		defer func() { _, _ = rme.AsCrash(recover()) }()
		m.Lock(2)
	}()

	// Hold the repairing port at the start of its repair scan.
	inScan := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	m.SetCrashFunc(func(port int, point string) bool {
		if port == 2 && point == "L33" {
			once.Do(func() {
				close(inScan)
				<-release
			})
		}
		return false
	})
	repaired := make(chan struct{})
	go func() {
		m.Lock(2) // recovery: enters repair, blocks at the scan
		close(repaired)
	}()
	<-inScan

	// While the repair is parked, port 0 churns passages; with the fence
	// working these must not blow up even though reuse is refused (they
	// just allocate). The real property under test is that the storm
	// stays correct; the fence's presence is observable as fresh nodes.
	for i := 0; i < 20; i++ {
		m.Lock(0)
		m.Unlock(0)
	}
	close(release)
	select {
	case <-repaired:
	case <-time.After(30 * time.Second):
		t.Fatal("repairing port never finished")
	}
	m.SetCrashFunc(nil)
	m.Unlock(2)

	// Everything still works afterwards.
	for p := 0; p < 3; p++ {
		m.Lock(p)
		m.Unlock(p)
	}
}
