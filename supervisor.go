package rme

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/rmelib/rme/internal/xrand"
)

// This file is the table's self-management loop: the supervisor started by
// WithSupervisor, the adaptive port-pool policy, and live stripe-shape
// migration. Everything here runs off the grant path — the supervisor is a
// single background goroutine whose steady-state tick performs no
// allocation, so a supervised table's warm passages stay 0 allocs/op.
//
// # What the supervisor owns
//
// Three responsibilities, each optional except the first:
//
//  1. Orphan sweeps. A crashed worker, a cancelled-but-granted async
//     request, or an abandoned Grant all leave an orphaned lease that
//     stalls its stripe until someone reclaims it. The supervisor sweeps
//     periodically under a liveness budget (at most MaxHealsPerTick
//     stripes claimed per tick, recoveries on their own goroutines), so a
//     supervised table needs no caller-driven Reclaim pattern at all.
//  2. Adaptive port pools (AdaptivePorts). Cold stripes shrink at quiesce
//     points, banking their spare port quota in a table-wide slack pool;
//     hot stripes grow out of that pool — from the supervisor when it
//     sees parked lease acquirers, and from the acquire path itself (the
//     work-stealing fallback in acquireLeaseDone) the moment a stripe
//     exhausts its active ports under skew.
//  3. Stripe-shape migration (Migrate). The supervisor watches each
//     stripe's wakes-per-acquire — the RMR proxy AutoBackend's static
//     thresholds guess at — and flips stripes between the flat, MCS, and
//     tree shapes live when the observed profile disagrees with the
//     current shape, with hysteresis so it never flaps.
//
// # Migration safety argument
//
// migrateShard swaps a stripe's lock backend only at a proven quiesce
// point, using a Dekker-style handshake with the acquire path:
//
//   - The barrier closes the stripe's gate (gateClosed, a seq-cst store),
//     then scans the lease words. New entrants park on the gate chain
//     instead of taking leases.
//   - An entrant CASes its lease first, then re-loads gateClosed (the
//     post-acquire re-check in acquireLeaseDone and TryLock). Sequential
//     consistency gives a total order over the four operations: either
//     the entrant's CAS precedes the barrier's scan (the scan sees the
//     lease, the barrier waits for that tenancy), or the barrier's store
//     precedes the entrant's re-check (the entrant sees the closed gate,
//     hands the port back, and parks). No tenancy can straddle the swap.
//   - InUse()==0 at the scan therefore means every tenancy that will ever
//     touch the old backend has fully settled (a tenancy releases its
//     lease only after its backend state is retired — Unlock, abort
//     fix-up, and orphan heal all settle the lock before freeing the
//     lease), and quiesceExport() re-verifies idleness from the backend's
//     own words before the swap.
//   - Orphans on the draining stripe would hold InUse above zero forever,
//     so the barrier wait spawns asynchronous table-wide sweeps while it
//     waits — never a synchronous Reclaim, which could deadlock the
//     barrier behind a batch tenancy blocked on another stripe.
//
// The replacement backend is built by the stripe's construction closure
// (same options, same instrumented strategy and stats block) and inherits
// the old backend's crash hook through quiesceExport, so an installed
// CrashFunc survives any number of swaps. Migrations are serialized
// table-wide (migMu) and bounded by QuiesceTimeout: a stripe that will
// not drain stays on its current shape — migration is an optimization,
// never a liveness hazard.
//
// # Coordination with the shared dispatcher runtime
//
// The supervisor needs nothing special from the executor (dispatch.go),
// but two interactions are worth naming. First, a pool worker delivering
// on a migrating stripe parks at the gate like any entrant — it holds
// deliverMu, which the barrier never takes, so the handshake is
// unaffected; the worker does occupy one WithDispatcherPool slot for the
// drain's duration, which is one more reason QuiesceTimeout is bounded.
// A pending async request parked this way holds no lease, so it never
// blocks the drain itself (the barrier waits on lease words alone).
// Second, the abandoned-grant path: a grant a supervisor Abandons (or a
// cancelled-but-granted request auto-abandons) becomes an ordinary
// orphan, and its recovery is driven entirely by sweeps — pool workers
// are not involved in healing, so a fully-blocked pool can never stall
// reclaim, and the eager first tick a restored table asks for (see
// supervisor.eager) runs before any pool worker has even spawned.

// SupervisorConfig tunes the background supervisor a LockTable starts
// when built WithSupervisor. The zero value is valid: reclaim-only
// supervision (no pool resizing, no migration) at the default cadence.
type SupervisorConfig struct {
	// Interval is the tick period. Each tick is scheduled with ±25%
	// jitter around it so many supervised tables in one process do not
	// beat against each other. <= 0 selects the 5ms default.
	Interval time.Duration

	// MaxHealsPerTick bounds how many stripes one tick claims orphans
	// from — the sweep's liveness budget, keeping a crash storm from
	// turning a tick into a full-table stall. Claimed recoveries run on
	// their own goroutines, and the claim cursor rotates round-robin so
	// every stripe is reached within shards/MaxHealsPerTick ticks.
	// <= 0 selects the default (4).
	MaxHealsPerTick int

	// AdaptivePorts enables the pool policy: cold stripes shrink toward
	// MinPorts at quiesce points (banking quota in the table's slack
	// pool), hot stripes grow out of it, and the acquire path steals from
	// it when a stripe exhausts its ports under skew.
	AdaptivePorts bool

	// MinPorts is the floor a stripe's active-port bound can shrink to.
	// <= 0 selects the default (2, or the stripe capacity if smaller).
	MinPorts int

	// Migrate enables stripe-shape migration: stripes whose observed
	// wakes-per-acquire profile disagrees with their current lock shape
	// are flipped live at quiesce points (see the safety argument above).
	Migrate bool

	// HotWakesPerOp is the wakes-per-acquire level above which a stripe
	// with a large active pool is considered hand-off bound and migrated
	// to the tree shape. <= 0 selects the default (3.0).
	HotWakesPerOp float64

	// ColdWakesPerOp is the level at or below which a small-pool stripe
	// is considered contention-free and migrated to the flat shape.
	// <= 0 selects the default (0.5).
	ColdWakesPerOp float64

	// HysteresisTicks is how many consecutive ticks must agree on a
	// stripe's desired shape before a migration is attempted, and how
	// many ticks a freshly migrated stripe is left alone afterwards —
	// the anti-flap guard. <= 0 selects the default (3).
	HysteresisTicks int

	// QuiesceTimeout bounds how long one migration attempt waits for its
	// stripe to drain before giving up and reopening the gate. <= 0
	// selects the default (50ms).
	QuiesceTimeout time.Duration
}

// supervisor defaults; see the corresponding SupervisorConfig fields.
const (
	defaultSupInterval    = 5 * time.Millisecond
	defaultSupHeals       = 4
	defaultSupMinPorts    = 2
	defaultSupHotWPO      = 3.0
	defaultSupColdWPO     = 0.5
	defaultSupHysteresis  = 3
	defaultSupQuiesce     = 50 * time.Millisecond
	supMigrateMinAcquires = 16 // min per-tick acquires before wpo is judged
	supBarrierPoll        = 50 * time.Microsecond
	supJitterQuarter      = 4 // jitter amplitude: interval/4 each way
)

func (c SupervisorConfig) withDefaults(ports int) SupervisorConfig {
	if c.Interval <= 0 {
		c.Interval = defaultSupInterval
	}
	if c.MaxHealsPerTick <= 0 {
		c.MaxHealsPerTick = defaultSupHeals
	}
	if c.MinPorts <= 0 {
		c.MinPorts = defaultSupMinPorts
	}
	if c.MinPorts > ports {
		c.MinPorts = ports
	}
	if c.HotWakesPerOp <= 0 {
		c.HotWakesPerOp = defaultSupHotWPO
	}
	if c.ColdWakesPerOp <= 0 {
		c.ColdWakesPerOp = defaultSupColdWPO
	}
	if c.HysteresisTicks <= 0 {
		c.HysteresisTicks = defaultSupHysteresis
	}
	if c.QuiesceTimeout <= 0 {
		c.QuiesceTimeout = defaultSupQuiesce
	}
	return c
}

// SupervisorStats is the supervisor's own activity snapshot, reported
// inside TableStats. On a table without WithSupervisor every field is
// zero except Steals, which the acquire path's work-stealing fallback
// also drives (it is part of the adaptive-pool machinery, not the
// supervisor goroutine).
type SupervisorStats struct {
	// Sweeps counts supervisor ticks (each tick is one budgeted sweep
	// pass, whether or not it found anything to heal).
	Sweeps uint64
	// StripesHealed / PortsHealed count orphan recoveries the supervisor
	// initiated: stripes with at least one claim, and individual ports.
	StripesHealed uint64
	PortsHealed   uint64
	// MigrationsToFlat / MigrationsToMCS / MigrationsToTree count
	// completed stripe-shape migrations by destination shape.
	MigrationsToFlat uint64
	MigrationsToMCS  uint64
	MigrationsToTree uint64
	// Grows / Shrinks count adaptive pool resizes by direction (events,
	// not ports).
	Grows   uint64
	Shrinks uint64
	// Steals counts ports the acquire path grew out of the table's slack
	// quota when a stripe exhausted its active ports under skew.
	Steals uint64
}

// Migrations returns the total completed migrations across directions.
func (s SupervisorStats) Migrations() uint64 {
	return s.MigrationsToFlat + s.MigrationsToMCS + s.MigrationsToTree
}

// supCounters is the live atomic mirror of SupervisorStats, embedded in
// every LockTable (the steal counter must exist without a supervisor).
type supCounters struct {
	sweeps        atomic.Uint64
	stripesHealed atomic.Uint64
	portsHealed   atomic.Uint64
	migToFlat     atomic.Uint64
	migToMCS      atomic.Uint64
	migToTree     atomic.Uint64
	grows         atomic.Uint64
	shrinks       atomic.Uint64
	steals        atomic.Uint64
}

func (c *supCounters) snapshot() SupervisorStats {
	return SupervisorStats{
		Sweeps:           c.sweeps.Load(),
		StripesHealed:    c.stripesHealed.Load(),
		PortsHealed:      c.portsHealed.Load(),
		MigrationsToFlat: c.migToFlat.Load(),
		MigrationsToMCS:  c.migToMCS.Load(),
		MigrationsToTree: c.migToTree.Load(),
		Grows:            c.grows.Load(),
		Shrinks:          c.shrinks.Load(),
		Steals:           c.steals.Load(),
	}
}

func (c *supCounters) noteMigration(to ShardBackend) {
	switch to {
	case FlatBackend:
		c.migToFlat.Add(1)
	case MCSBackend:
		c.migToMCS.Add(1)
	case TreeBackend:
		c.migToTree.Add(1)
	}
}

// supervisor is the background policy loop attached by WithSupervisor.
// All its per-stripe working state is preallocated at start, so a
// steady-state tick (nothing to heal, nothing to move) allocates nothing.
type supervisor struct {
	t   *LockTable
	cfg SupervisorConfig

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	// wg tracks the heal goroutines this supervisor spawned; join waits
	// for them so Close never returns with a recovery still in flight.
	wg sync.WaitGroup

	rng *xrand.Rand

	// Per-stripe observation windows (previous tick's counter values) and
	// migration bookkeeping, indexed by shard.
	lastAcquires []uint64
	lastWakes    []uint64
	lastDesired  []ShardBackend
	streak       []int
	cooldown     []int

	healCursor int
	claimBuf   []PortLease // claim-phase scratch, reused every tick

	// eager makes run perform an immediate first tick before arming the
	// interval timer. RestoreTable sets it when the restored image carried
	// orphans: a system-wide crash leaves every in-flight tenancy of the
	// dead incarnation orphaned at once, and a supervised restore should
	// start healing them right away rather than sleeping a full Interval
	// while the whole arena is stalled behind dead holders.
	eager bool
}

// startSupervisor wires the supervisor into the table and launches its
// loop; called from finishInit when WithSupervisor was given. With eager
// set the loop runs its first tick immediately (the restore path's
// sweep-before-first-grant; see supervisor.eager).
func (t *LockTable) startSupervisor(cfg SupervisorConfig, eager bool) {
	cfg = cfg.withDefaults(t.ports)
	t.adaptive = cfg.AdaptivePorts
	t.minPorts = cfg.MinPorts
	n := len(t.shards)
	s := &supervisor{
		t:            t,
		cfg:          cfg,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		rng:          xrand.New(t.seed ^ 0xa5a5a5a5a5a5a5a5),
		lastAcquires: make([]uint64, n),
		lastWakes:    make([]uint64, n),
		lastDesired:  make([]ShardBackend, n),
		streak:       make([]int, n),
		cooldown:     make([]int, n),
		claimBuf:     make([]PortLease, 0, t.ports),
		eager:        eager,
	}
	t.sup = s
	go s.run()
}

// join stops the loop and waits for it — and for every heal goroutine it
// spawned — to finish. Idempotent; called from Close.
func (s *supervisor) join() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	s.wg.Wait()
}

// run is the supervisor goroutine: tick, act, re-arm with jitter.
func (s *supervisor) run() {
	defer close(s.done)
	if s.eager {
		s.tick()
	}
	timer := time.NewTimer(s.jittered())
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
		}
		s.tick()
		timer.Reset(s.jittered())
	}
}

// jittered returns the next tick delay: Interval ±25%.
func (s *supervisor) jittered() time.Duration {
	base := s.cfg.Interval
	amp := base / supJitterQuarter
	if amp <= 0 {
		return base
	}
	return base - amp + time.Duration(s.rng.Uint64()%uint64(2*amp))
}

// tick is one supervision pass: budgeted orphan sweep, then the pool and
// migration policies. Steady state (nothing to do) performs no allocation
// and no locking — only atomic loads over the stripes' counters.
func (s *supervisor) tick() {
	s.t.supc.sweeps.Add(1)
	s.sweepOrphans()
	if s.cfg.AdaptivePorts {
		s.resizePools()
	}
	if s.cfg.Migrate {
		s.judgeMigrations()
	}
}

// sweepOrphans claims orphans from at most MaxHealsPerTick stripes
// (round-robin from the rotating cursor) and spawns one recovery
// goroutine per claimed port. Recoveries run concurrently and are never
// waited for inside the tick — two orphans can be queued behind each
// other's dead nodes, and a batch tenancy's stripes can depend on each
// other through live waiters, so a sweep that blocked on one recovery
// could stall the very heals that would unblock it. Stripes beyond the
// budget keep their orphans for the next tick; the cursor guarantees
// every stripe is visited.
func (s *supervisor) sweepOrphans() {
	t := s.t
	n := len(t.shards)
	healed, scanned := 0, 0
	for i := 0; i < n && healed < s.cfg.MaxHealsPerTick; i++ {
		sh := &t.shards[(s.healCursor+i)%n]
		scanned = i + 1
		s.claimBuf = sh.pool.claimOrphans(s.claimBuf[:0])
		if len(s.claimBuf) == 0 {
			continue
		}
		healed++
		t.supc.stripesHealed.Add(1)
		t.supc.portsHealed.Add(uint64(len(s.claimBuf)))
		for _, l := range s.claimBuf {
			s.wg.Add(1)
			go s.heal(sh, l)
		}
	}
	if healed >= s.cfg.MaxHealsPerTick {
		// The budget cut the scan short: rotate the cursor past the
		// visited region so a persistently crashy prefix cannot starve
		// the stripes behind it; a full scan leaves the cursor alone.
		s.healCursor = (s.healCursor + scanned) % n
	}
}

// heal runs one claimed orphan's recovery to completion — the same
// Lock/Unlock recovery loop ReclaimWith runs, absorbing injected crashes
// — and returns the port to the pool. It holds a Reclaiming lease
// throughout, which keeps the stripe's InUse above zero and therefore
// pins the backend: a migration barrier waits for this heal like for any
// tenancy, so loading sh.m() once here is safe.
func (s *supervisor) heal(sh *lockShard, l PortLease) {
	defer s.wg.Done()
	m := sh.m()
	for {
		if crashes(func() { m.Lock(l.Port) }) {
			continue
		}
		if !crashes(func() { m.Unlock(l.Port) }) {
			break
		}
	}
	sh.pool.finishReclaim(l)
}

// resizePools is the adaptive-pool policy: one pass over the stripes,
// shrinking idle cold ones (banking the quota in the table's slack pool)
// and growing ones with parked lease acquirers out of it. The grow half
// complements the acquire path's work-stealing fallback — stealing covers
// the instant a stripe runs dry; this covers sustained pressure, waking
// the parked acquirers a steal cannot see.
func (s *supervisor) resizePools() {
	t := s.t
	for i := range t.shards {
		sh := &t.shards[i]
		acq := sh.acquires.Load()
		delta := acq - s.lastAcquires[i]
		pool := sh.pool
		active := pool.Active()
		switch {
		case delta == 0 && active > t.minPorts && pool.InUse() == 0 && pool.chain.Waiters() == 0:
			// Cold and idle: halve toward the floor. Lazy on the pool side
			// (see Resize) — tenancies on deactivated ports, were any to
			// race in, run to their natural end.
			target := active / 2
			if target < t.minPorts {
				target = t.minPorts
			}
			got := pool.Resize(target)
			if got < active {
				t.slack.Add(int64(active - got))
				t.supc.shrinks.Add(1)
			}
		case pool.chain.Waiters() > 0 && active < pool.Ports():
			// Parked acquirers under the current bound: spend slack to
			// widen it, bounded by capacity, and broadcast (via Resize) so
			// the waiters rescan.
			want := pool.chain.Waiters()
			if room := pool.Ports() - active; want > room {
				want = room
			}
			grant := int(t.slack.Load())
			if grant > want {
				grant = want
			}
			if grant > 0 && s.takeSlack(grant) {
				got := pool.Resize(active + grant)
				if added := got - active; added > 0 {
					t.supc.grows.Add(1)
					if added < grant {
						t.slack.Add(int64(grant - added))
					}
				} else {
					t.slack.Add(int64(grant))
				}
			}
		}
	}
}

// takeSlack atomically debits k from the table's slack quota, failing if
// the quota has fewer than k ports banked.
func (s *supervisor) takeSlack(k int) bool {
	for {
		cur := s.t.slack.Load()
		if cur < int64(k) {
			return false
		}
		if s.t.slack.CompareAndSwap(cur, cur-int64(k)) {
			return true
		}
	}
}

// judgeMigrations runs the shape policy over every stripe and attempts at
// most one migration per tick (migrations serialize on migMu anyway, and
// one per tick keeps the supervisor responsive under its own budget).
//
// The policy mirrors AutoBackend's cost model, but judged on observation
// instead of prediction: sustained wakes-per-acquire above HotWakesPerOp
// on a large active pool means the stripe is paying hand-off RMR that the
// tree's O(log k / log log k) levels would bound — go tree. Wakes at or
// below ColdWakesPerOp on a small pool means uncontended passages
// dominate and the flat lock's simplicity wins — go flat. Everything in
// between takes MCS's O(1) local-spin middle ground. A stripe must hold
// the same verdict for HysteresisTicks consecutive ticks (with at least
// supMigrateMinAcquires acquisitions per tick, so idle stripes are never
// judged) before the swap is attempted, and sits out HysteresisTicks
// after one — the two guards that keep the table from flapping.
func (s *supervisor) judgeMigrations() {
	t := s.t
	migrated := false
	for i := range t.shards {
		sh := &t.shards[i]
		acq := sh.acquires.Load()
		wakes := sh.stats.Wakes.Load()
		dAcq := acq - s.lastAcquires[i]
		dWakes := wakes - s.lastWakes[i]
		s.lastAcquires[i] = acq
		s.lastWakes[i] = wakes
		if s.cooldown[i] > 0 {
			s.cooldown[i]--
			s.streak[i] = 0
			continue
		}
		if dAcq < supMigrateMinAcquires {
			s.streak[i] = 0
			continue
		}
		wpo := float64(dWakes) / float64(dAcq)
		desired := s.desiredBackend(sh, wpo)
		if desired == s.lastDesired[i] {
			s.streak[i]++
		} else {
			s.lastDesired[i] = desired
			s.streak[i] = 1
		}
		if migrated || s.streak[i] < s.cfg.HysteresisTicks {
			continue
		}
		if desired == ShardBackend(sh.backend.Load()) {
			continue
		}
		if t.migrateShard(i, desired, s.cfg.QuiesceTimeout) {
			migrated = true
			s.cooldown[i] = s.cfg.HysteresisTicks
			s.streak[i] = 0
		}
	}
}

// desiredBackend maps one stripe's observed wakes-per-acquire and active
// pool width to the shape the policy wants.
func (s *supervisor) desiredBackend(sh *lockShard, wpo float64) ShardBackend {
	active := sh.pool.Active()
	switch {
	case wpo > s.cfg.HotWakesPerOp && active > autoFlatPortThreshold:
		return TreeBackend
	case wpo <= s.cfg.ColdWakesPerOp && active <= autoFlatPortThreshold:
		return FlatBackend
	default:
		if sh.pool.Ports() > mcsMaxPorts {
			return TreeBackend // MCS refs cannot address this many ports
		}
		return MCSBackend
	}
}

// migrateShard flips stripe si's lock backend to target at a proven
// quiesce point; see the safety argument at the top of the file. It
// reports whether the swap happened — false means the stripe would not
// drain within timeout (or already has the target shape) and keeps its
// current backend, with the gate reopened either way.
func (t *LockTable) migrateShard(si int, target ShardBackend, timeout time.Duration) bool {
	target = target.resolve(t.ports)
	t.migMu.Lock()
	defer t.migMu.Unlock()
	sh := &t.shards[si]
	if ShardBackend(sh.backend.Load()) == target {
		return true
	}
	sh.gateClosed.Store(true)
	// Waiters parked on the pool chain must migrate to the gate (their
	// leaseCond includes gateClosed); wake them all to re-route.
	sh.pool.chain.Broadcast()
	defer t.reopenGate(sh)

	deadline := time.Now().Add(timeout)
	var sweeping atomic.Bool
	for {
		if sh.pool.InUse() == 0 {
			if fn, ok := sh.m().quiesceExport(); ok {
				nm := sh.mk(target)
				if fn != nil {
					nm.SetCrashFunc(fn)
				}
				sh.lk.Store(&nm)
				sh.backend.Store(int32(target))
				t.supc.noteMigration(target)
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		// The stripe may be waiting on its own orphans (a crashed or
		// abandoned tenancy holds InUse up forever without a sweep).
		// Spawn an asynchronous table-wide sweep — never synchronous: a
		// batch orphan's recovery can block on other stripes, and this
		// goroutine must keep polling, not join that dependency chain.
		if stripeOrphans(sh) > 0 && sweeping.CompareAndSwap(false, true) {
			go func() {
				t.Reclaim()
				sweeping.Store(false)
			}()
		}
		time.Sleep(supBarrierPoll)
	}
}

// reopenGate releases a stripe's migration barrier: entrants parked on
// the gate chain resume, and pool-chain waiters are re-broadcast in case
// any parked against the closed gate's leaseCond without re-routing.
func (t *LockTable) reopenGate(sh *lockShard) {
	sh.gateClosed.Store(false)
	sh.gate.Broadcast()
	sh.pool.chain.Broadcast()
}

// stripeOrphans counts one stripe's orphaned (not yet claimed) ports.
func stripeOrphans(sh *lockShard) int {
	n := 0
	for p := 0; p < sh.pool.Ports(); p++ {
		if sh.pool.State(p) == LeaseOrphaned {
			n++
		}
	}
	return n
}
