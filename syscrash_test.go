package rme_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
)

// This file is the system-wide crash harness: CrashAll kills every lessee
// of a table at injected points — a holder inside its release, a batch
// mid-Unlock across two stripes, an async grant delivered but never
// settled, a worker at its first acquisition step — while a stripe-shape
// migration's quiesce barrier is closed, and the wreckage is checkpointed.
// Recovery is then proven two ways: in-process (TestSyscrashCrashAll...)
// and across a real process boundary (TestSyscrashProcessBoundary execs
// the test binary again; the child restores from the checkpoint bytes
// alone, with none of the parent incarnation's memory, and must show
// mutual exclusion, Orphans()==0 after reclaim, and no lost or double
// grant). All three shard backends.

// Environment contract between the exec'd parent and child halves of the
// process-boundary test.
const (
	envSyscrashFile    = "RME_SYSCRASH_FILE"
	envSyscrashBackend = "RME_SYSCRASH_BACKEND"
	envSyscrashShards  = "RME_SYSCRASH_SHARDS"
	envSyscrashPorts   = "RME_SYSCRASH_PORTS"
	envSyscrashOrphans = "RME_SYSCRASH_ORPHANS"
	envSyscrashHeld    = "RME_SYSCRASH_HELD"
	envSyscrashKeys    = "RME_SYSCRASH_KEYS"

	syscrashChildOK = "SYSCRASH-CHILD-OK"
)

// syscrashDebris is what a CrashAll leaves behind: the keys the dead
// tenancies were engaged with (one stripe each), which of them were inside
// their critical sections, and the checkpoint image taken while the
// wreckage — and stripe keyCS's closed migration gate — was live.
type syscrashDebris struct {
	keys    []uint64 // all debris keys, distinct stripes
	held    []uint64 // the subset whose stripes' CS the dead tenancy owned
	orphans int
	image   []byte
}

// crashAll drives one tenancy of each kind onto its own stripe, flips the
// kill switch so every subsequent protocol step dies, and checkpoints the
// table mid-migration-quiesce. It models the 2023 paper's crash shape: the
// whole process dies at once, every in-flight tenancy with it.
func crashAll(t *testing.T, tbl *rme.LockTable) syscrashDebris {
	t.Helper()
	keys := distinctStripeKeys(t, tbl, 5)
	kBatch1, kBatch2, kGrant, kCS, kMid := keys[0], keys[1], keys[2], keys[3], keys[4]

	var killAll atomic.Bool
	tbl.SetCrashFunc(func(port int, point string) bool { return killAll.Load() })

	// Tenancies engaged before the crash: a two-stripe batch held, an
	// async grant delivered, a key held in its critical section.
	b := tbl.LockBatch([]uint64{kBatch1, kBatch2})
	<-tbl.LockAsync(kGrant) // requester dies before settling it
	tbl.Lock(kCS)

	// The system-wide crash: every lessee dies at its next injected point.
	killAll.Store(true)
	if absorbCrash(func() { b.Unlock() }) {
		t.Fatal("batch release survived CrashAll")
	}
	if absorbCrash(func() { tbl.Unlock(kCS) }) {
		t.Fatal("release survived CrashAll")
	}
	if absorbCrash(func() { tbl.Lock(kMid) }) {
		t.Fatal("acquisition survived CrashAll")
	}

	if got := tbl.Orphans(); got < 4 {
		t.Fatalf("CrashAll left %d orphans, want at least the batch pair and the CS/mid deaths", got)
	}
	// Restore surfaces every non-free lease as an orphan — the already
	// orphaned ones plus still-Held tenancies like the unsettled grant,
	// whose owner is dead even though nothing has noticed yet.
	orphans := tbl.InUse()
	var held []uint64
	for _, k := range keys {
		if tbl.Held(k) {
			held = append(held, k)
		}
	}
	if len(held) == 0 {
		t.Fatal("no debris key holds its critical section; the in-CS adoption path would go untested")
	}

	// Checkpoint while a migration of the dead grantee's stripe is stuck
	// in its quiesce drain — the mid-migration-quiesce snapshot point.
	// That stripe's lease is still Held (the grant was delivered, nobody
	// has noticed the requester died), so the drain blocks on InUse
	// without spawning its orphan sweep: the barrier stays closed until
	// its timeout and the wreckage stays exactly as the crash left it.
	siGate := tbl.ShardIndex(kGrant)
	target := rme.TreeBackend
	if tbl.Backend() == rme.TreeBackend {
		target = rme.FlatBackend // a same-shape migration would no-op without closing the gate
	}
	migDone := make(chan bool, 1)
	go func() { migDone <- tbl.ForceMigrate(siGate, target, 300*time.Millisecond) }()
	deadline := time.Now().Add(2 * time.Second)
	for !tbl.GateClosed(siGate) {
		if time.Now().After(deadline) {
			t.Fatal("migration barrier never closed over the dead stripe")
		}
		time.Sleep(100 * time.Microsecond)
	}
	image := mustCheckpoint(t, tbl)
	if ok := <-migDone; ok {
		t.Fatal("migration drained a stripe holding a dead tenancy")
	}
	// The checkpoint is taken; lift the kill switch so the old
	// incarnation's background sweep (migrateShard spawns one when the
	// draining stripe holds orphans) can stop crash-looping and exit
	// instead of spinning past the table's Close.
	killAll.Store(false)
	return syscrashDebris{keys: keys, held: held, orphans: orphans, image: image}
}

// assertRestoredHeals is the recovery referee both the in-process and the
// exec'd-child tests run against a freshly restored table: orphan count
// and Held carried over, reclaim drains everything, and a storm over the
// previously-stranded keys completes with mutual exclusion intact — no
// lost grant (every passage finishes), no double grant (the per-key
// referee counter). The sync storm runs concurrently with the sweep, so
// time-to-first-grant is also exercised: arrivals queue behind adopted
// dead holders and are granted as recovery releases them.
func assertRestoredHeals(t *testing.T, nt *rme.LockTable, keys, held []uint64, orphans int) {
	t.Helper()
	if got := nt.Orphans(); got != orphans {
		t.Fatalf("restored with %d orphans, want %d", got, orphans)
	}
	for _, k := range held {
		if !nt.Held(k) {
			t.Fatalf("key %d held its CS at checkpoint; restored image lost it", k)
		}
	}
	reclaimed := make(chan int, 1)
	go func() { reclaimed <- nt.Reclaim() }()

	const workers = 8
	const iters = 300
	inside := make(map[uint64]*atomic.Int32, len(keys))
	for _, k := range keys {
		inside[k] = &atomic.Int32{}
	}
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := keys[(w*13+i)%len(keys)]
				nt.Lock(k)
				if inside[k].Add(1) != 1 {
					t.Errorf("two holders of key %d after restore", k)
				}
				inside[k].Add(-1)
				nt.Unlock(k)
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := done.Load(); got != workers*iters {
		t.Fatalf("%d of %d post-restore passages completed", got, workers*iters)
	}
	if got := <-reclaimed; got != orphans {
		t.Fatalf("Reclaim healed %d orphans, want %d", got, orphans)
	}
	if got := nt.Orphans(); got != 0 {
		t.Fatalf("%d orphans after reclaim", got)
	}

	// The async and batch pipelines work in the restored incarnation too.
	g := <-nt.LockAsync(keys[0])
	g.Unlock()
	nt.LockBatch(keys).Unlock()
	if !nt.Quiesced() {
		t.Fatal("restored table not quiesced after the storm")
	}
}

// TestSyscrashCrashAllRestore is the in-process form: CrashAll, checkpoint
// mid-quiesce, restore, heal — per backend. The exec'd-child test proves
// the same flow across a real process boundary; this one keeps the full
// matrix fast and debuggable.
func TestSyscrashCrashAllRestore(t *testing.T) {
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		tbl := rme.NewLockTable(8, 4, rme.WithTableSeed(0x5eed), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		d := crashAll(t, tbl)
		tbl.Close()

		nt, err := rme.RestoreTable(d.image)
		if err != nil {
			t.Fatalf("RestoreTable: %v", err)
		}
		defer nt.Close()
		assertRestoredHeals(t, nt, d.keys, d.held, d.orphans)
	})
}

// TestSyscrashProcessBoundary is the tentpole proof: the parent CrashAlls
// a table and writes the checkpoint to disk; a freshly exec'd child — a
// real OS process with none of this incarnation's memory — restores from
// the bytes, asserts the arena and orphan state carried over, reclaims,
// and runs the mutual-exclusion referee. Per backend.
func TestSyscrashProcessBoundary(t *testing.T) {
	if os.Getenv(envSyscrashFile) != "" {
		t.Skip("child process run; the parent drives TestSyscrashChildRestore directly")
	}
	backendMatrix(t, func(t *testing.T, backend rme.ShardBackend) {
		tbl := rme.NewLockTable(8, 4, rme.WithTableSeed(0x5eed), rme.WithNodePool(true),
			rme.WithShardBackend(backend))
		d := crashAll(t, tbl)
		tbl.Close()

		path := filepath.Join(t.TempDir(), "table.ckpt")
		if err := os.WriteFile(path, d.image, 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(os.Args[0],
			"-test.run=^TestSyscrashChildRestore$", "-test.count=1", "-test.v")
		cmd.Env = append(os.Environ(),
			envSyscrashFile+"="+path,
			envSyscrashBackend+"="+tbl.Backend().String(),
			envSyscrashShards+"="+strconv.Itoa(tbl.Shards()),
			envSyscrashPorts+"="+strconv.Itoa(tbl.Ports()),
			envSyscrashOrphans+"="+strconv.Itoa(d.orphans),
			envSyscrashHeld+"="+joinKeys(d.held),
			envSyscrashKeys+"="+joinKeys(d.keys),
		)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child restore process failed: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), syscrashChildOK) {
			t.Fatalf("child ran but never reported %s:\n%s", syscrashChildOK, out)
		}
	})
}

// TestSyscrashChildRestore is the child half of the process-boundary test.
// It runs only when the parent exec'd it with the environment contract set
// (a plain `go test` run skips it), restores the table from nothing but
// the checkpoint file, and reports the OK marker the parent greps for.
func TestSyscrashChildRestore(t *testing.T) {
	path := os.Getenv(envSyscrashFile)
	if path == "" {
		t.Skip("not a syscrash child process")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := rme.RestoreTable(data)
	if err != nil {
		t.Fatalf("RestoreTable in the child process: %v", err)
	}
	defer nt.Close()

	wantShards := mustAtoi(t, envSyscrashShards)
	wantPorts := mustAtoi(t, envSyscrashPorts)
	wantOrphans := mustAtoi(t, envSyscrashOrphans)
	if nt.Shards() != wantShards || nt.Ports() != wantPorts {
		t.Fatalf("restored arena %d×%d, parent had %d×%d", nt.Shards(), nt.Ports(), wantShards, wantPorts)
	}
	if got, want := nt.Backend().String(), os.Getenv(envSyscrashBackend); got != want {
		t.Fatalf("restored backend %s, parent had %s", got, want)
	}
	keys := splitKeys(t, os.Getenv(envSyscrashKeys))
	held := splitKeys(t, os.Getenv(envSyscrashHeld))
	assertRestoredHeals(t, nt, keys, held, wantOrphans)
	fmt.Printf("%s backend=%s orphans_healed=%d\n", syscrashChildOK, nt.Backend(), wantOrphans)
}

func joinKeys(keys []uint64) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = strconv.FormatUint(k, 10)
	}
	return strings.Join(parts, ",")
}

func splitKeys(t *testing.T, s string) []uint64 {
	t.Helper()
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		if part == "" {
			continue
		}
		k, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			t.Fatalf("bad key list %q: %v", s, err)
		}
		out = append(out, k)
	}
	return out
}

func mustAtoi(t *testing.T, env string) int {
	t.Helper()
	n, err := strconv.Atoi(os.Getenv(env))
	if err != nil {
		t.Fatalf("bad %s=%q: %v", env, os.Getenv(env), err)
	}
	return n
}
