package rme

import (
	"fmt"
	"math"
	"sync/atomic"
)

// TreeMutex is the runtime port of the paper's Section 3.3 construction:
// n processes compete on an arbitration tree whose internal nodes are
// k-ported Mutex instances with k = Θ(log n / log log n). It is the
// n-process form of the lock with the paper's headline bound —
// O((1+f)·log n / log log n) RMRs per super-passage — where the flat Mutex
// is the k-ported core.
//
// Unlike Mutex's ports, TreeMutex identities are process indices
// 0..n-1 with a fixed leaf each; the same exclusivity rule applies (one
// live goroutine per identity; a replacement presenting the same identity
// recovers the dead one's passage).
//
// Recovery uses one stable phase word per process (climbing / in CS /
// releasing-with-cursor): see internal/tree for the verified step-machine
// version this is ported from, including why the release cursor is
// necessary (a released node's port may already be claimed by a sibling,
// so the replay must never touch levels above the cursor).
type TreeMutex struct {
	n      int
	arity  int
	levels int
	nodes  [][]*Mutex
	phase  []atomic.Int64
}

// Phase values for TreeMutex's per-process phase word; the release cursor
// lives in the upper bits.
const (
	tphIdle int64 = iota
	tphUp
	tphCS
	tphDown

	tphShift = 4
	tphMask  = (1 << tphShift) - 1
)

func encodeTreeDown(cursor int) int64 {
	if cursor < 0 {
		return tphDown
	}
	return tphDown | int64(cursor)<<tphShift
}

// TreeArity returns the paper's node degree for n processes:
// max(2, ⌈log₂ n / log₂ log₂ n⌉).
func TreeArity(n int) int {
	if n <= 4 {
		return 2
	}
	lg := math.Log2(float64(n))
	a := int(math.Ceil(lg / math.Log2(lg)))
	if a < 2 {
		return 2
	}
	return a
}

// NewTree creates an n-process arbitration-tree mutex with the paper's
// default node degree. Options (wait strategy, node pooling) are threaded
// through to every tree node's Mutex.
func NewTree(n int, opts ...Option) *TreeMutex {
	if n <= 0 {
		panic("rme: NewTree needs at least one process")
	}
	t := &TreeMutex{n: n, arity: TreeArity(n)}
	groups := n
	for groups > 1 {
		groups = (groups + t.arity - 1) / t.arity
		level := make([]*Mutex, groups)
		for g := range level {
			level[g] = New(t.arity, opts...)
		}
		t.nodes = append(t.nodes, level)
		t.levels++
	}
	t.phase = make([]atomic.Int64, n)
	return t
}

// Procs returns n, the number of process identities.
func (t *TreeMutex) Procs() int { return t.n }

// Levels returns the tree height.
func (t *TreeMutex) Levels() int { return t.levels }

// SetCrashFunc installs the crash-injection hook on every tree node. The
// hook's port argument is the node-local port (child index); points keep
// the paper's line labels.
func (t *TreeMutex) SetCrashFunc(fn CrashFunc) {
	for _, level := range t.nodes {
		for _, m := range level {
			m.SetCrashFunc(fn)
		}
	}
}

func (t *TreeMutex) checkProc(proc int) {
	if proc < 0 || proc >= t.n {
		panic(fmt.Sprintf("rme: process %d out of range [0,%d)", proc, t.n))
	}
}

// position returns the (node, port) of proc at level l.
func (t *TreeMutex) position(proc, l int) (m *Mutex, port int) {
	div := 1
	for j := 0; j < l; j++ {
		div *= t.arity
	}
	return t.nodes[l][proc/(div*t.arity)], (proc / div) % t.arity
}

// Held reports whether proc currently owns the outer critical section.
func (t *TreeMutex) Held(proc int) bool {
	t.checkProc(proc)
	return t.phase[proc].Load()&tphMask == tphCS
}

// Lock acquires the outer critical section for proc, performing whatever
// crash recovery the stable phase word dictates.
func (t *TreeMutex) Lock(proc int) {
	t.checkProc(proc)
	switch word := t.phase[proc].Load(); word & tphMask {
	case tphCS:
		return // crashed in the CS: every level is still held
	case tphDown:
		// Crashed mid-release: replay from the cursor, then climb afresh.
		t.replayRelease(proc, int(word>>tphShift))
	}
	t.phase[proc].Store(tphUp)
	for l := 0; l < t.levels; l++ {
		m, port := t.position(proc, l)
		m.Lock(port)
	}
	t.phase[proc].Store(tphCS)
}

// Unlock releases the outer critical section (wait-free). A crash part-way
// through is completed by the next Lock on the same identity.
func (t *TreeMutex) Unlock(proc int) {
	t.checkProc(proc)
	if t.phase[proc].Load()&tphMask != tphCS {
		panic(fmt.Sprintf("rme: Unlock of process %d which does not hold the tree lock", proc))
	}
	t.phase[proc].Store(encodeTreeDown(t.levels - 1))
	t.replayRelease(proc, t.levels-1)
	t.phase[proc].Store(tphIdle)
}

// replayRelease releases levels cursor..0 (top-down) with the idempotent
// per-node exit recovery, advancing the stable cursor between levels.
func (t *TreeMutex) replayRelease(proc, cursor int) {
	for l := cursor; l >= 0; l-- {
		m, port := t.position(proc, l)
		m.exitRecover(port)
		if l > 0 {
			t.phase[proc].Store(encodeTreeDown(l - 1))
		}
	}
}

// exitRecover completes a possibly interrupted Exit of port without
// starting a new passage (idempotent; used by the tree's release replay).
// It mirrors internal/core's BeginExitRecover.
func (m *Mutex) exitRecover(port int) {
	m.cp(port, "X.read")
	n := m.node[port].Load()
	if n == nil {
		return // exit already complete
	}
	switch n.pred.Load() {
	case m.incsN:
		m.cp(port, "L27")
		n.pred.Store(m.exitN)
	case m.exitN:
		// fall through to lines 28–29
	default:
		panic("rme: exit recovery on a node that never reached the CS")
	}
	m.cp(port, "L28")
	n.cs.set()
	m.cp(port, "L29")
	m.node[port].Store(nil)
	m.pushFree(port, n)
}
