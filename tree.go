package rme

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/rmelib/rme/internal/wait"
)

// TreeMutex is the runtime port of the paper's Section 3.3 construction:
// n processes compete on an arbitration tree whose internal nodes are
// k-ported Mutex instances with k = Θ(log n / log log n). It is the
// n-process form of the lock with the paper's headline bound —
// O((1+f)·log n / log log n) RMRs per super-passage — where the flat Mutex
// is the k-ported core.
//
// Unlike Mutex's ports, TreeMutex identities are process indices
// 0..n-1 with a fixed leaf each; the same exclusivity rule applies (one
// live goroutine per identity; a replacement presenting the same identity
// recovers the dead one's passage).
//
// Recovery uses one stable phase word per process (climbing / in CS /
// releasing-with-cursor): see internal/tree for the verified step-machine
// version this is ported from, including why the release cursor is
// necessary (a released node's port may already be claimed by a sibling,
// so the replay must never touch levels above the cursor).
//
// The hot path is arithmetic-free: each process's (node, port) pair per
// level is precomputed at construction into a per-process path table, and
// the per-process phase words are padded to cache lines so neighboring
// processes' passage bookkeeping never ping-pongs a line.
type TreeMutex struct {
	n      int
	arity  int
	levels int
	nodes  [][]*Mutex
	// path[proc][l] is the precomputed (node, port) of proc at level l —
	// the paper's position arithmetic (a division loop per level per
	// acquisition) hoisted to NewTree. Read-only after construction.
	path [][]treeStep
	// phase[proc] is the stable recovery word, one cache line each: every
	// passage writes it twice (tphUp, tphCS) plus once per level on
	// release, which false-shared eight-up before padding.
	phase []paddedInt64
	// levelStats[l] counts wait-engine events inside level l's mutexes;
	// nil unless WithTreeInstrumentation was given.
	levelStats []*wait.Stats
	// crashFn is the tree-level crash hook: the phase-word stores in
	// Unlock/replayRelease are protocol steps of their own, and a crash
	// exactly between them must be injectable just like the node-level
	// steps are (see the T.* points).
	crashFn atomic.Pointer[CrashFunc]
}

// treeStep is one precomputed hop of a process's leaf-to-root path.
type treeStep struct {
	m    *Mutex
	port int
}

// Phase values for TreeMutex's per-process phase word; the release cursor
// lives in the upper bits.
const (
	tphIdle int64 = iota
	tphUp
	tphCS
	tphDown

	tphShift = 4
	tphMask  = (1 << tphShift) - 1
)

// encodeTreeDown packs a release cursor into a tphDown phase word. The
// cursor is stored biased by one — 0 in the cursor bits means "nothing left
// to replay" — so that cursor -1 (a 0-level tree, or a release that has
// finished every level) is distinguishable from cursor 0 (leaf level still
// to release). Storing -1 and 0 both as 0, as an earlier encoding did, made
// a crash between Unlock's tphDown store and its tphIdle store on a
// NewTree(1) replay level 0 of an empty path table (out-of-range panic).
func encodeTreeDown(cursor int) int64 {
	if cursor < 0 {
		cursor = -1
	}
	return tphDown | int64(cursor+1)<<tphShift
}

// decodeTreeDown recovers the release cursor from a tphDown phase word;
// -1 means the replay has nothing to do.
func decodeTreeDown(word int64) int {
	return int(word>>tphShift) - 1
}

// TreeArity returns the paper's node degree for n processes:
// max(2, ⌈log₂ n / log₂ log₂ n⌉).
func TreeArity(n int) int {
	if n <= 4 {
		return 2
	}
	lg := math.Log2(float64(n))
	a := int(math.Ceil(lg / math.Log2(lg)))
	if a < 2 {
		return 2
	}
	return a
}

// NewTree creates an n-process arbitration-tree mutex with the paper's
// default node degree. Options (wait strategy, node pooling, per-level
// instrumentation) are threaded through to every tree node's Mutex.
func NewTree(n int, opts ...Option) *TreeMutex {
	if n <= 0 {
		panic("rme: NewTree needs at least one process")
	}
	cfg := buildConfig(opts)
	t := &TreeMutex{n: n, arity: TreeArity(n)}
	groups := n
	for groups > 1 {
		groups = (groups + t.arity - 1) / t.arity
		// Pass the caller's options through so future Options reach the
		// node mutexes too; the per-level instrumented strategy is
		// appended last and therefore wins over the caller's.
		nodeOpts := opts
		if cfg.treeStats {
			ls := &wait.Stats{}
			t.levelStats = append(t.levelStats, ls)
			nodeOpts = append(append([]Option{}, opts...),
				WithWaitStrategy(wait.Instrumented(cfg.strat, ls)))
		}
		level := make([]*Mutex, groups)
		for g := range level {
			level[g] = New(t.arity, nodeOpts...)
		}
		t.nodes = append(t.nodes, level)
		t.levels++
	}
	t.phase = make([]paddedInt64, n)
	t.path = make([][]treeStep, n)
	for p := 0; p < n; p++ {
		steps := make([]treeStep, t.levels)
		div := 1
		for l := 0; l < t.levels; l++ {
			steps[l] = treeStep{m: t.nodes[l][p/(div*t.arity)], port: (p / div) % t.arity}
			div *= t.arity
		}
		t.path[p] = steps
	}
	return t
}

// Ports returns n, the number of process identities — the same capacity
// notion as Mutex.Ports, under the same exclusivity rule, so the two lock
// shapes present one identity surface (LockTable's shard backends are
// chosen through exactly this common face).
func (t *TreeMutex) Ports() int { return t.n }

// Procs is the paper-facing name for Ports: Section 3.3 speaks of n
// processes on the arbitration tree where the flat algorithm speaks of
// ports. The two are aliases; new code should prefer Ports.
func (t *TreeMutex) Procs() int { return t.n }

// Levels returns the tree height.
func (t *TreeMutex) Levels() int { return t.levels }

// LevelStats returns the per-level wait-engine counters (index 0 is the
// leaf level), or nil unless the tree was built with
// WithTreeInstrumentation. Wakes per level is the RMR proxy for the
// tree's hand-off cost: the paper's bound says the sum over the path is
// O(log n / log log n) per crash-free super-passage.
//
// The returned slice is a fresh copy on every call — mutating it cannot
// detach the tree's live counter blocks — but its elements point at those
// live counters: reading them observes the tree's ongoing activity, and
// Reset on one zeroes the level for every holder of the pointer.
func (t *TreeMutex) LevelStats() []*WaitStats {
	if t.levelStats == nil {
		return nil
	}
	out := make([]*WaitStats, len(t.levelStats))
	copy(out, t.levelStats)
	return out
}

// SetCrashFunc installs the crash-injection hook on every tree node and on
// the tree's own phase-word steps. Node-level points keep the paper's line
// labels and pass the node-local port (child index); the tree-level points
// ("T.down" after Unlock's cursor publication, "T.cursor" after each
// replay's cursor advance, "T.idle" before the release completes) pass the
// process index.
func (t *TreeMutex) SetCrashFunc(fn CrashFunc) {
	if fn == nil {
		t.crashFn.Store(nil)
	} else {
		t.crashFn.Store(&fn)
	}
	for _, level := range t.nodes {
		for _, m := range level {
			m.SetCrashFunc(fn)
		}
	}
}

// tcp is the tree-level crash point check (the TreeMutex counterpart of
// Mutex.cp).
func (t *TreeMutex) tcp(proc int, point string) {
	if fn := t.crashFn.Load(); fn != nil {
		if (*fn)(proc, point) {
			panic(Crash{Port: proc, Point: point})
		}
	}
}

func (t *TreeMutex) checkProc(proc int) {
	if proc < 0 || proc >= t.n {
		panic(fmt.Sprintf("rme: process %d out of range [0,%d)", proc, t.n))
	}
}

// Held reports whether proc currently owns the outer critical section.
func (t *TreeMutex) Held(proc int) bool {
	t.checkProc(proc)
	return t.phase[proc].Load()&tphMask == tphCS
}

// Lock acquires the outer critical section for proc, performing whatever
// crash recovery the stable phase word dictates.
func (t *TreeMutex) Lock(proc int) {
	t.checkProc(proc)
	switch word := t.phase[proc].Load(); word & tphMask {
	case tphCS:
		return // crashed in the CS: every level is still held
	case tphDown:
		// Crashed mid-release: replay from the cursor, then climb afresh.
		t.replayRelease(proc, decodeTreeDown(word))
	}
	t.phase[proc].Store(tphUp)
	for _, s := range t.path[proc] {
		s.m.Lock(s.port)
	}
	t.phase[proc].Store(tphCS)
}

// LockDone is Lock with a cancellation channel: it returns true once proc
// holds the outer critical section, or false if done closed mid-climb. An
// abandoned climb leaves the phase word at tphUp with every level below the
// cancelled one still held and the cancelled level's node in its
// crashed-at-the-wait state — exactly the state a crash at that point
// leaves, so the standard recovery applies: a Lock on the same identity
// re-climbs (held levels re-enter wait-free, the abandoned level's passage
// resumes), and the following Unlock unwinds the precomputed path top-down
// under the phase-cursor encoding. The LockTable's abort path runs that
// Lock/Unlock pair from the departing caller. Recovery passages (a phase
// word found mid-passage) are not cancellable and return true.
func (t *TreeMutex) LockDone(proc int, done <-chan struct{}) bool {
	t.checkProc(proc)
	switch word := t.phase[proc].Load(); word & tphMask {
	case tphCS:
		return true // crashed in the CS: every level is still held
	case tphUp:
		t.Lock(proc) // interrupted climb: recovery, run to completion
		return true
	case tphDown:
		t.replayRelease(proc, decodeTreeDown(word))
	}
	t.phase[proc].Store(tphUp)
	for _, s := range t.path[proc] {
		if !s.m.LockDone(s.port, done) {
			t.tcp(proc, "T.abort")
			return false
		}
	}
	t.phase[proc].Store(tphCS)
	return true
}

// freeHint reports whether an arrival by proc would currently climb its
// whole path without queuing: true iff every level's node on the path has
// its tail exit signal set. Racy — a hint for TryLock, not a reservation.
func (t *TreeMutex) freeHint(proc int) bool {
	for _, s := range t.path[proc] {
		if !s.m.freeHint(s.port) {
			return false
		}
	}
	return true
}

// quiesceExport reports whether the tree is fully idle — every process's
// stable phase word retired, so no passage is in flight and no release
// replay is pending at any level — and, when it is, exports the tree-level
// crash hook for a migration to carry onto the replacement backend. Exact
// under the caller's quiesce barrier: every climb, hold, and release
// leaves the phase word non-idle until the passage fully completes, so
// all-idle phase words imply all tree nodes are settled too.
func (t *TreeMutex) quiesceExport() (CrashFunc, bool) {
	for p := 0; p < t.n; p++ {
		if t.phase[p].Load()&tphMask != tphIdle {
			return nil, false
		}
	}
	var fn CrashFunc
	if pf := t.crashFn.Load(); pf != nil {
		fn = *pf
	}
	return fn, true
}

// Unlock releases the outer critical section (wait-free). A crash part-way
// through is completed by the next Lock on the same identity.
func (t *TreeMutex) Unlock(proc int) {
	t.checkProc(proc)
	if t.phase[proc].Load()&tphMask != tphCS {
		panic(fmt.Sprintf("rme: Unlock of process %d which does not hold the tree lock", proc))
	}
	t.phase[proc].Store(encodeTreeDown(t.levels - 1))
	t.tcp(proc, "T.down")
	t.replayRelease(proc, t.levels-1)
	t.tcp(proc, "T.idle")
	t.phase[proc].Store(tphIdle)
}

// replayRelease releases levels cursor..0 (top-down) with the idempotent
// per-node exit recovery, advancing the stable cursor between levels. A
// cursor below zero means the release already passed the leaf level and
// there is nothing to replay.
func (t *TreeMutex) replayRelease(proc, cursor int) {
	path := t.path[proc]
	for l := cursor; l >= 0; l-- {
		path[l].m.exitRecover(path[l].port)
		if l > 0 {
			t.phase[proc].Store(encodeTreeDown(l - 1))
			t.tcp(proc, "T.cursor")
		}
	}
}

// exitRecover completes a possibly interrupted Exit of port without
// starting a new passage (idempotent; used by the tree's release replay).
// It mirrors internal/core's BeginExitRecover.
func (m *Mutex) exitRecover(port int) {
	m.cp(port, "X.read")
	n := m.node[port].Load()
	if n == nil {
		return // exit already complete
	}
	switch n.pred.Load() {
	case m.incsN:
		m.cp(port, "L27")
		n.pred.Store(m.exitN)
	case m.exitN:
		// fall through to lines 28–29
	default:
		panic("rme: exit recovery on a node that never reached the CS")
	}
	m.cp(port, "L28")
	n.cs.set()
	m.cp(port, "L29")
	m.node[port].Store(nil)
	m.pushFree(port, n)
}
