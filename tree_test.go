package rme_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rme "github.com/rmelib/rme"
	"github.com/rmelib/rme/internal/xrand"
)

func TestTreeArity(t *testing.T) {
	tests := []struct{ n, arity int }{
		{2, 2}, {4, 2}, {16, 2}, {64, 3}, {256, 3}, {1024, 4},
	}
	for _, tt := range tests {
		if got := rme.TreeArity(tt.n); got != tt.arity {
			t.Errorf("TreeArity(%d) = %d, want %d", tt.n, got, tt.arity)
		}
	}
}

func TestTreeSingleProcess(t *testing.T) {
	m := rme.NewTree(1)
	for i := 0; i < 50; i++ {
		m.Lock(0)
		if !m.Held(0) {
			t.Fatal("not held in CS")
		}
		m.Unlock(0)
	}
}

func TestTreeMutualExclusionStress(t *testing.T) {
	for _, n := range []int{2, 5, 9, 16} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			m := rme.NewTree(n)
			counter := 0 // race-detector referee
			var inside atomic.Int32
			var wg sync.WaitGroup
			iters := 2000 / n
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func(proc int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						m.Lock(proc)
						if inside.Add(1) != 1 {
							t.Errorf("two processes in the tree CS")
						}
						counter++
						inside.Add(-1)
						m.Unlock(proc)
					}
				}(w)
			}
			wg.Wait()
			if counter != n*iters {
				t.Fatalf("counter = %d, want %d", counter, n*iters)
			}
		})
	}
}

func TestTreeCSRAfterWorkerDeath(t *testing.T) {
	m := rme.NewTree(4)
	func() { m.Lock(0) }() // holder dies with the whole path held

	if !m.Held(0) {
		t.Fatal("Held(0) should be true")
	}
	entered := make(chan struct{})
	go func() {
		m.Lock(3) // different subtree: must still be excluded at the root
		close(entered)
		m.Unlock(3)
	}()
	select {
	case <-entered:
		t.Fatal("tree CSR violated")
	case <-time.After(50 * time.Millisecond):
	}

	m.Lock(0) // replacement recovers immediately
	m.Unlock(0)
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("process 3 starved after recovery")
	}
}

// treeLockRetry / treeUnlockRetry implement the recovery protocol against
// injected crashes, as a real supervisor would.
func treeLockRetry(m *rme.TreeMutex, proc int) {
	for {
		ok := func() (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, isCrash := rme.AsCrash(r); !isCrash {
						panic(r)
					}
				}
			}()
			m.Lock(proc)
			return true
		}()
		if ok {
			return
		}
	}
}

func treeUnlockRetry(m *rme.TreeMutex, proc int) {
	for {
		ok := func() (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, isCrash := rme.AsCrash(r); !isCrash {
						panic(r)
					}
				}
			}()
			m.Unlock(proc)
			return true
		}()
		if ok {
			return
		}
		treeLockRetry(m, proc)
	}
}

func TestTreeRandomCrashStorm(t *testing.T) {
	const n, iters = 6, 100
	m := rme.NewTree(n)
	var calls atomic.Uint64
	m.SetCrashFunc(func(port int, point string) bool {
		return xrand.Mix64(calls.Add(1))%1499 == 0
	})
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				treeLockRetry(m, proc)
				counter++
				treeUnlockRetry(m, proc)
			}
		}(w)
	}
	wg.Wait()
	if counter != n*iters {
		t.Fatalf("counter = %d, want %d", counter, n*iters)
	}
}

func TestTreePanicsOnMisuse(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"zero procs", func() { rme.NewTree(0) }},
		{"bad proc", func() { rme.NewTree(2).Lock(5) }},
		{"unlock without lock", func() { rme.NewTree(2).Unlock(0) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tt.fn()
		})
	}
}

// TestTreeLevelStats drives an instrumented tree under contention and
// checks the per-level RMR-proxy counters: one stats block per level, and
// a contended run must record hand-off wakes at the leaf level.
func TestTreeLevelStats(t *testing.T) {
	const n, iters = 8, 50
	m := rme.NewTree(n, rme.WithTreeInstrumentation(true), rme.WithNodePool(true))
	ls := m.LevelStats()
	if len(ls) != m.Levels() {
		t.Fatalf("LevelStats len = %d, want %d levels", len(ls), m.Levels())
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock(proc)
				runtime.Gosched() // keep the CS across a scheduler boundary
				m.Unlock(proc)
			}
		}(p)
	}
	wg.Wait()
	var publishes uint64
	for _, s := range ls {
		publishes += s.Publishes.Load()
	}
	if publishes == 0 {
		t.Fatal("contended instrumented run recorded no wait episodes")
	}
	if rme.NewTree(4).LevelStats() != nil {
		t.Fatal("LevelStats non-nil without WithTreeInstrumentation")
	}
}

func TestTreeLevels(t *testing.T) {
	if l := rme.NewTree(16).Levels(); l != 4 { // arity 2
		t.Fatalf("levels(16) = %d, want 4", l)
	}
	if l := rme.NewTree(64).Levels(); l != 4 { // arity 3
		t.Fatalf("levels(64) = %d, want 4", l)
	}
}

// TestTreeUnlockCrashEveryWindow crash-injects a release through every
// window of Unlock — the tree-level phase-word steps (T.down, T.cursor,
// T.idle) and every node-level exit step in between — and requires the
// next Lock on the same identity to recover. The 1-process tree is the
// regression case for the release-cursor encoding: its path table is
// empty, and the pre-fix encoding of cursor -1 collided with cursor 0, so
// a crash at T.down made the recovery Lock index path[0] out of range.
func TestTreeUnlockCrashEveryWindow(t *testing.T) {
	for _, n := range []int{1, 5} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			for window := 1; ; window++ {
				m := rme.NewTree(n)
				m.Lock(0)
				var count atomic.Int64
				m.SetCrashFunc(func(port int, point string) bool {
					return count.Add(1) == int64(window)
				})
				crashed := func() (crashed bool) {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := rme.AsCrash(r); !ok {
								panic(r)
							}
							crashed = true
						}
					}()
					m.Unlock(0)
					return false
				}()
				m.SetCrashFunc(nil)
				if !crashed {
					// The window index walked past the last crash point:
					// every window has been exercised.
					if window == 1 {
						t.Fatal("no crash windows fired at all")
					}
					break
				}
				// The recovery Lock must replay the interrupted release and
				// then acquire; pre-fix this panicked with an out-of-range
				// path index on the n=1 tree.
				m.Lock(0)
				if !m.Held(0) {
					t.Fatalf("window %d: recovery Lock did not acquire", window)
				}
				m.Unlock(0)
			}
		})
	}
}

// TestTreeLevelStatsSnapshot pins LevelStats's snapshot semantics: the
// returned slice is a copy, so overwriting its elements cannot detach the
// tree's live counter blocks.
func TestTreeLevelStatsSnapshot(t *testing.T) {
	m := rme.NewTree(8, rme.WithTreeInstrumentation(true))
	ls := m.LevelStats()
	orig := make([]*rme.WaitStats, len(ls))
	copy(orig, ls)
	for i := range ls {
		ls[i] = nil // must only mutate the caller's copy
	}
	again := m.LevelStats()
	for i := range again {
		if again[i] != orig[i] {
			t.Fatalf("level %d: LevelStats element changed after caller mutation", i)
		}
		if again[i] == nil {
			t.Fatalf("level %d: live counter block lost", i)
		}
	}
}
